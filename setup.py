"""Setup shim.

The environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` via pyproject.toml alone) fail
with "invalid command 'bdist_wheel'".  This shim enables the legacy
editable path: ``pip install -e . --no-build-isolation --no-use-pep517``.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
