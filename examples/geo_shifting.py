#!/usr/bin/env python3
"""Geo-distributed carbon shifting across two ecovisor sites (paper §7).

The paper's conclusion names coordination between distributed ecovisor
clusters as future work; this example runs it: two sites whose grids are
12 hours out of phase share one delay-tolerant batch work pool, and a
coordinator migrates the workers to whichever grid is currently cleaner
(paying a checkpoint-transfer pause per move).

Run:  python examples/geo_shifting.py
"""

from repro.carbon.traces import make_region_trace
from repro.geo import GeoCoordinator
from repro.sim.experiment import grid_environment


def build(pinned: bool) -> GeoCoordinator:
    east_trace = make_region_trace("caiso", days=3, seed=2023)
    west_trace = east_trace.rolled(12 * 3600.0)
    coordinator = GeoCoordinator(
        {
            "east": grid_environment(trace=east_trace),
            "west": grid_environment(trace=west_trace),
        },
        workers=8,
        migration_delay_ticks=5,
        switch_threshold_g_per_kwh=1e9 if pinned else 20.0,
    )
    coordinator.submit(8 * 60.0 * 600)  # ~10 h of work for 8 workers
    return coordinator


def main() -> None:
    shifting = build(pinned=False).run(3 * 24 * 60)
    pinned = build(pinned=True).run(3 * 24 * 60)

    print("Two sites, grids 12 h out of phase, one shared batch pool\n")
    print(f"{'placement':12s} {'runtime':>9s} {'carbon':>9s} {'migrations':>11s}")
    for name, result in (("geo-shifting", shifting), ("single-site", pinned)):
        print(
            f"{name:12s} {result.runtime_s / 3600:7.2f} h "
            f"{result.total_carbon_g:7.3f} g {result.migrations:11d}"
        )
    reduction = (
        (pinned.total_carbon_g - shifting.total_carbon_g)
        / pinned.total_carbon_g * 100
    )
    print(f"\nwork split (shifting): {shifting.work_by_site}")
    print(f"carbon reduction from shifting: {reduction:.1f}%")
    print(
        "\nTakeaway: following the cleaner grid cuts carbon at a small\n"
        "runtime cost from migration pauses — the geo-distributed library\n"
        "policy the paper's Section 3.2 sketches."
    )


if __name__ == "__main__":
    main()
