#!/usr/bin/env python3
"""Zero-carbon Spark on solar + virtual batteries (paper §5.3).

A delay-tolerant Spark job and a solar-monitoring web app share a solar
array and battery 50/50 with a *zero* grid share — their virtual energy
systems cannot emit.  Compares the conservative system-level battery
smoothing policy against application-specific dynamic policies.

Run:  python examples/solar_battery_spark.py
"""

from repro.analysis.figures_battery import fig08_09_battery_policies


def main() -> None:
    out = fig08_09_battery_policies()
    print("Solar + battery, zero-carbon multi-tenancy\n")
    print(
        f"Spark runtime: static {out['spark_runtime_static_s'] / 3600:.1f} h, "
        f"dynamic {out['spark_runtime_dynamic_s'] / 3600:.1f} h "
        f"({out['spark_runtime_reduction_pct']:.1f}% faster; paper: 39%)"
    )
    print(
        f"Work lost to unclean surge kills (dynamic): "
        f"{out['spark_lost_units_dynamic']:.0f} units"
    )
    print("\nWeb monitor (SLO 100 ms):")
    for r in out["web_results"]:
        print(
            f"  {r.policy_label:14s} violations {r.violation_fraction * 100:5.1f}% "
            f"mean p95 {r.mean_p95_ms:7.1f} ms"
        )
    print("\nCarbon emitted (must all be zero):", out["zero_carbon"])
    print(
        "\nTakeaway: the Spark-specific policy converts excess midday solar\n"
        "into opportunistic workers (accepting bounded checkpoint loss);\n"
        "the web-specific policy spends battery on bursts to hold its SLO\n"
        "(paper §5.3.2)."
    )


if __name__ == "__main__":
    main()
