#!/usr/bin/env python3
"""Dynamic tenancy: admit, rebalance, and evict a tenant mid-run.

Control plane v1.1 makes the tenant population dynamic. This example
drives the whole lifecycle from *outside* the ecovisor through the
typed Python SDK (`repro.client`) over the REST transport:

1. run a one-tenant simulation for an hour of simulated time,
2. admit a second tenant mid-run (`EcovisorAdminClient.admit_app`),
   launch its container through its own `EcovisorClient`,
3. rebalance its energy share (`set_share` — takes effect at the next
   tick boundary),
4. tail its `AppAdmitted` / `ShareChanged` signals from the cursor-paged
   event feed (`GET /v1/apps/{app}/events?cursor=N`),
5. evict it and print the finalized ledger account.

Run:  python examples/dynamic_tenancy.py
"""

from repro.client import EcovisorAdminClient, EcovisorClient
from repro.core.config import ShareConfig
from repro.market.prices import make_price_trace
from repro.policies import CarbonAgnosticPolicy
from repro.rest import EcovisorRestServer
from repro.sim.experiment import solar_battery_environment
from repro.workloads.mltrain import MLTrainingJob


def main() -> None:
    # A solar + battery + grid plant with a time-of-use market attached.
    env = solar_battery_environment(
        solar_peak_w=30.0,
        battery_capacity_wh=100.0,
        days=1,
        price_trace=make_price_trace("tou", days=1),
    )
    env.engine.add_application(
        MLTrainingJob(name="anchor", total_work_units=1e9),
        ShareConfig(solar_fraction=0.5, battery_fraction=0.5),
        CarbonAgnosticPolicy(workers=2),
    )

    # The REST server is the SDK's transport; an external controller
    # would speak HTTP to the same surface.
    server = EcovisorRestServer(env.ecovisor)
    admin = EcovisorAdminClient(server)

    print("=== hour 1: the anchor tenant runs alone ===")
    env.engine.run(60)
    for share in admin.list_apps():
        print(f"  {share.name}: solar={share.solar_fraction:.0%} "
              f"battery={share.battery_fraction:.0%}")

    print("\n=== admitting 'guest' mid-run ===")
    admin.admit_app("guest", solar_fraction=0.2, battery_fraction=0.2)
    guest = EcovisorClient(server, "guest")
    worker = guest.launch_container(cores=1)
    print(f"  guest admitted with container {worker.id}")

    # Rebalance: stage a larger solar share; it takes effect at the
    # next tick boundary, where ShareChanged is published.
    effective_at = admin.set_share("guest", solar_fraction=0.4)
    print(f"  share rebalance staged (effective at tick {effective_at})")

    env.engine.run(60)  # hour 2: both tenants share the plant

    state = guest.state()
    print(f"\n=== guest after an hour (tick {state.tick_index}) ===")
    print(f"  solar {state.solar_power_w:.2f} W, "
          f"grid {state.grid_power_w:.2f} W, "
          f"carbon {state.total_carbon_g:.3f} g, "
          f"cost ${state.total_cost_usd:.4f}")

    # Tail the guest's event feed from the beginning: admission, the
    # share rebalance, and any energy signals, in publish order.
    page = guest.events(cursor=0)
    print(f"\n=== guest event feed ({len(page.events)} events) ===")
    for event in page.events:
        print(f"  t={event.time_s:7.0f}s  {type(event).__name__}")

    print("\n=== evicting guest ===")
    account = admin.evict_app("guest")
    print(f"  finalized: energy {account['energy_wh']:.3f} Wh, "
          f"carbon {account['carbon_g']:.3f} g, "
          f"cost ${account['cost_usd']:.4f} "
          f"({account['settlements']} settlements)")

    # The feed outlives the tenant: the terminal AppEvictedEvent is
    # still readable at the old cursor.
    tail = guest.events(cursor=page.next_cursor)
    for event in tail.events:
        print(f"  t={event.time_s:7.0f}s  {type(event).__name__} (terminal)")

    env.engine.run(30)  # the anchor tenant keeps running


if __name__ == "__main__":
    main()
