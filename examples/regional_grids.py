#!/usr/bin/env python3
"""The same carbon-aware policies across three regional grids (paper Fig. 1).

The paper motivates carbon-aware scheduling with three regional grids —
nuclear-flat Ontario, hydro Uruguay, duck-curve California — then runs
its evaluation on CAISO alone.  The provider registry closes that loop:
this example resolves bundled *historical* carbon datasets by name,
verifies their checksums, and runs one ML-training policy grid per
region, fully offline.

Run:  python examples/regional_grids.py
"""

from repro.analysis.figures_regional import run_regional_case
from repro.providers.registry import DATASETS

REGIONS = ("caiso-2022", "ontario-2022", "germany-2022")
POLICIES = ("agnostic", "wait-and-scale", "suspend-resume")


def main() -> None:
    print("Bundled carbon datasets (checksum-verified on load):\n")
    for region in REGIONS:
        desc = DATASETS[region]
        print(f"  {desc.name:14s} sha256 {desc.sha256[:12]}…  {desc.description}")

    print(f"\n{'region':14s} {'policy':15s} {'carbon':>9s} {'runtime':>9s} "
          f"{'vs agnostic':>12s}")
    for region in REGIONS:
        baseline = None
        for policy in POLICIES:
            metrics = run_regional_case(region, policy, generation="solar")
            if policy == "agnostic":
                baseline = metrics["carbon_g"]
            reduction = (
                (baseline - metrics["carbon_g"]) / baseline * 100
                if baseline
                else 0.0
            )
            print(
                f"{region:14s} {policy:15s} {metrics['carbon_g']:7.3f} g "
                f"{metrics['runtime_s'] / 3600:7.2f} h {reduction:+11.1f}%"
            )

    print(
        "\nTakeaway: carbon-aware policies pay off where the grid actually\n"
        "swings (CAISO's duck curve) and wash out on flat, already-clean\n"
        "grids (Ontario) — the data decides, which is why the registry\n"
        "bundles more than one region.  Try 'python -m repro traces' to\n"
        "list every dataset, or sweep the full matrix with\n"
        "'python -m repro sweep regional --jobs 4'."
    )


if __name__ == "__main__":
    main()
