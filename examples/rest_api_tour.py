#!/usr/bin/env python3
"""Tour of the REST-shaped API surface (paper §4).

The prototype exposes its Table 1 API over REST; this example drives the
in-process equivalent: JSON requests routed by (method, path), with the
same per-application authorization as the native API.

Run:  python examples/rest_api_tour.py
"""

from repro.carbon import CarbonIntensityService
from repro.cluster import ContainerOrchestrationPlatform
from repro.core import ShareConfig, SimulationClock
from repro.core.ecovisor import Ecovisor
from repro.energy import (
    Battery,
    GridConnection,
    PhysicalEnergySystem,
    SolarArrayEmulator,
)
from repro.rest import EcovisorRestServer


def show(label: str, response) -> None:
    print(f"{label:46s} -> {response.status} {response.body}")


def main() -> None:
    plant = PhysicalEnergySystem(
        grid=GridConnection(), battery=Battery(), solar=SolarArrayEmulator()
    )
    ecovisor = Ecovisor(
        plant, ContainerOrchestrationPlatform(), CarbonIntensityService()
    )
    ecovisor.register_app(
        "shop", ShareConfig(solar_fraction=0.4, battery_fraction=0.4)
    )
    ecovisor.register_app(
        "batch", ShareConfig(solar_fraction=0.4, battery_fraction=0.4)
    )
    server = EcovisorRestServer(ecovisor)

    # Advance one tick so there are readings to query.
    clock = SimulationClock()
    tick = clock.current_tick()
    ecovisor.begin_tick(tick)
    ecovisor.settle(tick)

    show("GET /apps/shop/carbon", server.request("GET", "/apps/shop/carbon"))
    show("GET /apps/shop/solar", server.request("GET", "/apps/shop/solar"))
    show("GET /apps/shop/battery", server.request("GET", "/apps/shop/battery"))

    launched = server.request(
        "POST", "/apps/shop/containers", {"cores": 2}
    )
    show("POST /apps/shop/containers", launched)
    cid = launched.body["id"]

    show(
        f"POST /apps/shop/containers/{cid}/powercap",
        server.request(
            "POST", f"/apps/shop/containers/{cid}/powercap", {"watts": 1.2}
        ),
    )
    show(
        f"GET /apps/shop/containers/{cid}/powercap",
        server.request("GET", f"/apps/shop/containers/{cid}/powercap"),
    )

    # Authorization: 'batch' cannot touch 'shop' containers.
    show(
        f"POST /apps/batch/containers/{cid}/powercap (403)",
        server.request(
            "POST", f"/apps/batch/containers/{cid}/powercap", {"watts": 1.0}
        ),
    )
    # Unknown application and unknown route map to 404.
    show("GET /apps/ghost/solar (404)", server.request("GET", "/apps/ghost/solar"))
    show("GET /nope (404)", server.request("GET", "/nope"))


if __name__ == "__main__":
    main()
