#!/usr/bin/env python3
"""Tour of the REST-shaped API surface (paper §4).

The prototype exposes its Table 1 API over REST; this example drives the
in-process equivalent: JSON requests routed by (method, path), with the
same per-application authorization as the native API.

Run:  python examples/rest_api_tour.py
"""

from repro.carbon import CarbonIntensityService
from repro.cluster import ContainerOrchestrationPlatform
from repro.core import ShareConfig, SimulationClock
from repro.core.ecovisor import Ecovisor
from repro.energy import (
    Battery,
    GridConnection,
    PhysicalEnergySystem,
    SolarArrayEmulator,
)
from repro.rest import EcovisorRestServer


def show(label: str, response) -> None:
    print(f"{label:46s} -> {response.status} {response.body}")


def main() -> None:
    plant = PhysicalEnergySystem(
        grid=GridConnection(), battery=Battery(), solar=SolarArrayEmulator()
    )
    ecovisor = Ecovisor(
        plant, ContainerOrchestrationPlatform(), CarbonIntensityService()
    )
    ecovisor.register_app(
        "shop", ShareConfig(solar_fraction=0.4, battery_fraction=0.4)
    )
    ecovisor.register_app(
        "batch", ShareConfig(solar_fraction=0.4, battery_fraction=0.4)
    )
    server = EcovisorRestServer(ecovisor)

    # Advance one tick so there are readings to query.
    clock = SimulationClock()
    tick = clock.current_tick()
    ecovisor.begin_tick(tick)
    ecovisor.settle(tick)

    # The snapshot route: the whole Table 1 observation in one call.
    show("GET /v1/apps/shop/state", server.request("GET", "/v1/apps/shop/state"))
    show("GET /v1/apps/shop/carbon", server.request("GET", "/v1/apps/shop/carbon"))
    show("GET /v1/apps/shop/solar", server.request("GET", "/v1/apps/shop/solar"))
    show("GET /v1/apps/shop/battery", server.request("GET", "/v1/apps/shop/battery"))

    launched = server.request(
        "POST", "/v1/apps/shop/containers", {"cores": 2}
    )
    show("POST /v1/apps/shop/containers", launched)
    cid = launched.body["id"]

    show(
        f"POST /v1/apps/shop/containers/{cid}/powercap",
        server.request(
            "POST", f"/v1/apps/shop/containers/{cid}/powercap", {"watts": 1.2}
        ),
    )
    show(
        f"GET /v1/apps/shop/containers/{cid}/powercap",
        server.request("GET", f"/v1/apps/shop/containers/{cid}/powercap"),
    )

    # Authorization: 'batch' cannot touch 'shop' containers.
    show(
        f"POST /v1/apps/batch/containers/{cid}/powercap (403)",
        server.request(
            "POST", f"/v1/apps/batch/containers/{cid}/powercap", {"watts": 1.0}
        ),
    )
    # Unknown application and unknown route map to 404.
    show("GET /v1/apps/ghost/solar (404)", server.request("GET", "/v1/apps/ghost/solar"))
    show("GET /nope (404)", server.request("GET", "/nope"))
    # Legacy unversioned paths answer 301 with the /v1 Location.
    show("GET /apps/shop/solar (301)", server.request("GET", "/apps/shop/solar"))


if __name__ == "__main__":
    main()
