#!/usr/bin/env python3
"""Quickstart: assemble an ecovisor and exercise the Table 1 API.

Builds a small physical energy system (grid + battery + solar), wraps it
in an ecovisor over an LXD-like container platform, registers one
application with a 50% solar / 50% battery share, and runs a few hours of
simulated time while printing what the application observes through the
narrow API.

Run:  python examples/quickstart.py
"""

from repro.carbon import CarbonIntensityService
from repro.cluster import ContainerOrchestrationPlatform
from repro.core import (  # noqa: F401 (re-exported names used below)
    EcovisorConfig,
    ShareConfig,
    SimulationClock,
)
from repro.core.api import connect
from repro.core.ecovisor import Ecovisor
from repro.energy import (
    Battery,
    GridConnection,
    PhysicalEnergySystem,
    SolarArrayEmulator,
)


def main() -> None:
    # 1. The physical energy system: grid + 1440 Wh battery + solar array.
    plant = PhysicalEnergySystem(
        grid=GridConnection(),
        battery=Battery(),
        solar=SolarArrayEmulator(),
    )

    # 2. Substrates: container platform and a carbon information service
    #    (synthetic CAISO-like trace sampled every 5 minutes).
    platform = ContainerOrchestrationPlatform()
    carbon = CarbonIntensityService()

    # 3. The ecovisor multiplexes the plant across applications.
    ecovisor = Ecovisor(plant, platform, carbon)
    ecovisor.register_app(
        "demo", ShareConfig(solar_fraction=0.5, battery_fraction=0.5)
    )
    api = connect(ecovisor, "demo")

    # 4. The application: two containers, one power-capped.
    worker_a = api.launch_container(cores=2)
    worker_b = api.launch_container(cores=2)
    api.set_container_powercap(worker_b.id, 1.0)  # watts
    api.set_battery_max_discharge(5.0)
    api.set_battery_charge_rate(0.0)  # never charge from the grid

    # 5. Register a tick() upcall that reacts to carbon-intensity.
    #    Two-parameter callbacks receive the tick's immutable EnergyState
    #    snapshot (single-parameter callbacks still work).
    def on_tick(tick, state):
        if state.grid_carbon_g_per_kwh > 250.0:
            api.set_container_powercap(worker_a.id, 1.5)
        else:
            api.set_container_powercap(worker_a.id, None)

    api.register_tick(on_tick)

    # 6. Drive the tick loop for six simulated hours starting at 6 am.
    clock = SimulationClock()
    for _ in range(6 * 60):
        tick = clock.current_tick()
        ecovisor.begin_tick(tick)
        ecovisor.invoke_app_ticks(tick)
        for container in (worker_a, worker_b):
            container.set_demand_utilization(1.0)
        ecovisor.settle(tick)
        clock.advance()
        if tick.index % 60 == 0:
            state = api.state()  # one frozen observation per tick
            print(
                f"t={tick.start_hours:5.1f}h  "
                f"solar={state.solar_power_w:6.2f} W  "
                f"grid={state.grid_power_w:6.2f} W  "
                f"carbon={state.grid_carbon_g_per_kwh:6.1f} g/kWh  "
                f"battery={state.battery_charge_level_wh:6.1f} Wh"
            )

    account = ecovisor.ledger.account("demo")
    print(
        f"\ntotals: energy={account.energy_wh:.1f} Wh "
        f"(solar {account.solar_wh:.1f}, battery {account.battery_wh:.1f}, "
        f"grid {account.grid_wh:.1f}), carbon={account.carbon_g:.2f} g"
    )


if __name__ == "__main__":
    main()
