#!/usr/bin/env python3
"""Spending excess solar on straggler replicas (paper §5.4).

A barrier-synchronized 10-node parallel job with injected slow nodes
runs purely on solar.  When supply exceeds the job's maximum draw and
there is no battery to store it, the only useful move is to spend it
immediately — here, on replica tasks for detected stragglers.

Run:  python examples/straggler_mitigation.py
"""

from repro.analysis.figures_solar import (
    fig10_solar_caps,
    fig11_straggler_mitigation,
)


def main() -> None:
    print("Fig 10(c): static vs dynamic per-container power caps\n")
    print(f"{'solar %':>8s} {'static':>9s} {'dynamic':>9s} "
          f"{'improvement':>12s} {'work/J':>8s}")
    for row in fig10_solar_caps(percentages=(20, 50, 80)):
        print(
            f"{row['solar_pct']:7.0f}% "
            f"{row['runtime_static_s'] / 3600:7.2f} h "
            f"{row['runtime_dynamic_s'] / 3600:7.2f} h "
            f"{row['runtime_improvement_pct']:10.1f} % "
            f"{row['energy_efficiency_per_j']:8.3f}"
        )

    print("\nFig 11: replica-based straggler mitigation under excess solar\n")
    print(f"{'solar %':>8s} {'baseline':>9s} {'replicas':>9s} "
          f"{'improvement':>12s} {'work/J':>8s}")
    for row in fig11_straggler_mitigation(percentages=(100, 140, 180)):
        print(
            f"{row['solar_pct']:7.0f}% "
            f"{row['runtime_baseline_s'] / 3600:7.2f} h "
            f"{row['runtime_replicas_s'] / 3600:7.2f} h "
            f"{row['runtime_improvement_pct']:10.1f} % "
            f"{row['energy_efficiency_per_j']:8.3f}"
        )
    print(
        "\nTakeaway: balancing caps matters more the scarcer solar is; and\n"
        "once solar exceeds the job's draw, replicas trade energy-efficiency\n"
        "for runtime — worthwhile because the excess would be curtailed\n"
        "anyway (paper §5.4.2)."
    )


if __name__ == "__main__":
    main()
