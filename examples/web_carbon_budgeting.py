#!/usr/bin/env python3
"""Carbon budgeting for SLO-bound web services (paper §5.2).

Two Wikipedia-style web applications run for 48 simulated hours under a
static carbon rate limit (system policy) and under dynamic carbon
budgeting (application policy).  The dynamic policy banks carbon credits
during quiet periods and spends them to hold its latency SLO through
simultaneous high-carbon/high-load evenings.

Run:  python examples/web_carbon_budgeting.py
"""

from repro.analysis.figures_web import fig06_07_web_budgeting


def main() -> None:
    out = fig06_07_web_budgeting()
    print("48 h of two web apps under carbon policies\n")
    print(f"{'policy':16s} {'app':10s} {'SLO':>6s} {'violations':>11s} "
          f"{'worst p95':>10s} {'carbon':>9s}")
    for r in out["results"]:
        print(
            f"{r.policy_label:16s} {r.app_name:10s} {r.slo_ms:4.0f}ms "
            f"{r.violation_fraction * 100:9.2f} % "
            f"{r.worst_p95_ms:8.0f}ms {r.carbon_g:7.2f} g"
        )
    st1, st2, dy1, dy2 = out["results"]
    print(
        f"\ncarbon reduction (dynamic vs static): "
        f"{(st1.carbon_g - dy1.carbon_g) / st1.carbon_g * 100:.1f}% (app1), "
        f"{(st2.carbon_g - dy2.carbon_g) / st2.carbon_g * 100:.1f}% (app2)"
    )
    print(
        "\nTakeaway: the static rate limit cannot add capacity when carbon\n"
        "is high, violating the SLO exactly when load peaks; the dynamic\n"
        "budget holds the SLO and still emits less overall (paper §5.2.2)."
    )


if __name__ == "__main__":
    main()
