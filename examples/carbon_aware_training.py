#!/usr/bin/env python3
"""Carbon-aware ML training: suspend/resume vs Wait&Scale (paper §5.1).

Runs the paper's Figure 4a comparison at reduced repetition count: a
synchronous-SGD training job under a carbon-agnostic policy, the
WaitAWhile-style system-level suspend/resume policy, and the
application-specific Wait&Scale policy at 2x and 3x.

Run:  python examples/carbon_aware_training.py
"""

from repro.analysis.figures_batch import fig04a_ml_training


def main() -> None:
    summaries = fig04a_ml_training(reps=4)
    base = summaries[0]
    print("ML training under carbon policies (CAISO-like trace, 4 arrivals)\n")
    print(f"{'policy':16s} {'runtime':>10s} {'vs agnostic':>12s} "
          f"{'carbon':>9s} {'vs agnostic':>12s}")
    for s in summaries:
        print(
            f"{s.policy_label:16s} {s.mean_runtime_hours:8.2f} h "
            f"{s.runtime_ratio_vs(base):10.2f} x "
            f"{s.mean_carbon_g:7.3f} g {s.carbon_change_vs(base) * 100:+10.1f} %"
        )
    print(
        "\nTakeaway: Wait&Scale(2x) recovers most of suspend/resume's carbon\n"
        "reduction at a far lower runtime penalty; 3x pays extra carbon for\n"
        "little speedup because synchronization overhead bites (paper §5.1.2)."
    )


if __name__ == "__main__":
    main()
