"""Property-based tests of end-to-end ecovisor accounting.

The strongest invariant in the system: after any sequence of demands and
scaling actions, per-container attribution sums to per-app totals, and
per-app grid energy matches the physical grid meter.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig
from tests.conftest import make_ecovisor

demands = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=30,
)


class TestAttributionAdditivity:
    @given(sequence=demands)
    @settings(max_examples=40, deadline=None)
    def test_container_sums_equal_app_totals(self, sequence):
        eco = make_ecovisor(solar_w=3.0, carbon_g_per_kwh=250.0)
        eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
        c1 = eco.launch_container("a", 1)
        c2 = eco.launch_container("a", 2)
        clock = SimulationClock(60.0)
        for u1, u2 in sequence:
            tick = clock.current_tick()
            eco.begin_tick(tick)
            c1.set_demand_utilization(u1)
            c2.set_demand_utilization(u2)
            eco.settle(tick)
            clock.advance()
        account = eco.ledger.account("a")
        assert c1.carbon_g + c2.carbon_g == pytest.approx(
            account.carbon_g, abs=1e-9
        )
        assert c1.energy_wh + c2.energy_wh == pytest.approx(
            account.energy_wh, abs=1e-9
        )

    @given(sequence=demands)
    @settings(max_examples=40, deadline=None)
    def test_grid_meter_matches_ledger(self, sequence):
        eco = make_ecovisor(solar_w=0.0, carbon_g_per_kwh=250.0)
        eco.register_app("a", ShareConfig())
        eco.register_app("b", ShareConfig())
        ca = eco.launch_container("a", 1)
        cb = eco.launch_container("b", 1)
        clock = SimulationClock(60.0)
        for ua, ub in sequence:
            tick = clock.current_tick()
            eco.begin_tick(tick)
            ca.set_demand_utilization(ua)
            cb.set_demand_utilization(ub)
            eco.settle(tick)
            clock.advance()
        ledger_grid = (
            eco.ledger.account("a").grid_wh + eco.ledger.account("b").grid_wh
        )
        assert eco.plant.grid.total_energy_wh == pytest.approx(
            ledger_grid, abs=1e-6
        )

    @given(sequence=demands)
    @settings(max_examples=40, deadline=None)
    def test_carbon_never_negative(self, sequence):
        eco = make_ecovisor(solar_w=5.0, carbon_g_per_kwh=250.0)
        eco.register_app("a", ShareConfig(solar_fraction=1.0))
        c = eco.launch_container("a", 2)
        clock = SimulationClock(60.0)
        for u, _ in sequence:
            tick = clock.current_tick()
            eco.begin_tick(tick)
            c.set_demand_utilization(u)
            eco.settle(tick)
            clock.advance()
            assert eco.ledger.app_carbon_g("a") >= 0.0
