"""Property-based tests of orchestration-platform invariants.

Under any sequence of launches, stops, scalings, and cap changes:
no server is ever over-committed, every running container is placed on
exactly one server, and measured power stays within the cluster's
physical envelope.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.config import ClusterConfig, ServerConfig
from repro.core.errors import InsufficientResourcesError, UnknownContainerError

CLUSTER = ClusterConfig(num_servers=4, server=ServerConfig())

operations = st.lists(
    st.one_of(
        st.tuples(st.just("launch"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("stop"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("resize"), st.integers(min_value=0, max_value=30),
                  st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("cap"), st.integers(min_value=0, max_value=30),
                  st.floats(min_value=0.0, max_value=6.0)),
        st.tuples(st.just("scale"), st.integers(min_value=0, max_value=8)),
        st.tuples(st.just("demand"), st.integers(min_value=0, max_value=30),
                  st.floats(min_value=0.0, max_value=1.0)),
    ),
    max_size=40,
)


def apply_ops(cop: ContainerOrchestrationPlatform, ops) -> None:
    for op in ops:
        kind = op[0]
        containers = cop.containers()
        try:
            if kind == "launch":
                cop.launch_container("app", op[1])
            elif kind == "stop" and containers:
                cop.stop_container(containers[op[1] % len(containers)].id)
            elif kind == "resize" and containers:
                cop.set_container_cores(
                    containers[op[1] % len(containers)].id, op[2]
                )
            elif kind == "cap" and containers:
                cop.set_power_cap(containers[op[1] % len(containers)].id, op[2])
            elif kind == "scale":
                cop.scale_app_to("app", op[1], cores=1)
            elif kind == "demand" and containers:
                containers[op[1] % len(containers)].set_demand_utilization(op[2])
        except (InsufficientResourcesError, UnknownContainerError):
            # Legitimate rejections (full cluster, raced ids) must leave
            # the platform consistent; the invariants below verify that.
            pass


class TestPlacementInvariants:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_no_server_overcommitted(self, ops):
        cop = ContainerOrchestrationPlatform(CLUSTER)
        apply_ops(cop, ops)
        for server in cop.servers:
            assert server.allocated_cores <= server.total_cores + 1e-9

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_every_running_container_placed_exactly_once(self, ops):
        cop = ContainerOrchestrationPlatform(CLUSTER)
        apply_ops(cop, ops)
        for container in cop.running_containers():
            hosts = [s for s in cop.servers if s.hosts(container.id)]
            assert len(hosts) == 1
            assert hosts[0].name == container.server_name

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_free_cores_accounting(self, ops):
        cop = ContainerOrchestrationPlatform(CLUSTER)
        apply_ops(cop, ops)
        allocated = sum(
            c.cores for c in cop.running_containers()
        )
        assert cop.free_cores == (
            __import__("pytest").approx(cop.total_cores - allocated)
        )


class TestPowerEnvelope:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_cluster_power_within_physical_envelope(self, ops):
        cop = ContainerOrchestrationPlatform(CLUSTER)
        apply_ops(cop, ops)
        power = cop.cluster_power_w()
        assert CLUSTER.num_servers * 0.0 <= power
        assert power <= CLUSTER.max_power_w + 1e-9

    @given(ops=operations)
    @settings(max_examples=60, deadline=None)
    def test_capped_containers_respect_caps(self, ops):
        cop = ContainerOrchestrationPlatform(CLUSTER)
        apply_ops(cop, ops)
        for container in cop.running_containers():
            if container.power_cap_w is None:
                continue
            measured = cop.container_power_w(container.id)
            # Caps cannot squeeze below the idle floor, but above it the
            # measured draw must honor the cap.
            idle_floor = (
                container.cores / CLUSTER.server.cores
            ) * CLUSTER.server.idle_power_w
            assert measured <= max(container.power_cap_w, idle_floor) + 1e-9
