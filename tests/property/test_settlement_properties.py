"""Property-based tests of virtual energy system settlements.

Physics dictates the virtualized energy system is energy-conserving
(paper Section 3.1); these properties pin that down over arbitrary
demand/solar/intensity sequences and arbitrary knob settings.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.config import BatteryConfig, ShareConfig
from repro.core.virtual_battery import VirtualBattery
from repro.core.virtual_energy_system import VirtualEnergySystem

demand = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
solar = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
intensity = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)
knob = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
grid_share = st.one_of(
    st.just(float("inf")), st.floats(min_value=0.0, max_value=50.0)
)

TICK_S = 60.0

BATTERY = BatteryConfig(
    capacity_wh=50.0,
    empty_soc_fraction=0.30,
    charge_efficiency=0.95,
    discharge_efficiency=0.95,
    initial_soc_fraction=0.50,
)


def make_ves(grid_power_w=float("inf"), with_battery=True) -> VirtualEnergySystem:
    battery = VirtualBattery(BATTERY, 1.0) if with_battery else None
    share = ShareConfig(
        solar_fraction=1.0,
        battery_fraction=1.0 if with_battery else 0.0,
        grid_power_w=grid_power_w,
    )
    return VirtualEnergySystem("app", share, battery)


steps = st.lists(
    st.tuples(demand, solar, intensity, knob, knob), min_size=1, max_size=40
)


class TestConservation:
    @given(sequence=steps, grid=grid_share)
    @settings(max_examples=80, deadline=None)
    def test_every_settlement_validates(self, sequence, grid):
        """TickSettlement.validate() is called inside settle(); reaching
        the end means conservation held at every tick."""
        ves = make_ves(grid_power_w=grid)
        for i, (d, s, ci, charge_rate, max_discharge) in enumerate(sequence):
            ves.battery.set_charge_rate(charge_rate)
            ves.battery.set_max_discharge(max_discharge)
            ves.update_solar(s)
            ves.settle(d, ci, i * TICK_S, TICK_S)

    @given(sequence=steps)
    @settings(max_examples=80, deadline=None)
    def test_carbon_only_from_grid(self, sequence):
        """Zero grid share -> zero carbon, regardless of everything else."""
        ves = make_ves(grid_power_w=0.0)
        total = 0.0
        for i, (d, s, ci, charge_rate, max_discharge) in enumerate(sequence):
            ves.battery.set_charge_rate(charge_rate)
            ves.battery.set_max_discharge(max_discharge)
            ves.update_solar(s)
            settlement = ves.settle(d, ci, i * TICK_S, TICK_S)
            total += settlement.carbon_g
        assert total == 0.0

    @given(sequence=steps)
    @settings(max_examples=80, deadline=None)
    def test_served_never_exceeds_demand(self, sequence):
        ves = make_ves()
        for i, (d, s, ci, charge_rate, max_discharge) in enumerate(sequence):
            ves.battery.set_charge_rate(charge_rate)
            ves.battery.set_max_discharge(max_discharge)
            ves.update_solar(s)
            settlement = ves.settle(d, ci, i * TICK_S, TICK_S)
            assert settlement.served_wh <= settlement.demand_wh + 1e-9

    @given(sequence=steps)
    @settings(max_examples=80, deadline=None)
    def test_unlimited_grid_always_serves_fully(self, sequence):
        ves = make_ves(grid_power_w=float("inf"))
        for i, (d, s, ci, charge_rate, max_discharge) in enumerate(sequence):
            ves.battery.set_charge_rate(charge_rate)
            ves.battery.set_max_discharge(max_discharge)
            ves.update_solar(s)
            settlement = ves.settle(d, ci, i * TICK_S, TICK_S)
            assert settlement.unmet_wh == pytest.approx(0.0, abs=1e-9)

    @given(sequence=steps)
    @settings(max_examples=80, deadline=None)
    def test_carbon_matches_grid_energy(self, sequence):
        """carbon == grid energy x intensity at every tick."""
        ves = make_ves()
        for i, (d, s, ci, charge_rate, max_discharge) in enumerate(sequence):
            ves.battery.set_charge_rate(charge_rate)
            ves.battery.set_max_discharge(max_discharge)
            ves.update_solar(s)
            settlement = ves.settle(d, ci, i * TICK_S, TICK_S)
            expected = settlement.grid_total_wh / 1000.0 * ci
            assert settlement.carbon_g == pytest.approx(expected, abs=1e-9)


class TestBatteryCoupling:
    @given(sequence=steps)
    @settings(max_examples=60, deadline=None)
    def test_battery_level_bounded_through_settlements(self, sequence):
        ves = make_ves()
        battery = ves.battery.battery
        for i, (d, s, ci, charge_rate, max_discharge) in enumerate(sequence):
            ves.battery.set_charge_rate(charge_rate)
            ves.battery.set_max_discharge(max_discharge)
            ves.update_solar(s)
            ves.settle(d, ci, i * TICK_S, TICK_S)
            assert battery.floor_wh - 1e-9 <= battery.level_wh
            assert battery.level_wh <= battery.capacity_wh + 1e-9

    @given(sequence=steps)
    @settings(max_examples=60, deadline=None)
    def test_no_battery_means_no_battery_flows(self, sequence):
        ves = make_ves(with_battery=False)
        for i, (d, s, ci, _, _) in enumerate(sequence):
            ves.update_solar(s)
            settlement = ves.settle(d, ci, i * TICK_S, TICK_S)
            assert settlement.battery_discharge_wh == 0.0
            assert settlement.solar_to_battery_wh == 0.0
            assert settlement.grid_to_battery_wh == 0.0
