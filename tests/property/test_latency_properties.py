"""Property-based tests of the M/M/c latency model."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.workloads.latency import (
    MAX_REPORTED_LATENCY_MS,
    erlang_c,
    min_servers_for_slo,
    percentile_latency_ms,
)

servers = st.integers(min_value=1, max_value=32)
rate = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)
mu = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)


class TestErlangCProperties:
    @given(c=servers, a=st.floats(min_value=0.0, max_value=40.0))
    @settings(max_examples=100, deadline=None)
    def test_is_probability(self, c, a):
        value = erlang_c(c, a)
        assert 0.0 <= value <= 1.0

    @given(c=servers, a=st.floats(min_value=0.01, max_value=30.0))
    @settings(max_examples=100, deadline=None)
    def test_more_servers_less_waiting(self, c, a):
        assume(a / c < 1.0)
        assert erlang_c(c + 1, a) <= erlang_c(c, a) + 1e-12


class TestLatencyProperties:
    @given(lam=rate, c=servers, m=mu)
    @settings(max_examples=100, deadline=None)
    def test_latency_positive_and_bounded(self, lam, c, m):
        latency = percentile_latency_ms(lam, c, m)
        assert 0.0 <= latency <= MAX_REPORTED_LATENCY_MS

    @given(lam=rate, c=servers, m=mu)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_arrival_rate(self, lam, c, m):
        a = percentile_latency_ms(lam, c, m)
        b = percentile_latency_ms(lam * 1.5 + 1.0, c, m)
        assert b >= a - 1e-9

    @given(lam=rate, c=servers, m=mu)
    @settings(max_examples=100, deadline=None)
    def test_extra_server_never_hurts(self, lam, c, m):
        a = percentile_latency_ms(lam, c, m)
        b = percentile_latency_ms(lam, c + 1, m)
        assert b <= a + 1e-9


class TestSizingProperties:
    @given(lam=st.floats(min_value=0.1, max_value=1000.0), m=mu,
           slo=st.floats(min_value=20.0, max_value=500.0))
    @settings(max_examples=100, deadline=None)
    def test_sized_pool_meets_slo_or_hits_cap(self, lam, m, slo):
        n = min_servers_for_slo(lam, m, slo, max_servers=64)
        latency = percentile_latency_ms(lam, n, m)
        assert latency <= slo or n == 64

    @given(lam=st.floats(min_value=0.1, max_value=500.0), m=mu)
    @settings(max_examples=100, deadline=None)
    def test_tighter_slo_needs_no_fewer_servers(self, lam, m):
        loose = min_servers_for_slo(lam, m, 200.0, max_servers=64)
        tight = min_servers_for_slo(lam, m, 50.0, max_servers=64)
        assert tight >= loose
