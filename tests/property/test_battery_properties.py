"""Property-based tests of the battery model's physical invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import BatteryConfig
from repro.energy.battery import Battery

power = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)
duration = st.floats(min_value=1.0, max_value=7200.0, allow_nan=False)
efficiency = st.floats(min_value=0.5, max_value=1.0)
soc = st.floats(min_value=0.30, max_value=1.0)


def make_battery(charge_eff=1.0, discharge_eff=1.0, initial_soc=0.5) -> Battery:
    return Battery(
        BatteryConfig(
            capacity_wh=100.0,
            empty_soc_fraction=0.30,
            charge_efficiency=charge_eff,
            discharge_efficiency=discharge_eff,
            initial_soc_fraction=initial_soc,
        )
    )


class TestSocBounds:
    @given(ops=st.lists(st.tuples(st.booleans(), power, duration), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_level_always_within_capacity(self, ops):
        battery = make_battery()
        for is_charge, p, d in ops:
            if is_charge:
                battery.charge(p, d)
            else:
                battery.discharge(p, d)
            assert -1e-9 <= battery.level_wh <= battery.capacity_wh + 1e-9

    @given(ops=st.lists(st.tuples(st.booleans(), power, duration), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_discharge_never_breaches_floor(self, ops):
        battery = make_battery()
        for is_charge, p, d in ops:
            if is_charge:
                battery.charge(p, d)
            else:
                battery.discharge(p, d)
            assert battery.level_wh >= battery.floor_wh - 1e-9


class TestRateLimits:
    @given(p=power, d=duration)
    @settings(max_examples=60, deadline=None)
    def test_accepted_power_never_exceeds_charge_limit(self, p, d):
        battery = make_battery()
        accepted = battery.charge(p, d)
        assert accepted <= battery.max_charge_power_w + 1e-9
        assert accepted <= p + 1e-9

    @given(p=power, d=duration)
    @settings(max_examples=60, deadline=None)
    def test_delivered_power_never_exceeds_discharge_limit(self, p, d):
        battery = make_battery()
        delivered = battery.discharge(p, d)
        assert delivered <= battery.max_discharge_power_w + 1e-9
        assert delivered <= p + 1e-9


class TestEnergyConservation:
    @given(
        ops=st.lists(st.tuples(st.booleans(), power, duration), max_size=25),
        ceff=efficiency,
        deff=efficiency,
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_balance_with_losses(self, ops, ceff, deff):
        """level = initial + in*eff_c - out/eff_d at all times."""
        battery = make_battery(charge_eff=ceff, discharge_eff=deff)
        initial = battery.level_wh
        for is_charge, p, d in ops:
            if is_charge:
                battery.charge(p, d)
            else:
                battery.discharge(p, d)
        expected = (
            initial
            + battery.total_charged_wh * ceff
            - battery.total_discharged_wh / deff
        )
        assert battery.level_wh == pytest_approx(expected)

    @given(p=st.floats(min_value=1.0, max_value=20.0), d=duration)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_never_gains_energy(self, p, d):
        battery = make_battery(charge_eff=0.9, discharge_eff=0.9)
        accepted = battery.charge(p, d)
        in_wh = accepted * d / 3600.0
        delivered = battery.discharge(p, d)
        out_wh = delivered * d / 3600.0
        assert out_wh <= in_wh + 1e-9


class TestMonotonicity:
    @given(p=power, d=duration, start=soc)
    @settings(max_examples=60, deadline=None)
    def test_charging_never_decreases_level(self, p, d, start):
        battery = make_battery(initial_soc=start)
        before = battery.level_wh
        battery.charge(p, d)
        assert battery.level_wh >= before - 1e-9

    @given(p=power, d=duration, start=soc)
    @settings(max_examples=60, deadline=None)
    def test_discharging_never_increases_level(self, p, d, start):
        battery = make_battery(initial_soc=start)
        before = battery.level_wh
        battery.discharge(p, d)
        assert battery.level_wh <= before + 1e-9


def pytest_approx(value, tol=1e-6):
    import pytest

    return pytest.approx(value, abs=tol)
