"""Property-based tests of the time-series store."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.telemetry.timeseries import TimeSeriesDatabase

values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=60,
)


def fill(db: TimeSeriesDatabase, name: str, vals):
    for i, v in enumerate(vals):
        db.record(name, i * 60.0, v)


class TestWindows:
    @given(vals=values)
    @settings(max_examples=60, deadline=None)
    def test_full_window_returns_everything(self, vals):
        db = TimeSeriesDatabase()
        fill(db, "s", vals)
        _, got = db.window("s", 0.0, len(vals) * 60.0)
        assert list(got) == vals

    @given(vals=values, split=st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_window_partition_is_lossless(self, vals, split):
        """Splitting a window at any boundary loses no points."""
        db = TimeSeriesDatabase()
        fill(db, "s", vals)
        end = len(vals) * 60.0
        mid = min(split * 60.0, end)
        _, left = db.window("s", 0.0, mid)
        _, right = db.window("s", mid, end)
        assert list(left) + list(right) == vals

    @given(vals=values)
    @settings(max_examples=60, deadline=None)
    def test_total_equals_sum(self, vals):
        db = TimeSeriesDatabase()
        fill(db, "s", vals)
        assert db.total("s", 0.0, len(vals) * 60.0) == pytest.approx(
            sum(vals), rel=1e-9, abs=1e-6
        )


class TestIntegration:
    @given(vals=st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=2, max_size=60
    ))
    @settings(max_examples=60, deadline=None)
    def test_integral_additive_over_subwindows(self, vals):
        db = TimeSeriesDatabase()
        fill(db, "p", vals)
        end = len(vals) * 60.0
        mid = (len(vals) // 2) * 60.0
        whole = db.integrate_power_wh("p", 0.0, end)
        parts = db.integrate_power_wh("p", 0.0, mid) + db.integrate_power_wh(
            "p", mid, end
        )
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)

    @given(v=st.floats(min_value=0.0, max_value=1000.0),
           n=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_constant_power_integral_exact(self, v, n):
        db = TimeSeriesDatabase()
        for i in range(n):
            db.record("p", i * 60.0, v)
        expected = v * n * 60.0 / 3600.0
        assert db.integrate_power_wh("p", 0.0, n * 60.0) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )
