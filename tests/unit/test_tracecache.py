"""Signal trace cache: primed arrays must equal live samples exactly."""

import numpy as np
import pytest

from repro.carbon.traces import make_region_trace
from repro.core.tracecache import build_signal_cache
from repro.market.prices import make_price_trace
from repro.sim.experiment import grid_environment, solar_battery_environment

TICKS = 300
TICK_S = 60.0


def _times(n=TICKS, dt=TICK_S, start=0):
    return (start + np.arange(n)) * dt


class TestBitExactness:
    def test_grid_environment_carbon_and_price(self):
        env = grid_environment(
            trace=make_region_trace("caiso", days=1, seed=5),
            price_trace=make_price_trace("realtime", days=1, seed=5),
        )
        times = _times()
        cache = build_signal_cache(
            env.plant, env.carbon_service, env.price_signal, 0, times
        )
        for i, t in enumerate(times):
            assert cache.carbon[i] == env.carbon_service.intensity_at(float(t))
            assert cache.price[i] == env.price_signal.price_at(float(t))
            assert cache.solar_w[i] == env.plant.solar_power_w(float(t))

    def test_solar_battery_environment_solar(self):
        env = solar_battery_environment(
            solar_peak_w=80.0, battery_capacity_wh=100.0, days=1, seed=9
        )
        times = _times()
        cache = build_signal_cache(
            env.plant, env.carbon_service, env.price_signal, 0, times
        )
        assert cache.price is None
        for i, t in enumerate(times):
            assert cache.solar_w[i] == env.plant.solar_power_w(float(t))

    def test_scaled_solar_matches(self):
        env = solar_battery_environment(
            solar_peak_w=40.0,
            battery_capacity_wh=50.0,
            days=1,
            seed=2,
            solar_scale=0.37,
        )
        times = _times(n=120)
        cache = build_signal_cache(env.plant, env.carbon_service, None, 0, times)
        for i, t in enumerate(times):
            assert cache.solar_w[i] == env.plant.solar_power_w(float(t))

    def test_unknown_trace_type_falls_back_to_scalar(self):
        class OddTrace:
            region = "odd"

            def intensity_at(self, time_s):
                return 100.0 + time_s / 1000.0

        env = grid_environment(trace=make_region_trace("caiso", days=1, seed=5))
        env.carbon_service._trace = OddTrace()
        times = _times(n=50)
        cache = build_signal_cache(env.plant, env.carbon_service, None, 0, times)
        for i, t in enumerate(times):
            assert cache.carbon[i] == env.carbon_service.intensity_at(float(t))


class TestOffsetLookup:
    @pytest.fixture
    def cache(self):
        env = grid_environment(trace=make_region_trace("caiso", days=1, seed=5))
        return build_signal_cache(
            env.plant, env.carbon_service, None, 10, _times(n=20, start=10)
        )

    def test_hit_inside_window(self, cache):
        assert cache.offset_for(10, 10 * TICK_S) == 0
        assert cache.offset_for(29, 29 * TICK_S) == 19

    def test_miss_outside_window(self, cache):
        assert cache.offset_for(9, 9 * TICK_S) is None
        assert cache.offset_for(30, 30 * TICK_S) is None

    def test_miss_on_timestamp_mismatch(self, cache):
        # Right index, wrong wall time: a clock the cache was not primed
        # for must fall back to live sampling, never read stale signals.
        assert cache.offset_for(10, 10 * TICK_S + 1.0) is None

    def test_len(self, cache):
        assert len(cache) == 20


class TestServiceRecordObservation:
    def test_carbon_history_matches_observe(self):
        base = grid_environment(trace=make_region_trace("caiso", days=1, seed=5))
        twin = grid_environment(trace=make_region_trace("caiso", days=1, seed=5))
        for t in (0.0, 60.0, 60.0, 120.0):
            value = base.carbon_service.observe(t)
            twin.carbon_service.record_observation(
                t, twin.carbon_service.intensity_at(t)
            )
            assert value == twin.carbon_service.intensity_at(t)
        assert base.carbon_service.history() == twin.carbon_service.history()


class TestSubclassFallback:
    def test_subclassed_solar_trace_override_is_honored(self):
        from repro.energy.solar import SolarTrace

        class DeratedTrace(SolarTrace):
            def irradiance_at(self, time_s):
                return 0.5 * super().irradiance_at(time_s)

        env = solar_battery_environment(
            solar_peak_w=60.0, battery_capacity_wh=80.0, days=1, seed=4
        )
        env.plant.solar._trace = DeratedTrace(days=1, seed=4)
        times = _times(n=100)
        cache = build_signal_cache(env.plant, env.carbon_service, None, 0, times)
        # The exact-type gate must route subclasses through the scalar
        # sampler, so the override's derating shows up in the cache.
        for i, t in enumerate(times):
            assert cache.solar_w[i] == env.plant.solar_power_w(float(t))

    def test_subclassed_price_trace_override_is_honored(self):
        from repro.market.prices import PriceTrace

        class SurchargedTrace(PriceTrace):
            def price_at(self, time_s):
                return super().price_at(time_s) * 1.25 + 0.01

        base = make_price_trace("realtime", days=1, seed=5)
        env = grid_environment(
            trace=make_region_trace("caiso", days=1, seed=5),
            price_trace=base,
        )
        env.price_signal._trace = SurchargedTrace(base.samples, regime=base.regime)
        times = _times(n=100)
        cache = build_signal_cache(
            env.plant, env.carbon_service, env.price_signal, 0, times
        )
        for i, t in enumerate(times):
            assert cache.price[i] == env.price_signal.price_at(float(t))

    def test_subclassed_carbon_trace_override_is_honored(self):
        from repro.carbon.traces import CarbonTrace

        class ShiftedTrace(CarbonTrace):
            def intensity_at(self, time_s):
                return super().intensity_at(time_s) + 1.0

        base = make_region_trace("caiso", days=1, seed=5)
        env = grid_environment(trace=base)
        env.carbon_service._trace = ShiftedTrace(base.samples, region="caiso")
        times = _times(n=100)
        cache = build_signal_cache(env.plant, env.carbon_service, None, 0, times)
        for i, t in enumerate(times):
            assert cache.carbon[i] == env.carbon_service.intensity_at(float(t))
