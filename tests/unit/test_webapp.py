"""Web application workload: latency, SLO accounting, telemetry."""

import pytest

from repro.core.api import connect
from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig
from repro.workloads.traces import constant_request_trace
from repro.workloads.webapp import WebApplication
from tests.conftest import make_ecovisor


def bind(app, workers=0):
    eco = make_ecovisor(solar_w=0.0)
    eco.register_app(app.name, ShareConfig())
    api = connect(eco, app.name)
    app.bind(api)
    if workers:
        api.scale_to(workers, cores=1)
    return eco, api


def drive(eco, app, ticks, served_fraction=1.0, clock=None):
    clock = clock or SimulationClock(60.0)
    for _ in range(ticks):
        tick = clock.current_tick()
        eco.begin_tick(tick)
        eco.invoke_app_ticks(tick)
        app.step(tick, tick.duration_s)
        eco.settle(tick)
        app.finish_tick(tick, tick.duration_s, served_fraction)
        clock.advance()
    return clock


class TestDemandUtilization:
    def test_busy_fraction_tracks_load(self):
        app = WebApplication("w", constant_request_trace(100.0), service_rate_rps=100.0)
        eco, api = bind(app, workers=2)
        drive(eco, app, 1)
        for container in api.list_containers():
            assert container.demand_utilization == pytest.approx(0.5)

    def test_overload_saturates_utilization(self):
        app = WebApplication("w", constant_request_trace(1000.0), service_rate_rps=100.0)
        eco, api = bind(app, workers=2)
        drive(eco, app, 1)
        for container in api.list_containers():
            assert container.demand_utilization == pytest.approx(1.0)


class TestLatencyAndSlo:
    def test_adequate_pool_meets_slo(self):
        app = WebApplication(
            "w", constant_request_trace(100.0), slo_ms=60.0, service_rate_rps=100.0
        )
        eco, _ = bind(app, workers=4)
        drive(eco, app, 5)
        assert app.violation_ticks == 0
        assert app.mean_latency_ms <= 60.0

    def test_underprovisioned_pool_violates(self):
        app = WebApplication(
            "w", constant_request_trace(250.0), slo_ms=60.0, service_rate_rps=100.0
        )
        eco, _ = bind(app, workers=2)  # capacity 200 < 250: unstable
        drive(eco, app, 5)
        assert app.violation_ticks == 5
        assert app.violation_fraction == 1.0

    def test_power_cap_degrades_latency(self):
        app = WebApplication(
            "w", constant_request_trace(250.0), slo_ms=60.0, service_rate_rps=100.0
        )
        eco, api = bind(app, workers=4)
        clock = drive(eco, app, 2)
        uncapped_worst = app.worst_latency_ms
        for container in api.list_containers():
            api.set_container_powercap(container.id, 0.6)
        drive(eco, app, 2, clock=clock)
        assert app.worst_latency_ms > uncapped_worst

    def test_power_shortage_degrades_latency(self):
        app = WebApplication(
            "w", constant_request_trace(250.0), slo_ms=60.0, service_rate_rps=100.0
        )
        eco, _ = bind(app, workers=3)
        drive(eco, app, 2, served_fraction=0.5)
        assert app.violation_ticks > 0

    def test_outage_when_no_workers_under_load(self):
        app = WebApplication("w", constant_request_trace(100.0))
        eco, _ = bind(app, workers=0)
        drive(eco, app, 1)
        assert app.worst_latency_ms == pytest.approx(60000.0)

    def test_trickle_load_without_workers_is_not_outage(self):
        app = WebApplication("w", constant_request_trace(0.5))
        eco, _ = bind(app, workers=0)
        drive(eco, app, 1)
        assert app.worst_latency_ms == 0.0


class TestTelemetry:
    def test_series_recorded(self):
        app = WebApplication("w", constant_request_trace(100.0))
        eco, _ = bind(app, workers=2)
        drive(eco, app, 3)
        db = eco.database
        assert len(db.series("app.w.p95_ms")) == 3
        assert db.latest("app.w.request_rate_rps") == pytest.approx(100.0)
        assert db.latest("app.w.slo_violated") in (0.0, 1.0)

    def test_requests_counted(self):
        app = WebApplication("w", constant_request_trace(100.0))
        eco, _ = bind(app, workers=2)
        drive(eco, app, 2)
        assert app.requests_total == pytest.approx(100.0 * 120.0)


class TestSizingHelper:
    def test_workers_needed_for_slo(self):
        app = WebApplication(
            "w", constant_request_trace(200.0), slo_ms=60.0, service_rate_rps=100.0
        )
        eco, _ = bind(app, workers=1)
        drive(eco, app, 1)
        needed = app.workers_needed_for_slo()
        assert needed >= 3


class TestValidation:
    def test_rejects_bad_slo(self):
        with pytest.raises(ValueError):
            WebApplication("w", constant_request_trace(1.0), slo_ms=0.0)

    def test_rejects_bad_service_rate(self):
        with pytest.raises(ValueError):
            WebApplication("w", constant_request_trace(1.0), service_rate_rps=0.0)
