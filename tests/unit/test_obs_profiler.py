"""Tick-phase profiler: ring buffer, histogram rollup, slow-tick log."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PHASES, TickProfiler


def record_uniform(profiler: TickProfiler, n: int, phase_s: float = 1e-3):
    for i in range(n):
        profiler.record(
            i, phase_s, phase_s, phase_s, phase_s, phase_s, phase_s
        )


class TestRecording:
    def test_phases_partition_the_tick(self):
        p = TickProfiler()
        p.record(0, 0.001, 0.002, 0.003, 0.004, 0.005, 0.006)
        (tick,) = p.last()
        assert tick["tick_index"] == 0
        assert tick["phases"] == dict(
            zip(PHASES, (0.001, 0.002, 0.003, 0.004, 0.005, 0.006))
        )
        assert tick["total_s"] == pytest.approx(0.021)

    def test_ring_retains_only_the_newest(self):
        p = TickProfiler(ring_size=4)
        record_uniform(p, 10)
        assert len(p) == 4
        assert p.ticks_recorded == 10
        assert [t["tick_index"] for t in p.last()] == [6, 7, 8, 9]

    def test_last_n_returns_newest_oldest_first(self):
        p = TickProfiler(ring_size=8)
        record_uniform(p, 5)
        assert [t["tick_index"] for t in p.last(2)] == [3, 4]
        assert len(p.last(100)) == 5
        with pytest.raises(ValueError, match="non-negative"):
            p.last(-1)

    def test_histograms_accumulate_in_the_registry(self):
        registry = MetricsRegistry()
        p = TickProfiler(registry=registry)
        record_uniform(p, 3, phase_s=1e-3)
        phase = registry.get("tick_phase_seconds")
        assert phase.labels(phase="settle").count == 3
        assert phase.labels(phase="settle").sum == pytest.approx(3e-3)
        assert registry.get("tick_total_seconds").count == 3

    def test_phase_totals_and_total_seconds(self):
        p = TickProfiler()
        record_uniform(p, 4, phase_s=2e-3)
        totals = p.phase_totals()
        assert set(totals) == set(PHASES)
        assert totals["workload_step"] == pytest.approx(8e-3)
        assert p.total_seconds() == pytest.approx(4 * 6 * 2e-3)

    def test_reset_clears_ring_but_not_histograms(self):
        registry = MetricsRegistry()
        p = TickProfiler(registry=registry)
        record_uniform(p, 5)
        p.reset()
        assert len(p) == 0
        assert p.ticks_recorded == 0
        assert p.slow_ticks() == []
        # Registry rollups are cumulative by design.
        assert registry.get("tick_total_seconds").count == 5


class TestSlowTicks:
    def test_outlier_lands_in_the_slow_log(self):
        p = TickProfiler(slow_factor=4.0)
        record_uniform(p, 40, phase_s=1e-3)  # median ~5e-3 established
        p.record(40, 0.1, 1e-3, 1e-3, 1e-3, 1e-3, 1e-3)
        assert p.slow_ticks_total == 1
        (entry,) = p.slow_ticks()
        assert entry["tick_index"] == 40
        assert entry["phases"]["begin_tick"] == pytest.approx(0.1)
        assert entry["total_s"] > 4.0 * entry["median_s"]

    def test_uniform_ticks_are_never_slow(self):
        p = TickProfiler()
        record_uniform(p, 100)
        assert p.slow_ticks_total == 0

    def test_slow_log_is_bounded(self):
        p = TickProfiler(slow_factor=2.0, slow_log_size=3)
        record_uniform(p, 40, phase_s=1e-3)
        for i in range(10):
            p.record(40 + i, 0.1, 1e-3, 1e-3, 1e-3, 1e-3, 1e-3)
        assert p.slow_ticks_total >= 4
        assert len(p.slow_ticks()) == 3

    def test_slow_total_exposed_via_registry_callback(self):
        registry = MetricsRegistry()
        p = TickProfiler(registry=registry, slow_factor=4.0)
        record_uniform(p, 40, phase_s=1e-3)
        p.record(40, 0.1, 1e-3, 1e-3, 1e-3, 1e-3, 1e-3)
        assert "slow_ticks_total 1" in registry.render()


class TestReporting:
    def test_phase_table_shares_sum_to_one(self):
        p = TickProfiler()
        record_uniform(p, 10)
        table = p.phase_table()
        assert [row["phase"] for row in table] == list(PHASES)
        assert sum(row["share"] for row in table) == pytest.approx(1.0)
        for row in table:
            assert row["mean_s"] == pytest.approx(1e-3)

    def test_summary_shape(self):
        p = TickProfiler()
        record_uniform(p, 3)
        summary = p.summary()
        assert summary["ticks_recorded"] == 3
        assert summary["mean_tick_s"] == pytest.approx(6e-3)
        assert len(summary["phase_table"]) == len(PHASES)
        assert summary["slow_ticks_total"] == 0

    def test_empty_profiler_reports_zeros(self):
        p = TickProfiler()
        assert p.phase_table()[0]["share"] == 0.0
        assert p.summary()["mean_tick_s"] == 0.0
        assert p.ticks_payload()["returned"] == 0

    def test_ticks_payload_shape(self):
        p = TickProfiler(ring_size=16)
        record_uniform(p, 5)
        payload = p.ticks_payload(last=2)
        assert payload["enabled"] is True
        assert payload["phases"] == list(PHASES)
        assert payload["ring_size"] == 16
        assert payload["ticks_recorded"] == 5
        assert payload["returned"] == 2
        assert [t["tick_index"] for t in payload["ticks"]] == [3, 4]


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="ring_size"):
            TickProfiler(ring_size=0)
        with pytest.raises(ValueError, match="slow_factor"):
            TickProfiler(slow_factor=1.0)
        with pytest.raises(ValueError, match="slow_log_size"):
            TickProfiler(slow_log_size=0)

    def test_private_registry_by_default(self):
        p = TickProfiler()
        assert p.registry.get("tick_total_seconds") is not None
