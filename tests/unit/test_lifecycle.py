"""Dynamic application lifecycle: admit / rebalance / evict mid-run."""

import pytest

from repro.core.config import ShareConfig
from repro.core.errors import ConfigurationError, UnknownApplicationError
from repro.core.events import (
    AppAdmittedEvent,
    AppEvictedEvent,
    ShareChangedEvent,
)
from tests.conftest import make_ecovisor, run_ticks


class TestAdmission:
    def test_admit_publishes_event_and_opens_feed(self):
        eco = make_ecovisor()
        seen = []
        eco.events.subscribe(AppAdmittedEvent, seen.append)
        eco.admit_app("a", ShareConfig(solar_fraction=0.25))
        assert len(seen) == 1
        assert seen[0].app_name == "a"
        assert seen[0].solar_fraction == 0.25
        page = eco.events_for("a")
        assert list(page.events) == seen

    def test_register_app_is_admit_alias(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig())
        assert eco.events.published_count(AppAdmittedEvent) == 1
        assert eco.journal.has_feed("a")

    def test_mid_run_admission_is_settled_same_tick(self):
        eco = make_ecovisor(solar_w=0.0)
        eco.admit_app("a", ShareConfig())
        clock = run_ticks(eco, 2)

        def admit_late(tick):
            if not eco.journal.has_feed("b"):
                eco.admit_app("b", ShareConfig())
                container = eco.launch_container("b", 1)
                container.set_demand_utilization(1.0)

        run_ticks(eco, 1, admit_late, clock=clock)
        account = eco.ledger.account("b")
        assert len(account.settlements) == 1
        assert account.energy_wh > 0.0

    def test_duplicate_admission_rejected(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig())
        with pytest.raises(ConfigurationError):
            eco.admit_app("a", ShareConfig())

    def test_oversubscription_rejected_at_admission(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(solar_fraction=0.8))
        with pytest.raises(ConfigurationError):
            eco.admit_app("b", ShareConfig(solar_fraction=0.3))


class TestEviction:
    def test_evict_finalizes_and_releases(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(solar_fraction=0.6, battery_fraction=0.6))
        eco.launch_container("a", 2)
        run_ticks(eco, 2)
        account = eco.evict_app("a")
        assert account.finalized
        assert "a" not in eco.app_names()
        assert eco.containers_for("a") == []
        assert eco.allocated_solar_fraction == pytest.approx(0.0)
        assert eco.allocated_battery_fraction == pytest.approx(0.0)
        # Freed capacity is immediately re-admittable.
        eco.admit_app("b", ShareConfig(solar_fraction=0.9, battery_fraction=0.9))

    def test_finalized_account_refuses_settlements(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig())
        eco.launch_container("a", 1)
        run_ticks(eco, 1)
        account = eco.evict_app("a")
        settlement = account.settlements[0]
        with pytest.raises(ConfigurationError):
            eco.ledger.record(settlement)

    def test_evicted_totals_stay_in_cluster_totals(self):
        eco = make_ecovisor(solar_w=0.0)
        eco.admit_app("a", ShareConfig())
        container = eco.launch_container("a", 1)
        run_ticks(eco, 3, lambda tick: container.set_demand_utilization(1.0))
        before = eco.ledger.total_energy_wh()
        assert before > 0.0
        eco.evict_app("a")
        assert eco.ledger.total_energy_wh() == before

    def test_evict_publishes_terminal_event_with_final_figures(self):
        eco = make_ecovisor(solar_w=0.0)
        eco.admit_app("a", ShareConfig())
        container = eco.launch_container("a", 1)
        run_ticks(eco, 2, lambda tick: container.set_demand_utilization(1.0))
        account = eco.evict_app("a")
        page = eco.events_for("a")  # feed readable after eviction
        terminal = page.events[-1]
        assert isinstance(terminal, AppEvictedEvent)
        assert terminal.energy_wh == pytest.approx(account.energy_wh)
        assert terminal.containers_stopped == 1

    def test_evict_unknown_app_raises(self):
        with pytest.raises(UnknownApplicationError):
            make_ecovisor().evict_app("ghost")

    def test_eviction_cancels_signal_subscriptions(self):
        # Broadcast signals (Tick, carbon, price) bypass app scoping;
        # a dead tenant's callback touching the API would crash every
        # later tick if eviction left its subscriptions live.
        from repro.core.api import connect
        from repro.core.signals import Tick

        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig())
        api = connect(eco, "a")
        fired = []
        subscription = api.signals.on(Tick, lambda e: fired.append(api.state()))
        clock = run_ticks(eco, 1)
        assert len(fired) == 1
        eco.evict_app("a")
        assert not subscription.active
        run_ticks(eco, 2, clock=clock)  # must not raise
        assert len(fired) == 1

    def test_readmission_under_same_name_gets_fresh_state(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(battery_fraction=0.5))
        run_ticks(eco, 1)
        eco.evict_app("a")
        # Fresh VES, fresh account: the predecessor's finalized account
        # moves to the ledger archive.
        ves = eco.admit_app("a", ShareConfig(battery_fraction=0.25))
        assert ves.battery.fraction == 0.25
        assert not eco.ledger.account("a").finalized
        assert len(eco.ledger.archived_accounts) == 1

    def test_readmitted_app_settles_without_crashing(self):
        eco = make_ecovisor(solar_w=0.0)
        eco.admit_app("a", ShareConfig())
        container = eco.launch_container("a", 1)
        clock = run_ticks(eco, 2, lambda tick: container.set_demand_utilization(1.0))
        evicted_energy = eco.evict_app("a").energy_wh
        assert evicted_energy > 0.0
        eco.admit_app("a", ShareConfig())
        fresh = eco.launch_container("a", 1)
        run_ticks(eco, 2, lambda tick: fresh.set_demand_utilization(1.0), clock=clock)
        account = eco.ledger.account("a")
        assert not account.finalized
        assert account.energy_wh > 0.0
        # Cluster totals span the archived predecessor and the new life.
        assert eco.ledger.total_energy_wh() == pytest.approx(
            evicted_energy + account.energy_wh
        )

    def test_evict_with_staged_share_releases_staged_allocation(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(solar_fraction=0.1))
        eco.set_share("a", ShareConfig(solar_fraction=0.5))
        # The staged 0.5 is the committed allocation; eviction before
        # the boundary must release exactly that.
        eco.evict_app("a")
        assert eco.allocated_solar_fraction == pytest.approx(0.0)
        eco.admit_app("b", ShareConfig(solar_fraction=1.0))

    def test_evict_with_staged_shrink_does_not_mask_oversubscription(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(solar_fraction=0.9))
        eco.set_share("a", ShareConfig(solar_fraction=0.1))  # frees 0.8
        eco.admit_app("b", ShareConfig(solar_fraction=0.8))
        eco.evict_app("a")  # releases the staged 0.1, not 0.9
        assert eco.allocated_solar_fraction == pytest.approx(0.8)
        with pytest.raises(ConfigurationError):
            eco.admit_app("c", ShareConfig(solar_fraction=0.3))


class TestShareRebalancing:
    def test_takes_effect_at_next_tick_boundary(self):
        eco = make_ecovisor(solar_w=10.0)
        eco.admit_app("a", ShareConfig(solar_fraction=0.5))
        clock = run_ticks(eco, 2)
        assert eco.state_for("a").solar_power_w == pytest.approx(5.0)
        eco.set_share("a", ShareConfig(solar_fraction=1.0))
        # Staged, not yet effective.
        assert eco.share_for("a").solar_fraction == 0.5
        assert eco.pending_share("a").solar_fraction == 1.0
        run_ticks(eco, 1, clock=clock)
        assert eco.share_for("a").solar_fraction == 1.0
        assert eco.pending_share("a") is None
        assert eco.state_for("a").solar_power_w == pytest.approx(10.0)

    def test_publishes_share_changed_with_previous_values(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(solar_fraction=0.5))
        seen = []
        eco.events.subscribe(ShareChangedEvent, seen.append)
        eco.set_share("a", ShareConfig(solar_fraction=0.25))
        assert seen == []  # not yet — boundary semantics
        run_ticks(eco, 1)
        assert len(seen) == 1
        assert seen[0].previous_solar_fraction == 0.5
        assert seen[0].solar_fraction == 0.25

    def test_rebalance_validates_against_other_apps(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(solar_fraction=0.5))
        eco.admit_app("b", ShareConfig(solar_fraction=0.5))
        with pytest.raises(ConfigurationError):
            eco.set_share("a", ShareConfig(solar_fraction=0.6))
        # Shrinking a frees headroom for b, staged or not.
        eco.set_share("a", ShareConfig(solar_fraction=0.2))
        eco.set_share("b", ShareConfig(solar_fraction=0.8))

    def test_staged_allocation_blocks_concurrent_admission(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(solar_fraction=0.2))
        eco.set_share("a", ShareConfig(solar_fraction=0.9))
        # The staged 0.9 is committed even though not yet effective.
        with pytest.raises(ConfigurationError):
            eco.admit_app("b", ShareConfig(solar_fraction=0.2))

    def test_battery_rescale_preserves_stored_energy_and_knobs(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(battery_fraction=0.5))
        battery = eco.ves_for("a").battery
        battery.set_charge_rate(3.0)
        level_before = battery.battery.level_wh
        run_ticks(eco, 1)
        eco.set_share("a", ShareConfig(battery_fraction=1.0))
        run_ticks(eco, 1)
        rescaled = eco.ves_for("a").battery
        assert rescaled.fraction == 1.0
        assert rescaled.capacity_wh == pytest.approx(2 * battery.capacity_wh)
        assert rescaled.charge_rate_w == pytest.approx(3.0)
        # Stored energy carried over (plus whatever the ticks charged).
        assert rescaled.battery.level_wh >= level_before - 1e-9

    def test_shrinking_battery_clamps_level(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(battery_fraction=1.0))
        full_capacity = eco.ves_for("a").battery.capacity_wh
        eco.set_share("a", ShareConfig(battery_fraction=0.1))
        run_ticks(eco, 1)
        small = eco.ves_for("a").battery
        assert small.capacity_wh == pytest.approx(0.1 * full_capacity)
        assert small.battery.level_wh <= small.capacity_wh + 1e-9

    def test_dropping_battery_share(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig(battery_fraction=0.5))
        eco.set_share("a", ShareConfig())
        run_ticks(eco, 1)
        assert eco.ves_for("a").battery is None
        assert eco.state_for("a").battery is None
        assert eco.allocated_battery_fraction == pytest.approx(0.0)

    def test_gaining_battery_share(self):
        eco = make_ecovisor()
        eco.admit_app("a", ShareConfig())
        eco.set_share("a", ShareConfig(battery_fraction=0.4))
        run_ticks(eco, 1)
        assert eco.ves_for("a").battery.fraction == 0.4
        assert eco.state_for("a").battery is not None

    def test_rebalance_unknown_app_raises(self):
        with pytest.raises(UnknownApplicationError):
            make_ecovisor().set_share("ghost", ShareConfig())

    def test_battery_share_requires_plant_battery(self):
        eco = make_ecovisor(with_battery=False)
        eco.admit_app("a", ShareConfig())
        with pytest.raises(ConfigurationError):
            eco.set_share("a", ShareConfig(battery_fraction=0.5))
