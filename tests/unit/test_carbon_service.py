"""Carbon information service (electricityMap-like polling semantics)."""

import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import CarbonTrace, SAMPLE_INTERVAL_S, constant_trace
from repro.core.config import CarbonServiceConfig
from repro.core.errors import TraceError


def stepped_service() -> CarbonIntensityService:
    trace = CarbonTrace([100.0, 200.0, 300.0, 400.0])
    return CarbonIntensityService(
        CarbonServiceConfig(region="test"), trace=trace
    )


class TestQuantizedQueries:
    def test_queries_within_interval_see_same_value(self):
        service = stepped_service()
        assert service.intensity_at(0.0) == 100.0
        assert service.intensity_at(299.0) == 100.0
        assert service.intensity_at(300.0) == 200.0

    def test_rejects_negative_time(self):
        with pytest.raises(TraceError):
            stepped_service().intensity_at(-0.1)

    def test_default_builds_region_trace(self):
        service = CarbonIntensityService(CarbonServiceConfig(region="ontario"))
        assert service.region == "ontario"
        assert service.intensity_at(0.0) > 0


class TestHistory:
    def test_observe_appends(self):
        service = stepped_service()
        service.observe(0.0)
        service.observe(300.0)
        assert service.history() == [(0.0, 100.0), (300.0, 200.0)]

    def test_observe_deduplicates_same_time(self):
        service = stepped_service()
        service.observe(0.0)
        service.observe(0.0)
        assert len(service.history()) == 1

    def test_observed_percentile(self):
        service = stepped_service()
        for t in (0.0, 300.0, 600.0, 900.0):
            service.observe(t)
        assert service.observed_percentile(50) == pytest.approx(250.0)

    def test_observed_percentile_needs_history(self):
        with pytest.raises(TraceError):
            stepped_service().observed_percentile(50)


class TestThresholds:
    def test_threshold_percentile_over_window(self):
        service = stepped_service()
        threshold = service.threshold_percentile(
            50, 0.0, 4 * SAMPLE_INTERVAL_S
        )
        assert threshold == pytest.approx(250.0)

    def test_mean_intensity(self):
        service = CarbonIntensityService(trace=constant_trace(150.0))
        assert service.mean_intensity() == pytest.approx(150.0)
