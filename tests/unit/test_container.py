"""Container lifecycle, capping, and accounting."""

import pytest

from repro.cluster.container import Container, ContainerState


class TestIdentity:
    def test_ids_are_unique(self):
        a = Container("app", 1)
        b = Container("app", 1)
        assert a.id != b.id

    def test_explicit_id(self):
        c = Container("app", 1, container_id="fixed")
        assert c.id == "fixed"

    def test_default_role_is_worker(self):
        assert Container("app", 1).role == "worker"

    def test_custom_role(self):
        assert Container("app", 1, role="coordinator").role == "coordinator"

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            Container("app", 0)


class TestLifecycle:
    def test_starts_running(self):
        assert Container("app", 1).state is ContainerState.RUNNING

    def test_stop_clears_demand_and_power(self):
        c = Container("app", 1)
        c.set_demand_utilization(1.0)
        c.stop()
        assert not c.is_running
        assert c.demand_utilization == 0.0
        assert c.last_power_w == 0.0

    def test_restart(self):
        c = Container("app", 1)
        c.stop()
        c.start()
        assert c.is_running


class TestScaling:
    def test_set_cores(self):
        c = Container("app", 1)
        c.set_cores(2.5)
        assert c.cores == 2.5

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            Container("app", 1).set_cores(0)


class TestCapping:
    def test_uncapped_by_default(self):
        c = Container("app", 1)
        assert c.power_cap_w is None
        assert c.cap_utilization == 1.0

    def test_cap_clamps_effective_utilization(self):
        c = Container("app", 1)
        c.set_demand_utilization(1.0)
        c.set_power_cap(0.8, cap_utilization=0.5)
        assert c.effective_utilization == 0.5

    def test_demand_below_cap_passes_through(self):
        c = Container("app", 1)
        c.set_demand_utilization(0.3)
        c.set_power_cap(0.8, cap_utilization=0.5)
        assert c.effective_utilization == pytest.approx(0.3)

    def test_clearing_cap(self):
        c = Container("app", 1)
        c.set_power_cap(0.8, 0.5)
        c.set_power_cap(None, 1.0)
        assert c.power_cap_w is None

    def test_stopped_container_has_zero_effective_utilization(self):
        c = Container("app", 1)
        c.set_demand_utilization(1.0)
        c.stop()
        assert c.effective_utilization == 0.0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Container("app", 1).set_power_cap(-1.0, 0.0)

    def test_demand_clamped_to_unit_interval(self):
        c = Container("app", 1)
        c.set_demand_utilization(1.7)
        assert c.demand_utilization == 1.0
        c.set_demand_utilization(-0.5)
        assert c.demand_utilization == 0.0


class TestAccounting:
    def test_record_tick_accumulates(self):
        c = Container("app", 1)
        c.record_tick(power_w=1.0, energy_wh=0.5, carbon_g=0.1)
        c.record_tick(power_w=2.0, energy_wh=1.0, carbon_g=0.3)
        assert c.last_power_w == 2.0
        assert c.energy_wh == pytest.approx(1.5)
        assert c.carbon_g == pytest.approx(0.4)
