"""M/M/c latency model."""

import math

import pytest

from repro.workloads.latency import (
    MAX_REPORTED_LATENCY_MS,
    erlang_c,
    min_servers_for_slo,
    percentile_latency_ms,
    percentile_wait_s,
)


class TestErlangC:
    def test_no_load_no_wait(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_unstable_always_waits(self):
        assert erlang_c(2, 2.5) == 1.0

    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_known_value(self):
        # Classic table value: c=3, a=2 -> ~0.4444.
        assert erlang_c(3, 2.0) == pytest.approx(0.4444, abs=1e-3)

    def test_monotone_in_load(self):
        values = [erlang_c(4, a) for a in (1.0, 2.0, 3.0, 3.9)]
        assert values == sorted(values)

    def test_zero_servers(self):
        assert erlang_c(0, 1.0) == 1.0


class TestPercentileWait:
    def test_no_arrivals_no_wait(self):
        assert percentile_wait_s(0.0, 4, 10.0) == 0.0

    def test_unstable_is_infinite(self):
        assert math.isinf(percentile_wait_s(100.0, 2, 10.0))

    def test_light_load_zero_wait(self):
        # At tiny load the no-wait probability exceeds 95%.
        assert percentile_wait_s(0.1, 8, 10.0, 95.0) == 0.0

    def test_wait_grows_with_load(self):
        low = percentile_wait_s(20.0, 4, 10.0)
        high = percentile_wait_s(35.0, 4, 10.0)
        assert high > low


class TestPercentileLatency:
    def test_includes_service_time(self):
        # Light load: latency ~ service p95 = 3/mu.
        latency = percentile_latency_ms(0.1, 8, 100.0, 95.0)
        assert latency == pytest.approx(-math.log(0.05) / 100.0 * 1000.0, rel=0.05)

    def test_monotone_in_load(self):
        latencies = [
            percentile_latency_ms(rate, 4, 100.0) for rate in (50, 200, 350, 390)
        ]
        assert latencies == sorted(latencies)

    def test_monotone_in_servers(self):
        latencies = [
            percentile_latency_ms(350.0, n, 100.0) for n in (4, 5, 6, 8)
        ]
        assert latencies == sorted(latencies, reverse=True)

    def test_overload_capped(self):
        latency = percentile_latency_ms(1e6, 1, 1.0)
        assert latency == MAX_REPORTED_LATENCY_MS

    def test_zero_servers_is_outage(self):
        assert percentile_latency_ms(10.0, 0, 100.0) == MAX_REPORTED_LATENCY_MS


class TestSizing:
    def test_sized_pool_meets_slo(self):
        n = min_servers_for_slo(200.0, 100.0, 60.0)
        assert percentile_latency_ms(200.0, n, 100.0) <= 60.0

    def test_sizing_is_minimal(self):
        n = min_servers_for_slo(200.0, 100.0, 60.0)
        assert n > 1
        assert percentile_latency_ms(200.0, n - 1, 100.0) > 60.0

    def test_zero_load_needs_one(self):
        assert min_servers_for_slo(0.0, 100.0, 60.0) == 1

    def test_cap_respected(self):
        assert min_servers_for_slo(1e9, 100.0, 60.0, max_servers=16) == 16
