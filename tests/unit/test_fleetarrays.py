"""FleetArrays row lifecycle, array identity, and cache fallbacks.

The columnar kernel's semantic parity is pinned by
:mod:`tests.integration.test_columnar_parity`; this module covers the
structural invariants of the struct-of-arrays store itself:

- row acquisition/release is LIFO, so an evicted tenant's row is the
  next admission's row (cache-hot reuse),
- growth past :data:`~repro.core.fleetarrays.INITIAL_CAPACITY` doubles
  in place and keeps every array's identity,
- a staged ``set_share`` swaps the dense battery sub-fleet caches at
  the next tick boundary, and
- ticks past the primed signal-cache horizon fall back to live
  sampling with identical results (mirroring
  :mod:`tests.unit.test_tracecache`'s offset-miss rule at fleet level).
"""

import numpy as np

from repro.cluster.container import Container, reset_container_id_counter
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.config import ClusterConfig, ShareConfig
from repro.core.fleetarrays import (
    INITIAL_CAPACITY,
    FleetArrays,
    _ContainerCache,
)
from repro.sim.fleet import build_fleet


def _small_fleet(apps=6, ticks=12, batched=True, seed=2023):
    reset_container_id_counter()
    return build_fleet(
        {
            "apps": apps,
            "ticks": ticks,
            "seed": seed,
            "mix": "balanced",
            "batched": batched,
        }
    )


class TestRowLifecycle:
    def test_rows_acquire_in_ascending_order(self):
        fleet = FleetArrays(capacity=4)
        assert [fleet.acquire_row() for _ in range(4)] == [0, 1, 2, 3]

    def test_release_then_acquire_is_lifo(self):
        fleet = FleetArrays(capacity=8)
        rows = [fleet.acquire_row() for _ in range(5)]
        fleet.release_row(rows[1])
        fleet.release_row(rows[3])
        # The hottest (most recently released) row comes back first.
        assert fleet.acquire_row() == rows[3]
        assert fleet.acquire_row() == rows[1]
        # Exhausted the free list's recycled rows; fresh rows follow.
        assert fleet.acquire_row() == 5

    def test_lifecycle_counters_track_acquire_release_reuse(self):
        fleet = FleetArrays(capacity=8)
        rows = [fleet.acquire_row() for _ in range(3)]
        assert fleet.rows_acquired == 3
        assert fleet.rows_reused == 0
        fleet.release_row(rows[2])
        assert fleet.rows_released == 1
        fleet.acquire_row()
        assert fleet.rows_acquired == 4
        assert fleet.rows_reused == 1

    def test_grow_counter_increments_on_doubling(self):
        fleet = FleetArrays(capacity=2)
        for _ in range(3):
            fleet.acquire_row()
        assert fleet.grow_count == 1
        assert fleet.capacity == 4

    def test_evicted_tenant_row_goes_to_next_admission(self):
        fleet = _small_fleet()
        engine, ecovisor = fleet.engine, fleet.ecovisor
        engine.run(3)
        victim = ecovisor.app_names()[2]
        victim_row = ecovisor._apps[victim].row
        assert victim_row >= 0
        ecovisor.evict_app(victim)
        assert ecovisor._apps == {
            n: a for n, a in ecovisor._apps.items() if n != victim
        }
        from repro.policies import CarbonAgnosticPolicy
        from repro.workloads.mltrain import MLTrainingJob

        engine.add_application(
            MLTrainingJob(name="newcomer", total_work_units=100.0),
            ShareConfig(grid_power_w=float("inf")),
            CarbonAgnosticPolicy(workers=1),
        )
        engine.run(1)
        assert ecovisor._apps["newcomer"].row == victim_row


class TestGrowth:
    def test_growth_doubles_and_keeps_array_identity(self):
        fleet = FleetArrays()
        assert fleet.capacity == INITIAL_CAPACITY
        arrays = (
            fleet.solar_w,
            fleet.grid_w,
            fleet.prev_solar,
            fleet.tot_e,
            fleet.tot_c,
            fleet.tot_cost,
        )
        for _ in range(INITIAL_CAPACITY):
            fleet.acquire_row()
        fleet.solar_w[:] = np.arange(INITIAL_CAPACITY, dtype=float)
        fleet.tot_e[:] = 7.5
        overflow = fleet.acquire_row()
        assert overflow == INITIAL_CAPACITY
        assert fleet.capacity == 2 * INITIAL_CAPACITY
        for before, after in zip(
            arrays,
            (
                fleet.solar_w,
                fleet.grid_w,
                fleet.prev_solar,
                fleet.tot_e,
                fleet.tot_c,
                fleet.tot_cost,
            ),
        ):
            # ndarray.resize grows in place: same object, new capacity.
            assert before is after
            assert len(after) == 2 * INITIAL_CAPACITY
        assert fleet.solar_w[:INITIAL_CAPACITY].tolist() == [
            float(i) for i in range(INITIAL_CAPACITY)
        ]
        assert np.all(fleet.tot_e[:INITIAL_CAPACITY] == 7.5)
        assert np.all(fleet.solar_w[INITIAL_CAPACITY:] == 0.0)

    def test_fleet_larger_than_initial_capacity_runs_columnar(self):
        fleet = _small_fleet(apps=INITIAL_CAPACITY + 6, ticks=3)
        engine, ecovisor = fleet.engine, fleet.ecovisor
        engine.run(3)
        store = ecovisor._fleet
        assert store.capacity >= INITIAL_CAPACITY + 6
        rows = [app.row for app in ecovisor._apps.values()]
        assert len(set(rows)) == len(rows)
        assert max(rows) >= INITIAL_CAPACITY


def _assert_cache_equal(a, b):
    """Field-by-field equality of two `_ContainerCache` builds."""
    assert a.key == b.key
    assert a.ids == b.ids
    assert len(a.clist) == len(b.clist)
    for x, y in zip(a.clist, b.clist):
        assert x is y
    np.testing.assert_array_equal(a.cf, b.cf)
    np.testing.assert_array_equal(a.cf_idle, b.cf_idle)
    assert a.cpu_range == b.cpu_range
    assert a.gpu_range == b.gpu_range
    np.testing.assert_array_equal(a.power_mask, b.power_mask)
    np.testing.assert_array_equal(a.gpu_mask, b.gpu_mask)
    assert a.positions == b.positions
    assert a.cont_ids == b.cont_ids
    assert a.running_positions == b.running_positions
    assert a.baseline_w == b.baseline_w


class TestContainerCacheExtension:
    """The append-only `_ContainerCache.extended` fast path.

    Fleet scenarios rarely hit it (policy stops bump the mutation epoch
    before most rebuilds), so it is exercised directly: launches without
    any stop/start/resize keep the epoch fixed, and the extended cache
    must equal a from-scratch rebuild on every field.
    """

    def _platform(self):
        reset_container_id_counter()
        platform = ContainerOrchestrationPlatform(ClusterConfig(num_servers=4))
        platform.launch_container("alpha", 1.0)
        platform.launch_container("beta", 2.0)
        platform.launch_container("alpha", 1.0, role="worker")
        return platform

    def test_extended_matches_full_rebuild(self):
        platform = self._platform()
        prev = _ContainerCache(
            platform, (platform.version, Container._mutation_epoch)
        )
        # Launches only: version moves, mutation epoch does not.
        platform.launch_container("beta", 1.0, role="worker")
        platform.launch_container("gamma", 2.0)
        key = (platform.version, Container._mutation_epoch)
        assert key[0] > prev.key[0] and key[1] == prev.key[1]

        ext = _ContainerCache.extended(prev, platform, key)
        assert ext is not None
        _assert_cache_equal(ext, _ContainerCache(platform, key))
        np.testing.assert_array_equal(
            ext.powers(), _ContainerCache(platform, key).powers()
        )

    def test_container_cache_takes_extension_path(self, monkeypatch):
        platform = self._platform()
        fleet = FleetArrays()
        first = fleet.container_cache(platform)
        assert fleet.container_cache(platform) is first  # key unchanged

        platform.launch_container("gamma", 1.0)
        rebuilds = []
        original = _ContainerCache.__init__

        def counting(self, *args, **kwargs):
            rebuilds.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(_ContainerCache, "__init__", counting)
        second = fleet.container_cache(platform)
        # `extended` builds via __new__, never __init__: zero rebuilds.
        assert not rebuilds
        assert second is not first
        assert second.key == (platform.version, Container._mutation_epoch)
        monkeypatch.undo()
        _assert_cache_equal(second, _ContainerCache(platform, second.key))

    def test_stop_forces_full_rebuild(self, monkeypatch):
        platform = self._platform()
        fleet = FleetArrays()
        first = fleet.container_cache(platform)
        platform.stop_container(first.clist[0].id)  # bumps the epoch
        rebuilds = []
        original = _ContainerCache.__init__

        def counting(self, *args, **kwargs):
            rebuilds.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(_ContainerCache, "__init__", counting)
        second = fleet.container_cache(platform)
        assert rebuilds == [1]
        assert len(second.clist) == len(first.clist) - 1

    def test_extended_refuses_non_prefix_population(self):
        platform = self._platform()
        prev = _ContainerCache(
            platform, (platform.version, Container._mutation_epoch)
        )
        # Shrunk population: n < old_n.
        platform.stop_container(prev.clist[-1].id)
        key = (platform.version, Container._mutation_epoch)
        assert _ContainerCache.extended(prev, platform, key) is None
        # Same length but different tail container: prefix identity fails.
        platform.launch_container("delta", 1.0)
        key = (platform.version, Container._mutation_epoch)
        assert _ContainerCache.extended(prev, platform, key) is None


class TestSetShareSwap:
    def test_staged_share_swaps_battery_caches_at_tick_boundary(self):
        fleet = _small_fleet()
        engine, ecovisor = fleet.engine, fleet.ecovisor
        engine.run(2)
        store = ecovisor._fleet
        # Pick a grid-only tenant (every third tenant holds the plant
        # share, so index 1 does not).
        name = ecovisor.app_names()[1]
        app = ecovisor._apps[name]
        assert app.ves.battery is None
        assert name not in [a.name for _, a in store.batt_apps]

        ecovisor.set_share(
            name,
            ShareConfig(
                solar_fraction=0.05,
                battery_fraction=0.05,
                grid_power_w=float("inf"),
            ),
        )
        # Mid-tick: staged only — the dense caches still describe the
        # old shares until the next begin phase refreshes them.
        assert ecovisor.pending_share(name) is not None
        assert app.ves.battery is None
        epoch_before = store.epoch

        engine.run(1)
        assert ecovisor.pending_share(name) is None
        assert app.ves.battery is not None
        assert store.epoch > epoch_before
        batt_names = [a.name for _, a in store.batt_apps]
        assert name in batt_names
        i = store.names.index(name)
        assert store.frac_solar[i] == 0.05
        assert store.has_solar[i]
        # The battery sub-fleet caches swapped in the new VirtualBattery.
        assert any(vb is app.ves.battery for vb in store.batt_vbs)

    def test_share_drop_removes_battery_row(self):
        fleet = _small_fleet()
        engine, ecovisor = fleet.engine, fleet.ecovisor
        engine.run(2)
        store = ecovisor._fleet
        name = ecovisor.app_names()[0]  # stride tenant: holds a share
        app = ecovisor._apps[name]
        assert app.ves.battery is not None
        ecovisor.set_share(name, ShareConfig(grid_power_w=float("inf")))
        engine.run(1)
        assert app.ves.battery is None
        assert name not in [a.name for _, a in store.batt_apps]


class TestPastHorizonFallback:
    def test_ticks_past_primed_horizon_fall_back_to_live_sampling(self):
        """Mirror of test_tracecache's offset-miss rule at fleet level:
        a signal cache covering only half the run must not change one
        byte of the telemetry — uncovered ticks sample live."""
        ticks = 12
        reference = _small_fleet(ticks=ticks)
        reference.engine.run(ticks)

        truncated = _small_fleet(ticks=ticks)
        ecovisor = truncated.engine._ecovisor
        original = ecovisor.prime_signal_cache

        def half_prime(start_index, times):
            original(start_index, times[: len(times) // 2])

        ecovisor.prime_signal_cache = half_prime
        truncated.engine.run(ticks)
        # The cache really was short: the final tick missed it.
        assert (
            ecovisor._signal_cache.offset_for(ticks - 1, (ticks - 1) * 60.0)
            is None
        )

        db_a = reference.ecovisor.database
        db_b = truncated.ecovisor.database
        assert db_a.series_names() == db_b.series_names()
        for series in db_a.series_names():
            assert (
                db_a.series(series).values().tolist()
                == db_b.series(series).values().tolist()
            ), series
