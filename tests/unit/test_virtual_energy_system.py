"""Virtual energy system settlement: the paper's fixed routing order."""

import pytest

from repro.core.config import BatteryConfig, ShareConfig
from repro.core.virtual_battery import VirtualBattery
from repro.core.virtual_energy_system import VirtualEnergySystem

HOUR = 3600.0


def make_ves(
    solar_fraction=1.0,
    battery_fraction=0.5,
    grid_power_w=float("inf"),
    battery_config=None,
) -> VirtualEnergySystem:
    config = battery_config or BatteryConfig(
        capacity_wh=100.0,
        empty_soc_fraction=0.30,
        charge_efficiency=1.0,
        discharge_efficiency=1.0,
        initial_soc_fraction=0.50,
    )
    battery = (
        VirtualBattery(config, battery_fraction) if battery_fraction > 0 else None
    )
    share = ShareConfig(
        solar_fraction=solar_fraction,
        battery_fraction=battery_fraction,
        grid_power_w=grid_power_w,
    )
    return VirtualEnergySystem("app", share, battery)


class TestSolarFirst:
    def test_solar_covers_demand(self):
        ves = make_ves()
        ves.update_solar(20.0)
        s = ves.settle(10.0, 200.0, 0.0, HOUR)
        assert s.solar_used_wh == pytest.approx(10.0)
        assert s.battery_discharge_wh == 0.0
        assert s.grid_load_wh == 0.0
        assert s.carbon_g >= 0.0

    def test_solar_share_applied(self):
        ves = make_ves(solar_fraction=0.25)
        visible = ves.update_solar(40.0)
        assert visible == pytest.approx(10.0)
        assert ves.solar_power_w == pytest.approx(10.0)

    def test_zero_solar_app(self):
        ves = make_ves(solar_fraction=0.0)
        assert ves.update_solar(100.0) == 0.0


class TestBatterySecond:
    def test_deficit_drawn_from_battery(self):
        ves = make_ves()
        ves.update_solar(4.0)
        s = ves.settle(10.0, 200.0, 0.0, HOUR)
        assert s.solar_used_wh == pytest.approx(4.0)
        assert s.battery_discharge_wh == pytest.approx(6.0)
        assert s.grid_load_wh == 0.0

    def test_app_discharge_cap_respected(self):
        ves = make_ves()
        ves.battery.set_max_discharge(2.0)
        ves.update_solar(0.0)
        s = ves.settle(10.0, 200.0, 0.0, HOUR)
        assert s.battery_discharge_wh == pytest.approx(2.0)
        assert s.grid_load_wh == pytest.approx(8.0)

    def test_empty_battery_passes_to_grid(self):
        ves = make_ves()
        ves.update_solar(0.0)
        ves.settle(50.0, 200.0, 0.0, HOUR)  # drain the 10 Wh usable share
        s = ves.settle(10.0, 200.0, HOUR, HOUR)
        assert s.battery_discharge_wh == pytest.approx(0.0)
        assert s.grid_load_wh == pytest.approx(10.0)


class TestGridLast:
    def test_grid_covers_residual_and_is_attributed(self):
        ves = make_ves(battery_fraction=0.0)
        ves.update_solar(4.0)
        s = ves.settle(10.0, 500.0, 0.0, HOUR)
        assert s.grid_load_wh == pytest.approx(6.0)
        # 6 Wh at 500 g/kWh = 3 g.
        assert s.carbon_g == pytest.approx(3.0)

    def test_grid_share_limits_supply(self):
        ves = make_ves(battery_fraction=0.0, grid_power_w=2.0)
        ves.update_solar(0.0)
        s = ves.settle(10.0, 200.0, 0.0, HOUR)
        assert s.grid_load_wh == pytest.approx(2.0)
        assert s.unmet_wh == pytest.approx(8.0)

    def test_zero_grid_share_means_zero_carbon(self):
        ves = make_ves(grid_power_w=0.0, battery_fraction=0.0)
        ves.update_solar(2.0)
        s = ves.settle(10.0, 500.0, 0.0, HOUR)
        assert s.carbon_g == 0.0
        assert s.unmet_wh == pytest.approx(8.0)


class TestExcessSolar:
    def test_excess_charges_battery(self):
        ves = make_ves()
        ves.update_solar(10.0)
        s = ves.settle(4.0, 200.0, 0.0, HOUR)
        assert s.solar_to_battery_wh == pytest.approx(6.0)
        assert s.curtailed_wh == pytest.approx(0.0)

    def test_excess_beyond_charge_rate_curtailed(self):
        ves = make_ves()
        # Physical charge limit of the 50% share is 12.5 W.
        ves.update_solar(40.0)
        s = ves.settle(4.0, 200.0, 0.0, HOUR)
        assert s.solar_to_battery_wh == pytest.approx(12.5)
        assert s.curtailed_wh == pytest.approx(23.5)

    def test_full_battery_curtails(self):
        ves = make_ves()
        ves.update_solar(40.0)
        for i in range(4):  # fill the 50 Wh share
            ves.settle(0.0, 200.0, i * HOUR, HOUR)
        assert ves.battery.is_full
        s = ves.settle(0.0, 200.0, 10 * HOUR, HOUR)
        assert s.solar_to_battery_wh == pytest.approx(0.0)
        assert s.curtailed_wh == pytest.approx(40.0)

    def test_no_battery_curtails_all_excess(self):
        ves = make_ves(battery_fraction=0.0)
        ves.update_solar(10.0)
        s = ves.settle(4.0, 200.0, 0.0, HOUR)
        assert s.curtailed_wh == pytest.approx(6.0)


class TestGridSupplementedCharging:
    def test_charge_rate_tops_up_from_grid(self):
        ves = make_ves()
        ves.battery.set_charge_rate(10.0)
        ves.update_solar(4.0)
        s = ves.settle(0.0, 200.0, 0.0, HOUR)
        # 4 W of solar excess + 6 W grid top-up to reach the 10 W target.
        assert s.solar_to_battery_wh == pytest.approx(4.0)
        assert s.grid_to_battery_wh == pytest.approx(6.0)
        assert s.carbon_g == pytest.approx(6.0 / 1000.0 * 200.0)

    def test_no_top_up_when_solar_exceeds_rate(self):
        ves = make_ves()
        ves.battery.set_charge_rate(3.0)
        ves.update_solar(10.0)
        s = ves.settle(0.0, 200.0, 0.0, HOUR)
        assert s.grid_to_battery_wh == pytest.approx(0.0)

    def test_grid_share_limits_top_up(self):
        ves = make_ves(grid_power_w=2.0)
        ves.battery.set_charge_rate(10.0)
        ves.update_solar(0.0)
        s = ves.settle(0.0, 200.0, 0.0, HOUR)
        assert s.grid_to_battery_wh == pytest.approx(2.0)


class TestBookkeeping:
    def test_grid_power_reading_after_settle(self):
        ves = make_ves(battery_fraction=0.0)
        ves.update_solar(0.0)
        ves.settle(7.0, 200.0, 0.0, HOUR)
        assert ves.grid_power_w == pytest.approx(7.0)

    def test_negative_demand_rejected(self):
        ves = make_ves()
        with pytest.raises(ValueError):
            ves.settle(-1.0, 200.0, 0.0, HOUR)

    def test_last_settlement_stored(self):
        ves = make_ves()
        ves.update_solar(5.0)
        s = ves.settle(1.0, 200.0, 0.0, HOUR)
        assert ves.last_settlement is s
