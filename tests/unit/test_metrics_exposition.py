"""Exposition lint for ``GET /v1/metrics`` and router instrumentation.

The format lint parses the *live* server's scrape output and checks it
against the Prometheus text exposition rules (name/label charsets, one
``# TYPE`` per family, cumulative histogram buckets, ``le="+Inf"`` equal
to ``_count``) — so any metric anyone registers anywhere in the stack is
linted, not just the ones this file knows about.
"""

import re

import pytest

from repro.core.config import ShareConfig
from repro.obs.metrics import MetricsRegistry
from repro.rest.router import UNMATCHED_ROUTE_LABEL, Router
from repro.rest.server import EcovisorRestServer
from repro.sim.engine import SimulationEngine
from repro.workloads.mltrain import MLTrainingJob
from tests.conftest import make_ecovisor

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# Label values may themselves contain "}" (route patterns like
# "/v1/apps/{app}/state"), so the label block is matched greedily up to
# the last "}" before the value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str):
    """Parse a scrape into (types, samples); asserts structural rules."""
    types = {}
    samples = []
    current_family = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in types, f"duplicate # TYPE for {name}"
            types[name] = kind
            current_family = name
            continue
        assert not line.startswith("#"), f"unknown comment line: {line}"
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = name if name in types else base
        assert family in types, f"sample {name} has no # TYPE"
        # Samples must be contiguous under their family's TYPE line.
        assert family == current_family, f"{name} outside its family block"
        labels = dict(_LABEL_PAIR_RE.findall(match.group("labels") or ""))
        value = float(match.group("value").replace("+Inf", "inf"))
        samples.append((name, labels, value))
    return types, samples


def lint_exposition(text: str):
    """The format lint: charset, kind, and histogram-shape rules."""
    types, samples = parse_exposition(text)
    assert types, "scrape exposed no metrics"
    for name, kind in types.items():
        assert _NAME_RE.match(name), f"bad metric name {name!r}"
        assert kind in ("counter", "gauge", "histogram"), kind
    by_series = {}
    for name, labels, value in samples:
        for label in labels:
            assert _LABEL_RE.match(label), f"bad label name {label!r}"
            assert not label.startswith("__"), label
        key = (name, tuple(sorted(labels.items())))
        assert key not in by_series, f"duplicate series {key}"
        by_series[key] = value
        if name.endswith("_total") or name.endswith("_count"):
            assert value >= 0, f"{name} negative: {value}"
    # Histogram shape: buckets cumulative, +Inf == _count, sum present.
    for name, kind in types.items():
        if kind != "histogram":
            continue
        series = {}
        for sample, labels, value in samples:
            if sample == f"{name}_bucket":
                rest = tuple(
                    sorted((k, v) for k, v in labels.items() if k != "le")
                )
                series.setdefault(rest, []).append(
                    (float(labels["le"].replace("+Inf", "inf")), value)
                )
        counts = {
            tuple(sorted(labels.items())): value
            for sample, labels, value in samples
            if sample == f"{name}_count"
        }
        assert series, f"histogram {name} exposed no buckets"
        for rest, buckets in series.items():
            ordered = sorted(buckets)
            values = [count for _, count in ordered]
            assert values == sorted(values), f"{name}{rest} not cumulative"
            assert ordered[-1][0] == float("inf"), f"{name}{rest} missing +Inf"
            assert ordered[-1][1] == counts[rest], (
                f"{name}{rest} +Inf bucket != _count"
            )
    return types, by_series


@pytest.fixture
def world():
    """An ecovisor with a profiled engine run and scraped REST traffic."""
    ecovisor = make_ecovisor()
    engine = SimulationEngine(ecovisor)
    engine.profiler.enabled = True
    engine.add_application(
        MLTrainingJob(name="a", total_work_units=1e6),
        ShareConfig(grid_power_w=float("inf")),
    )
    server = EcovisorRestServer(ecovisor)
    engine.run(20)
    server.request("GET", "/v1/apps/a/state")
    server.request("GET", "/v1/apps/missing/state")  # 404 on a route
    server.request("GET", "/no/such/path")  # 404, no route
    server.request("DELETE", "/v1/apps/a/state")  # 405
    return ecovisor, server


class TestExpositionLint:
    def test_live_scrape_passes_the_lint(self, world):
        ecovisor, server = world
        response = server.request("GET", "/v1/metrics")
        assert response.ok
        assert response.headers["Content-Type"].startswith("text/plain")
        lint_exposition(response.body)

    def test_expected_families_present(self, world):
        ecovisor, server = world
        types, _ = lint_exposition(server.request("GET", "/v1/metrics").body)
        for family in (
            "ticks_begun_total",
            "journal_dropped_total",
            "trace_cache_hits_total",
            "tick_phase_seconds",
            "tick_total_seconds",
            "slow_ticks_total",
            "http_requests_total",
            "http_request_seconds",
        ):
            assert family in types, f"{family} missing from scrape"
        assert types["tick_phase_seconds"] == "histogram"
        assert types["apps_registered"] == "gauge"

    def test_scrape_counts_prior_scrapes(self, world):
        # The request counter increments after the handler renders, so
        # a scrape reports the scrapes that came before it.
        _, server = world
        server.request("GET", "/v1/metrics")
        server.request("GET", "/v1/metrics")
        _, series = lint_exposition(server.request("GET", "/v1/metrics").body)
        scrapes = series[
            ("http_requests_total", (("route", "/v1/metrics"), ("status", "200")))
        ]
        assert scrapes == 2

    def test_tick_phase_counts_match_run(self, world):
        ecovisor, server = world
        _, series = lint_exposition(server.request("GET", "/v1/metrics").body)
        for phase in ("begin_tick", "settle", "workload_step"):
            key = ("tick_phase_seconds_count", (("phase", phase),))
            assert series[key] == 20


class TestRouterInstrumentation:
    def make_router(self):
        registry = MetricsRegistry()
        router = Router()
        router.add("GET", "/items/{item}", lambda req: {"ok": True})
        router.instrument(registry)
        return router, registry

    def requests_value(self, registry, route, status):
        family = registry.get("http_requests_total")
        return family.labels(route=route, status=status).value

    def test_matched_route_counted_by_pattern(self):
        router, registry = self.make_router()
        router.dispatch("GET", "/items/1")
        router.dispatch("GET", "/items/2")
        # The label is the pattern, not the concrete path: cardinality
        # stays bounded by the route table.
        assert self.requests_value(registry, "/items/{item}", "200") == 2

    def test_404_counted_under_the_unmatched_label(self):
        router, registry = self.make_router()
        router.dispatch("GET", "/nope")
        assert self.requests_value(registry, UNMATCHED_ROUTE_LABEL, "404") == 1

    def test_405_counted_under_the_path_matching_pattern(self):
        router, registry = self.make_router()
        router.dispatch("POST", "/items/1")
        assert self.requests_value(registry, "/items/{item}", "405") == 1

    def test_handler_error_counted_with_its_status(self):
        router, registry = self.make_router()

        def boom(req):
            raise ValueError("bad")

        router.add("GET", "/boom", boom)
        router.dispatch("GET", "/boom")
        assert self.requests_value(registry, "/boom", "400") == 1

    def test_latency_observed_per_route(self):
        router, registry = self.make_router()
        router.dispatch("GET", "/items/1")
        router.dispatch("GET", "/nope")
        latency = registry.get("http_request_seconds")
        assert latency.labels(route="/items/{item}").count == 1
        assert latency.labels(route=UNMATCHED_ROUTE_LABEL).count == 1

    def test_uninstrumented_router_records_nothing(self):
        registry = MetricsRegistry()
        router = Router()
        router.add("GET", "/x", lambda req: {})
        assert router.dispatch("GET", "/x").ok
        assert registry.get("http_requests_total") is None


class TestTicksEndpoint:
    def test_ticks_payload_over_rest(self, world):
        _, server = world
        response = server.request("GET", "/v1/metrics/ticks?last=3")
        assert response.ok
        assert response.body["enabled"] is True
        assert response.body["ticks_recorded"] == 20
        assert response.body["returned"] == 3
        assert [t["tick_index"] for t in response.body["ticks"]] == [17, 18, 19]

    def test_negative_last_is_400(self, world):
        _, server = world
        assert server.request("GET", "/v1/metrics/ticks?last=-1").status == 400

    def test_engineless_ecovisor_reports_disabled(self):
        server = EcovisorRestServer(make_ecovisor())
        response = server.request("GET", "/v1/metrics/ticks")
        assert response.ok
        assert response.body["enabled"] is False
        assert response.body["ticks"] == []
