"""Historical and synthetic providers behind the SignalProvider interface."""

import numpy as np
import pytest

from repro.core.errors import UnknownTraceNameError
from repro.providers import HistoricalProvider, SignalProvider, SyntheticProvider
from repro.providers.registry import DATASET_INTERVAL_S, DATASETS, load_samples


class TestHistoricalProvider:
    def test_metadata_mirrors_the_descriptor(self):
        provider = HistoricalProvider("caiso-2022")
        meta = provider.metadata
        assert meta.dataset == "caiso-2022"
        assert meta.kind == "carbon"
        assert meta.region == "caiso"
        assert meta.units == "gCO2eq/kWh"
        assert meta.checksum == DATASETS["caiso-2022"].sha256
        assert meta.source == "historical"

    def test_agrees_with_the_dataset_sample_for_sample(self):
        provider = HistoricalProvider("ontario-2022")
        samples = load_samples("ontario-2022")
        for i in (0, 1, 7, len(samples) - 1):
            t = i * DATASET_INTERVAL_S
            assert provider.value_at(t) == samples[i]
            # Mid-interval lookups truncate to the same sample.
            assert provider.value_at(t + 299.0) == samples[i]

    def test_clamps_past_the_dataset_end(self):
        provider = HistoricalProvider("caiso-2022")
        last = provider.samples[-1]
        assert provider.value_at(provider.duration_s * 10) == last

    def test_forecast_returns_the_recorded_future(self):
        provider = HistoricalProvider("caiso-2022")
        horizon = provider.forecast(0.0, 3600.0)
        np.testing.assert_array_equal(horizon, provider.samples[:12])
        # Clamped at the end: the final sample repeats to fill the horizon.
        tail = provider.forecast(provider.duration_s, 1800.0)
        np.testing.assert_array_equal(
            tail, np.full(6, provider.samples[-1])
        )
        with pytest.raises(ValueError):
            provider.forecast(0.0, -1.0)

    def test_unknown_dataset_raises(self):
        with pytest.raises(UnknownTraceNameError):
            HistoricalProvider("nope")

    def test_is_a_signal_provider(self):
        assert isinstance(HistoricalProvider("caiso-2022"), SignalProvider)


class TestSyntheticProvider:
    def test_wraps_the_region_generator(self):
        from repro.carbon.traces import make_region_trace

        provider = SyntheticProvider("carbon", "caiso", days=1, seed=7)
        trace = make_region_trace("caiso", days=1, seed=7)
        np.testing.assert_array_equal(provider.samples, trace.samples)
        assert provider.value_at(0.0) == trace.samples[0]

    def test_kind_namespaces(self):
        assert SyntheticProvider("price", "tou", days=1).metadata.units == (
            "USD/kWh"
        )
        assert SyntheticProvider("wind", "default", days=1).metadata.units == (
            "fraction"
        )
        with pytest.raises(UnknownTraceNameError):
            SyntheticProvider("tides", "x")

    def test_checksum_hashes_the_generator_parameters(self):
        a = SyntheticProvider("carbon", "caiso", days=1, seed=7)
        b = SyntheticProvider("carbon", "caiso", days=1, seed=7)
        c = SyntheticProvider("carbon", "caiso", days=1, seed=8)
        assert a.metadata.checksum == b.metadata.checksum
        assert a.metadata.checksum != c.metadata.checksum
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_forecast_is_oracle(self):
        provider = SyntheticProvider("carbon", "ontario", days=1)
        np.testing.assert_array_equal(
            provider.forecast(0.0, 3600.0), provider.samples[:12]
        )

    def test_metadata_dataset_is_namespaced(self):
        provider = SyntheticProvider("carbon", "uruguay", days=1)
        assert provider.metadata.dataset == "synthetic:carbon:uruguay"
        assert provider.metadata.source == "synthetic"
