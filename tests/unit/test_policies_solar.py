"""Solar-matching cap policies and straggler replica policy."""

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig, SolarConfig
from repro.energy.solar import ConstantSolarTrace, SolarArrayEmulator
from repro.policies import (
    DynamicSolarCapPolicy,
    StaticSolarCapPolicy,
    StragglerReplicaPolicy,
)
from repro.sim.engine import SimulationEngine
from repro.workloads.mltrain import MLTrainingJob
from repro.workloads.parallel import ParallelJob
from tests.conftest import make_ecovisor

WORKER_W = 1.25
SOLAR_ONLY = ShareConfig(solar_fraction=1.0, battery_fraction=0.0, grid_power_w=0.0)


def solar_ecovisor(power_w: float):
    eco = make_ecovisor(solar_w=1.0, with_battery=False, num_servers=8)
    eco._plant._solar = SolarArrayEmulator(
        SolarConfig(peak_power_w=power_w, panel_efficiency_derating=1.0),
        ConstantSolarTrace(1.0),
    )
    return eco


def job_with(n_tasks=4, **kwargs):
    defaults = dict(
        num_rounds=2, mean_task_work_units=300.0, work_cv=0.3,
        straggler_probability=0.0, seed=7,
    )
    defaults.update(kwargs)
    return ParallelJob("parallel", num_tasks=n_tasks, **defaults)


def run(eco, app, policy, ticks):
    engine = SimulationEngine(eco, SimulationClock(60.0))
    engine.add_application(app, SOLAR_ONLY, policy)
    engine.run(ticks, stop_when_batch_complete=True)
    return engine


class TestStaticCaps:
    def test_equal_split(self):
        eco = solar_ecovisor(8.0)
        job = job_with(4)
        policy = StaticSolarCapPolicy()
        run(eco, job, policy, 3)
        caps = [c.power_cap_w for c in policy.api.list_containers()]
        assert all(cap == pytest.approx(2.0) for cap in caps)

    def test_launches_one_container_per_task(self):
        eco = solar_ecovisor(8.0)
        job = job_with(4)
        policy = StaticSolarCapPolicy()
        run(eco, job, policy, 1)
        assert len(policy.api.list_containers()) == 4

    def test_requires_parallel_job(self):
        eco = solar_ecovisor(8.0)
        job = MLTrainingJob(total_work_units=100.0)
        with pytest.raises(TypeError):
            run(eco, job, StaticSolarCapPolicy(), 1)


class TestDynamicCaps:
    def test_caps_proportional_to_remaining_work(self):
        eco = solar_ecovisor(8.0)
        job = job_with(4, work_cv=0.6)
        policy = DynamicSolarCapPolicy()
        run(eco, job, policy, 2)
        remaining = job.task_remaining()
        caps = {}
        for task, cid in job._task_containers.items():
            container = next(
                c for c in policy.api.list_containers() if c.id == cid
            )
            caps[task] = container.power_cap_w
        # Strictly more remaining work must never get a smaller cap.
        tasks = sorted(caps, key=lambda t: remaining[t])
        cap_values = [caps[t] for t in tasks]
        assert cap_values == sorted(cap_values)

    def test_caps_sum_to_solar_supply(self):
        eco = solar_ecovisor(8.0)
        job = job_with(4)
        policy = DynamicSolarCapPolicy()
        run(eco, job, policy, 2)
        total = sum(c.power_cap_w for c in policy.api.list_containers())
        assert total == pytest.approx(8.0, rel=1e-6)

    def test_beats_static_on_unbalanced_work(self):
        """The Figure 10 mechanism at miniature scale."""
        results = {}
        for name, policy_cls in (
            ("static", StaticSolarCapPolicy),
            ("dynamic", DynamicSolarCapPolicy),
        ):
            eco = solar_ecovisor(3.0)  # scarce: ~60% of the 4-task max
            job = job_with(4, work_cv=0.5, seed=21)
            run(eco, job, policy_cls(), 300)
            results[name] = job.completion_time_s or float("inf")
        assert results["dynamic"] < results["static"]


class TestStragglerReplicas:
    def test_replicas_spawned_for_stragglers_with_excess_solar(self):
        eco = solar_ecovisor(12.0)  # 4 tasks need 5 W: plenty of excess
        # A *mix* of slow and normal tasks: only lagging tasks can be
        # detected relative to the median.
        job = job_with(4, straggler_probability=0.5, straggler_factor=4.0,
                       seed=13)
        policy = StragglerReplicaPolicy(WORKER_W)
        run(eco, job, policy, 30)
        assert policy.replicas_launched_total > 0

    def test_no_replicas_without_excess(self):
        eco = solar_ecovisor(5.0)  # exactly the 4 primaries' draw
        job = job_with(4, straggler_probability=0.5, straggler_factor=4.0,
                       seed=13)
        policy = StragglerReplicaPolicy(WORKER_W)
        run(eco, job, policy, 30)
        assert policy.replicas_launched_total == 0

    def test_disabled_replicas_spawn_nothing(self):
        eco = solar_ecovisor(12.0)
        job = job_with(4, straggler_probability=0.5, straggler_factor=4.0,
                       seed=13)
        policy = StragglerReplicaPolicy(WORKER_W, enable_replicas=False)
        run(eco, job, policy, 30)
        assert policy.replicas_launched_total == 0

    def test_replicas_retired_at_round_boundary(self):
        eco = solar_ecovisor(12.0)
        job = job_with(
            4, straggler_probability=0.5, straggler_factor=3.0,
            mean_task_work_units=150.0,
        )
        policy = StragglerReplicaPolicy(WORKER_W)
        engine = run(eco, job, policy, 400)
        assert job.is_complete
        # Teardown happens on the tick after completion.
        engine.run(2)
        assert policy.api.list_containers() == []
        assert job.replica_count() == 0

    def test_replicas_reduce_runtime(self):
        """The Figure 11 mechanism at miniature scale."""
        results = {}
        for name, enabled in (("with", True), ("without", False)):
            eco = solar_ecovisor(12.0)
            job = job_with(
                4, straggler_probability=0.5, straggler_factor=4.0, seed=13
            )
            policy = StragglerReplicaPolicy(WORKER_W, enable_replicas=enabled)
            run(eco, job, policy, 2000)
            results[name] = job.completion_time_s or float("inf")
        assert results["with"] < results["without"]

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerReplicaPolicy(0.0)
        with pytest.raises(ValueError):
            StragglerReplicaPolicy(WORKER_W, detection_threshold=0.5)
