"""BLAST workload: linear scaling, queue bottleneck, coordinator."""

import pytest

from repro.core.api import connect
from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig
from repro.workloads.blast import BlastJob
from tests.conftest import make_ecovisor


def bind(job, workers=0):
    eco = make_ecovisor(solar_w=0.0, num_servers=10)
    eco.register_app(job.name, ShareConfig())
    api = connect(eco, job.name)
    job.bind(api)
    if workers:
        api.scale_to(workers, cores=1)
    return eco, api


def drive(eco, job, ticks, clock=None):
    clock = clock or SimulationClock(60.0)
    for _ in range(ticks):
        tick = clock.current_tick()
        eco.begin_tick(tick)
        eco.invoke_app_ticks(tick)
        job.step(tick, tick.duration_s)
        eco.settle(tick)
        job.finish_tick(tick, tick.duration_s, 1.0)
        clock.advance()


class TestScaling:
    def test_linear_below_queue_cap(self):
        job = BlastJob()
        assert job.throughput_units_per_s([1.0] * 8) == pytest.approx(8.0)
        assert job.throughput_units_per_s([1.0] * 16) == pytest.approx(16.0)
        assert job.throughput_units_per_s([1.0] * 24) == pytest.approx(24.0)

    def test_flat_beyond_queue_cap(self):
        job = BlastJob()
        assert job.throughput_units_per_s([1.0] * 32) == pytest.approx(24.0)

    def test_utilization_counts_fractionally(self):
        job = BlastJob()
        assert job.throughput_units_per_s([0.5] * 8) == pytest.approx(4.0)

    def test_ideal_runtime(self):
        job = BlastJob(total_work_units=240.0)
        assert job.ideal_runtime_s(8) == pytest.approx(30.0)
        # 4x workers gains nothing over 3x.
        assert job.ideal_runtime_s(32) == job.ideal_runtime_s(24)


class TestCoordinator:
    def test_coordinator_launched_on_bind(self):
        job = BlastJob()
        _, api = bind(job)
        roles = [c.role for c in api.list_containers()]
        assert roles == ["coordinator"]
        assert job.coordinator_id is not None

    def test_coordinator_survives_worker_scaling(self):
        job = BlastJob()
        eco, api = bind(job, workers=8)
        api.scale_to(0, cores=1)
        roles = [c.role for c in api.list_containers()]
        assert roles == ["coordinator"]

    def test_coordinator_draws_power_while_suspended(self):
        job = BlastJob()
        eco, api = bind(job, workers=0)
        drive(eco, job, 2)
        assert eco.ledger.app_energy_wh(job.name) > 0.0

    def test_coordinator_utilization_tracks_workers(self):
        job = BlastJob()
        eco, api = bind(job, workers=24)
        drive(eco, job, 1)
        coordinator = next(
            c for c in api.list_containers() if c.role == "coordinator"
        )
        assert coordinator.demand_utilization == pytest.approx(1.0)

    def test_coordinator_stopped_on_completion(self):
        job = BlastJob(total_work_units=480.0)
        eco, api = bind(job, workers=8)
        drive(eco, job, 2)
        assert job.is_complete
        # The job reaps its own coordinator; workers are the policy's to
        # reap.
        roles = {c.role for c in api.list_containers()}
        assert "coordinator" not in roles
        assert job.coordinator_id is None

    def test_coordinator_disabled_with_zero_cores(self):
        job = BlastJob(coordinator_cores=0.0)
        _, api = bind(job)
        assert api.list_containers() == []


class TestEndToEnd:
    def test_completes_and_counts_energy(self):
        job = BlastJob(total_work_units=960.0)
        eco, _ = bind(job, workers=8)
        drive(eco, job, 5)
        assert job.is_complete
        assert job.completion_time_s == pytest.approx(120.0)
        assert eco.ledger.app_carbon_g(job.name) > 0.0


class TestValidation:
    def test_rejects_bad_queue_capacity(self):
        with pytest.raises(ValueError):
            BlastJob(queue_capacity_workers=0.0)

    def test_rejects_negative_coordinator_cores(self):
        with pytest.raises(ValueError):
            BlastJob(coordinator_cores=-1.0)

    def test_rejects_bad_coordinator_utilization(self):
        with pytest.raises(ValueError):
            BlastJob(coordinator_base_utilization=2.0)
