"""Software-defined power monitor."""

import pytest

from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.config import ClusterConfig
from repro.telemetry.monitor import PowerMonitor


@pytest.fixture
def setup():
    platform = ContainerOrchestrationPlatform(ClusterConfig(num_servers=2))
    monitor = PowerMonitor(platform)
    return platform, monitor


class TestContainerSampling:
    def test_readings_match_platform(self, setup):
        platform, monitor = setup
        c = platform.launch_container("app", 1)
        c.set_demand_utilization(1.0)
        readings = monitor.sample_containers(0.0)
        assert readings[c.id] == pytest.approx(1.25)
        assert monitor.database.latest(f"container.{c.id}.power_w") == pytest.approx(1.25)

    def test_sampling_records_series_over_time(self, setup):
        platform, monitor = setup
        c = platform.launch_container("app", 1)
        monitor.sample_containers(0.0)
        monitor.sample_containers(60.0)
        series = monitor.database.series(f"container.{c.id}.power_w")
        assert len(series) == 2


class TestAppSampling:
    def test_app_power_and_count(self, setup):
        platform, monitor = setup
        for _ in range(3):
            platform.launch_container("app", 1).set_demand_utilization(1.0)
        readings = monitor.sample_apps(0.0, ["app"])
        assert readings["app"] == pytest.approx(3.75)
        assert monitor.database.latest("app.app.containers") == 3.0

    def test_missing_app_reads_zero(self, setup):
        _, monitor = setup
        readings = monitor.sample_apps(0.0, ["ghost"])
        assert readings["ghost"] == 0.0


class TestPlantRecording:
    def test_plant_series(self, setup):
        _, monitor = setup
        monitor.record_plant(0.0, solar_w=5.0, battery_level_wh=10.0, grid_power_w=2.0)
        assert monitor.database.latest("plant.solar_w") == 5.0
        assert monitor.database.latest("plant.battery_level_wh") == 10.0
        assert monitor.database.latest("plant.grid_power_w") == 2.0

    def test_carbon_series(self, setup):
        _, monitor = setup
        monitor.record_carbon_intensity(0.0, 250.0)
        assert monitor.database.latest("grid.carbon_g_per_kwh") == 250.0

    def test_app_carbon_rate_series(self, setup):
        _, monitor = setup
        monitor.record_app_carbon_rate(0.0, "app", 0.4)
        assert monitor.database.latest("app.app.carbon_rate_mg_s") == 0.4

    def test_cluster_sampling(self, setup):
        platform, monitor = setup
        power = monitor.sample_cluster(0.0)
        assert power == pytest.approx(platform.cluster_power_w())


class TestBatchedSampling:
    def test_record_app_power_matches_sample_apps_series(self, setup):
        # The batched settlement loop sums bulk readings and records
        # via record_app_power; the recorded series must be exactly
        # what the per-app fallback sampler would have written.
        platform, monitor = setup
        platform.launch_container("a", 1).set_demand_utilization(0.8)
        platform.launch_container("a", 1).set_demand_utilization(0.4)
        platform.launch_container("b", 2).set_demand_utilization(0.6)
        readings = monitor.sample_containers(0.0)
        for name in ("a", "b"):
            containers = platform.running_containers_for(name)
            power = sum(readings[c.id] for c in containers)
            monitor.record_app_power(0.0, name, power, len(containers))
        live = monitor.sample_apps(60.0, ["a", "b"])
        for name in ("a", "b"):
            values = monitor.database.series(f"app.{name}.power_w").values()
            assert values[0] == values[1] == live[name]
            counts = monitor.database.series(f"app.{name}.containers").values()
            assert counts[0] == counts[1]

    def test_sample_cluster_with_readings_matches_live(self, setup):
        platform, monitor = setup
        platform.launch_container("a", 1).set_demand_utilization(0.8)
        readings = monitor.sample_containers(0.0)
        assert monitor.sample_cluster(0.0, readings) == monitor.sample_cluster(
            60.0
        )

    def test_series_handles_are_cached(self, setup):
        _, monitor = setup
        monitor.record_carbon_intensity(0.0, 100.0)
        handle = monitor.database.series("grid.carbon_g_per_kwh")
        monitor.record_carbon_intensity(60.0, 120.0)
        assert monitor.database.series("grid.carbon_g_per_kwh") is handle
        assert len(handle) == 2
