"""Barrier-synchronized parallel job with stragglers and replicas."""

import numpy as np
import pytest

from repro.core.api import connect
from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig
from repro.workloads.parallel import ParallelJob
from tests.conftest import make_ecovisor


def bind(job):
    eco = make_ecovisor(solar_w=0.0)
    eco.register_app(job.name, ShareConfig())
    api = connect(eco, job.name)
    job.bind(api)
    containers = api.scale_to(job.num_tasks, cores=1)
    for task, container in enumerate(containers):
        job.assign_task_container(task, container.id)
    return eco, api


def drive(eco, job, ticks, served_fraction=1.0, clock=None):
    clock = clock or SimulationClock(60.0)
    for _ in range(ticks):
        tick = clock.current_tick()
        eco.begin_tick(tick)
        eco.invoke_app_ticks(tick)
        job.step(tick, tick.duration_s)
        eco.settle(tick)
        job.finish_tick(tick, tick.duration_s, served_fraction)
        clock.advance()


def uniform_job(**kwargs) -> ParallelJob:
    defaults = dict(
        num_tasks=4,
        num_rounds=2,
        mean_task_work_units=120.0,
        work_cv=1e-6,
        straggler_probability=0.0,
        seed=1,
    )
    defaults.update(kwargs)
    return ParallelJob("parallel", **defaults)


class TestRounds:
    def test_round_advances_when_all_tasks_finish(self):
        job = uniform_job()
        eco, _ = bind(job)
        drive(eco, job, 3)  # ~120 units per task at 1 u/s
        assert job.current_round >= 1

    def test_completion(self):
        job = uniform_job()
        eco, _ = bind(job)
        drive(eco, job, 6)
        assert job.is_complete
        assert job.completion_time_s <= 360.0

    def test_work_done_accumulates(self):
        job = uniform_job()
        eco, _ = bind(job)
        drive(eco, job, 6)
        assert job.work_done_units == pytest.approx(job.total_useful_work_units, rel=1e-6)

    def test_barrier_idles_finished_tasks(self):
        job = uniform_job(work_cv=0.5, seed=3)
        eco, api = bind(job)
        clock = SimulationClock(60.0)
        drive(eco, job, 1, clock=clock)
        # Refresh demands for the next interval: finished tasks wait at
        # the barrier with zero demand.
        job.step(clock.current_tick(), 60.0)
        remaining = job.task_remaining()
        finished = [i for i in range(job.num_tasks) if remaining[i] <= 0]
        assert finished, "seed 3 should finish at least one task in a tick"
        container_id = job._task_containers[finished[0]]
        container = next(
            c for c in api.list_containers() if c.id == container_id
        )
        assert container.demand_utilization == 0.0


class TestStragglers:
    def test_straggler_slows_execution(self):
        fast = uniform_job(seed=9)
        slow = uniform_job(straggler_probability=1.0, straggler_factor=2.0, seed=9)
        eco_f, _ = bind(fast)
        eco_s, _ = bind(slow)
        drive(eco_f, fast, 4)
        drive(eco_s, slow, 4)
        assert slow.work_done_units < fast.work_done_units

    def test_detection_flags_lagging_tasks(self):
        job = uniform_job(
            num_tasks=10, straggler_probability=0.2, straggler_factor=4.0, seed=5
        )
        eco, _ = bind(job)
        drive(eco, job, 1)
        detected = set(job.straggler_tasks(threshold_factor=1.5))
        injected = set(job.injected_stragglers_this_round())
        # Everything detected must actually be slow.
        assert detected <= injected

    def test_ground_truth_accessor(self):
        job = uniform_job(straggler_probability=1.0)
        assert job.injected_stragglers_this_round() == list(range(job.num_tasks))


class TestReplicas:
    def test_replica_speeds_up_straggler(self):
        job = uniform_job(
            num_tasks=2, num_rounds=1, straggler_probability=1.0,
            straggler_factor=4.0,
        )
        eco, api = bind(job)
        replica = api.launch_container(1)
        job.add_replica(0, replica.id)
        drive(eco, job, 2)
        remaining = job.task_remaining()
        # Task 0 ran at full replica speed; task 1 crawled at 1/4 speed.
        assert remaining[0] < remaining[1]

    def test_clear_replicas_returns_ids(self):
        job = uniform_job()
        eco, api = bind(job)
        replica = api.launch_container(1)
        job.add_replica(0, replica.id)
        assert job.clear_replicas() == [replica.id]
        assert job.replica_count() == 0

    def test_bad_task_index_rejected(self):
        job = uniform_job()
        with pytest.raises(IndexError):
            job.add_replica(99, "x")


class TestServedFraction:
    def test_brownout_scales_progress(self):
        job = uniform_job()
        eco, _ = bind(job)
        drive(eco, job, 2, served_fraction=0.5)
        # Two half-served ticks = one full tick of progress per task.
        assert job.task_remaining()[0] == pytest.approx(60.0)


class TestValidation:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ParallelJob(num_tasks=0)
        with pytest.raises(ValueError):
            ParallelJob(straggler_probability=1.5)
        with pytest.raises(ValueError):
            ParallelJob(straggler_factor=0.5)

    def test_deterministic_work_matrix(self):
        a = ParallelJob(seed=4)
        b = ParallelJob(seed=4)
        assert np.array_equal(a.task_remaining(), b.task_remaining())
