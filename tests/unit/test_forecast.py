"""Carbon forecasting."""

import numpy as np
import pytest

from repro.carbon.forecast import (
    DiurnalProfileForecaster,
    OracleForecaster,
    PersistenceForecaster,
    forecast_error_mae,
)
from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import (
    CarbonTrace,
    SAMPLE_INTERVAL_S,
    constant_trace,
    make_region_trace,
)
from repro.core.config import CarbonServiceConfig
from repro.core.errors import TraceError

HOUR = 3600.0
DAY = 24 * HOUR


def service_for(trace) -> CarbonIntensityService:
    return CarbonIntensityService(CarbonServiceConfig(region="t"), trace=trace)


class TestPersistence:
    def test_predicts_current_value(self):
        svc = service_for(CarbonTrace([100.0, 300.0] * 100))
        forecaster = PersistenceForecaster(svc)
        prediction = forecaster.predict(0.0, HOUR)
        assert np.all(prediction == 100.0)
        assert len(prediction) == 12

    def test_perfect_on_constant_trace(self):
        svc = service_for(constant_trace(222.0, days=2))
        forecaster = PersistenceForecaster(svc)
        assert forecast_error_mae(forecaster, 0.0, DAY) == 0.0

    def test_rejects_bad_horizon(self):
        svc = service_for(constant_trace(100.0))
        with pytest.raises(TraceError):
            PersistenceForecaster(svc).predict(0.0, 0.0)


class TestDiurnalProfile:
    def test_learns_daily_pattern(self):
        # A trace that repeats exactly every day.
        day = [100.0] * 144 + [300.0] * 144  # low nights, high days
        svc = service_for(CarbonTrace(day * 4))
        forecaster = DiurnalProfileForecaster(svc, history_days=2)
        for i in range(2 * 288):  # observe two full days
            forecaster.observe(i * SAMPLE_INTERVAL_S)
        # Predict the third day: should reproduce the pattern exactly.
        prediction = forecaster.predict(2 * DAY, DAY)
        truth = OracleForecaster(svc).predict(2 * DAY, DAY)
        assert np.abs(prediction - truth).max() == pytest.approx(0.0)

    def test_falls_back_to_persistence_without_history(self):
        svc = service_for(CarbonTrace([100.0, 300.0] * 200))
        forecaster = DiurnalProfileForecaster(svc)
        prediction = forecaster.predict(0.0, HOUR)
        assert np.all(prediction == 100.0)

    def test_beats_persistence_on_structured_trace(self):
        # A grid dominated by diurnal structure (strong duck curve, mild
        # noise): exactly the regime where profile forecasting pays off.
        from repro.carbon.traces import RegionProfile, synthesize_trace

        profile = RegionProfile(
            name="structured", base_g_per_kwh=220.0, diurnal_amplitude=40.0,
            duck_amplitude=120.0, noise_sigma=4.0, noise_persistence=0.9,
            floor=60.0, ceiling=380.0, fast_noise_sigma=3.0,
        )
        trace = synthesize_trace(profile, days=6)
        svc = service_for(trace)
        diurnal = DiurnalProfileForecaster(svc, history_days=3)
        persistence = PersistenceForecaster(svc)
        for i in range(3 * 288):
            diurnal.observe(i * SAMPLE_INTERVAL_S)
        # At mid-morning of day 4, predict the next 12 hours.
        now = 3 * DAY + 9 * HOUR
        assert forecast_error_mae(diurnal, now, 12 * HOUR) < forecast_error_mae(
            persistence, now, 12 * HOUR
        )

    def test_rejects_bad_history(self):
        svc = service_for(constant_trace(100.0))
        with pytest.raises(TraceError):
            DiurnalProfileForecaster(svc, history_days=0)


class TestOracle:
    def test_reads_trace_exactly(self):
        trace = make_region_trace("ontario", days=2)
        svc = service_for(trace)
        forecaster = OracleForecaster(svc)
        assert forecast_error_mae(forecaster, 0.0, DAY) == 0.0

    def test_percentile_matches_trace_percentile(self):
        trace = make_region_trace("caiso", days=2)
        svc = service_for(trace)
        forecaster = OracleForecaster(svc)
        predicted = forecaster.percentile(0.0, DAY, 30.0)
        actual = trace.percentile(30.0, SAMPLE_INTERVAL_S, DAY + SAMPLE_INTERVAL_S)
        assert predicted == pytest.approx(actual, rel=0.02)
