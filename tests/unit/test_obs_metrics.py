"""Metrics registry: counters, gauges, histograms, families, rendering."""

import math

import pytest

from repro.obs.metrics import (
    CallbackCounter,
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    format_labels,
    format_value,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("requests_total")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad-name")

    def test_family_requires_labels_call(self):
        family = Counter("requests_total", labelnames=("route",))
        with pytest.raises(ValueError, match="family"):
            family.inc()

    def test_labels_cache_children(self):
        family = Counter("requests_total", labelnames=("route",))
        a = family.labels(route="/x")
        a.inc()
        assert family.labels(route="/x") is a
        assert family.labels(route="/x").value == 1

    def test_wrong_label_set_rejected(self):
        family = Counter("requests_total", labelnames=("route",))
        with pytest.raises(ValueError, match="expects labels"):
            family.labels(verb="GET")

    def test_labels_on_plain_metric_rejected(self):
        with pytest.raises(ValueError, match="no labels"):
            Counter("requests_total").labels(route="/x")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4

    def test_can_go_negative(self):
        g = Gauge("depth")
        g.dec(1.5)
        assert g.value == -1.5


class TestHistogram:
    def test_observe_fills_the_right_bucket(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert h.bucket_counts() == {0.1: 1, 1.0: 1, math.inf: 1}
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are inclusive upper bounds.
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.1)
        assert h.bucket_counts()[0.1] == 1

    def test_exposition_buckets_are_cumulative(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        samples = {
            (suffix, labels.get("le")): value
            for suffix, labels, value in h.samples()
        }
        assert samples[("_bucket", "0.1")] == 1
        assert samples[("_bucket", "1")] == 2
        assert samples[("_bucket", "+Inf")] == 3
        assert samples[("_count", None)] == 3

    def test_percentile_is_bucket_upper_bound(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            h.observe(0.05)
        h.observe(5.0)
        assert h.percentile(50.0) == 0.1
        assert h.percentile(100.0) == 10.0
        assert Histogram("empty").percentile(50.0) == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("lat", buckets=(1.0, 0.1))

    def test_infinite_bucket_rejected(self):
        # +Inf is implicit; spelling it out would double-count.
        with pytest.raises(ValueError, match="finite"):
            Histogram("lat", buckets=(0.1, math.inf))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("lat", buckets=())

    def test_labeled_children_have_independent_counts(self):
        family = Histogram("lat", labelnames=("route",), buckets=(1.0,))
        family.labels(route="/a").observe(0.5)
        assert family.labels(route="/a").count == 1
        assert family.labels(route="/b").count == 0


class TestFormatting:
    def test_integers_render_without_decimal_point(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"

    def test_labels_sorted_and_escaped(self):
        assert format_labels({}) == ""
        text = format_labels({"b": 'x"y', "a": "p\nq"})
        assert text == '{a="p\\nq",b="x\\"y"}'


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("ticks_total")
        assert registry.counter("ticks_total") is first
        assert registry.get("ticks_total") is first

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_labelname_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("route",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("x", labelnames=("verb",))

    def test_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="already registered with buckets"):
            registry.histogram("h", buckets=(2.0,))

    def test_callback_metrics_read_at_collect_time(self):
        registry = MetricsRegistry()
        box = {"n": 0}
        registry.counter_fn("drops_total", "", lambda: box["n"])
        box["n"] = 7
        assert "drops_total 7" in registry.render()

    def test_callback_re_registration_repoints_the_function(self):
        # The newest owner wins — how a rebuilt engine takes over the
        # ecovisor's profiler counters.
        registry = MetricsRegistry()
        metric = registry.counter_fn("drops_total", "", lambda: 1)
        assert registry.counter_fn("drops_total", "", lambda: 2) is metric
        assert "drops_total 2" in registry.render()

    def test_callback_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter_fn("x", "", lambda: 0)
        registry.gauge("y")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge_fn("y", "", lambda: 0)

    def test_callback_kinds(self):
        assert CallbackCounter("c", "", lambda: 1).kind == "counter"
        assert CallbackGauge("g", "", lambda: 1).kind == "gauge"

    def test_child_samples_carry_const_labels(self):
        root = MetricsRegistry()
        child = root.child(engine="e0")
        child.counter("ticks_total").inc(3)
        assert 'ticks_total{engine="e0"} 3' in root.render()

    def test_nested_children_merge_labels(self):
        root = MetricsRegistry(const_labels={"host": "h1"})
        grandchild = root.child(engine="e0").child(app="a")
        grandchild.counter("x").inc()
        assert 'x{app="a",engine="e0",host="h1"} 1' in root.render()

    def test_same_name_across_children_shares_one_type_block(self):
        root = MetricsRegistry()
        root.child(engine="a").counter("ticks_total").inc()
        root.child(engine="b").counter("ticks_total").inc(2)
        text = root.render()
        assert text.count("# TYPE ticks_total counter") == 1
        assert 'ticks_total{engine="a"} 1' in text
        assert 'ticks_total{engine="b"} 2' in text

    def test_conflicting_kinds_across_children_fail_render(self):
        root = MetricsRegistry()
        root.child(engine="a").counter("x")
        root.child(engine="b").gauge("x")
        with pytest.raises(ValueError, match="conflicting"):
            root.render()

    def test_render_empty_registry(self):
        assert MetricsRegistry().render() == ""

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc()
        assert registry.render() == registry.render()
        names = [
            line.split()[2]
            for line in registry.render().splitlines()
            if line.startswith("# TYPE")
        ]
        assert names == sorted(names)

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()
