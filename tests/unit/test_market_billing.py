"""Billing: settlement cost fields, ledger queries, ecovisor wiring."""

import pytest

from repro.core.accounting import TickSettlement
from repro.core.api import connect
from repro.core.config import ShareConfig
from repro.core.errors import EnergyConservationError
from repro.core.events import PriceChangeEvent
from repro.core.library import AppEnergyLibrary
from repro.market.prices import PriceTrace, constant_price_trace
from tests.conftest import make_ecovisor, run_ticks


def settlement(price: float = 0.0, cost: float = None, grid_wh: float = 1.0):
    """A grid-only settlement billed at ``price`` (cost defaults correct)."""
    if cost is None:
        cost = grid_wh / 1000.0 * price
    return TickSettlement(
        app_name="a",
        time_s=0.0,
        duration_s=60.0,
        carbon_intensity_g_per_kwh=200.0,
        demand_wh=grid_wh,
        served_wh=grid_wh,
        unmet_wh=0.0,
        solar_available_wh=0.0,
        solar_used_wh=0.0,
        solar_to_battery_wh=0.0,
        curtailed_wh=0.0,
        battery_discharge_wh=0.0,
        grid_load_wh=grid_wh,
        grid_to_battery_wh=0.0,
        carbon_g=grid_wh / 1000.0 * 200.0,
        price_usd_per_kwh=price,
        cost_usd=cost,
    )


class TestSettlementBilling:
    def test_defaults_are_cost_free(self):
        s = settlement()
        s.validate()
        assert s.price_usd_per_kwh == 0.0
        assert s.cost_usd == 0.0

    def test_consistent_billing_validates(self):
        settlement(price=0.40).validate()

    def test_inconsistent_billing_rejected(self):
        with pytest.raises(EnergyConservationError):
            settlement(price=0.40, cost=99.0).validate()

    def test_negative_cost_rejected(self):
        with pytest.raises(EnergyConservationError):
            settlement(price=0.0, cost=-1.0).validate()


class TestLedgerCost:
    def _run(self, price_trace):
        eco = make_ecovisor(
            solar_w=0.0, carbon_g_per_kwh=200.0, price_trace=price_trace
        )
        eco.register_app("a", ShareConfig())
        container = eco.launch_container("a", 1)
        run_ticks(eco, 10, lambda tick: container.set_demand_utilization(1.0))
        return eco

    def test_app_cost_accumulates_grid_times_price(self):
        eco = self._run(constant_price_trace(0.40))
        account = eco.ledger.account("a")
        assert account.cost_usd > 0.0
        assert account.cost_usd == pytest.approx(account.grid_wh / 1000.0 * 0.40)
        assert eco.ledger.app_cost_usd("a") == account.cost_usd
        assert eco.ledger.total_cost_usd() == account.cost_usd

    def test_app_cost_equals_settlement_sum(self):
        eco = self._run(constant_price_trace(0.40))
        account = eco.ledger.account("a")
        assert account.cost_usd == pytest.approx(
            sum(s.cost_usd for s in account.settlements), abs=1e-12
        )

    def test_cost_between_windows(self):
        eco = self._run(constant_price_trace(0.40))
        total = eco.ledger.app_cost_usd("a")
        first = eco.ledger.cost_between("a", 0.0, 300.0)
        rest = eco.ledger.cost_between("a", 300.0, 600.0)
        assert first + rest == pytest.approx(total)

    def test_tou_boundary_tick_bills_new_price(self):
        """Ticks before a 5-minute price step bill the old price, the
        boundary tick the new one (mirrors a TOU period edge)."""
        eco = self._run(PriceTrace([0.10, 0.50]))
        settlements = eco.ledger.account("a").settlements
        assert [s.price_usd_per_kwh for s in settlements[:5]] == [0.10] * 5
        assert [s.price_usd_per_kwh for s in settlements[5:]] == [0.50] * 5
        low = sum(s.cost_usd for s in settlements[:5])
        high = sum(s.cost_usd for s in settlements[5:])
        assert high == pytest.approx(5.0 * low)

    def test_no_market_means_zero_cost(self):
        eco = self._run(None)
        assert eco.ledger.app_cost_usd("a") == 0.0
        assert eco.current_price_usd_per_kwh == 0.0
        assert not eco.has_market
        assert "grid.price_usd_per_kwh" not in eco.database.series_names()


class TestSolarOnlyBillsZero:
    def test_zero_grid_draw_interval_bills_zero(self):
        eco = make_ecovisor(
            solar_w=50.0, carbon_g_per_kwh=200.0,
            price_trace=constant_price_trace(0.55),
        )
        eco.register_app("a", ShareConfig(solar_fraction=1.0, grid_power_w=0.0))
        container = eco.launch_container("a", 1)
        run_ticks(eco, 5, lambda tick: container.set_demand_utilization(1.0))
        account = eco.ledger.account("a")
        assert account.energy_wh > 0.0  # solar served real demand
        assert account.grid_wh == 0.0
        assert account.cost_usd == 0.0  # no grid draw, no bill
        # The price was nonetheless visible all along.
        assert eco.current_price_usd_per_kwh == pytest.approx(0.55)


class TestMarketSurface:
    def _eco(self, price_trace=None):
        eco = make_ecovisor(
            solar_w=0.0,
            price_trace=price_trace or constant_price_trace(0.40),
        )
        eco.register_app("a", ShareConfig())
        return eco

    def test_api_getters(self):
        eco = self._eco()
        container = eco.launch_container("a", 1)
        run_ticks(eco, 3, lambda tick: container.set_demand_utilization(1.0))
        api = connect(eco, "a")
        assert api.get_grid_price() == pytest.approx(0.40)
        assert api.get_energy_cost() == pytest.approx(eco.ledger.app_cost_usd("a"))
        assert api.get_energy_cost() > 0.0

    def test_library_cost_query(self):
        eco = self._eco()
        api = connect(eco, "a")
        library = AppEnergyLibrary(api)
        container = eco.launch_container("a", 1)
        run_ticks(eco, 4, lambda tick: container.set_demand_utilization(1.0))
        assert library.get_app_cost() == pytest.approx(eco.ledger.app_cost_usd("a"))
        windowed = library.get_app_cost(0.0, 120.0)
        assert 0.0 < windowed < library.get_app_cost()

    def test_cost_telemetry_series(self):
        eco = self._eco()
        container = eco.launch_container("a", 1)
        run_ticks(eco, 3, lambda tick: container.set_demand_utilization(1.0))
        names = eco.database.series_names()
        assert "grid.price_usd_per_kwh" in names
        assert "app.a.cost_usd" in names
        series = eco.database.series("app.a.cost_usd")
        assert sum(series.values()) == pytest.approx(eco.ledger.app_cost_usd("a"))

    def test_price_change_event_published(self):
        # One 0.10 -> 0.50 step: well above the 0.05 default threshold.
        eco = self._eco(price_trace=PriceTrace([0.10, 0.50]))
        events = []
        eco.events.subscribe(PriceChangeEvent, events.append)
        run_ticks(eco, 10)
        assert len(events) == 1
        assert events[0].previous_usd_per_kwh == pytest.approx(0.10)
        assert events[0].current_usd_per_kwh == pytest.approx(0.50)
        assert events[0].delta_usd_per_kwh == pytest.approx(0.40)

    def test_price_change_event_fires_off_the_zero_floor(self):
        """Real-time prices floor at 0.0; a spike off the floor must
        still publish (0.0 is a real sample, not 'no previous')."""
        eco = self._eco(price_trace=PriceTrace([0.0, 0.9]))
        events = []
        eco.events.subscribe(PriceChangeEvent, events.append)
        run_ticks(eco, 10)
        assert len(events) == 1
        assert events[0].previous_usd_per_kwh == 0.0
        assert events[0].current_usd_per_kwh == pytest.approx(0.9)

    def test_flat_price_publishes_no_change_events(self):
        eco = self._eco()
        run_ticks(eco, 10)
        assert eco.events.published_count(PriceChangeEvent) == 0

    def test_library_notify_price_change(self):
        eco = self._eco(price_trace=PriceTrace([0.10, 0.50]))
        api = connect(eco, "a")
        library = AppEnergyLibrary(api)
        seen = []
        library.notify_price_change(seen.append)
        run_ticks(eco, 10)
        assert len(seen) == 1
