"""Cost-aware policies: price threshold and blended carbon+cost."""

import pytest

from repro.carbon.forecast import OracleForecaster
from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import CarbonTrace
from repro.core.clock import SimulationClock
from repro.core.config import CarbonServiceConfig, ShareConfig
from repro.market.prices import PriceTrace, constant_price_trace
from repro.market.service import PriceSignal
from repro.policies import (
    CarbonCostPolicy,
    PriceThresholdPolicy,
    blended_index,
    blended_threshold,
)
from repro.sim.engine import SimulationEngine
from repro.workloads.mltrain import MLTrainingJob
from tests.conftest import make_ecovisor


def market_ecovisor(price_samples, carbon_samples=None):
    """Grid-only ecovisor with explicit price (and optional carbon) traces."""
    eco = make_ecovisor(
        solar_w=0.0, num_servers=10, price_trace=PriceTrace(price_samples)
    )
    if carbon_samples is not None:
        eco._carbon_service = CarbonIntensityService(
            CarbonServiceConfig(region="alt"),
            trace=CarbonTrace(carbon_samples),
        )
    return eco


def run(eco, app, policy, ticks):
    engine = SimulationEngine(eco, SimulationClock(60.0))
    engine.add_application(app, ShareConfig(), policy)
    engine.run(ticks)
    return engine


class TestPriceThresholdPolicy:
    def _policy(self, eco, percentile=50.0, window_s=None):
        signal = eco.price_signal
        return PriceThresholdPolicy(
            OracleForecaster(signal),
            percentile,
            window_s or signal.trace.duration_s,
            base_workers=2,
            scale_factor=2.0,
        )

    def test_flips_with_price(self):
        eco = market_ecovisor([0.10, 0.50] * 100)
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        # A 10-sample window balances the alternating levels exactly, so
        # the 50th-percentile threshold lands midway at 0.30.
        policy = self._policy(eco, window_s=3000.0)
        engine = SimulationEngine(eco, SimulationClock(60.0))
        engine.add_application(job, ShareConfig(), policy)
        counts = []
        for _ in range(10):
            engine.run(1)
            counts.append(policy.current_worker_count())
        # Ticks 0-4 (price 0.10): running scaled; ticks 5-9 (0.50): suspended.
        assert counts[:5] == [4] * 5
        assert counts[5:] == [0] * 5
        assert policy.current_threshold == pytest.approx(0.30)

    def test_scales_down_after_completion(self):
        eco = market_ecovisor([0.10] * 100)
        job = MLTrainingJob(total_work_units=50.0, warmup_ticks_on_resume=0)
        policy = self._policy(eco)
        run(eco, job, policy, 6)
        assert job.is_complete
        assert policy.current_worker_count() == 0

    def test_validates_arguments(self):
        signal = PriceSignal(trace=constant_price_trace(0.2))
        forecaster = OracleForecaster(signal)
        with pytest.raises(ValueError):
            PriceThresholdPolicy(forecaster, 0.0, 3600.0, 2, 2.0)
        with pytest.raises(ValueError):
            PriceThresholdPolicy(forecaster, 50.0, -1.0, 2, 2.0)
        with pytest.raises(ValueError):
            PriceThresholdPolicy(forecaster, 50.0, 3600.0, 0, 2.0)
        with pytest.raises(ValueError):
            PriceThresholdPolicy(forecaster, 50.0, 3600.0, 2, 0.5)


class TestBlendedIndex:
    def test_endpoints(self):
        assert blended_index(200.0, 0.4, 0.0, 100.0, 0.2) == pytest.approx(2.0)
        assert blended_index(200.0, 0.4, 1.0, 100.0, 0.2) == pytest.approx(2.0)
        assert blended_index(200.0, 0.1, 1.0, 100.0, 0.2) == pytest.approx(0.5)

    def test_zero_scales_contribute_nothing(self):
        assert blended_index(200.0, 0.4, 0.5, 0.0, 0.0) == 0.0

    def test_blended_threshold_reduces_to_single_signal(self):
        carbon = CarbonTrace([100.0, 300.0] * 10)
        price = PriceTrace([0.10, 0.50] * 10)
        # lam=0: percentile of carbon / mean(carbon).
        t0 = blended_threshold(carbon, price, 0.0, 50.0)
        assert t0 == pytest.approx(float(200.0 / 200.0), abs=0.51)
        # lam=1: percentile of price / mean(price).
        t1 = blended_threshold(carbon, price, 1.0, 100.0)
        assert t1 == pytest.approx(0.50 / 0.30, rel=1e-6)

    def test_explicit_scales_respected(self):
        carbon = CarbonTrace([100.0] * 4)
        price = PriceTrace([0.2] * 4)
        t = blended_threshold(
            carbon, price, 0.5, 50.0, carbon_scale=200.0, price_scale=0.4
        )
        assert t == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)


class TestCarbonCostPolicy:
    def test_lambda_zero_tracks_carbon_only(self):
        # Carbon flips, price is flat: with lam=0 the policy must follow
        # carbon and ignore price entirely.
        eco = market_ecovisor([0.30] * 200, carbon_samples=[100.0, 300.0] * 100)
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        policy = CarbonCostPolicy(
            0.0, threshold=1.0, carbon_scale=200.0, price_scale=0.30,
            base_workers=2, scale_factor=2.0,
        )
        engine = SimulationEngine(eco, SimulationClock(60.0))
        engine.add_application(job, ShareConfig(), policy)
        counts = []
        for _ in range(10):
            engine.run(1)
            counts.append(policy.current_worker_count())
        assert counts[:5] == [4] * 5   # carbon 100 -> index 0.5 <= 1.0
        assert counts[5:] == [0] * 5   # carbon 300 -> index 1.5 > 1.0

    def test_lambda_one_tracks_price_only(self):
        eco = market_ecovisor([0.10, 0.50] * 100, carbon_samples=[200.0] * 200)
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        policy = CarbonCostPolicy(
            1.0, threshold=1.0, carbon_scale=200.0, price_scale=0.30,
            base_workers=2, scale_factor=2.0,
        )
        engine = SimulationEngine(eco, SimulationClock(60.0))
        engine.add_application(job, ShareConfig(), policy)
        counts = []
        for _ in range(10):
            engine.run(1)
            counts.append(policy.current_worker_count())
        assert counts[:5] == [4] * 5   # price 0.10 -> index 1/3 <= 1.0
        assert counts[5:] == [0] * 5   # price 0.50 -> index 5/3 > 1.0

    def test_validates_arguments(self):
        kwargs = dict(
            threshold=1.0, carbon_scale=1.0, price_scale=1.0,
            base_workers=2, scale_factor=2.0,
        )
        with pytest.raises(ValueError):
            CarbonCostPolicy(-0.1, **kwargs)
        with pytest.raises(ValueError):
            CarbonCostPolicy(1.1, **kwargs)
        with pytest.raises(ValueError):
            CarbonCostPolicy(0.5, threshold=-1.0, carbon_scale=1.0,
                             price_scale=1.0, base_workers=2, scale_factor=2.0)
        with pytest.raises(ValueError):
            CarbonCostPolicy(0.5, threshold=1.0, carbon_scale=1.0,
                             price_scale=1.0, base_workers=0, scale_factor=2.0)
