"""Simulation clock semantics."""

import pytest

from repro.core.clock import DEFAULT_TICK_INTERVAL_S, SimulationClock, TickInfo
from repro.core.errors import ConfigurationError


class TestConstruction:
    def test_default_interval_is_one_minute(self):
        assert SimulationClock().tick_interval_s == 60.0
        assert DEFAULT_TICK_INTERVAL_S == 60.0

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            SimulationClock(0.0)
        with pytest.raises(ConfigurationError):
            SimulationClock(-1.0)


class TestAdvance:
    def test_starts_at_zero(self):
        clock = SimulationClock(60.0)
        assert clock.now_s == 0.0
        assert clock.tick_index == 0

    def test_advance_moves_time(self):
        clock = SimulationClock(60.0)
        clock.advance()
        assert clock.now_s == 60.0
        assert clock.tick_index == 1

    def test_now_hours(self):
        clock = SimulationClock(1800.0)
        clock.advance()
        clock.advance()
        assert clock.now_hours == 1.0

    def test_reset(self):
        clock = SimulationClock(60.0)
        for _ in range(5):
            clock.advance()
        clock.reset()
        assert clock.now_s == 0.0
        assert clock.tick_index == 0


class TestTickInfo:
    def test_current_tick_fields(self):
        clock = SimulationClock(30.0)
        clock.advance()
        tick = clock.current_tick()
        assert tick == TickInfo(index=1, start_s=30.0, duration_s=30.0)
        assert tick.end_s == 60.0

    def test_start_hours(self):
        tick = TickInfo(index=0, start_s=1800.0, duration_s=60.0)
        assert tick.start_hours == 0.5

    def test_tickinfo_is_immutable(self):
        tick = TickInfo(index=0, start_s=0.0, duration_s=60.0)
        with pytest.raises(AttributeError):
            tick.start_s = 10.0


class TestTicksForDuration:
    def test_exact_multiple(self):
        assert SimulationClock(60.0).ticks_for_duration(3600.0) == 60

    def test_rounds_up(self):
        assert SimulationClock(60.0).ticks_for_duration(61.0) == 2

    def test_zero_duration(self):
        assert SimulationClock(60.0).ticks_for_duration(0.0) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationClock(60.0).ticks_for_duration(-5.0)
