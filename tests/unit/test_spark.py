"""Spark workload: checkpointing and volatile-work loss."""

import pytest

from repro.core.api import connect
from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig
from repro.workloads.spark import SparkJob
from tests.conftest import make_ecovisor


def bind(job, workers=0):
    eco = make_ecovisor(solar_w=0.0)
    eco.register_app(job.name, ShareConfig())
    api = connect(eco, job.name)
    job.bind(api)
    if workers:
        api.scale_to(workers, cores=1)
    return eco, api


def drive(eco, job, ticks, clock=None):
    clock = clock or SimulationClock(60.0)
    for _ in range(ticks):
        tick = clock.current_tick()
        eco.begin_tick(tick)
        eco.invoke_app_ticks(tick)
        job.step(tick, tick.duration_s)
        eco.settle(tick)
        job.finish_tick(tick, tick.duration_s, 1.0)
        clock.advance()


class TestCheckpointing:
    def test_manual_checkpoint_commits_volatile(self):
        job = SparkJob(total_work_units=10000.0, warmup_ticks_on_resume=0)
        eco, _ = bind(job, workers=2)
        drive(eco, job, 3)
        assert job.volatile_units > 0
        committed = job.checkpoint(180.0)
        assert committed > 0
        assert job.volatile_units == 0.0
        assert job.checkpointed_units == job.progress_units

    def test_auto_checkpoint_on_interval(self):
        job = SparkJob(
            total_work_units=1e6,
            checkpoint_interval_s=120.0,
            warmup_ticks_on_resume=0,
        )
        eco, _ = bind(job, workers=2)
        drive(eco, job, 5)
        assert job.checkpoint_count >= 2
        assert job.volatile_units < 2 * 2 * 60.0  # at most one interval's work

    def test_no_checkpoint_while_suspended(self):
        job = SparkJob(total_work_units=1e6, checkpoint_interval_s=60.0)
        eco, _ = bind(job, workers=0)
        drive(eco, job, 5)
        assert job.checkpoint_count == 0


class TestKillWorkers:
    def test_kill_all_loses_all_volatile(self):
        job = SparkJob(total_work_units=1e6, warmup_ticks_on_resume=0,
                       checkpoint_interval_s=1e9)
        eco, _ = bind(job, workers=2)
        drive(eco, job, 3)
        before = job.progress_units
        volatile = job.volatile_units
        lost = job.kill_workers(2, 2, 180.0)
        assert lost == pytest.approx(volatile)
        assert job.progress_units == pytest.approx(before - volatile)
        assert job.lost_units_total == pytest.approx(lost)

    def test_partial_kill_loses_proportional_share(self):
        job = SparkJob(total_work_units=1e6, warmup_ticks_on_resume=0,
                       checkpoint_interval_s=1e9)
        eco, _ = bind(job, workers=4)
        drive(eco, job, 2)
        volatile = job.volatile_units
        lost = job.kill_workers(1, 4, 120.0)
        assert lost == pytest.approx(volatile / 4)

    def test_checkpointed_work_survives_kill(self):
        job = SparkJob(total_work_units=1e6, warmup_ticks_on_resume=0,
                       checkpoint_interval_s=1e9)
        eco, _ = bind(job, workers=2)
        drive(eco, job, 3)
        job.checkpoint(180.0)
        checkpointed = job.checkpointed_units
        job.kill_workers(2, 2, 180.0)
        assert job.progress_units == pytest.approx(checkpointed)

    def test_kill_zero_is_noop(self):
        job = SparkJob(total_work_units=1e6)
        eco, _ = bind(job, workers=1)
        drive(eco, job, 2)
        assert job.kill_workers(0, 1, 60.0) == 0.0

    def test_suspend_with_checkpoint_is_lossless(self):
        job = SparkJob(total_work_units=1e6, warmup_ticks_on_resume=0,
                       checkpoint_interval_s=1e9)
        eco, _ = bind(job, workers=2)
        drive(eco, job, 3)
        before = job.progress_units
        job.suspend_with_checkpoint(180.0)
        job.kill_workers(2, 2, 180.0)
        assert job.progress_units == pytest.approx(before)


class TestThroughput:
    def test_near_linear_scaling(self):
        job = SparkJob()
        t4 = job.throughput_units_per_s([1.0] * 4)
        t8 = job.throughput_units_per_s([1.0] * 8)
        assert t8 / t4 > 1.8  # small coordination overhead only

    def test_validation(self):
        with pytest.raises(ValueError):
            SparkJob(checkpoint_interval_s=0.0)
        with pytest.raises(ValueError):
            SparkJob(worker_rate_units_per_s=0.0)
