"""Batch carbon policies: agnostic, suspend/resume, Wait&Scale."""

import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import CarbonTrace
from repro.core.config import CarbonServiceConfig, ShareConfig
from repro.core.clock import SimulationClock
from repro.policies import (
    CarbonAgnosticPolicy,
    SuspendResumePolicy,
    WaitAndScalePolicy,
)
from repro.sim.engine import SimulationEngine
from repro.workloads.mltrain import MLTrainingJob
from tests.conftest import make_ecovisor


def alternating_carbon_ecovisor(low=100.0, high=300.0):
    """Carbon flips low/high every 5 minutes."""
    eco = make_ecovisor(solar_w=0.0, num_servers=10)
    eco._carbon_service = CarbonIntensityService(
        CarbonServiceConfig(region="alt"),
        trace=CarbonTrace([low, high] * 200),
    )
    return eco


def run(eco, app, policy, ticks):
    engine = SimulationEngine(eco, SimulationClock(60.0))
    engine.add_application(app, ShareConfig(), policy)
    engine.run(ticks)
    return engine


class TestCarbonAgnostic:
    def test_holds_worker_count(self):
        eco = alternating_carbon_ecovisor()
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        policy = CarbonAgnosticPolicy(4)
        run(eco, job, policy, 10)
        assert policy.current_worker_count() == 4
        assert job.suspended_ticks == 0

    def test_scales_down_when_complete(self):
        eco = alternating_carbon_ecovisor()
        job = MLTrainingJob(total_work_units=100.0, warmup_ticks_on_resume=0)
        policy = CarbonAgnosticPolicy(4)
        run(eco, job, policy, 10)
        assert job.is_complete
        assert policy.current_worker_count() == 0

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            CarbonAgnosticPolicy(0)


class TestSuspendResume:
    def test_suspends_above_threshold(self):
        eco = alternating_carbon_ecovisor(low=100.0, high=300.0)
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        policy = SuspendResumePolicy(200.0, 4)
        run(eco, job, policy, 10)
        # Carbon alternates every 5 ticks: roughly half suspended.
        assert job.suspended_ticks > 0
        assert job.running_ticks > 0
        assert policy.suspension_count >= 1

    def test_never_suspends_below_threshold(self):
        eco = alternating_carbon_ecovisor(low=100.0, high=150.0)
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        policy = SuspendResumePolicy(200.0, 4)
        run(eco, job, policy, 10)
        assert job.suspended_ticks == 0

    def test_emissions_only_during_low_carbon(self):
        eco = alternating_carbon_ecovisor(low=100.0, high=300.0)
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        run(eco, job, SuspendResumePolicy(200.0, 4), 20)
        for settlement in eco.ledger.account(job.name).settlements:
            if settlement.grid_total_wh > 1e-9:
                assert settlement.carbon_intensity_g_per_kwh <= 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SuspendResumePolicy(-1.0, 4)
        with pytest.raises(ValueError):
            SuspendResumePolicy(100.0, 0)


class TestWaitAndScale:
    def test_scales_up_below_threshold(self):
        eco = alternating_carbon_ecovisor()
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        policy = WaitAndScalePolicy(200.0, 4, 2.0)
        run(eco, job, policy, 4)  # first ticks are low-carbon
        assert policy.current_worker_count() == 8

    def test_suspends_above_threshold(self):
        eco = alternating_carbon_ecovisor()
        job = MLTrainingJob(total_work_units=1e6, warmup_ticks_on_resume=0)
        policy = WaitAndScalePolicy(200.0, 4, 2.0)
        run(eco, job, policy, 8)  # ticks 5-7 are high-carbon
        assert policy.current_worker_count() == 0

    def test_scaled_workers_rounding(self):
        policy = WaitAndScalePolicy(200.0, 4, 2.5)
        assert policy.scaled_workers == 10

    def test_outperforms_suspend_resume_runtime(self):
        """The core Figure 4 claim at miniature scale."""
        job_sr = MLTrainingJob(total_work_units=4000.0, warmup_ticks_on_resume=0)
        job_ws = MLTrainingJob(total_work_units=4000.0, warmup_ticks_on_resume=0)
        eco_sr = alternating_carbon_ecovisor()
        eco_ws = alternating_carbon_ecovisor()
        run(eco_sr, job_sr, SuspendResumePolicy(200.0, 4), 60)
        run(eco_ws, job_ws, WaitAndScalePolicy(200.0, 4, 2.0), 60)
        assert job_ws.is_complete
        assert job_sr.completion_time_s is None or (
            job_ws.completion_time_s < job_sr.completion_time_s
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            WaitAndScalePolicy(100.0, 4, 0.5)
        with pytest.raises(ValueError):
            WaitAndScalePolicy(100.0, 0, 2.0)
