"""Configuration validation and derived quantities."""

import pytest

from repro.core.config import (
    BatteryConfig,
    canonical_json,
    config_digest,
    CarbonServiceConfig,
    ClusterConfig,
    EcovisorConfig,
    GridConfig,
    ServerConfig,
    ShareConfig,
    SolarConfig,
)
from repro.core.errors import ConfigurationError


class TestServerConfig:
    def test_paper_defaults(self):
        config = ServerConfig()
        config.validate()
        assert config.cores == 4
        assert config.idle_power_w == pytest.approx(1.35)
        assert config.max_cpu_power_w == pytest.approx(5.0)
        assert config.max_gpu_power_w == pytest.approx(10.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(cores=0).validate()

    def test_rejects_idle_above_max(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(idle_power_w=6.0, max_cpu_power_w=5.0).validate()

    def test_gpu_must_exceed_cpu_power(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(has_gpu=True, max_gpu_power_w=4.0).validate()


class TestClusterConfig:
    def test_totals(self):
        config = ClusterConfig(num_servers=3)
        config.validate()
        assert config.total_cores == 12
        assert config.max_power_w == pytest.approx(15.0)

    def test_gpu_cluster_max_power(self):
        config = ClusterConfig(
            num_servers=2, server=ServerConfig(has_gpu=True)
        )
        assert config.max_power_w == pytest.approx(20.0)

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_servers=0).validate()


class TestBatteryConfig:
    def test_paper_defaults(self):
        config = BatteryConfig()
        config.validate()
        assert config.capacity_wh == pytest.approx(1440.0)
        assert config.empty_soc_fraction == pytest.approx(0.30)
        # 0.25C charges in 4 h; 1C discharges in 1 h.
        assert config.max_charge_power_w == pytest.approx(360.0)
        assert config.max_discharge_power_w == pytest.approx(1440.0)

    def test_usable_capacity_excludes_floor(self):
        config = BatteryConfig(capacity_wh=100.0, empty_soc_fraction=0.30)
        assert config.usable_capacity_wh == pytest.approx(70.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig(charge_efficiency=0.0).validate()
        with pytest.raises(ConfigurationError):
            BatteryConfig(discharge_efficiency=1.5).validate()

    def test_rejects_initial_soc_below_floor(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig(
                empty_soc_fraction=0.30, initial_soc_fraction=0.10
            ).validate()


class TestSolarConfig:
    def test_defaults_valid(self):
        SolarConfig().validate()

    def test_rejects_negative_scale(self):
        with pytest.raises(ConfigurationError):
            SolarConfig(scale=-0.1).validate()

    def test_rejects_bad_derating(self):
        with pytest.raises(ConfigurationError):
            SolarConfig(panel_efficiency_derating=0.0).validate()


class TestGridConfig:
    def test_default_unlimited(self):
        config = GridConfig()
        config.validate()
        assert config.max_power_w == float("inf")

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            GridConfig(max_power_w=0.0).validate()


class TestCarbonServiceConfig:
    def test_default_five_minute_updates(self):
        config = CarbonServiceConfig()
        config.validate()
        assert config.update_interval_s == pytest.approx(300.0)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            CarbonServiceConfig(update_interval_s=0.0).validate()


class TestEcovisorConfig:
    def test_defaults_valid(self):
        EcovisorConfig().validate()

    def test_rejects_huge_solar_buffer(self):
        with pytest.raises(ConfigurationError):
            EcovisorConfig(solar_buffer_fraction=0.9).validate()


class TestShareConfig:
    def test_defaults_valid(self):
        ShareConfig().validate()

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ConfigurationError):
            ShareConfig(solar_fraction=1.2).validate()
        with pytest.raises(ConfigurationError):
            ShareConfig(battery_fraction=-0.1).validate()

    def test_rejects_negative_grid_share(self):
        with pytest.raises(ConfigurationError):
            ShareConfig(grid_power_w=-1.0).validate()


class TestConfigDigest:
    def test_stable_across_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_distinct_values_distinct_digests(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_dataclasses_are_canonical(self):
        assert config_digest(ShareConfig()) == config_digest(ShareConfig())
        assert config_digest(ShareConfig()) != config_digest(
            ShareConfig(solar_fraction=0.5)
        )

    def test_non_finite_floats_allowed(self):
        text = canonical_json({"grid_power_w": float("inf")})
        assert "Infinity" in text

    def test_unserializable_value_raises(self):
        with pytest.raises(TypeError):
            canonical_json(object())

    def test_digest_length(self):
        assert len(config_digest({"a": 1})) == 12
        assert len(config_digest({"a": 1}, length=16)) == 16
