"""Server/container power model (paper's microserver constants)."""

import pytest

from repro.cluster.power_model import ServerPowerModel
from repro.core.config import ServerConfig


@pytest.fixture
def model() -> ServerPowerModel:
    return ServerPowerModel(ServerConfig())


@pytest.fixture
def gpu_model() -> ServerPowerModel:
    return ServerPowerModel(ServerConfig(has_gpu=True))


class TestServerPower:
    def test_idle(self, model):
        assert model.server_power_w(0.0) == pytest.approx(1.35)

    def test_full_cpu(self, model):
        assert model.server_power_w(1.0) == pytest.approx(5.0)

    def test_linear_midpoint(self, model):
        assert model.server_power_w(0.5) == pytest.approx((1.35 + 5.0) / 2)

    def test_full_cpu_and_gpu(self, gpu_model):
        assert gpu_model.server_power_w(1.0, 1.0) == pytest.approx(10.0)

    def test_gpu_ignored_without_gpu(self, model):
        assert model.server_power_w(1.0, 1.0) == pytest.approx(5.0)

    def test_utilization_clamped(self, model):
        assert model.server_power_w(2.0) == pytest.approx(5.0)


class TestContainerPower:
    def test_full_container_full_server(self, model):
        assert model.container_power_w(1.0, 4) == pytest.approx(5.0)

    def test_single_core_share(self, model):
        breakdown = model.container_power(1.0, 1)
        assert breakdown.idle_w == pytest.approx(1.35 / 4)
        assert breakdown.cpu_dynamic_w == pytest.approx((5.0 - 1.35) / 4)
        assert breakdown.total_w == pytest.approx(1.25)

    def test_idle_container_draws_idle_share(self, model):
        assert model.container_power_w(0.0, 2) == pytest.approx(1.35 / 2)

    def test_gpu_container(self, gpu_model):
        power = gpu_model.container_power_w(1.0, 4, gpu_utilization=1.0)
        assert power == pytest.approx(10.0)

    def test_zero_cores(self, model):
        assert model.container_power_w(1.0, 0) == 0.0

    def test_negative_cores_rejected(self, model):
        with pytest.raises(ValueError):
            model.container_power(1.0, -1)


class TestCapTranslation:
    def test_cap_at_max_is_full_utilization(self, model):
        assert model.utilization_for_cap(1.25, 1) == pytest.approx(1.0)

    def test_cap_below_idle_is_zero(self, model):
        assert model.utilization_for_cap(0.1, 1) == 0.0

    def test_cap_midway(self, model):
        # idle share 0.3375, dynamic range 0.9125 per core.
        cap = 0.3375 + 0.9125 / 2
        assert model.utilization_for_cap(cap, 1) == pytest.approx(0.5)

    def test_roundtrip_cap_power(self, model):
        cap = 0.9
        util = model.utilization_for_cap(cap, 1)
        assert model.container_power_w(util, 1) == pytest.approx(cap)

    def test_zero_cores_gives_zero(self, model):
        assert model.utilization_for_cap(5.0, 0) == 0.0


class TestEnvelopes:
    def test_min_container_power(self, model):
        assert model.min_container_power_w(2) == pytest.approx(1.35 / 2)

    def test_max_container_power(self, model):
        assert model.max_container_power_w(1) == pytest.approx(1.25)

    def test_max_with_gpu(self, gpu_model):
        assert gpu_model.max_container_power_w(4, gpu=True) == pytest.approx(10.0)
