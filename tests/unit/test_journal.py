"""Bounded per-application event journals (control plane v1.1)."""

import pytest

from repro.core.errors import UnknownApplicationError
from repro.core.events import (
    AppEvictedEvent,
    CarbonChangeEvent,
    SolarChangeEvent,
    event_from_dict,
    event_to_dict,
)
from repro.core.journal import EventJournal


def carbon_event(i: int) -> CarbonChangeEvent:
    return CarbonChangeEvent(
        time_s=60.0 * i, previous_g_per_kwh=100.0, current_g_per_kwh=100.0 + i
    )


class TestEventJournal:
    def test_record_and_read(self):
        journal = EventJournal()
        events = [carbon_event(i) for i in range(3)]
        for event in events:
            journal.record("a", event)
        page = journal.read("a", cursor=0)
        assert list(page.events) == events
        assert page.next_cursor == 3
        assert page.dropped == 0

    def test_cursor_resumes_where_it_left_off(self):
        journal = EventJournal()
        journal.record("a", carbon_event(0))
        first = journal.read("a")
        journal.record("a", carbon_event(1))
        journal.record("a", carbon_event(2))
        second = journal.read("a", cursor=first.next_cursor)
        assert [e.time_s for e in second.events] == [60.0, 120.0]
        assert second.next_cursor == 3

    def test_read_at_head_is_empty_and_idempotent(self):
        journal = EventJournal()
        journal.record("a", carbon_event(0))
        page = journal.read("a", cursor=1)
        assert page.events == ()
        assert page.next_cursor == 1
        assert journal.read("a", cursor=1).next_cursor == 1

    def test_bounded_journal_reports_dropped(self):
        journal = EventJournal(capacity=3)
        for i in range(10):
            journal.record("a", carbon_event(i))
        page = journal.read("a", cursor=0)
        # Only the newest 3 survive; 7 fell out before cursor 0 saw them.
        assert [e.time_s for e in page.events] == [420.0, 480.0, 540.0]
        assert page.dropped == 7
        assert page.next_cursor == 10

    def test_overflow_counted_per_feed_and_journal_wide(self):
        journal = EventJournal(capacity=3)
        for i in range(10):
            journal.record("a", carbon_event(i))
        for i in range(4):
            journal.record("b", carbon_event(i))
        assert journal.overflow_dropped_for("a") == 7
        assert journal.overflow_dropped_for("b") == 1
        assert journal.overflow_dropped_total == 8

    def test_overflow_rides_along_on_pages(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.record("a", carbon_event(i))
        page = journal.read("a", cursor=0)
        # journal_dropped is the feed's lifetime overflow; dropped is
        # relative to this caller's cursor.  Here they coincide.
        assert page.journal_dropped == 2
        assert page.dropped == 2
        # A caught-up reader still sees the lifetime figure.
        assert journal.read("a", cursor=page.next_cursor).journal_dropped == 2

    def test_no_overflow_before_capacity(self):
        journal = EventJournal(capacity=3)
        for i in range(3):
            journal.record("a", carbon_event(i))
        assert journal.overflow_dropped_total == 0
        assert journal.read("a").journal_dropped == 0

    def test_overflow_for_unknown_app_raises(self):
        with pytest.raises(UnknownApplicationError):
            EventJournal().overflow_dropped_for("ghost")

    def test_limit_zero_probes_without_advancing(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.record("a", carbon_event(i))
        # A dropped-count probe: no events consumed, and the returned
        # cursor must resume at the first undelivered event (past the
        # dropped gap), not at the feed's end.
        page = journal.read("a", cursor=0, limit=0)
        assert page.events == ()
        assert page.dropped == 2
        assert page.next_cursor == 2
        resumed = journal.read("a", cursor=page.next_cursor)
        assert [e.time_s for e in resumed.events] == [120.0, 180.0, 240.0]

    def test_limit_pages_without_losing_position(self):
        journal = EventJournal()
        for i in range(5):
            journal.record("a", carbon_event(i))
        first = journal.read("a", cursor=0, limit=2)
        assert len(first.events) == 2
        assert first.next_cursor == 2
        rest = journal.read("a", cursor=first.next_cursor)
        assert [e.time_s for e in rest.events] == [120.0, 180.0, 240.0]

    def test_feeds_are_per_app(self):
        journal = EventJournal()
        journal.record("a", carbon_event(0))
        journal.record("b", carbon_event(1))
        assert len(journal.read("a").events) == 1
        assert len(journal.read("b").events) == 1

    def test_unknown_app_raises(self):
        with pytest.raises(UnknownApplicationError):
            EventJournal().read("ghost")

    def test_ensure_feed_creates_empty_feed(self):
        journal = EventJournal()
        journal.ensure_feed("a")
        assert journal.has_feed("a")
        assert journal.read("a").events == ()

    def test_negative_cursor_rejected(self):
        journal = EventJournal()
        journal.ensure_feed("a")
        with pytest.raises(ValueError):
            journal.read("a", cursor=-1)

    def test_negative_limit_rejected(self):
        journal = EventJournal()
        journal.ensure_feed("a")
        with pytest.raises(ValueError):
            journal.read("a", limit=-1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)

    def test_retired_feeds_bounded(self):
        journal = EventJournal(max_retired_feeds=2)
        for i in range(4):
            journal.record(f"t{i}", carbon_event(i))
            journal.retire_feed(f"t{i}")
        # Only the two most recently retired feeds survive.
        assert not journal.has_feed("t0")
        assert not journal.has_feed("t1")
        assert journal.has_feed("t2")
        assert journal.has_feed("t3")
        with pytest.raises(UnknownApplicationError):
            journal.read("t0")

    def test_readmission_unretires_the_feed(self):
        journal = EventJournal(max_retired_feeds=1)
        journal.record("a", carbon_event(0))
        journal.retire_feed("a")
        journal.ensure_feed("a")  # re-admitted: back in service
        journal.retire_feed("b")  # unrelated retirement churn
        journal.record("b", carbon_event(1))
        journal.retire_feed("b")
        assert journal.has_feed("a")  # not dropped by b's retirement
        assert len(journal.read("a").events) == 1

    def test_retire_is_idempotent(self):
        journal = EventJournal(max_retired_feeds=2)
        journal.record("a", carbon_event(0))
        journal.retire_feed("a")
        journal.retire_feed("a")
        journal.retire_feed("b")  # no feed: no-op
        assert journal.has_feed("a")


class TestEventWireFormat:
    def test_round_trip_is_lossless(self):
        original = SolarChangeEvent(
            time_s=120.0, app_name="a", previous_w=1.0, current_w=3.5
        )
        payload = event_to_dict(original)
        assert payload["type"] == "SolarChangeEvent"
        assert event_from_dict(payload) == original

    def test_round_trip_every_registered_type(self):
        from repro.core.events import EVENT_TYPES

        for cls in EVENT_TYPES.values():
            event = cls(time_s=1.0)
            assert event_from_dict(event_to_dict(event)) == event

    def test_eviction_event_carries_final_figures(self):
        event = AppEvictedEvent(
            time_s=60.0, app_name="a", energy_wh=1.5, carbon_g=0.2, cost_usd=0.01
        )
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.energy_wh == 1.5
        assert rebuilt.containers_stopped == 0

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"type": "NopeEvent", "time_s": 0.0})
