"""The ecovisor: registration, multiplexing, attribution, events."""

import pytest

from repro.core.config import ShareConfig
from repro.core.errors import AuthorizationError, ConfigurationError
from repro.core.events import (
    BatteryEmptyEvent,
    BatteryFullEvent,
    CarbonChangeEvent,
    TickEvent,
)
from tests.conftest import make_ecovisor, run_ticks


class TestRegistration:
    def test_register_creates_ves(self):
        eco = make_ecovisor()
        ves = eco.register_app("a", ShareConfig(solar_fraction=0.5))
        assert ves.app_name == "a"
        assert eco.app_names() == ["a"]

    def test_duplicate_rejected(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig())
        with pytest.raises(ConfigurationError):
            eco.register_app("a", ShareConfig())

    def test_solar_oversubscription_rejected(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig(solar_fraction=0.7))
        with pytest.raises(ConfigurationError):
            eco.register_app("b", ShareConfig(solar_fraction=0.5))

    def test_battery_oversubscription_rejected(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig(battery_fraction=0.7))
        with pytest.raises(ConfigurationError):
            eco.register_app("b", ShareConfig(battery_fraction=0.5))

    def test_battery_share_without_battery_rejected(self):
        eco = make_ecovisor(with_battery=False)
        with pytest.raises(ConfigurationError):
            eco.register_app("a", ShareConfig(battery_fraction=0.5))

    def test_solar_share_without_array_rejected(self):
        eco = make_ecovisor(with_solar=False)
        with pytest.raises(ConfigurationError):
            eco.register_app("a", ShareConfig(solar_fraction=0.5))


class TestOwnership:
    def test_cross_app_container_access_denied(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig())
        eco.register_app("b", ShareConfig())
        container = eco.launch_container("a", 1)
        with pytest.raises(AuthorizationError):
            eco.set_container_powercap("b", container.id, 1.0)
        with pytest.raises(AuthorizationError):
            eco.stop_container("b", container.id)

    def test_owner_can_manage(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig())
        container = eco.launch_container("a", 1)
        eco.set_container_powercap("a", container.id, 1.0)
        eco.set_container_cores("a", container.id, 2)
        eco.stop_container("a", container.id)


class TestTickLoop:
    def test_settlement_attributes_carbon(self):
        eco = make_ecovisor(solar_w=0.0, carbon_g_per_kwh=300.0)
        eco.register_app("a", ShareConfig())
        c = eco.launch_container("a", 1)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 60, demand)
        # 1.25 W for one hour at 300 g/kWh = 0.375 g.
        assert eco.ledger.app_carbon_g("a") == pytest.approx(0.375, rel=1e-3)

    def test_solar_share_reduces_carbon(self):
        eco = make_ecovisor(solar_w=10.0, carbon_g_per_kwh=300.0)
        eco.register_app("a", ShareConfig(solar_fraction=1.0))
        c = eco.launch_container("a", 1)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 60, demand)
        assert eco.ledger.app_carbon_g("a") == pytest.approx(0.0)

    def test_container_attribution_sums_to_app(self):
        eco = make_ecovisor(solar_w=0.0)
        eco.register_app("a", ShareConfig())
        c1 = eco.launch_container("a", 1)
        c2 = eco.launch_container("a", 2)

        def demand(tick):
            c1.set_demand_utilization(1.0)
            c2.set_demand_utilization(0.5)

        run_ticks(eco, 10, demand)
        account = eco.ledger.account("a")
        assert c1.carbon_g + c2.carbon_g == pytest.approx(account.carbon_g)
        assert c1.energy_wh + c2.energy_wh == pytest.approx(account.energy_wh)

    def test_served_fraction_reported(self):
        eco = make_ecovisor(solar_w=0.0)
        eco.register_app("a", ShareConfig(grid_power_w=0.5))
        c = eco.launch_container("a", 1)
        from repro.core.clock import SimulationClock

        clock = SimulationClock(60.0)
        tick = clock.current_tick()
        eco.begin_tick(tick)
        c.set_demand_utilization(1.0)
        fractions = eco.settle(tick)
        assert fractions["a"] == pytest.approx(0.5 / 1.25)

    def test_tick_callbacks_invoked(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig())
        calls = []
        eco.register_tick_callback("a", calls.append)
        run_ticks(eco, 3)
        assert len(calls) == 3


class TestSolarBuffer:
    def test_first_tick_sees_current_solar(self):
        eco = make_ecovisor(solar_w=10.0)
        eco.register_app("a", ShareConfig(solar_fraction=1.0))
        from repro.core.clock import SimulationClock

        clock = SimulationClock(60.0)
        eco.begin_tick(clock.current_tick())
        assert eco.ves_for("a").solar_power_w == pytest.approx(10.0)

    def test_buffered_solar_lags_one_tick(self):
        """With a time-varying array, apps see the previous interval's
        output (the one-tick buffer of Section 3.1)."""
        from repro.core.clock import SimulationClock
        from repro.energy.solar import SolarArrayEmulator, TabularSolarTrace
        from repro.core.config import SolarConfig

        eco = make_ecovisor()
        # Replace the plant's array with a ramp: 0, 10, 20, ... W.
        ramp = SolarArrayEmulator(
            SolarConfig(peak_power_w=100.0, panel_efficiency_derating=1.0),
            TabularSolarTrace([0.0, 0.1, 0.2, 0.3]),
        )
        eco._plant._solar = ramp
        eco.register_app("a", ShareConfig(solar_fraction=1.0))
        clock = SimulationClock(60.0)
        seen = []
        for _ in range(3):
            tick = clock.current_tick()
            eco.begin_tick(tick)
            seen.append(eco.ves_for("a").solar_power_w)
            eco.settle(tick)
            clock.advance()
        # Tick 0 sees the current sample (0 W); tick 1 sees tick 0's
        # sample (0 W, buffered); tick 2 sees tick 1's sample (10 W).
        assert seen == pytest.approx([0.0, 0.0, 10.0])


class TestEvents:
    def test_tick_event_published(self):
        eco = make_ecovisor()
        got = []
        eco.events.subscribe(TickEvent, got.append)
        run_ticks(eco, 2)
        assert len(got) == 2

    def test_carbon_change_event_on_jump(self):
        from repro.carbon.service import CarbonIntensityService
        from repro.carbon.traces import CarbonTrace
        from repro.core.config import CarbonServiceConfig

        eco = make_ecovisor()
        jumpy = CarbonTrace([100.0, 400.0] * 10)
        eco._carbon_service = CarbonIntensityService(
            CarbonServiceConfig(region="jumpy"), trace=jumpy
        )
        got = []
        eco.events.subscribe(CarbonChangeEvent, got.append)
        run_ticks(eco, 12)
        assert len(got) >= 1
        assert abs(got[0].delta_g_per_kwh) >= 10.0

    def test_battery_full_and_empty_events(self, small_battery_config):
        eco = make_ecovisor(
            solar_w=50.0, battery_config=small_battery_config
        )
        eco.register_app("a", ShareConfig(solar_fraction=1.0, battery_fraction=1.0))
        full, empty = [], []
        eco.events.subscribe(BatteryFullEvent, full.append)
        eco.events.subscribe(BatteryEmptyEvent, empty.append)
        # No demand: 50 W of solar charges the 100 Wh battery to full.
        run_ticks(eco, 60 * 5)
        assert len(full) == 1
        assert full[0].app_name == "a"

        # Now a heavy load with no solar: battery drains to empty.
        eco2 = make_ecovisor(solar_w=0.0, battery_config=small_battery_config)
        eco2.register_app("a", ShareConfig(battery_fraction=1.0, grid_power_w=0.0))
        c = eco2.launch_container("a", 4)
        eco2.events.subscribe(BatteryEmptyEvent, empty.append)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco2, 60 * 8, demand)
        assert len(empty) == 1


class TestPlantMetering:
    def test_grid_meter_accumulates(self):
        eco = make_ecovisor(solar_w=0.0)
        eco.register_app("a", ShareConfig())
        c = eco.launch_container("a", 1)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 60, demand)
        assert eco.plant.grid.total_energy_wh == pytest.approx(1.25, rel=1e-3)
