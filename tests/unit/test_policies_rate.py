"""Carbon rate-limiting and dynamic budgeting policies."""

import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import CarbonTrace
from repro.core.clock import SimulationClock
from repro.core.config import CarbonServiceConfig, ShareConfig
from repro.policies import CarbonRateLimitPolicy, DynamicCarbonBudgetPolicy
from repro.sim.engine import SimulationEngine
from repro.workloads.mltrain import MLTrainingJob
from repro.workloads.traces import constant_request_trace
from repro.workloads.webapp import WebApplication
from tests.conftest import make_ecovisor

WORKER_W = 1.25


def run(eco, app, policy, ticks):
    engine = SimulationEngine(eco, SimulationClock(60.0))
    engine.add_application(app, ShareConfig(), policy)
    engine.run(ticks)
    return engine


class TestRateLimit:
    def test_allowed_workers_shrink_with_intensity(self):
        policy = CarbonRateLimitPolicy(0.3, WORKER_W, max_workers=32)
        low = policy.allowed_workers(100.0)
        high = policy.allowed_workers(350.0)
        assert low > high
        assert high >= 1

    def test_realized_rate_tracks_target(self):
        """With busy workers, the realized carbon rate approaches the
        target (the system policy fills its allowance)."""
        eco = make_ecovisor(solar_w=0.0, num_servers=10, carbon_g_per_kwh=200.0)
        app = WebApplication(
            "w", constant_request_trace(2000.0), service_rate_rps=100.0
        )
        policy = CarbonRateLimitPolicy(0.3, WORKER_W, max_workers=20)
        run(eco, app, policy, 30)
        settlements = eco.ledger.account("w").settlements
        realized = settlements[-1].carbon_rate_mg_per_s
        assert realized == pytest.approx(0.3, rel=0.25)

    def test_over_provisions_when_idle(self):
        """Light load -> low per-worker draw -> more workers funded."""
        eco = make_ecovisor(solar_w=0.0, num_servers=10, carbon_g_per_kwh=200.0)
        app = WebApplication(
            "w", constant_request_trace(10.0), service_rate_rps=100.0
        )
        policy = CarbonRateLimitPolicy(0.3, WORKER_W, max_workers=20)
        run(eco, app, policy, 10)
        # 0.3 mg/s at 200 g/kWh funds ~4.3 busy-equivalent workers.
        assert policy.current_worker_count() > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            CarbonRateLimitPolicy(-0.1, WORKER_W)
        with pytest.raises(ValueError):
            CarbonRateLimitPolicy(0.1, 0.0)
        with pytest.raises(ValueError):
            CarbonRateLimitPolicy(0.1, WORKER_W, min_workers=5, max_workers=2)


class TestDynamicBudget:
    def test_requires_web_application(self):
        eco = make_ecovisor(solar_w=0.0)
        job = MLTrainingJob(total_work_units=1e6)
        policy = DynamicCarbonBudgetPolicy(0.3, WORKER_W)
        with pytest.raises(TypeError):
            run(eco, job, policy, 2)

    def test_meets_slo_under_constant_load(self):
        eco = make_ecovisor(solar_w=0.0, num_servers=10, carbon_g_per_kwh=150.0)
        app = WebApplication(
            "w", constant_request_trace(250.0), slo_ms=60.0, service_rate_rps=100.0
        )
        policy = DynamicCarbonBudgetPolicy(0.5, WORKER_W, max_workers=16)
        run(eco, app, policy, 20)
        assert app.violation_fraction < 0.15  # only warm-up ticks may miss

    def test_budget_accounting(self):
        eco = make_ecovisor(solar_w=0.0, carbon_g_per_kwh=200.0)
        app = WebApplication(
            "w", constant_request_trace(50.0), slo_ms=60.0, service_rate_rps=100.0
        )
        policy = DynamicCarbonBudgetPolicy(0.5, WORKER_W, max_workers=8)
        run(eco, app, policy, 30)
        elapsed = 30 * 60.0
        assert policy.budget_so_far_g(elapsed) == pytest.approx(0.5 * elapsed / 1000)
        # Light load: the app banks credit.
        assert policy.carbon_credit_g(elapsed) > 0

    def test_spends_credit_during_pinch(self):
        """High carbon + high load: the policy exceeds the instantaneous
        rate using banked credit instead of violating the SLO."""
        eco = make_ecovisor(solar_w=0.0, num_servers=10)
        # Low carbon for 2 h (banking), then high carbon.
        trace = CarbonTrace([80.0] * 24 + [340.0] * 24)
        eco._carbon_service = CarbonIntensityService(
            CarbonServiceConfig(region="step"), trace=trace
        )
        app = WebApplication(
            "w", constant_request_trace(300.0), slo_ms=60.0, service_rate_rps=100.0
        )
        policy = DynamicCarbonBudgetPolicy(0.25, WORKER_W, max_workers=16)
        run(eco, app, policy, 200)
        assert policy.over_rate_ticks > 0
        assert app.violation_fraction < 0.1

    def test_caps_at_rate_when_credit_exhausted(self):
        eco = make_ecovisor(solar_w=0.0, num_servers=10, carbon_g_per_kwh=340.0)
        app = WebApplication(
            "w", constant_request_trace(500.0), slo_ms=60.0, service_rate_rps=100.0
        )
        # Tiny rate, no banked credit: pool pinned to the rate-funded size.
        policy = DynamicCarbonBudgetPolicy(
            0.05, WORKER_W, max_workers=16, scale_down_patience_ticks=0
        )
        run(eco, app, policy, 30)
        funded = int(
            __import__("repro.core.units", fromlist=["power_for_carbon_rate"])
            .power_for_carbon_rate(0.05, 340.0) // WORKER_W
        )
        assert policy.current_worker_count() == max(1, funded)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicCarbonBudgetPolicy(-0.1, WORKER_W)
        with pytest.raises(ValueError):
            DynamicCarbonBudgetPolicy(0.1, WORKER_W, headroom_factor=0.5)
