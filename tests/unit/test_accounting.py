"""Tick settlements and the carbon ledger."""

import pytest

from repro.core.accounting import CarbonLedger, TickSettlement
from repro.core.errors import EnergyConservationError


def settlement(
    app="app",
    time_s=0.0,
    demand=10.0,
    solar_avail=4.0,
    solar_used=4.0,
    to_battery=0.0,
    curtailed=0.0,
    battery=2.0,
    grid=4.0,
    grid_to_battery=0.0,
    unmet=0.0,
    carbon=1.0,
) -> TickSettlement:
    return TickSettlement(
        app_name=app,
        time_s=time_s,
        duration_s=60.0,
        carbon_intensity_g_per_kwh=200.0,
        demand_wh=demand,
        served_wh=solar_used + battery + grid,
        unmet_wh=unmet,
        solar_available_wh=solar_avail,
        solar_used_wh=solar_used,
        solar_to_battery_wh=to_battery,
        curtailed_wh=curtailed,
        battery_discharge_wh=battery,
        grid_load_wh=grid,
        grid_to_battery_wh=grid_to_battery,
        carbon_g=carbon,
    )


class TestSettlementValidation:
    def test_balanced_settlement_validates(self):
        settlement().validate()

    def test_detects_solar_imbalance(self):
        bad = settlement(solar_avail=10.0, solar_used=4.0, to_battery=0.0,
                         curtailed=0.0)
        with pytest.raises(EnergyConservationError):
            bad.validate()

    def test_detects_demand_imbalance(self):
        bad = settlement(demand=20.0)
        with pytest.raises(EnergyConservationError):
            bad.validate()

    def test_detects_negative_flow(self):
        bad = settlement(carbon=-1.0)
        with pytest.raises(EnergyConservationError):
            bad.validate()


class TestSettlementDerived:
    def test_grid_total(self):
        s = settlement(grid=4.0, grid_to_battery=2.0, demand=10.0)
        assert s.grid_total_wh == pytest.approx(6.0)

    def test_average_power(self):
        s = settlement()
        # 10 Wh served over 60 s -> 600 W.
        assert s.average_power_w == pytest.approx(600.0)

    def test_carbon_rate(self):
        s = settlement(carbon=0.6)
        # 0.6 g over 60 s = 10 mg/s.
        assert s.carbon_rate_mg_per_s == pytest.approx(10.0)


class TestLedger:
    def test_record_accumulates(self):
        ledger = CarbonLedger()
        ledger.record(settlement(time_s=0.0))
        ledger.record(settlement(time_s=60.0))
        account = ledger.account("app")
        assert account.energy_wh == pytest.approx(20.0)
        assert account.carbon_g == pytest.approx(2.0)
        assert account.solar_wh == pytest.approx(8.0)
        assert account.battery_wh == pytest.approx(4.0)
        assert account.grid_wh == pytest.approx(8.0)

    def test_record_validates(self):
        ledger = CarbonLedger()
        with pytest.raises(EnergyConservationError):
            ledger.record(settlement(demand=99.0))

    def test_per_app_isolation(self):
        ledger = CarbonLedger()
        ledger.record(settlement(app="a"))
        ledger.record(settlement(app="b", carbon=5.0))
        assert ledger.app_carbon_g("a") == pytest.approx(1.0)
        assert ledger.app_carbon_g("b") == pytest.approx(5.0)
        assert ledger.total_carbon_g() == pytest.approx(6.0)
        assert ledger.app_names() == ["a", "b"]

    def test_interval_queries(self):
        ledger = CarbonLedger()
        for t in (0.0, 60.0, 120.0):
            ledger.record(settlement(time_s=t))
        assert ledger.carbon_between("app", 0.0, 120.0) == pytest.approx(2.0)
        assert ledger.energy_between("app", 60.0, 180.0) == pytest.approx(20.0)
        assert len(ledger.settlements_between("app", 0.0, 1e9)) == 3

    def test_auto_created_account_is_zero(self):
        ledger = CarbonLedger()
        assert ledger.app_carbon_g("new") == 0.0
        assert ledger.total_energy_wh() == 0.0


class TestLedgerValidateFlag:
    def test_record_validates_by_default(self):
        bad = settlement(unmet=5.0)  # demand != served + unmet
        ledger = CarbonLedger()
        with pytest.raises(EnergyConservationError):
            ledger.record(bad)

    def test_record_can_skip_revalidation(self):
        # The ecovisor records settlements the VES already validated;
        # validate=False must accumulate without re-checking.
        bad = settlement(unmet=5.0)
        ledger = CarbonLedger()
        ledger.record(bad, validate=False)
        assert ledger.account("app").unmet_wh == 5.0

    def test_settlement_is_slotted(self):
        s = settlement()
        assert not hasattr(s, "__dict__")
        with pytest.raises(AttributeError):
            object.__setattr__(s, "not_a_field", 1.0)
