"""HTTPProvider: TTL caching, retry/backoff, stale fallback, offline CI."""

import json

import numpy as np
import pytest

from repro.core.errors import ProviderError
from repro.providers.http import (
    DEFAULT_VALUE_PATH,
    HTTPProvider,
    HTTPResponse,
    MockTransport,
    TransportTimeout,
    UrllibTransport,
)


def ok(value: float = 120.0) -> HTTPResponse:
    body = json.dumps({"data": {"carbonIntensity": value}}).encode()
    return HTTPResponse(status=200, body=body)


def make_provider(script, **kwargs):
    transport = MockTransport(script)
    provider = HTTPProvider(
        "https://api.example/v1/carbon", transport, **kwargs
    )
    return provider, transport


class TestMockTransport:
    def test_records_requests_and_repeats_last_entry(self):
        transport = MockTransport([ok(1.0), ok(2.0)])
        assert transport.get("u1", timeout_s=1.0).json()["data"][
            "carbonIntensity"
        ] == 1.0
        assert transport.get("u2", timeout_s=1.0) is not None
        # Script exhausted: the final entry repeats.
        again = transport.get("u3", timeout_s=1.0)
        assert json.loads(again.body)["data"]["carbonIntensity"] == 2.0
        assert transport.requests == ["u1", "u2", "u3"]

    def test_raises_scripted_exceptions(self):
        transport = MockTransport([TransportTimeout("boom")])
        with pytest.raises(TransportTimeout):
            transport.get("u", timeout_s=1.0)

    def test_rejects_empty_script(self):
        with pytest.raises(ValueError):
            MockTransport([])


class TestTTLCache:
    def test_cache_serves_within_ttl_without_fetching(self):
        provider, transport = make_provider([ok(100.0)], ttl_s=300.0)
        assert provider.value_at(0.0) == 100.0
        assert provider.value_at(299.0) == 100.0
        assert len(transport.requests) == 1

    def test_refetches_past_ttl(self):
        provider, transport = make_provider([ok(100.0), ok(150.0)])
        assert provider.value_at(0.0) == 100.0
        assert provider.value_at(300.0) == 150.0
        assert len(transport.requests) == 2

    def test_ttl_is_simulation_time_not_wall_clock(self):
        provider, transport = make_provider([ok(100.0), ok(150.0)])
        provider.value_at(0.0)
        # Arbitrarily many wall-clock calls at the same simulated time
        # still hit the cache.
        for _ in range(50):
            provider.value_at(100.0)
        assert len(transport.requests) == 1

    def test_negative_time_rejected(self):
        provider, _ = make_provider([ok()])
        with pytest.raises(ValueError):
            provider.value_at(-1.0)


class TestRetryBackoff:
    def test_retries_timeouts_until_success(self):
        provider, transport = make_provider(
            [TransportTimeout("t1"), TransportTimeout("t2"), ok(80.0)],
            max_retries=3,
        )
        assert provider.value_at(0.0) == 80.0
        assert len(transport.requests) == 3

    def test_retries_5xx_and_malformed(self):
        provider, transport = make_provider(
            [
                HTTPResponse(status=503, body=b"overloaded"),
                HTTPResponse(status=200, body=b"not json"),
                HTTPResponse(status=200, body=b'{"data": {}}'),
                ok(42.0),
            ],
            max_retries=3,
        )
        assert provider.value_at(0.0) == 42.0
        assert len(transport.requests) == 4

    def test_backoff_delays_grow_exponentially(self):
        delays = []
        provider, _ = make_provider(
            [TransportTimeout("t")] * 3 + [ok()],
            max_retries=3,
            backoff_s=0.5,
            backoff_multiplier=2.0,
            sleep=delays.append,
        )
        provider.value_at(0.0)
        assert delays == [0.5, 1.0, 2.0]

    def test_exhausted_retries_raise_without_prior_value(self):
        provider, transport = make_provider(
            [TransportTimeout("down")], max_retries=2
        )
        with pytest.raises(ProviderError, match="exhausted 2 retries"):
            provider.value_at(0.0)
        assert len(transport.requests) == 3  # initial try + 2 retries

    def test_4xx_is_permanent_no_retries(self):
        provider, transport = make_provider(
            [HTTPResponse(status=401, body=b"bad token"), ok()],
            max_retries=3,
        )
        with pytest.raises(ProviderError, match="HTTP 401"):
            provider.value_at(0.0)
        assert len(transport.requests) == 1  # no retry after a client error


class TestStaleFallback:
    def test_serves_stale_value_after_total_failure(self):
        provider, transport = make_provider(
            [ok(100.0), TransportTimeout("down")], max_retries=1
        )
        assert provider.value_at(0.0) == 100.0
        # Past the TTL the refetch fails every retry: stale value wins.
        assert provider.value_at(600.0) == 100.0
        assert provider.cached_value == 100.0

    def test_stale_serve_backs_off_one_ttl(self):
        provider, transport = make_provider(
            [ok(100.0), TransportTimeout("down")], max_retries=0, ttl_s=300.0
        )
        provider.value_at(0.0)
        provider.value_at(600.0)  # failed refetch, stale served
        fetches_after_failure = len(transport.requests)
        # Within one TTL of the failure: no new fetch attempts.
        provider.value_at(700.0)
        provider.value_at(899.0)
        assert len(transport.requests) == fetches_after_failure
        # Past the backoff window it tries again.
        provider.value_at(900.0)
        assert len(transport.requests) == fetches_after_failure + 1

    def test_4xx_also_falls_back_to_stale(self):
        provider, _ = make_provider(
            [ok(100.0), HTTPResponse(status=403, body=b"revoked")],
        )
        assert provider.value_at(0.0) == 100.0
        assert provider.value_at(600.0) == 100.0


class TestForecastAndMetadata:
    def test_persistence_forecast(self):
        provider, _ = make_provider([ok(90.0)])
        forecast = provider.forecast(0.0, 1800.0)
        np.testing.assert_array_equal(forecast, np.full(6, 90.0))
        with pytest.raises(ValueError):
            provider.forecast(0.0, 0.0)

    def test_metadata_identifies_the_feed(self):
        provider, _ = make_provider([ok()])
        meta = provider.metadata
        assert meta.source == "http"
        assert meta.dataset == "https://api.example/v1/carbon"
        assert meta.kind == "carbon"

    def test_custom_value_path(self):
        body = json.dumps({"result": {"price": 0.08}}).encode()
        provider, _ = make_provider(
            [HTTPResponse(status=200, body=body)],
            value_path=("result", "price"),
            kind="price",
            units="USD/kWh",
        )
        assert provider.value_at(0.0) == 0.08
        assert DEFAULT_VALUE_PATH == ("data", "carbonIntensity")

    def test_constructor_validation(self):
        with pytest.raises(ProviderError):
            HTTPProvider("u", MockTransport([ok()]), ttl_s=0.0)
        with pytest.raises(ProviderError):
            HTTPProvider("u", MockTransport([ok()]), max_retries=-1)


class TestOfflineGuard:
    def test_urllib_transport_refuses_offline_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_OFFLINE", "1")
        with pytest.raises(ProviderError, match="REPRO_OFFLINE"):
            UrllibTransport()
