"""Gateway building blocks: HTTP parsing, SSE framing, snapshot cache."""

import asyncio
import json

import pytest

from repro.core.errors import UnknownApplicationError
from repro.core.events import AppEvictedEvent, CarbonChangeEvent, event_to_dict
from repro.core.journal import EventJournal
from repro.gateway.cache import CacheEntry, SnapshotCache
from repro.gateway.http import (
    BadRequest,
    json_response,
    read_request,
    render_response,
    split_target,
)
from repro.gateway.server import _route_app
from repro.gateway.sse import (
    HEARTBEAT_FRAME,
    StreamBroker,
    StreamItem,
    Subscriber,
    format_sse_event,
)


def run(coro):
    return asyncio.run(coro)


async def parse(data: bytes):
    # The StreamReader must be built inside a running loop.
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return await read_request(reader)


def carbon_event(i: int) -> CarbonChangeEvent:
    return CarbonChangeEvent(
        time_s=60.0 * i, previous_g_per_kwh=100.0, current_g_per_kwh=100.0 + i
    )


class JournalOnly:
    """The slice of the ecovisor the stream broker reads: the journal."""

    def __init__(self, capacity: int = 256):
        self.journal = EventJournal(capacity=capacity)

    def events_for(self, name, cursor=0, limit=None):
        return self.journal.read(name, cursor=cursor, limit=limit)


class TestHttpParsing:
    def test_parses_method_target_headers_and_body(self):
        raw = (
            b"POST /v1/apps/a/containers?x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 13\r\n\r\n"
            b'{"cores": 2}\n'
        )
        request = run(parse(raw))
        assert request.method == "POST"
        assert request.target == "/v1/apps/a/containers?x=1"
        assert request.headers["host"] == "localhost"
        assert request.json_body() == {"cores": 2}
        assert request.keep_alive

    def test_header_names_fold_to_lowercase(self):
        raw = b"GET / HTTP/1.1\r\nIf-None-Match: \"a:1:1\"\r\n\r\n"
        request = run(parse(raw))
        assert request.headers["if-none-match"] == '"a:1:1"'

    def test_connection_close_disables_keep_alive(self):
        raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        request = run(parse(raw))
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert run(parse(b"")) is None

    def test_truncated_head_raises_400(self):
        with pytest.raises(BadRequest) as excinfo:
            run(parse(b"GET / HTTP/1.1\r\n"))
        assert excinfo.value.status == 400

    def test_oversized_body_raises_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        with pytest.raises(BadRequest) as excinfo:
            run(parse(raw))
        assert excinfo.value.status == 413

    def test_malformed_json_body_raises_on_access(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
        request = run(parse(raw))
        with pytest.raises(BadRequest):
            request.json_body()

    def test_render_response_frames_with_content_length(self):
        payload = render_response(200, {"ETag": '"x"'}, b"hi")
        assert payload.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"ETag: \"x\"\r\n" in payload
        assert b"Content-Length: 2\r\n" in payload
        assert payload.endswith(b"\r\n\r\nhi")

    def test_304_renders_with_zero_length(self):
        payload = render_response(304, {"ETag": '"x"'})
        assert b"304 Not Modified" in payload
        assert b"Content-Length: 0" in payload

    def test_json_response_bytes_are_deterministic(self):
        one = json_response(200, {"b": 1, "a": 2})
        two = json_response(200, {"a": 2, "b": 1})
        assert one == two
        assert b'{"a": 2, "b": 1}' in one

    def test_split_target(self):
        assert split_target("/x?a=1") == ("/x", "a=1")
        assert split_target("/x") == ("/x", "")


class TestRoutePatterns:
    def test_state_route_app_extraction(self):
        assert _route_app("/v1/apps/web/state", "/v1/apps/", "/state") == "web"
        assert _route_app("/v1/apps/web/solar", "/v1/apps/", "/state") is None
        assert _route_app("/v1/apps/a/b/state", "/v1/apps/", "/state") is None
        assert _route_app("/v1/apps//state", "/v1/apps/", "/state") is None

    def test_stream_route_app_extraction(self):
        path = "/v1/apps/web/events/stream"
        assert _route_app(path, "/v1/apps/", "/events/stream") == "web"


class TestSseFraming:
    def test_frame_with_id_event_and_data(self):
        frame = format_sse_event("CarbonChangeEvent", '{"x": 1}', seq=7)
        assert frame == b'id: 7\nevent: CarbonChangeEvent\ndata: {"x": 1}\n\n'

    def test_control_frame_has_no_id(self):
        frame = format_sse_event("stream_end", '{"reason": "evicted"}')
        assert frame.startswith(b"event: stream_end\n")
        assert b"id:" not in frame

    def test_heartbeat_is_a_comment(self):
        assert HEARTBEAT_FRAME.startswith(b":")
        assert HEARTBEAT_FRAME.endswith(b"\n\n")

    def test_stream_item_frame_roundtrip(self):
        item = StreamItem(name="X", data="{}", seq=3)
        assert item.frame() == b"id: 3\nevent: X\ndata: {}\n\n"


class TestSubscriberQueue:
    def test_overflow_counts_drops(self):
        async def scenario():
            sub = Subscriber("a", 0, queue_size=2)
            for i in range(5):
                sub._offer(StreamItem(name="X", data="{}", seq=i))
            return sub

        sub = run(scenario())
        assert sub.queue.qsize() == 2
        assert sub.dropped == 3

    def test_drain_surfaces_queue_dropped_notice(self):
        async def scenario():
            sub = Subscriber("a", 0, queue_size=2)
            for i in range(4):
                sub._offer(StreamItem(name="X", data="{}", seq=i))
            # Drain, then deliver one more: the gap notice must precede it.
            sub.queue.get_nowait()
            sub.queue.get_nowait()
            sub._offer(StreamItem(name="X", data="{}", seq=9))
            return [sub.queue.get_nowait() for _ in range(2)]

        first, second = run(scenario())
        assert first.name == "queue_dropped"
        assert json.loads(first.data)["dropped"] == 2
        assert second.seq == 9


class TestStreamBroker:
    def test_register_returns_backlog_from_cursor(self):
        async def scenario():
            eco = JournalOnly()
            for i in range(3):
                eco.journal.record("a", carbon_event(i))
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            subscriber, backlog = broker.register("a", cursor=1)
            return subscriber, backlog

        subscriber, backlog = run(scenario())
        assert [item.seq for item in backlog] == [1, 2]
        assert subscriber.cursor == 3

    def test_register_unknown_app_raises(self):
        async def scenario():
            broker = StreamBroker(JournalOnly())
            broker.bind_loop(asyncio.get_running_loop())
            with pytest.raises(UnknownApplicationError):
                broker.register("ghost", cursor=0)

        run(scenario())

    def test_pump_delivers_new_events_once(self):
        async def scenario():
            eco = JournalOnly()
            eco.journal.record("a", carbon_event(0))
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            subscriber, backlog = broker.register("a", cursor=0)
            eco.journal.record("a", carbon_event(1))
            eco.journal.record("a", carbon_event(2))
            broker.pump()
            broker.pump()  # no new events: must not redeliver
            await asyncio.sleep(0)
            items = []
            while not subscriber.queue.empty():
                items.append(subscriber.queue.get_nowait())
            return backlog, items

        backlog, items = run(scenario())
        assert [item.seq for item in backlog] == [0]
        assert [item.seq for item in items] == [1, 2]

    def test_pump_skips_backlog_overlap(self):
        async def scenario():
            eco = JournalOnly()
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            eco.journal.record("a", carbon_event(0))
            first, _ = broker.register("a", cursor=0)
            broker.pump()  # tip -> 1
            # New events, then a second subscriber whose backlog already
            # covers them; the next pump must not duplicate into it.
            eco.journal.record("a", carbon_event(1))
            second, backlog = broker.register("a", cursor=0)
            broker.pump()
            await asyncio.sleep(0)
            delivered = []
            while not second.queue.empty():
                delivered.append(second.queue.get_nowait())
            return backlog, delivered

        backlog, delivered = run(scenario())
        assert [item.seq for item in backlog] == [0, 1]
        assert delivered == []  # the pump's [1] was already in the backlog

    def test_journal_overflow_mid_stream_surfaces_journal_dropped(self):
        async def scenario():
            eco = JournalOnly(capacity=4)
            eco.journal.record("a", carbon_event(0))
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            subscriber, _ = broker.register("a", cursor=0)
            # Overflow the feed while the subscriber is idle.
            for i in range(1, 11):
                eco.journal.record("a", carbon_event(i))
            broker.pump()
            await asyncio.sleep(0)
            items = []
            while not subscriber.queue.empty():
                items.append(subscriber.queue.get_nowait())
            return items

        items = run(scenario())
        assert items[0].name == "journal_dropped"
        payload = json.loads(items[0].data)
        assert payload["dropped"] == 6  # seqs 1..6 fell out of capacity 4
        assert [item.seq for item in items[1:]] == [7, 8, 9, 10]

    def test_eviction_event_carries_terminal_marker(self):
        async def scenario():
            eco = JournalOnly()
            eco.journal.record("a", carbon_event(0))
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            subscriber, _ = broker.register("a", cursor=0)
            eco.journal.record(
                "a", AppEvictedEvent(time_s=60.0, app_name="a")
            )
            broker.pump()
            await asyncio.sleep(0)
            items = []
            while not subscriber.queue.empty():
                items.append(subscriber.queue.get_nowait())
            return items

        items = run(scenario())
        assert items[0].name == "AppEvictedEvent"
        assert not items[0].terminal
        assert items[1].name == "stream_end"
        assert items[1].terminal
        assert json.loads(items[1].data) == {"reason": "evicted"}

    def test_resume_past_horizon_starts_from_oldest(self):
        async def scenario():
            eco = JournalOnly(capacity=3)
            for i in range(10):
                eco.journal.record("a", carbon_event(i))
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            _, backlog = broker.register("a", cursor=0)
            return backlog

        backlog = run(scenario())
        assert backlog[0].name == "journal_dropped"
        assert json.loads(backlog[0].data)["dropped"] == 7
        assert [item.seq for item in backlog[1:]] == [7, 8, 9]

    def test_unregister_clears_tip_state(self):
        async def scenario():
            eco = JournalOnly()
            eco.journal.record("a", carbon_event(0))
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            subscriber, _ = broker.register("a", cursor=0)
            assert broker.open_subscribers == 1
            broker.unregister(subscriber)
            return broker

        broker = run(scenario())
        assert broker.open_subscribers == 0
        assert broker._tips == {}

    def test_queue_drop_callback_fires(self):
        async def scenario():
            eco = JournalOnly()
            eco.journal.record("a", carbon_event(0))
            drops = []
            broker = StreamBroker(eco, queue_size=1, on_queue_drop=drops.append)
            broker.bind_loop(asyncio.get_running_loop())
            broker.register("a", cursor=1)
            for i in range(1, 5):
                eco.journal.record("a", carbon_event(i))
            broker.pump()
            await asyncio.sleep(0)
            return drops

        drops = run(scenario())
        assert sum(drops) == 3  # queue of 1 held one of four events

    def test_event_data_matches_cursor_poll_serialization(self):
        async def scenario():
            eco = JournalOnly()
            event = carbon_event(4)
            eco.journal.record("a", event)
            broker = StreamBroker(eco)
            broker.bind_loop(asyncio.get_running_loop())
            _, backlog = broker.register("a", cursor=0)
            return event, backlog[0]

        event, item = run(scenario())
        assert item.data == json.dumps(event_to_dict(event), sort_keys=True)
        assert item.name == "CarbonChangeEvent"


class TestSnapshotCache:
    def test_populate_is_single_flight(self):
        async def scenario():
            cache = SnapshotCache()
            builds = []

            async def build():
                builds.append(1)
                await asyncio.sleep(0.01)
                return CacheEntry("e", b"fresh", b"304")

            results = await asyncio.gather(
                cache.populate("a", build), cache.populate("a", build)
            )
            return builds, results

        builds, results = run(scenario())
        assert len(builds) == 1
        assert results[0] is results[1]

    def test_invalidate_during_build_discards_entry(self):
        async def scenario():
            cache = SnapshotCache()

            async def build():
                cache.invalidate()  # a tick lands mid-build
                return CacheEntry("e", b"fresh", b"304")

            entry = await cache.populate("a", build)
            return entry, cache.get("a")

        entry, cached = run(scenario())
        assert entry is not None
        assert cached is None  # stale-at-birth entries are not kept

    def test_error_builds_are_not_cached(self):
        async def scenario():
            cache = SnapshotCache()

            async def build():
                return None

            entry = await cache.populate("a", build)
            return entry, cache.get("a")

        entry, cached = run(scenario())
        assert entry is None
        assert cached is None

    def test_invalidate_clears_entries(self):
        async def scenario():
            cache = SnapshotCache()

            async def build():
                return CacheEntry("e", b"fresh", b"304")

            await cache.populate("a", build)
            assert cache.get("a") is not None
            cache.invalidate()
            return cache.get("a")

        assert run(scenario()) is None
