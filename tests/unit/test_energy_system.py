"""The combined physical energy system."""

import pytest

from repro.core.errors import ConfigurationError
from repro.energy.battery import Battery
from repro.energy.grid import GridConnection
from repro.energy.solar import ConstantSolarTrace, SolarArrayEmulator
from repro.energy.system import PhysicalEnergySystem
from repro.core.config import SolarConfig


def full_plant() -> PhysicalEnergySystem:
    return PhysicalEnergySystem(
        grid=GridConnection(),
        battery=Battery(),
        solar=SolarArrayEmulator(
            SolarConfig(peak_power_w=100.0, panel_efficiency_derating=1.0),
            ConstantSolarTrace(0.5),
        ),
    )


class TestComposition:
    def test_full_plant_flags(self):
        plant = full_plant()
        assert plant.has_grid and plant.has_battery and plant.has_solar

    def test_grid_only_site(self):
        plant = PhysicalEnergySystem(grid=GridConnection())
        assert plant.has_grid
        assert not plant.has_battery
        assert not plant.has_solar

    def test_offgrid_site(self):
        plant = PhysicalEnergySystem(battery=Battery(), solar=SolarArrayEmulator())
        assert not plant.has_grid

    def test_rejects_empty_system(self):
        with pytest.raises(ConfigurationError):
            PhysicalEnergySystem()


class TestSolarReadings:
    def test_solar_power(self):
        assert full_plant().solar_power_w(0.0) == pytest.approx(50.0)

    def test_no_array_means_zero(self):
        plant = PhysicalEnergySystem(grid=GridConnection())
        assert plant.solar_power_w(0.0) == 0.0


class TestSnapshot:
    def test_snapshot_fields(self):
        plant = full_plant()
        snap = plant.snapshot(10.0)
        assert snap.time_s == 10.0
        assert snap.solar_power_w == pytest.approx(50.0)
        assert snap.battery_soc_fraction == pytest.approx(0.5)
        assert snap.grid_energy_wh == 0.0

    def test_snapshot_without_battery(self):
        plant = PhysicalEnergySystem(grid=GridConnection())
        snap = plant.snapshot(0.0)
        assert snap.battery_level_wh == 0.0
