"""The typed SignalBus subscription API (v1)."""

import pytest

from repro.core.api import connect
from repro.core.config import ShareConfig
from repro.core.events import TickEvent
from repro.core.signals import (
    BatteryEmpty,
    CarbonChange,
    PriceChange,
    SolarChange,
    Tick,
)
from repro.core.state import EnergyState
from tests.conftest import make_ecovisor, run_ticks


def _bus_ecovisor(**kwargs):
    eco = make_ecovisor(**kwargs)
    eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    eco.register_app("b", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    return eco, connect(eco, "a"), connect(eco, "b")


class TestSubscription:
    def test_on_tick_signal(self):
        eco, api, _ = _bus_ecovisor()
        seen = []
        api.signals.on(Tick, seen.append)
        run_ticks(eco, 3)
        assert len(seen) == 3
        assert all(isinstance(e, TickEvent) for e in seen)

    def test_cancel_stops_delivery(self):
        from repro.core.clock import SimulationClock

        eco, api, _ = _bus_ecovisor()
        seen = []
        sub = api.signals.on(Tick, seen.append)
        clock = SimulationClock(60.0)
        for index in range(4):
            if index == 2:
                sub.cancel()
            tick = clock.current_tick()
            eco.begin_tick(tick)
            eco.invoke_app_ticks(tick)
            eco.settle(tick)
            clock.advance()
        assert len(seen) == 2
        assert not sub.active

    def test_cancel_is_idempotent(self):
        eco, api, _ = _bus_ecovisor()
        sub = api.signals.on(Tick, lambda e: None)
        sub.cancel()
        sub.cancel()
        assert api.signals.subscriptions == []

    def test_off_and_cancel_all(self):
        eco, api, _ = _bus_ecovisor()
        s1 = api.signals.on(Tick, lambda e: None)
        api.signals.on(CarbonChange, lambda e: None)
        api.signals.off(s1)
        assert len(api.signals.subscriptions) == 1
        api.signals.cancel_all()
        assert api.signals.subscriptions == []

    def test_cancel_releases_bus_and_owner_entries(self):
        eco, api, _ = _bus_ecovisor()
        for _ in range(50):  # churn-heavy subscribe/cancel must not leak
            api.signals.on(Tick, lambda e: None).cancel()
        assert api.signals.subscriptions == []
        assert eco.events.subscriber_count(TickEvent) == 0

    def test_invalid_signal_type_rejected(self):
        _, api, _ = _bus_ecovisor()
        with pytest.raises(TypeError):
            api.signals.on(int, lambda e: None)


class TestAppScoping:
    def test_solar_change_scoped_to_app(self):
        eco, api_a, api_b = _bus_ecovisor(solar_w=10.0)
        seen_a, seen_b = [], []
        api_a.signals.on(SolarChange, seen_a.append)
        api_b.signals.on(SolarChange, seen_b.append)
        run_ticks(eco, 1)  # 0 -> 5 W is a change for both apps
        assert [e.app_name for e in seen_a] == ["a"]
        assert [e.app_name for e in seen_b] == ["b"]

    def test_battery_empty_scoped_to_app(self):
        from repro.core.config import BatteryConfig

        eco, api_a, api_b = _bus_ecovisor(
            solar_w=0.0,
            battery_config=BatteryConfig(
                capacity_wh=1.0,
                empty_soc_fraction=0.30,
                initial_soc_fraction=0.50,
                charge_efficiency=1.0,
                discharge_efficiency=1.0,
            ),
        )
        seen_a, seen_b = [], []
        api_a.signals.on(BatteryEmpty, seen_a.append)
        api_b.signals.on(BatteryEmpty, seen_b.append)
        container = api_a.launch_container(4)
        api_a.set_battery_max_discharge(1e9)
        # Drain only app a's tiny virtual battery; b's never empties.
        run_ticks(eco, 30, lambda tick: container.set_demand_utilization(1.0))
        assert len(seen_a) == 1
        assert seen_a[0].app_name == "a"
        assert seen_b == []

    def test_carbon_change_unscoped(self):
        eco, api, _ = _bus_ecovisor()
        seen = []
        api.signals.on(CarbonChange, seen.append)
        run_ticks(eco, 3)  # constant trace: no change events
        assert seen == []


class TestThresholdAndDebounce:
    def test_threshold_filters_small_changes(self):
        eco, api, _ = _bus_ecovisor(solar_w=10.0)
        all_changes, big_changes = [], []
        api.signals.on(SolarChange, all_changes.append)
        api.signals.on(SolarChange, big_changes.append, threshold=100.0)
        run_ticks(eco, 2)  # one 0 -> 5 W change
        assert len(all_changes) == 1
        assert big_changes == []

    def test_threshold_requires_delta_signal(self):
        _, api, _ = _bus_ecovisor()
        with pytest.raises(ValueError):
            api.signals.on(Tick, lambda e: None, threshold=1.0)
        with pytest.raises(ValueError):
            api.signals.on(BatteryEmpty, lambda e: None, threshold=1.0)

    def test_negative_threshold_rejected(self):
        _, api, _ = _bus_ecovisor()
        with pytest.raises(ValueError):
            api.signals.on(CarbonChange, lambda e: None, threshold=-1.0)

    def test_debounce_enforces_min_gap(self):
        eco, api, _ = _bus_ecovisor()
        dense, sparse = [], []
        api.signals.on(Tick, dense.append)
        api.signals.on(Tick, sparse.append, debounce_s=150.0)  # 60 s ticks
        run_ticks(eco, 6)
        assert len(dense) == 6
        # Delivered at t=0, then every third tick (>= 150 s apart).
        assert [e.time_s for e in sparse] == [0.0, 180.0]

    def test_negative_debounce_rejected(self):
        _, api, _ = _bus_ecovisor()
        with pytest.raises(ValueError):
            api.signals.on(Tick, lambda e: None, debounce_s=-5.0)


class TestEventOrdering:
    def test_signal_callbacks_observe_fresh_snapshot(self):
        """Events publish after the tick's snapshots are built."""
        eco, api, _ = _bus_ecovisor(solar_w=10.0)
        observed = []

        def callback(event):
            observed.append((event.current_w, api.state().solar_power_w))

        api.signals.on(SolarChange, callback)
        run_ticks(eco, 1)
        assert observed == [(5.0, 5.0)]


class TestLibraryDelegation:
    def test_notify_methods_ride_the_signal_bus(self):
        from repro.core.library import AppEnergyLibrary

        eco, api, _ = _bus_ecovisor(solar_w=10.0)
        library = AppEnergyLibrary(api)
        seen = []
        sub = library.notify_solar_change(seen.append)
        run_ticks(eco, 1)
        assert [e.app_name for e in seen] == ["a"]
        sub.cancel()
        run_ticks(eco, 1)
        assert len(seen) == 1

    def test_library_enforce_rates_uses_snapshot(self):
        from repro.core.library import AppEnergyLibrary

        eco, api, _ = _bus_ecovisor(solar_w=0.0, carbon_g_per_kwh=500.0)
        library = AppEnergyLibrary(api)
        container = api.launch_container(1)
        library.set_carbon_rate(container.id, 0.1)  # mg/s at 500 g/kWh
        run_ticks(eco, 1)
        # 0.1 mg/s = 360 mg/h over 500 g/kWh -> 0.72 W cap.
        assert container.power_cap_w == pytest.approx(0.72)


class TestStateTypeExports:
    def test_core_package_reexports(self):
        import repro.core as core

        assert core.EnergyState is EnergyState
        assert core.CarbonChange is CarbonChange
        assert core.PriceChange is PriceChange
