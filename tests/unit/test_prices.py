"""Electricity-price traces and the price signal service."""

import numpy as np
import pytest

from repro.carbon.forecast import OracleForecaster, PersistenceForecaster
from repro.core.config import PriceServiceConfig
from repro.core.errors import TraceError
from repro.market.prices import (
    DEFAULT_TOU_SCHEDULE,
    PriceTrace,
    TouSchedule,
    constant_price_trace,
    flat_price_trace,
    make_price_trace,
    realtime_price_trace,
    tou_price_trace,
)
from repro.market.service import PriceSignal

HOUR = 3600.0


class TestPriceTrace:
    def test_rejects_empty_and_negative(self):
        with pytest.raises(TraceError):
            PriceTrace([])
        with pytest.raises(TraceError):
            PriceTrace([0.1, -0.2])

    def test_price_at_clamps_past_end(self):
        trace = constant_price_trace(0.25, days=1)
        assert trace.price_at(10 * 86400.0) == pytest.approx(0.25)

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            constant_price_trace(0.25).price_at(-1.0)

    def test_percentile_and_mean(self):
        trace = PriceTrace([0.1, 0.2, 0.3, 0.4])
        assert trace.mean() == pytest.approx(0.25)
        assert trace.percentile(0.0) == pytest.approx(0.1)
        assert trace.percentile(100.0) == pytest.approx(0.4)

    def test_rolled_shifts_origin(self):
        trace = PriceTrace([0.1, 0.2, 0.3, 0.4])
        rolled = trace.rolled(600.0)  # two 5-minute samples
        assert rolled.price_at(0.0) == pytest.approx(0.3)
        assert rolled.regime == trace.regime

    def test_samples_are_read_only(self):
        trace = constant_price_trace(0.25)
        with pytest.raises(ValueError):
            trace.samples[0] = 1.0


class TestRegimes:
    def test_flat_is_constant(self):
        trace = flat_price_trace(0.30, days=2)
        assert float(trace.samples.min()) == float(trace.samples.max()) == 0.30
        assert trace.regime == "flat"

    def test_tou_orders_periods(self):
        trace = tou_price_trace(days=1)
        s = DEFAULT_TOU_SCHEDULE
        assert trace.price_at(3 * HOUR) == pytest.approx(s.off_peak_usd_per_kwh)
        assert trace.price_at(12 * HOUR) == pytest.approx(s.mid_peak_usd_per_kwh)
        assert trace.price_at(18 * HOUR) == pytest.approx(s.on_peak_usd_per_kwh)

    def test_tou_boundary_samples(self):
        """The 16:00 on-peak edge: 15:55 is mid-peak, 16:00 on-peak."""
        trace = tou_price_trace(days=1)
        s = DEFAULT_TOU_SCHEDULE
        assert trace.price_at(16 * HOUR - 300.0) == pytest.approx(
            s.mid_peak_usd_per_kwh
        )
        assert trace.price_at(16 * HOUR) == pytest.approx(s.on_peak_usd_per_kwh)
        # 21:00 drops back to mid-peak; 22:00 to off-peak (wraps midnight).
        assert trace.price_at(21 * HOUR) == pytest.approx(s.mid_peak_usd_per_kwh)
        assert trace.price_at(22 * HOUR) == pytest.approx(s.off_peak_usd_per_kwh)
        assert trace.price_at(0.0) == pytest.approx(s.off_peak_usd_per_kwh)

    def test_tou_schedule_validation(self):
        with pytest.raises(TraceError):
            TouSchedule(off_peak_usd_per_kwh=0.9).validate()  # order violated
        with pytest.raises(TraceError):
            TouSchedule(on_peak_start_hour=30.0).validate()

    def test_realtime_shape(self):
        """Evening ramp above the midday dip; prices stay non-negative."""
        trace = realtime_price_trace(days=4, seed=2023)
        assert float(trace.samples.min()) >= 0.0
        samples = np.asarray(trace.samples)
        hours = (np.arange(len(samples)) * 300.0 / HOUR) % 24.0
        midday = samples[(hours >= 11) & (hours < 15)].mean()
        evening = samples[(hours >= 18) & (hours < 21)].mean()
        assert evening > midday

    def test_realtime_deterministic(self):
        a = realtime_price_trace(days=2, seed=7)
        b = realtime_price_trace(days=2, seed=7)
        c = realtime_price_trace(days=2, seed=8)
        assert np.array_equal(a.samples, b.samples)
        assert not np.array_equal(a.samples, c.samples)

    def test_make_price_trace_dispatch(self):
        for regime in ("flat", "tou", "realtime"):
            assert make_price_trace(regime, days=1).regime == regime

    def test_unknown_regime_is_value_error_listing_regimes(self):
        # The error is both a TraceError and a ValueError, and its
        # message names every valid regime so the fix is in the text.
        with pytest.raises(ValueError, match="unknown price regime 'nope'"):
            make_price_trace("nope")
        with pytest.raises(TraceError) as excinfo:
            make_price_trace("nope")
        for regime in ("flat", "tou", "realtime"):
            assert regime in str(excinfo.value)


class TestPriceSignal:
    def test_quantizes_to_update_interval(self):
        trace = PriceTrace([0.1, 0.2, 0.3, 0.4])
        signal = PriceSignal(trace=trace)
        # Within the first 5-minute interval every query sees sample 0.
        assert signal.price_at(0.0) == pytest.approx(0.1)
        assert signal.price_at(299.0) == pytest.approx(0.1)
        assert signal.price_at(300.0) == pytest.approx(0.2)

    def test_observe_builds_history(self):
        signal = PriceSignal(trace=constant_price_trace(0.25))
        signal.observe(0.0)
        signal.observe(60.0)
        signal.observe(60.0)  # duplicate timestamp not re-recorded
        assert signal.history() == [(0.0, 0.25), (60.0, 0.25)]
        assert signal.observed_percentile(50.0) == pytest.approx(0.25)

    def test_builds_trace_from_config_regime(self):
        signal = PriceSignal(PriceServiceConfig(regime="flat"), days=1)
        assert signal.regime == "flat"

    def test_threshold_percentile_reads_trace(self):
        trace = PriceTrace([0.1, 0.2, 0.3, 0.4])
        signal = PriceSignal(trace=trace)
        assert signal.threshold_percentile(
            100.0, 0.0, trace.duration_s
        ) == pytest.approx(0.4)

    def test_forecaster_compatibility(self):
        """The carbon forecasters run unchanged against a price signal."""
        trace = PriceTrace([0.1, 0.2, 0.3, 0.4])
        signal = PriceSignal(trace=trace)
        oracle = OracleForecaster(signal)
        predicted = oracle.predict(0.0, 600.0)
        assert list(predicted) == pytest.approx([0.2, 0.3])
        persistence = PersistenceForecaster(signal)
        assert list(persistence.predict(0.0, 600.0)) == pytest.approx([0.1, 0.1])
