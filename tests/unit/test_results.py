"""Result records and summaries."""


import pytest

from repro.sim.results import (
    BatchRunResult,
    SeriesBundle,
    ServiceRunResult,
    summarize_batch,
)


def result(label="p", runtime=3600.0, carbon=1.0, completed=True):
    return BatchRunResult(
        policy_label=label,
        arrival_offset_s=0.0,
        runtime_s=runtime,
        carbon_g=carbon,
        energy_wh=10.0,
        completed=completed,
    )


class TestBatchSummary:
    def test_mean_and_std(self):
        summary = summarize_batch(
            [result(runtime=3600.0), result(runtime=7200.0)]
        )
        assert summary.mean_runtime_s == pytest.approx(5400.0)
        assert summary.std_runtime_s == pytest.approx(2545.58, rel=1e-3)
        assert summary.mean_runtime_hours == pytest.approx(1.5)
        assert summary.runs == 2

    def test_single_run_std_zero(self):
        summary = summarize_batch([result()])
        assert summary.std_runtime_s == 0.0
        assert summary.std_carbon_g == 0.0

    def test_completion_rate(self):
        summary = summarize_batch([result(), result(completed=False)])
        assert summary.completion_rate == pytest.approx(0.5)

    def test_ratio_helpers(self):
        base = summarize_batch([result(runtime=3600.0, carbon=2.0)])
        other = summarize_batch([result(runtime=7200.0, carbon=1.0)])
        assert other.runtime_ratio_vs(base) == pytest.approx(2.0)
        assert other.carbon_change_vs(base) == pytest.approx(-0.5)

    def test_mixed_labels_rejected(self):
        with pytest.raises(ValueError):
            summarize_batch([result("a"), result("b")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_batch([])

    def test_runtime_hours_on_result(self):
        assert result(runtime=1800.0).runtime_hours == pytest.approx(0.5)


class TestServiceResult:
    def test_violation_fraction(self):
        r = ServiceRunResult(
            policy_label="p", app_name="a", slo_ms=60.0, ticks=100,
            violation_ticks=5, mean_p95_ms=40.0, worst_p95_ms=80.0,
            carbon_g=1.0, energy_wh=2.0,
        )
        assert r.violation_fraction == pytest.approx(0.05)
        assert not r.met_slo_always

    def test_zero_ticks(self):
        r = ServiceRunResult(
            policy_label="p", app_name="a", slo_ms=60.0, ticks=0,
            violation_ticks=0, mean_p95_ms=0.0, worst_p95_ms=0.0,
            carbon_g=0.0, energy_wh=0.0,
        )
        assert r.violation_fraction == 0.0
        assert r.met_slo_always


class TestSeriesBundle:
    def test_add_and_names(self):
        bundle = SeriesBundle(title="t")
        bundle.add("a", [0.0, 1.0], [10.0, 20.0])
        bundle.add("b", [0.0], [1.0])
        assert bundle.names() == ["a", "b"]
        assert len(bundle) == 2
        assert bundle.series["a"] == [(0.0, 10.0), (1.0, 20.0)]
