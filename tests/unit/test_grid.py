"""Grid connection model."""

import pytest

from repro.core.config import GridConfig
from repro.energy.grid import GridConnection


class TestDraw:
    def test_unlimited_grid_grants_everything(self):
        grid = GridConnection()
        assert grid.draw(1234.5, 60.0) == pytest.approx(1234.5)

    def test_limited_grid_clamps(self):
        grid = GridConnection(GridConfig(max_power_w=100.0))
        assert grid.draw(250.0, 60.0) == pytest.approx(100.0)

    def test_metering_accumulates(self):
        grid = GridConnection()
        grid.draw(60.0, 60.0)   # 1 Wh
        grid.draw(120.0, 60.0)  # 2 Wh
        assert grid.total_energy_wh == pytest.approx(3.0)

    def test_rejects_negative_draw(self):
        with pytest.raises(ValueError):
            GridConnection().draw(-1.0, 60.0)

    def test_available_power_is_limit(self):
        grid = GridConnection(GridConfig(max_power_w=42.0))
        assert grid.available_power_w(0.0) == 42.0


class TestExport:
    def test_export_disabled_by_default(self):
        grid = GridConnection()
        assert grid.export(50.0, 3600.0) == 0.0
        assert grid.exported_wh == 0.0

    def test_export_with_net_metering(self):
        grid = GridConnection(GridConfig(net_metering=True))
        assert grid.export(50.0, 3600.0) == pytest.approx(50.0)
        assert grid.exported_wh == pytest.approx(50.0)

    def test_export_rejects_negative(self):
        with pytest.raises(ValueError):
            GridConnection().export(-5.0, 60.0)


class TestAverages:
    def test_average_draw(self):
        grid = GridConnection()
        grid.draw(100.0, 1800.0)  # 50 Wh over half an hour
        assert grid.average_draw_w(3600.0) == pytest.approx(50.0)
