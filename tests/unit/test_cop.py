"""Container orchestration platform: lifecycle, scaling, capping, power."""

import pytest

from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.config import ClusterConfig, ServerConfig
from repro.core.errors import (
    InsufficientResourcesError,
    SchedulingError,
    UnknownContainerError,
)


@pytest.fixture
def cop() -> ContainerOrchestrationPlatform:
    return ContainerOrchestrationPlatform(
        ClusterConfig(num_servers=3, server=ServerConfig())
    )


class TestLifecycle:
    def test_launch_places_container(self, cop):
        c = cop.launch_container("app", 2)
        assert cop.has_container(c.id)
        assert c.server_name is not None
        assert cop.free_cores == 10

    def test_stop_releases_resources(self, cop):
        c = cop.launch_container("app", 2)
        cop.stop_container(c.id)
        assert not cop.has_container(c.id)
        assert cop.free_cores == 12

    def test_unknown_container_rejected(self, cop):
        with pytest.raises(UnknownContainerError):
            cop.get_container("nope")

    def test_stop_app_removes_all(self, cop):
        cop.launch_container("a", 1)
        cop.launch_container("a", 1)
        cop.launch_container("b", 1)
        stopped = cop.stop_app("a")
        assert len(stopped) == 2
        assert len(cop.containers_for("a")) == 0
        assert len(cop.containers_for("b")) == 1

    def test_rejects_nonpositive_cores(self, cop):
        with pytest.raises(SchedulingError):
            cop.launch_container("app", 0)


class TestHorizontalScaling:
    def test_scale_up(self, cop):
        cop.scale_app_to("app", 4, cores=1)
        assert len(cop.running_containers_for("app")) == 4

    def test_scale_down(self, cop):
        cop.scale_app_to("app", 4, cores=1)
        cop.scale_app_to("app", 1, cores=1)
        assert len(cop.running_containers_for("app")) == 1

    def test_scale_to_zero(self, cop):
        cop.scale_app_to("app", 3, cores=1)
        cop.scale_app_to("app", 0, cores=1)
        assert cop.running_containers_for("app") == []

    def test_scale_respects_roles(self, cop):
        coordinator = cop.launch_container("app", 1, role="coordinator")
        cop.scale_app_to("app", 3, cores=1)  # workers only
        cop.scale_app_to("app", 0, cores=1)
        remaining = cop.running_containers_for("app")
        assert [c.id for c in remaining] == [coordinator.id]

    def test_negative_count_rejected(self, cop):
        with pytest.raises(SchedulingError):
            cop.scale_app_to("app", -1, cores=1)

    def test_scale_beyond_capacity_raises(self, cop):
        with pytest.raises(InsufficientResourcesError):
            cop.scale_app_to("app", 13, cores=1)


class TestVerticalScaling:
    def test_grow_in_place(self, cop):
        c = cop.launch_container("app", 1)
        cop.set_container_cores(c.id, 3)
        assert c.cores == 3

    def test_grow_with_migration(self, cop):
        # Pack the container's host so in-place growth is impossible but
        # another server can take the resized container.
        small = cop.launch_container("app", 1)
        host = small.server_name
        host_server = next(s for s in cop.servers if s.name == host)
        filler = cop.launch_container("filler", host_server.free_cores)
        # Force the filler onto the same host if the scheduler spread it.
        if filler.server_name != host:
            for server in cop.servers:
                if server.hosts(filler.id):
                    server.evict(filler.id)
            host_server.place(filler)
        cop.set_container_cores(small.id, 4)
        assert small.cores == 4
        assert small.server_name is not None
        assert small.server_name != host

    def test_impossible_growth_restores_state(self, cop):
        containers = [cop.launch_container("app", 4) for _ in range(3)]
        victim = containers[0]
        with pytest.raises(InsufficientResourcesError):
            cop.set_container_cores(victim.id, 5)
        assert victim.cores == 4
        assert victim.server_name is not None


class TestPowerCapping:
    def test_cap_translated_to_utilization(self, cop):
        c = cop.launch_container("app", 1)
        cop.set_power_cap(c.id, 0.79375)  # idle share + half dynamic range
        assert c.cap_utilization == pytest.approx(0.5)

    def test_cap_cleared(self, cop):
        c = cop.launch_container("app", 1)
        cop.set_power_cap(c.id, 0.5)
        cop.set_power_cap(c.id, None)
        assert c.power_cap_w is None
        assert c.cap_utilization == 1.0


class TestPowerMeasurement:
    def test_container_power_tracks_utilization(self, cop):
        c = cop.launch_container("app", 1)
        c.set_demand_utilization(1.0)
        assert cop.container_power_w(c.id) == pytest.approx(1.25)
        c.set_demand_utilization(0.0)
        assert cop.container_power_w(c.id) == pytest.approx(0.3375)

    def test_cap_limits_measured_power(self, cop):
        c = cop.launch_container("app", 1)
        c.set_demand_utilization(1.0)
        cop.set_power_cap(c.id, 0.8)
        assert cop.container_power_w(c.id) == pytest.approx(0.8)

    def test_app_power_sums_containers(self, cop):
        a = cop.launch_container("app", 1)
        b = cop.launch_container("app", 1)
        for c in (a, b):
            c.set_demand_utilization(1.0)
        assert cop.app_power_w("app") == pytest.approx(2.5)

    def test_cluster_power_includes_baseline(self, cop):
        cop.launch_container("app", 1).set_demand_utilization(1.0)
        # 1.25 W container + idle of 11 unallocated cores.
        expected_baseline = 11 / 4 * 1.35
        assert cop.cluster_power_w() == pytest.approx(1.25 + expected_baseline)

    def test_baseline_power_full_when_empty(self, cop):
        assert cop.baseline_power_w() == pytest.approx(3 * 1.35)


class TestBulkPowerMeasurement:
    def test_container_powers_matches_per_container_calls(self, cop):
        ids = [cop.launch_container("app", 1).id for _ in range(3)]
        ids += [cop.launch_container("other", 2).id]
        for c in cop.containers():
            c.set_demand_utilization(0.7)
        bulk = cop.container_powers()
        assert set(bulk) == set(ids)
        for container_id in ids:
            assert bulk[container_id] == cop.container_power_w(container_id)

    def test_app_container_powers_matches_filtered_calls(self, cop):
        for _ in range(2):
            cop.launch_container("a", 1)
        cop.launch_container("b", 1)
        for c in cop.containers():
            c.set_demand_utilization(0.5)
        powers = cop.app_container_powers("a")
        assert set(powers) == {c.id for c in cop.running_containers_for("a")}
        for container_id, power in powers.items():
            assert power == cop.container_power_w(container_id)
        assert cop.app_container_powers("missing") == {}

    def test_app_power_equals_sum_of_bulk_readings(self, cop):
        for _ in range(3):
            cop.launch_container("a", 1)
        for c in cop.containers():
            c.set_demand_utilization(0.9)
        readings = cop.container_powers()
        expected = sum(
            readings[c.id] for c in cop.running_containers_for("a")
        )
        assert cop.app_power_w("a") == expected


class TestPerAppIndex:
    def test_index_tracks_launch_and_stop(self, cop):
        c1 = cop.launch_container("a", 1)
        c2 = cop.launch_container("a", 1)
        cop.launch_container("b", 1)
        assert [c.id for c in cop.containers_for("a")] == [c1.id, c2.id]
        cop.stop_container(c1.id)
        assert [c.id for c in cop.containers_for("a")] == [c2.id]
        assert len(cop.containers_for("b")) == 1

    def test_index_preserves_launch_order_after_scaling(self, cop):
        cop.scale_app_to("a", 3, 1)
        before = [c.id for c in cop.running_containers_for("a")]
        cop.scale_app_to("a", 1, 1)  # stops newest first
        assert [c.id for c in cop.running_containers_for("a")] == before[:1]

    def test_stop_app_clears_index(self, cop):
        cop.launch_container("a", 1)
        cop.launch_container("a", 1)
        cop.stop_app("a")
        assert cop.containers_for("a") == []
        assert cop.app_power_w("a") == 0.0


class TestCapSurvivesResize:
    def test_resize_recomputes_cap_clamp(self, cop):
        c = cop.launch_container("app", 1)
        cop.set_power_cap(c.id, 1.0)
        cop.set_container_cores(c.id, 2)
        c.set_demand_utilization(1.0)
        idle_floor = 2 / 4 * 1.35
        assert cop.container_power_w(c.id) <= max(1.0, idle_floor) + 1e-9

    def test_clearing_cap_after_resize(self, cop):
        c = cop.launch_container("app", 1)
        cop.set_power_cap(c.id, 1.0)
        cop.set_container_cores(c.id, 2)
        cop.set_power_cap(c.id, None)
        assert c.power_cap_w is None
