"""Virtual battery shares and their control knobs."""

import pytest

from repro.core.virtual_battery import VirtualBattery, scaled_battery_config

HOUR = 3600.0


class TestScaledConfig:
    def test_capacity_scales(self, small_battery_config):
        scaled = scaled_battery_config(small_battery_config, 0.5)
        assert scaled.capacity_wh == pytest.approx(50.0)

    def test_rate_limits_scale_via_capacity(self, small_battery_config):
        scaled = scaled_battery_config(small_battery_config, 0.5)
        # C-rates are unchanged; absolute power scales with capacity.
        assert scaled.max_discharge_power_w == pytest.approx(50.0)
        assert scaled.max_charge_power_w == pytest.approx(12.5)

    def test_shares_sum_within_physical_limits(self, small_battery_config):
        a = scaled_battery_config(small_battery_config, 0.6)
        b = scaled_battery_config(small_battery_config, 0.4)
        physical = small_battery_config
        assert (
            a.max_discharge_power_w + b.max_discharge_power_w
            == pytest.approx(physical.max_discharge_power_w)
        )

    def test_rejects_bad_fraction(self, small_battery_config):
        with pytest.raises(ValueError):
            scaled_battery_config(small_battery_config, 0.0)
        with pytest.raises(ValueError):
            scaled_battery_config(small_battery_config, 1.5)


class TestKnobs:
    def test_charge_rate_clamped_to_physical(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 0.5)
        vb.set_charge_rate(1000.0)
        assert vb.charge_rate_w == pytest.approx(12.5)

    def test_max_discharge_clamped_to_physical(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 0.5)
        vb.set_max_discharge(1000.0)
        assert vb.max_discharge_w == pytest.approx(50.0)

    def test_defaults(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 0.5)
        assert vb.charge_rate_w == 0.0
        assert vb.max_discharge_w == pytest.approx(50.0)

    def test_negative_rates_rejected(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 0.5)
        with pytest.raises(ValueError):
            vb.set_charge_rate(-1.0)
        with pytest.raises(ValueError):
            vb.set_max_discharge(-1.0)


class TestTickOperations:
    def test_discharge_respects_app_cap(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 1.0)
        vb.set_max_discharge(5.0)
        delivered = vb.discharge_for_tick(20.0, HOUR)
        assert delivered == pytest.approx(5.0)
        assert vb.last_discharge_w == pytest.approx(5.0)

    def test_charge_for_tick(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 1.0)
        accepted = vb.charge_for_tick(10.0, HOUR)
        assert accepted == pytest.approx(10.0)
        assert vb.last_charge_w == pytest.approx(10.0)

    def test_zero_requests_are_recorded(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 1.0)
        assert vb.discharge_for_tick(0.0, HOUR) == 0.0
        assert vb.charge_for_tick(0.0, HOUR) == 0.0

    def test_levels_track_underlying_battery(self, small_battery_config):
        vb = VirtualBattery(small_battery_config, 0.5)
        # 50 Wh capacity share at 50% SoC: 25 Wh stored, 10 Wh usable
        # (floor is 15 Wh).
        assert vb.usable_wh == pytest.approx(10.0)
        assert vb.usable_capacity_wh == pytest.approx(35.0)
        assert vb.soc_fraction == pytest.approx(0.5)
        assert not vb.is_full
        assert not vb.is_empty
