"""Zero-carbon battery policies (Fig 8/9 behaviours)."""

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import BatteryConfig, ShareConfig, SolarConfig
from repro.energy.solar import SolarArrayEmulator, TabularSolarTrace
from repro.policies import (
    DynamicSparkBatteryPolicy,
    DynamicWebBatteryPolicy,
    StaticBatterySmoothingPolicy,
)
from repro.sim.engine import SimulationEngine
from repro.workloads.spark import SparkJob
from repro.workloads.traces import constant_request_trace
from repro.workloads.webapp import WebApplication
from tests.conftest import make_ecovisor

WORKER_W = 1.25
ZERO_SHARE = ShareConfig(solar_fraction=1.0, battery_fraction=1.0, grid_power_w=0.0)


def day_night_ecovisor(day_w=20.0, day_minutes=240, night_minutes=240):
    """Solar on for day_minutes, off for night_minutes, repeating."""
    eco = make_ecovisor(solar_w=1.0, battery_config=BatteryConfig(
        capacity_wh=40.0, initial_soc_fraction=0.6))
    samples = ([1.0] * day_minutes + [0.0] * night_minutes) * 4
    eco._plant._solar = SolarArrayEmulator(
        SolarConfig(peak_power_w=day_w, panel_efficiency_derating=1.0),
        TabularSolarTrace(samples),
    )
    return eco


def run(eco, app, policy, ticks):
    engine = SimulationEngine(eco, SimulationClock(60.0))
    engine.add_application(app, ZERO_SHARE, policy)
    engine.run(ticks)
    return engine


class TestStaticSmoothing:
    def test_runs_fixed_workers_during_day(self):
        eco = day_night_ecovisor()
        job = SparkJob(total_work_units=1e9, warmup_ticks_on_resume=0)
        policy = StaticBatterySmoothingPolicy(4, WORKER_W)
        run(eco, job, policy, 30)
        assert policy.current_worker_count() == 4

    def test_suspends_at_night_with_checkpoint(self):
        eco = day_night_ecovisor(day_minutes=60, night_minutes=120)
        job = SparkJob(
            total_work_units=1e9, warmup_ticks_on_resume=0,
            checkpoint_interval_s=1e9,
        )
        policy = StaticBatterySmoothingPolicy(4, WORKER_W)
        run(eco, job, policy, 90)
        assert policy.current_worker_count() == 0
        # Dusk shutdown checkpointed: nothing was lost.
        assert job.lost_units_total == 0.0
        assert job.checkpointed_units > 0

    def test_zero_carbon(self):
        eco = day_night_ecovisor()
        job = SparkJob(total_work_units=1e9)
        run(eco, job, StaticBatterySmoothingPolicy(4, WORKER_W), 60)
        assert eco.ledger.app_carbon_g(job.name) == 0.0

    def test_battery_discharge_capped_to_pool_power(self):
        eco = day_night_ecovisor()
        job = SparkJob(total_work_units=1e9)
        policy = StaticBatterySmoothingPolicy(4, WORKER_W)
        run(eco, job, policy, 5)
        ves = eco.ves_for(job.name)
        assert ves.battery.max_discharge_w == pytest.approx(4 * WORKER_W)

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticBatterySmoothingPolicy(0, WORKER_W)
        with pytest.raises(ValueError):
            StaticBatterySmoothingPolicy(4, -1.0)


class TestDynamicSpark:
    def test_surges_on_excess_solar_when_battery_full(self):
        eco = day_night_ecovisor(day_w=20.0)
        job = SparkJob(total_work_units=1e9, warmup_ticks_on_resume=0)
        policy = DynamicSparkBatteryPolicy(
            4, WORKER_W, battery_full_fraction=0.55, max_workers=12
        )
        run(eco, job, policy, 120)
        assert policy.current_worker_count() > 4
        assert policy.surge_workers > 0

    def test_kills_surge_without_checkpoint_at_dusk(self):
        eco = day_night_ecovisor(day_w=20.0, day_minutes=100, night_minutes=100)
        job = SparkJob(
            total_work_units=1e9, warmup_ticks_on_resume=0,
            checkpoint_interval_s=1e9,
        )
        policy = DynamicSparkBatteryPolicy(
            4, WORKER_W, battery_full_fraction=0.55, max_workers=12
        )
        run(eco, job, policy, 150)
        assert policy.current_worker_count() == 0
        assert job.lost_units_total > 0.0

    def test_zero_carbon(self):
        eco = day_night_ecovisor()
        job = SparkJob(total_work_units=1e9)
        policy = DynamicSparkBatteryPolicy(4, WORKER_W)
        run(eco, job, policy, 120)
        assert eco.ledger.app_carbon_g(job.name) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicSparkBatteryPolicy(0, WORKER_W)
        with pytest.raises(ValueError):
            DynamicSparkBatteryPolicy(4, WORKER_W, battery_full_fraction=0.0)


class TestDynamicWeb:
    def test_sizes_pool_to_slo(self):
        eco = day_night_ecovisor(day_w=20.0)
        app = WebApplication(
            "w", constant_request_trace(250.0), slo_ms=100.0,
            service_rate_rps=50.0,
        )
        policy = DynamicWebBatteryPolicy(WORKER_W, max_workers=10)
        run(eco, app, policy, 30)
        assert policy.current_worker_count() >= 6
        assert app.violation_fraction < 0.2

    def test_requires_web_application(self):
        eco = day_night_ecovisor()
        job = SparkJob(total_work_units=1e9)
        policy = DynamicWebBatteryPolicy(WORKER_W)
        with pytest.raises(TypeError):
            run(eco, job, policy, 2)

    def test_scales_to_zero_when_dark_and_idle(self):
        eco = day_night_ecovisor(day_minutes=10, night_minutes=500)
        app = WebApplication("w", constant_request_trace(0.0))
        policy = DynamicWebBatteryPolicy(WORKER_W)
        run(eco, app, policy, 30)
        assert policy.current_worker_count() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicWebBatteryPolicy(WORKER_W, min_battery_fraction=1.0)
        with pytest.raises(ValueError):
            DynamicWebBatteryPolicy(WORKER_W, headroom_factor=0.9)
