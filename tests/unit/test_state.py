"""The immutable per-tick EnergyState snapshot (API v1)."""

import dataclasses

import pytest

from repro.core.api import connect
from repro.core.config import ShareConfig
from repro.core.errors import ConfigurationError
from repro.core.state import BatteryState, EnergyState
from repro.sim.engine import SimulationEngine
from repro.core.clock import SimulationClock
from repro.policies.carbon_agnostic import CarbonAgnosticPolicy
from repro.workloads.base import BatchJob
from tests.conftest import TICK_S, make_ecovisor, run_ticks


class _SimpleJob(BatchJob):
    """Minimal concrete batch job: unit throughput per effective worker."""

    def throughput_units_per_s(self, effective_utilizations):
        return sum(effective_utilizations)


@pytest.fixture
def bound():
    eco = make_ecovisor(solar_w=10.0, carbon_g_per_kwh=250.0)
    eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    eco.register_app("nobatt", ShareConfig())
    return eco, connect(eco, "a"), connect(eco, "nobatt")


class TestSnapshotContents:
    def test_environment_fields(self, bound):
        eco, api, _ = bound
        run_ticks(eco, 1)
        state = api.state()
        assert state.app_name == "a"
        assert state.solar_power_w == pytest.approx(5.0)
        assert state.grid_carbon_g_per_kwh == pytest.approx(250.0)
        assert state.grid_price_usd_per_kwh == 0.0
        assert state.has_market is False
        assert state.tick_index == 0
        assert state.duration_s == pytest.approx(TICK_S)

    def test_settled_flag_flips_at_settlement(self, bound):
        eco, api, _ = bound
        clock = SimulationClock(TICK_S)
        tick = clock.current_tick()
        eco.begin_tick(tick)
        assert api.state().settled is False
        eco.invoke_app_ticks(tick)
        assert api.state().settled is False
        eco.settle(tick)
        assert api.state().settled is True

    def test_shared_by_reference_within_phase(self, bound):
        eco, api, _ = bound
        run_ticks(eco, 1)
        assert api.state() is api.state()

    def test_frozen(self, bound):
        eco, api, _ = bound
        run_ticks(eco, 1)
        state = api.state()
        with pytest.raises(dataclasses.FrozenInstanceError):
            state.solar_power_w = 99.0
        with pytest.raises(TypeError):
            state.container_power_w["x"] = 1.0

    def test_cumulative_ledger_fields(self, bound):
        eco, api, _ = bound
        container = api.launch_container(2)
        run_ticks(eco, 3, lambda tick: container.set_demand_utilization(1.0))
        state = api.state()
        assert state.total_energy_wh == pytest.approx(
            eco.ledger.app_energy_wh("a")
        )
        assert state.total_carbon_g == pytest.approx(eco.ledger.app_carbon_g("a"))
        assert state.total_energy_wh > 0

    def test_container_powers(self, bound):
        eco, api, _ = bound
        container = api.launch_container(2)
        run_ticks(eco, 2, lambda tick: container.set_demand_utilization(1.0))
        state = api.state()
        assert set(state.container_power_w) == {container.id}
        assert state.container_power_w[container.id] > 0
        assert state.app_power_w == pytest.approx(
            sum(state.container_power_w.values())
        )


class TestBatteryAbsentUnification:
    """state().battery is None without a share; getters stay zero-default.

    Both access styles are supported: the explicit Optional on the
    snapshot, and the legacy zero-default getters/properties.
    """

    def test_battery_state_present(self, bound):
        eco, api, _ = bound
        run_ticks(eco, 1)
        battery = api.state().battery
        assert isinstance(battery, BatteryState)
        assert battery.charge_level_wh > 0
        assert battery.capacity_wh > battery.charge_level_wh
        assert 0.0 < battery.soc_fraction < 1.0

    def test_battery_none_without_share(self, bound):
        eco, _, api = bound
        run_ticks(eco, 1)
        state = api.state()
        assert state.battery is None
        assert state.has_battery is False

    def test_zero_default_properties_without_share(self, bound):
        eco, _, api = bound
        run_ticks(eco, 1)
        state = api.state()
        assert state.battery_charge_level_wh == 0.0
        assert state.battery_capacity_wh == 0.0
        assert state.battery_discharge_rate_w == 0.0
        assert state.battery_soc_fraction == 0.0

    def test_legacy_getters_zero_default_without_share(self, bound):
        eco, _, api = bound
        run_ticks(eco, 1)
        assert api.get_battery_charge_level() == 0.0
        assert api.get_battery_capacity() == 0.0
        assert api.get_battery_discharge_rate() == 0.0

    def test_setters_still_raise_without_share(self, bound):
        _, _, api = bound
        with pytest.raises(ConfigurationError):
            api.set_battery_charge_rate(1.0)
        with pytest.raises(ConfigurationError):
            api.set_battery_max_discharge(1.0)


class TestComputedOncePerTick:
    def test_bare_tick_loop_builds_once_per_app_per_tick(self, bound):
        eco, api, api2 = bound
        ticks = 5
        assert eco.state_builds == 0

        def observer(tick):
            # A getter storm inside the upcall window must not trigger
            # extra builds: every consumer shares the tick's snapshot.
            for _ in range(10):
                api.get_solar_power()
                api.get_grid_carbon()
                api.get_battery_charge_level()
                api.state()

        api.register_tick(observer)
        run_ticks(eco, ticks)
        assert eco.state_builds == ticks * 2  # two registered apps

    def test_engine_run_builds_once_per_app_per_tick(self):
        eco = make_ecovisor(solar_w=0.0, carbon_g_per_kwh=100.0)
        engine = SimulationEngine(eco, SimulationClock(TICK_S))
        for name in ("j1", "j2", "j3"):
            engine.add_application(
                _SimpleJob(name, total_work_units=1e9),
                ShareConfig(grid_power_w=float("inf")),
                CarbonAgnosticPolicy(workers=2),
            )
        executed = engine.run(8)
        assert eco.state_builds == executed * 3

    def test_bootstrap_reads_do_not_inflate_counter(self, bound):
        eco, api, _ = bound
        api.state()  # pre-first-tick bootstrap builds are uncounted
        api.state()
        assert eco.state_builds == 0
        run_ticks(eco, 2)
        assert eco.state_builds == 2 * 2

    def test_legacy_getters_delegate_to_snapshot(self, bound):
        eco, api, _ = bound
        run_ticks(eco, 2)
        state = api.state()
        assert api.get_solar_power() == state.solar_power_w
        assert api.get_grid_power() == state.grid_power_w
        assert api.get_grid_carbon() == state.grid_carbon_g_per_kwh
        assert api.get_grid_price() == state.grid_price_usd_per_kwh
        assert api.get_energy_cost() == state.total_cost_usd
        assert api.get_battery_charge_level() == state.battery_charge_level_wh
        assert api.get_battery_capacity() == state.battery_capacity_wh
        assert api.get_battery_discharge_rate() == state.battery_discharge_rate_w


class TestTickCallbackArity:
    def test_two_arg_callback_receives_state(self, bound):
        eco, api, _ = bound
        seen = []

        def observer(tick, state):
            seen.append((tick.index, state))

        api.register_tick(observer)
        run_ticks(eco, 2)
        assert [index for index, _ in seen] == [0, 1]
        assert all(isinstance(s, EnergyState) for _, s in seen)
        assert seen[0][1].app_name == "a"

    def test_one_arg_callback_still_works(self, bound):
        eco, api, _ = bound
        calls = []
        api.register_tick(calls.append)  # builtin bound method: legacy arity
        run_ticks(eco, 3)
        assert len(calls) == 3

    def test_serialization_roundtrip(self, bound):
        eco, api, _ = bound
        run_ticks(eco, 1)
        payload = api.state().to_dict()
        assert payload["app_name"] == "a"
        assert payload["battery"]["capacity_wh"] > 0
        import json

        json.dumps(payload)  # must be JSON-serializable
