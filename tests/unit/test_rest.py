"""REST router and the ecovisor's REST surface."""

import pytest

from repro.core.config import ShareConfig
from repro.market.prices import constant_price_trace
from repro.rest.router import Router
from repro.rest.server import EcovisorRestServer
from tests.conftest import make_ecovisor, run_ticks


class TestRouter:
    def test_dispatch_with_params(self):
        router = Router()
        router.add("GET", "/items/{item}", lambda req: {"got": req.params["item"]})
        response = router.dispatch("GET", "/items/42")
        assert response.ok
        assert response.body == {"got": "42"}

    def test_method_mismatch_is_404(self):
        router = Router()
        router.add("GET", "/x", lambda req: {})
        assert router.dispatch("POST", "/x").status == 404

    def test_unknown_path_is_404(self):
        assert Router().dispatch("GET", "/nope").status == 404

    def test_value_error_maps_to_400(self):
        router = Router()

        def bad(req):
            raise ValueError("bad input")

        router.add("GET", "/x", bad)
        assert router.dispatch("GET", "/x").status == 400

    def test_routes_listing(self):
        router = Router()
        router.add("GET", "/a", lambda r: {})
        router.add("POST", "/b", lambda r: {})
        assert ("GET", "/a") in router.routes()
        assert ("POST", "/b") in router.routes()


@pytest.fixture
def server():
    eco = make_ecovisor(solar_w=10.0, carbon_g_per_kwh=250.0)
    eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    eco.register_app("b", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    run_ticks(eco, 1)
    return EcovisorRestServer(eco)


@pytest.fixture
def market_server():
    """A server over an ecovisor with the market layer attached."""
    eco = make_ecovisor(
        solar_w=0.0,
        carbon_g_per_kwh=250.0,
        price_trace=constant_price_trace(0.55),
    )
    eco.register_app("a", ShareConfig())
    container = eco.launch_container("a", 1)
    run_ticks(eco, 3, lambda tick: container.set_demand_utilization(1.0))
    return EcovisorRestServer(eco)


class TestMonitoringRoutes:
    def test_carbon(self, server):
        response = server.request("GET", "/apps/a/carbon")
        assert response.ok
        assert response.body["carbon_g_per_kwh"] == pytest.approx(250.0)

    def test_price(self, market_server):
        response = market_server.request("GET", "/apps/a/price")
        assert response.ok
        assert response.body["price_usd_per_kwh"] == pytest.approx(0.55)

    def test_price_without_market_is_zero(self, server):
        response = server.request("GET", "/apps/a/price")
        assert response.ok
        assert response.body["price_usd_per_kwh"] == 0.0

    def test_cost(self, market_server):
        response = market_server.request("GET", "/apps/a/cost")
        assert response.ok
        assert response.body["cost_usd"] > 0.0

    def test_cost_without_market_is_zero(self, server):
        response = server.request("GET", "/apps/a/cost")
        assert response.ok
        assert response.body["cost_usd"] == 0.0

    def test_solar(self, server):
        response = server.request("GET", "/apps/a/solar")
        assert response.body["solar_w"] == pytest.approx(5.0)

    def test_battery(self, server):
        response = server.request("GET", "/apps/a/battery")
        assert response.body["charge_level_wh"] > 0
        assert response.body["capacity_wh"] > 0

    def test_unknown_app_is_404(self, server):
        assert server.request("GET", "/apps/ghost/solar").status == 404


class TestContainerRoutes:
    def test_launch_list_stop(self, server):
        launched = server.request("POST", "/apps/a/containers", {"cores": 2})
        assert launched.ok
        cid = launched.body["id"]
        listing = server.request("GET", "/apps/a/containers")
        assert [c["id"] for c in listing.body["containers"]] == [cid]
        assert server.request("DELETE", f"/apps/a/containers/{cid}").ok
        listing = server.request("GET", "/apps/a/containers")
        assert listing.body["containers"] == []

    def test_powercap_roundtrip(self, server):
        cid = server.request("POST", "/apps/a/containers", {"cores": 1}).body["id"]
        assert server.request(
            "POST", f"/apps/a/containers/{cid}/powercap", {"watts": 1.1}
        ).ok
        got = server.request("GET", f"/apps/a/containers/{cid}/powercap")
        assert got.body["powercap_w"] == pytest.approx(1.1)

    def test_cross_app_access_is_403(self, server):
        cid = server.request("POST", "/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request(
            "POST", f"/apps/b/containers/{cid}/powercap", {"watts": 1.0}
        )
        assert response.status == 403

    def test_scale_route(self, server):
        response = server.request("POST", "/apps/a/scale", {"count": 3, "cores": 1})
        assert response.ok
        assert len(response.body["containers"]) == 3

    def test_container_power_route(self, server):
        cid = server.request("POST", "/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request("GET", f"/apps/a/containers/{cid}/power")
        assert response.ok
        assert response.body["power_w"] >= 0.0


class TestErrorPaths:
    """Failure responses: unknown routes, malformed bodies, bad names."""

    def test_unknown_route_is_404(self, server):
        response = server.request("GET", "/nope")
        assert response.status == 404
        assert "no route" in response.body["error"]

    def test_unknown_method_on_known_path_is_404(self, server):
        assert server.request("PATCH", "/apps/a/solar").status == 404

    def test_unknown_app_on_every_monitoring_route(self, server):
        for path in ("solar", "grid", "carbon", "price", "cost", "battery"):
            response = server.request("GET", f"/apps/ghost/{path}")
            assert response.status == 404, path
            assert "ghost" in response.body["error"]

    def test_unknown_container_is_404(self, server):
        response = server.request("GET", "/apps/a/containers/nope/power")
        assert response.status == 404
        assert "nope" in response.body["error"]

    def test_scale_with_missing_count_is_400(self, server):
        response = server.request("POST", "/apps/a/scale", {})
        assert response.status == 400
        assert "count" in response.body["error"]

    def test_scale_with_non_numeric_count_is_400(self, server):
        response = server.request("POST", "/apps/a/scale", {"count": "lots"})
        assert response.status == 400

    def test_charge_rate_with_missing_watts_is_400(self, server):
        response = server.request("POST", "/apps/a/battery/charge_rate", {})
        assert response.status == 400
        assert "watts" in response.body["error"]

    def test_charge_rate_with_non_numeric_watts_is_400(self, server):
        response = server.request(
            "POST", "/apps/a/battery/charge_rate", {"watts": "fast"}
        )
        assert response.status == 400

    def test_launch_with_non_numeric_cores_is_400(self, server):
        response = server.request("POST", "/apps/a/containers", {"cores": None})
        assert response.status == 400

    def test_powercap_with_non_numeric_watts_is_400(self, server):
        cid = server.request("POST", "/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request(
            "POST", f"/apps/a/containers/{cid}/powercap", {"watts": "low"}
        )
        assert response.status == 400


class TestBatteryRoutes:
    def test_set_charge_rate(self, server):
        assert server.request(
            "POST", "/apps/a/battery/charge_rate", {"watts": 5.0}
        ).ok

    def test_set_max_discharge(self, server):
        assert server.request(
            "POST", "/apps/a/battery/max_discharge", {"watts": 8.0}
        ).ok

    def test_negative_rate_is_400(self, server):
        response = server.request(
            "POST", "/apps/a/battery/charge_rate", {"watts": -5.0}
        )
        assert response.status == 400
