"""REST router and the ecovisor's REST surface."""

import pytest

from repro.core.config import ShareConfig
from repro.rest.router import Router
from repro.rest.server import EcovisorRestServer
from tests.conftest import make_ecovisor, run_ticks


class TestRouter:
    def test_dispatch_with_params(self):
        router = Router()
        router.add("GET", "/items/{item}", lambda req: {"got": req.params["item"]})
        response = router.dispatch("GET", "/items/42")
        assert response.ok
        assert response.body == {"got": "42"}

    def test_method_mismatch_is_404(self):
        router = Router()
        router.add("GET", "/x", lambda req: {})
        assert router.dispatch("POST", "/x").status == 404

    def test_unknown_path_is_404(self):
        assert Router().dispatch("GET", "/nope").status == 404

    def test_value_error_maps_to_400(self):
        router = Router()

        def bad(req):
            raise ValueError("bad input")

        router.add("GET", "/x", bad)
        assert router.dispatch("GET", "/x").status == 400

    def test_routes_listing(self):
        router = Router()
        router.add("GET", "/a", lambda r: {})
        router.add("POST", "/b", lambda r: {})
        assert ("GET", "/a") in router.routes()
        assert ("POST", "/b") in router.routes()


@pytest.fixture
def server():
    eco = make_ecovisor(solar_w=10.0, carbon_g_per_kwh=250.0)
    eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    eco.register_app("b", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    run_ticks(eco, 1)
    return EcovisorRestServer(eco)


class TestMonitoringRoutes:
    def test_carbon(self, server):
        response = server.request("GET", "/apps/a/carbon")
        assert response.ok
        assert response.body["carbon_g_per_kwh"] == pytest.approx(250.0)

    def test_solar(self, server):
        response = server.request("GET", "/apps/a/solar")
        assert response.body["solar_w"] == pytest.approx(5.0)

    def test_battery(self, server):
        response = server.request("GET", "/apps/a/battery")
        assert response.body["charge_level_wh"] > 0
        assert response.body["capacity_wh"] > 0

    def test_unknown_app_is_404(self, server):
        assert server.request("GET", "/apps/ghost/solar").status == 404


class TestContainerRoutes:
    def test_launch_list_stop(self, server):
        launched = server.request("POST", "/apps/a/containers", {"cores": 2})
        assert launched.ok
        cid = launched.body["id"]
        listing = server.request("GET", "/apps/a/containers")
        assert [c["id"] for c in listing.body["containers"]] == [cid]
        assert server.request("DELETE", f"/apps/a/containers/{cid}").ok
        listing = server.request("GET", "/apps/a/containers")
        assert listing.body["containers"] == []

    def test_powercap_roundtrip(self, server):
        cid = server.request("POST", "/apps/a/containers", {"cores": 1}).body["id"]
        assert server.request(
            "POST", f"/apps/a/containers/{cid}/powercap", {"watts": 1.1}
        ).ok
        got = server.request("GET", f"/apps/a/containers/{cid}/powercap")
        assert got.body["powercap_w"] == pytest.approx(1.1)

    def test_cross_app_access_is_403(self, server):
        cid = server.request("POST", "/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request(
            "POST", f"/apps/b/containers/{cid}/powercap", {"watts": 1.0}
        )
        assert response.status == 403

    def test_scale_route(self, server):
        response = server.request("POST", "/apps/a/scale", {"count": 3, "cores": 1})
        assert response.ok
        assert len(response.body["containers"]) == 3

    def test_container_power_route(self, server):
        cid = server.request("POST", "/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request("GET", f"/apps/a/containers/{cid}/power")
        assert response.ok
        assert response.body["power_w"] >= 0.0


class TestBatteryRoutes:
    def test_set_charge_rate(self, server):
        assert server.request(
            "POST", "/apps/a/battery/charge_rate", {"watts": 5.0}
        ).ok

    def test_set_max_discharge(self, server):
        assert server.request(
            "POST", "/apps/a/battery/max_discharge", {"watts": 8.0}
        ).ok

    def test_negative_rate_is_400(self, server):
        response = server.request(
            "POST", "/apps/a/battery/charge_rate", {"watts": -5.0}
        )
        assert response.status == 400
