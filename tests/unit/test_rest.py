"""REST router and the ecovisor's REST surface."""

import pytest

from repro.core.config import ShareConfig
from repro.market.prices import constant_price_trace
from repro.rest.router import Router
from repro.rest.server import API_PREFIX, SSE_ROUTES, EcovisorRestServer
from tests.conftest import make_ecovisor, run_ticks


def _legacy_routes():
    """Every legacy (unversioned) route of a freshly wired server."""
    server = EcovisorRestServer(make_ecovisor())
    return sorted(
        (m, p) for m, p in server.router.routes() if not p.startswith("/v1/")
    )


class TestRouter:
    def test_dispatch_with_params(self):
        router = Router()
        router.add("GET", "/items/{item}", lambda req: {"got": req.params["item"]})
        response = router.dispatch("GET", "/items/42")
        assert response.ok
        assert response.body == {"got": "42"}

    def test_method_mismatch_is_405_with_allow(self):
        router = Router()
        router.add("GET", "/x", lambda req: {})
        router.add("DELETE", "/x", lambda req: {})
        response = router.dispatch("POST", "/x")
        assert response.status == 405
        assert response.headers["Allow"] == "DELETE, GET"
        assert "not allowed" in response.body["error"]

    def test_unknown_path_is_404(self):
        assert Router().dispatch("GET", "/nope").status == 404

    def test_method_match_beats_405(self):
        router = Router()
        router.add("GET", "/x", lambda req: {"ok": True})
        router.add("POST", "/x", lambda req: {"posted": True})
        assert router.dispatch("GET", "/x").body == {"ok": True}
        assert router.dispatch("POST", "/x").body == {"posted": True}

    def test_query_string_parsed(self):
        router = Router()
        router.add("GET", "/feed", lambda req: {"cursor": req.query.get("cursor")})
        response = router.dispatch("GET", "/feed?cursor=7")
        assert response.ok
        assert response.body == {"cursor": "7"}

    def test_route_table_names_backing_calls(self):
        router = Router()

        def _get_state(req):
            return {}

        router.add("GET", "/v1/apps/{app}/state", _get_state)
        assert router.route_table() == [("GET", "/v1/apps/{app}/state", "get_state")]

    def test_value_error_maps_to_400(self):
        router = Router()

        def bad(req):
            raise ValueError("bad input")

        router.add("GET", "/x", bad)
        assert router.dispatch("GET", "/x").status == 400

    def test_routes_listing(self):
        router = Router()
        router.add("GET", "/a", lambda r: {})
        router.add("POST", "/b", lambda r: {})
        assert ("GET", "/a") in router.routes()
        assert ("POST", "/b") in router.routes()


@pytest.fixture
def server():
    eco = make_ecovisor(solar_w=10.0, carbon_g_per_kwh=250.0)
    eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    eco.register_app("b", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    run_ticks(eco, 1)
    return EcovisorRestServer(eco)


@pytest.fixture
def market_server():
    """A server over an ecovisor with the market layer attached."""
    eco = make_ecovisor(
        solar_w=0.0,
        carbon_g_per_kwh=250.0,
        price_trace=constant_price_trace(0.55),
    )
    eco.register_app("a", ShareConfig())
    container = eco.launch_container("a", 1)
    run_ticks(eco, 3, lambda tick: container.set_demand_utilization(1.0))
    return EcovisorRestServer(eco)


class TestMonitoringRoutes:
    def test_carbon(self, server):
        response = server.request("GET", "/v1/apps/a/carbon")
        assert response.ok
        assert response.body["carbon_g_per_kwh"] == pytest.approx(250.0)

    def test_price(self, market_server):
        response = market_server.request("GET", "/v1/apps/a/price")
        assert response.ok
        assert response.body["price_usd_per_kwh"] == pytest.approx(0.55)

    def test_price_without_market_is_zero(self, server):
        response = server.request("GET", "/v1/apps/a/price")
        assert response.ok
        assert response.body["price_usd_per_kwh"] == 0.0

    def test_cost(self, market_server):
        response = market_server.request("GET", "/v1/apps/a/cost")
        assert response.ok
        assert response.body["cost_usd"] > 0.0

    def test_cost_without_market_is_zero(self, server):
        response = server.request("GET", "/v1/apps/a/cost")
        assert response.ok
        assert response.body["cost_usd"] == 0.0

    def test_solar(self, server):
        response = server.request("GET", "/v1/apps/a/solar")
        assert response.body["solar_w"] == pytest.approx(5.0)

    def test_battery(self, server):
        response = server.request("GET", "/v1/apps/a/battery")
        assert response.body["charge_level_wh"] > 0
        assert response.body["capacity_wh"] > 0

    def test_unknown_app_is_404(self, server):
        assert server.request("GET", "/v1/apps/ghost/solar").status == 404


class TestContainerRoutes:
    def test_launch_list_stop(self, server):
        launched = server.request("POST", "/v1/apps/a/containers", {"cores": 2})
        assert launched.ok
        cid = launched.body["id"]
        listing = server.request("GET", "/v1/apps/a/containers")
        assert [c["id"] for c in listing.body["containers"]] == [cid]
        assert server.request("DELETE", f"/v1/apps/a/containers/{cid}").ok
        listing = server.request("GET", "/v1/apps/a/containers")
        assert listing.body["containers"] == []

    def test_powercap_roundtrip(self, server):
        cid = server.request("POST", "/v1/apps/a/containers", {"cores": 1}).body["id"]
        assert server.request(
            "POST", f"/v1/apps/a/containers/{cid}/powercap", {"watts": 1.1}
        ).ok
        got = server.request("GET", f"/v1/apps/a/containers/{cid}/powercap")
        assert got.body["powercap_w"] == pytest.approx(1.1)

    def test_cross_app_access_is_403(self, server):
        cid = server.request("POST", "/v1/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request(
            "POST", f"/v1/apps/b/containers/{cid}/powercap", {"watts": 1.0}
        )
        assert response.status == 403

    def test_scale_route(self, server):
        response = server.request("POST", "/v1/apps/a/scale", {"count": 3, "cores": 1})
        assert response.ok
        assert len(response.body["containers"]) == 3

    def test_container_power_route(self, server):
        cid = server.request("POST", "/v1/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request("GET", f"/v1/apps/a/containers/{cid}/power")
        assert response.ok
        assert response.body["power_w"] >= 0.0


class TestErrorPaths:
    """Failure responses: unknown routes, malformed bodies, bad names."""

    def test_unknown_route_is_404(self, server):
        response = server.request("GET", "/nope")
        assert response.status == 404
        assert "no route" in response.body["error"]

    def test_unknown_method_on_known_path_is_405(self, server):
        response = server.request("PATCH", "/v1/apps/a/solar")
        assert response.status == 405
        assert response.headers["Allow"] == "GET"

    def test_unknown_app_on_every_monitoring_route(self, server):
        for path in ("solar", "grid", "carbon", "price", "cost", "battery"):
            response = server.request("GET", f"/v1/apps/ghost/{path}")
            assert response.status == 404, path
            assert "ghost" in response.body["error"]

    def test_unknown_container_is_404(self, server):
        response = server.request("GET", "/v1/apps/a/containers/nope/power")
        assert response.status == 404
        assert "nope" in response.body["error"]

    def test_scale_with_missing_count_is_400(self, server):
        response = server.request("POST", "/v1/apps/a/scale", {})
        assert response.status == 400
        assert "count" in response.body["error"]

    def test_scale_with_non_numeric_count_is_400(self, server):
        response = server.request("POST", "/v1/apps/a/scale", {"count": "lots"})
        assert response.status == 400

    def test_charge_rate_with_missing_watts_is_400(self, server):
        response = server.request("POST", "/v1/apps/a/battery/charge_rate", {})
        assert response.status == 400
        assert "watts" in response.body["error"]

    def test_charge_rate_with_non_numeric_watts_is_400(self, server):
        response = server.request(
            "POST", "/v1/apps/a/battery/charge_rate", {"watts": "fast"}
        )
        assert response.status == 400

    def test_launch_with_non_numeric_cores_is_400(self, server):
        response = server.request("POST", "/v1/apps/a/containers", {"cores": None})
        assert response.status == 400

    def test_powercap_with_non_numeric_watts_is_400(self, server):
        cid = server.request("POST", "/v1/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request(
            "POST", f"/v1/apps/a/containers/{cid}/powercap", {"watts": "low"}
        )
        assert response.status == 400


class TestBatteryRoutes:
    def test_set_charge_rate(self, server):
        assert server.request(
            "POST", "/v1/apps/a/battery/charge_rate", {"watts": 5.0}
        ).ok

    def test_set_max_discharge(self, server):
        assert server.request(
            "POST", "/v1/apps/a/battery/max_discharge", {"watts": 8.0}
        ).ok

    def test_negative_rate_is_400(self, server):
        response = server.request(
            "POST", "/v1/apps/a/battery/charge_rate", {"watts": -5.0}
        )
        assert response.status == 400


class TestVersioning:
    """Legacy unversioned paths 301 to their /v1 homes."""

    def test_legacy_get_redirects(self, server):
        response = server.request("GET", "/apps/a/solar")
        assert response.status == 301
        assert response.is_redirect
        assert response.location == "/v1/apps/a/solar"
        assert response.body["location"] == "/v1/apps/a/solar"

    def test_legacy_post_redirects(self, server):
        response = server.request(
            "POST", "/apps/a/battery/charge_rate", {"watts": 2.0}
        )
        assert response.status == 301
        assert response.location == "/v1/apps/a/battery/charge_rate"

    def test_follow_redirects_lands_on_v1(self, server):
        response = server.request("GET", "/apps/a/solar", follow_redirects=True)
        assert response.ok
        assert response.body["solar_w"] == pytest.approx(5.0)

    def test_redirect_substitutes_path_params(self, server):
        cid = server.request(
            "POST", "/v1/apps/a/containers", {"cores": 1}
        ).body["id"]
        response = server.request("GET", f"/apps/a/containers/{cid}/power")
        assert response.status == 301
        assert response.location == f"/v1/apps/a/containers/{cid}/power"

    def test_every_nonadmin_v1_route_has_a_legacy_redirect(self, server):
        # Admin, metrics, and SSE stream routes are v1-only (no pre-v1.1
        # client ever saw them); every other v1 route keeps its 301
        # legacy twin.
        routes = server.router.routes()
        v1 = {
            (m, p)
            for m, p in routes
            if p.startswith("/v1/")
            and not p.startswith(("/v1/admin", "/v1/metrics"))
            and (m, p) not in SSE_ROUTES
        }
        legacy = {(m, p) for m, p in routes if not p.startswith("/v1/")}
        assert {(m, p[len("/v1"):]) for m, p in v1} == legacy

    def test_admin_routes_have_no_legacy_twin(self, server):
        legacy = {p for _, p in server.router.routes() if not p.startswith("/v1/")}
        assert not any(p.startswith(("/admin", "/metrics")) for p in legacy)

    @pytest.mark.parametrize("method,pattern", _legacy_routes())
    def test_every_legacy_route_redirects_to_a_live_v1_route(
        self, server, method, pattern
    ):
        # Generated from Router.routes(): a new route cannot silently
        # ship without its legacy 301 resolving to a live /v1 home.
        path = pattern.replace("{app}", "a").replace("{cid}", "some-cid")
        response = server.request(method, path)
        assert response.status == 301
        assert response.location == API_PREFIX + path
        assert (method, API_PREFIX + pattern) in server.router.routes()
        # The Location must dispatch to a handler, not fall through to
        # 404 "no route" / 405 (400/404 from the handler itself is fine
        # for placeholder ids and empty bodies).
        followed = server.request(method, response.location)
        assert followed.status != 405
        if followed.status == 404:
            assert "no route" not in followed.body["error"]


class TestStateRoute:
    """GET /v1/apps/{app}/state: the whole observation in one round-trip."""

    def test_state_snapshot_fields(self, server):
        response = server.request("GET", "/v1/apps/a/state")
        assert response.ok
        body = response.body
        assert body["app_name"] == "a"
        assert body["solar_power_w"] == pytest.approx(5.0)
        assert body["grid_carbon_g_per_kwh"] == pytest.approx(250.0)
        assert body["has_market"] is False
        assert body["settled"] is True
        assert body["battery"]["charge_level_wh"] > 0
        assert body["container_power_w"] == {}

    def test_state_matches_field_routes(self, market_server):
        state = market_server.request("GET", "/v1/apps/a/state").body
        assert state["grid_price_usd_per_kwh"] == pytest.approx(
            market_server.request("GET", "/v1/apps/a/price").body[
                "price_usd_per_kwh"
            ]
        )
        assert state["total_cost_usd"] == pytest.approx(
            market_server.request("GET", "/v1/apps/a/cost").body["cost_usd"]
        )
        assert state["total_cost_usd"] > 0.0

    def test_state_battery_null_without_share(self, market_server):
        state = market_server.request("GET", "/v1/apps/a/state").body
        assert state["battery"] is None

    def test_state_container_powers(self, market_server):
        state = market_server.request("GET", "/v1/apps/a/state").body
        assert len(state["container_power_w"]) == 1
        assert all(p > 0 for p in state["container_power_w"].values())

    def test_state_unknown_app_is_404(self, server):
        assert server.request("GET", "/v1/apps/ghost/state").status == 404

    def test_battery_route_carries_null_and_zero_defaults(self, market_server):
        body = market_server.request("GET", "/v1/apps/a/battery").body
        assert body["battery"] is None
        assert body["charge_level_wh"] == 0.0
        assert body["capacity_wh"] == 0.0
        assert body["discharge_rate_w"] == 0.0


class TestContainerCoresRoute:
    def test_set_cores(self, server):
        cid = server.request("POST", "/v1/apps/a/containers", {"cores": 1}).body["id"]
        assert server.request(
            "POST", f"/v1/apps/a/containers/{cid}/cores", {"cores": 2}
        ).ok
        listing = server.request("GET", "/v1/apps/a/containers").body
        assert listing["containers"][0]["cores"] == 2.0

    def test_missing_cores_is_400(self, server):
        cid = server.request("POST", "/v1/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request("POST", f"/v1/apps/a/containers/{cid}/cores", {})
        assert response.status == 400


class TestAdminNamespace:
    """POST/PATCH/DELETE /v1/admin/apps[...]: the dynamic lifecycle."""

    def test_list_apps_with_shares(self, server):
        body = server.request("GET", "/v1/admin/apps").body
        assert [entry["name"] for entry in body["apps"]] == ["a", "b"]
        assert body["apps"][0]["solar_fraction"] == 0.5

    def test_admit_app(self, server):
        response = server.request(
            "POST", "/v1/admin/apps", {"name": "c", "solar_fraction": 0.0}
        )
        assert response.status == 201
        assert response.body["name"] == "c"
        # The new tenant is immediately servable on the app surface.
        assert server.request("GET", "/v1/apps/c/state").ok

    def test_admit_requires_name(self, server):
        assert server.request("POST", "/v1/admin/apps", {}).status == 400

    def test_admit_duplicate_is_400(self, server):
        response = server.request("POST", "/v1/admin/apps", {"name": "a"})
        assert response.status == 400
        assert "already registered" in response.body["error"]

    def test_admit_oversubscription_is_400(self, server):
        response = server.request(
            "POST", "/v1/admin/apps", {"name": "c", "solar_fraction": 0.5}
        )
        assert response.status == 400
        assert "oversubscribed" in response.body["error"]

    def test_get_app_share_and_pending(self, server):
        server.request("PATCH", "/v1/admin/apps/a", {"solar_fraction": 0.25})
        body = server.request("GET", "/v1/admin/apps/a").body
        assert body["solar_fraction"] == 0.5  # still effective
        assert body["pending_share"]["solar_fraction"] == 0.25

    def test_patch_reports_effective_tick(self, server):
        response = server.request(
            "PATCH", "/v1/admin/apps/a", {"solar_fraction": 0.25}
        )
        assert response.ok
        assert response.body["effective_at_tick"] == 1  # one tick ran

    def test_patch_partial_fields_keep_current(self, server):
        response = server.request(
            "PATCH", "/v1/admin/apps/a", {"solar_fraction": 0.25}
        )
        assert response.body["battery_fraction"] == 0.5  # untouched

    def test_two_patches_between_boundaries_compose(self, server):
        server.request("PATCH", "/v1/admin/apps/a", {"solar_fraction": 0.25})
        response = server.request(
            "PATCH", "/v1/admin/apps/a", {"battery_fraction": 0.3}
        )
        # The second PATCH defaults from the *staged* share: the first
        # rebalance must not silently revert.
        assert response.body["solar_fraction"] == 0.25
        assert response.body["battery_fraction"] == 0.3
        pending = server.request("GET", "/v1/admin/apps/a").body["pending_share"]
        assert pending == {
            "solar_fraction": 0.25,
            "battery_fraction": 0.3,
            "grid_power_w": float("inf"),
        }

    def test_patch_oversubscription_is_400(self, server):
        response = server.request(
            "PATCH", "/v1/admin/apps/a", {"solar_fraction": 0.6}
        )
        assert response.status == 400

    def test_delete_evicts_and_returns_finalized_account(self, server):
        cid = server.request("POST", "/v1/apps/a/containers", {"cores": 1}).body["id"]
        response = server.request("DELETE", "/v1/admin/apps/a")
        assert response.ok
        account = response.body["account"]
        assert account["app_name"] == "a"
        assert account["finalized"] is True
        # App and container are gone from the app surface.
        assert server.request("GET", "/v1/apps/a/state").status == 404
        assert (
            server.request("GET", f"/v1/apps/b/containers/{cid}/power").status == 404
        )

    def test_readmission_after_eviction_binds_fresh_ves(self, server):
        server.request("DELETE", "/v1/admin/apps/a")
        assert server.request(
            "POST", "/v1/admin/apps", {"name": "a", "battery_fraction": 0.25}
        ).status == 201
        body = server.request("GET", "/v1/apps/a/battery").body
        assert body["battery"] is not None

    def test_in_process_eviction_invalidates_cached_api(self, server):
        # Prime the server's per-app API cache, then evict through the
        # ecovisor directly (the engine/churn path, not the admin
        # route): a re-admission must still bind the fresh VES.
        assert server.request("GET", "/v1/apps/a/state").ok
        server._ecovisor.evict_app("a")
        server._ecovisor.admit_app("a", ShareConfig())  # no battery now
        body = server.request("GET", "/v1/apps/a/battery").body
        assert body["battery"] is None

    def test_patch_before_first_tick_reports_tick_zero(self):
        eco = make_ecovisor()
        eco.register_app("x", ShareConfig(solar_fraction=0.5))
        fresh = EcovisorRestServer(eco)  # no tick has run yet
        response = fresh.request(
            "PATCH", "/v1/admin/apps/x", {"solar_fraction": 0.25}
        )
        assert response.body["effective_at_tick"] == 0

    def test_admin_unknown_app_is_404(self, server):
        assert server.request("DELETE", "/v1/admin/apps/ghost").status == 404
        assert server.request("GET", "/v1/admin/apps/ghost").status == 404
        assert server.request("PATCH", "/v1/admin/apps/ghost", {}).status == 404


class TestEventFeedRoute:
    """GET /v1/apps/{app}/events?cursor=N: the cursor-paged journal."""

    def test_feed_starts_with_admission(self, server):
        body = server.request("GET", "/v1/apps/a/events").body
        assert body["app_name"] == "a"
        assert body["events"][0]["type"] == "AppAdmittedEvent"
        assert body["dropped"] == 0

    def test_cursor_pages_through_the_feed(self, server):
        first = server.request("GET", "/v1/apps/a/events?cursor=0").body
        assert first["next_cursor"] >= 1
        again = server.request(
            "GET", f"/v1/apps/a/events?cursor={first['next_cursor']}"
        ).body
        assert again["events"] == []
        assert again["next_cursor"] == first["next_cursor"]

    def test_limit_parameter(self, server):
        body = server.request("GET", "/v1/apps/a/events?limit=1").body
        assert len(body["events"]) == 1

    def test_feed_readable_after_eviction(self, server):
        server.request("DELETE", "/v1/admin/apps/a")
        body = server.request("GET", "/v1/apps/a/events").body
        assert body["events"][-1]["type"] == "AppEvictedEvent"

    def test_malformed_cursor_is_400(self, server):
        assert server.request("GET", "/v1/apps/a/events?cursor=soon").status == 400

    def test_negative_limit_is_400(self, server):
        assert server.request("GET", "/v1/apps/a/events?limit=-1").status == 400

    def test_legacy_redirect_preserves_query_string(self, server):
        response = server.request("GET", "/apps/a/events?cursor=99")
        assert response.status == 301
        assert response.location == "/v1/apps/a/events?cursor=99"
        followed = server.request(
            "GET", "/apps/a/events?cursor=99", follow_redirects=True
        )
        assert followed.ok
        assert followed.body["events"] == []  # cursor survived the hop

    def test_unknown_app_is_404(self, server):
        assert server.request("GET", "/v1/apps/ghost/events").status == 404


class TestHeaderCaseInsensitivity:
    """HTTP header names carry no case (satellite regression tests)."""

    def test_response_header_lookup_ignores_case(self):
        from repro.rest.router import Response

        response = Response(301, None, headers={"location": "/v1/x"})
        assert response.location == "/v1/x"
        assert response.header("LOCATION") == "/v1/x"
        assert response.header("Location") == "/v1/x"

    def test_request_header_lookup_ignores_case(self):
        from repro.rest.router import Request

        request = Request("GET", "/x", headers={"IF-NONE-MATCH": '"e"'})
        assert request.header("if-none-match") == '"e"'
        assert request.header("If-None-Match") == '"e"'
        assert request.header("absent") is None
        assert request.header("absent", "d") == "d"

    def test_conditional_get_with_lowercase_header_name(self, server):
        etag = server.request("GET", "/v1/apps/a/state").header("etag")
        assert etag is not None
        response = server.request(
            "GET", "/v1/apps/a/state", headers={"if-none-match": etag}
        )
        assert response.status == 304


class TestConditionalGet:
    """ETag / If-None-Match on snapshot routes."""

    SNAPSHOT_PATHS = (
        "/v1/apps/a/state",
        "/v1/apps/a/solar",
        "/v1/apps/a/grid",
        "/v1/apps/a/carbon",
        "/v1/apps/a/price",
        "/v1/apps/a/cost",
        "/v1/apps/a/battery",
    )

    @pytest.mark.parametrize("path", SNAPSHOT_PATHS)
    def test_snapshot_routes_carry_etag_and_revalidation(self, server, path):
        response = server.request("GET", path)
        assert response.ok
        assert response.etag.startswith('"a:')
        assert response.headers["Cache-Control"] == "max-age=0, must-revalidate"

    def test_if_none_match_hit_is_304_without_body(self, server):
        first = server.request("GET", "/v1/apps/a/state")
        response = server.request(
            "GET", "/v1/apps/a/state", headers={"If-None-Match": first.etag}
        )
        assert response.status == 304
        assert response.body is None
        assert response.etag == first.etag

    def test_if_none_match_miss_returns_fresh_body(self, server):
        response = server.request(
            "GET", "/v1/apps/a/state", headers={"If-None-Match": '"stale"'}
        )
        assert response.ok
        assert response.body["app_name"] == "a"

    def test_wildcard_and_candidate_lists_match(self, server):
        etag = server.request("GET", "/v1/apps/a/state").etag
        for header in ("*", f'"zzz", {etag}', f"W/{etag}"):
            response = server.request(
                "GET", "/v1/apps/a/state", headers={"If-None-Match": header}
            )
            assert response.status == 304, header

    def test_etag_changes_at_the_tick_boundary(self):
        eco = make_ecovisor()
        eco.register_app("a", ShareConfig())
        clock = run_ticks(eco, 1)
        server = EcovisorRestServer(eco)
        etag = server.request("GET", "/v1/apps/a/state").etag
        run_ticks(eco, 1, clock=clock)
        after = server.request(
            "GET", "/v1/apps/a/state", headers={"If-None-Match": etag}
        )
        assert after.ok  # not 304: new tick, new snapshot
        assert after.etag != etag

    def test_etag_distinguishes_settled_from_building(self):
        from repro.rest.server import snapshot_etag

        eco = make_ecovisor()
        eco.register_app("a", ShareConfig())
        run_ticks(eco, 1)
        server = EcovisorRestServer(eco)
        settled = server.request("GET", "/v1/apps/a/state")
        assert settled.etag.endswith(':1"')
        # The helper keys on the settled flag, so a mid-tick snapshot
        # cannot revalidate against the finalized one.
        state = server._api("a").state()
        assert snapshot_etag(state) == settled.etag


class TestCacheControlNoStore:
    """Metrics and admin routes must never be cached."""

    def test_metrics_routes_are_no_store(self, server):
        for path in ("/v1/metrics", "/v1/metrics/ticks"):
            response = server.request("GET", path)
            assert response.ok, path
            assert response.header("Cache-Control") == "no-store", path

    def test_admin_routes_are_no_store(self, server):
        listing = server.request("GET", "/v1/admin/apps")
        assert listing.ok
        assert listing.header("Cache-Control") == "no-store"
        one = server.request("GET", "/v1/admin/apps/a")
        assert one.header("Cache-Control") == "no-store"
        admitted = server.request("POST", "/v1/admin/apps", {"name": "c"})
        assert admitted.status == 201
        assert admitted.header("Cache-Control") == "no-store"

    def test_admin_error_mapping_survives_no_store_wrap(self, server):
        # Error responses come from the Router's exception mapping with
        # no freshness headers at all (uncacheable by default); the
        # wrapper must not swallow the error or change its status.
        response = server.request("GET", "/v1/admin/apps/ghost")
        assert response.status == 404
        assert "unknown application" in response.body["error"]

    def test_route_table_backing_names_survive_no_store_wrap(self, server):
        backings = {
            backing
            for _, path, backing in server.router.route_table()
            if path.startswith(("/v1/admin", "/v1/metrics"))
        }
        assert "admin_admit_app" in backings
        assert "get_metrics" in backings


class TestStreamRouteStub:
    """The SSE route exists in-process as a 501 stub (gateway serves it)."""

    def test_stream_stub_is_501_with_hint(self, server):
        response = server.request("GET", "/v1/apps/a/events/stream")
        assert response.status == 501
        assert "repro serve" in response.body["error"]

    def test_stream_stub_unknown_app_is_404(self, server):
        response = server.request("GET", "/v1/apps/ghost/events/stream")
        assert response.status == 404

    def test_stream_route_is_marked_sse(self, server):
        assert ("GET", "/v1/apps/{app}/events/stream") in SSE_ROUTES
        assert ("GET", "/v1/apps/{app}/events/stream") in {
            (m, p) for m, p in server.router.routes()
        }
