"""Placement schedulers (LXD's fewest-instances default and variants)."""

import pytest

from repro.cluster.container import Container
from repro.cluster.scheduler import (
    BestFitScheduler,
    FewestInstancesScheduler,
    WorstFitScheduler,
)
from repro.cluster.server import Server
from repro.core.config import ServerConfig
from repro.core.errors import InsufficientResourcesError


def make_servers(count: int = 3) -> list:
    return [Server(f"s{i}", ServerConfig()) for i in range(count)]


class TestFewestInstances:
    def test_prefers_emptiest_instance_count(self):
        servers = make_servers()
        servers[0].place(Container("a", 1))
        servers[0].place(Container("a", 1))
        servers[1].place(Container("a", 1))
        chosen = FewestInstancesScheduler().select(servers, 1)
        assert chosen.name == "s2"

    def test_tie_broken_by_name(self):
        servers = make_servers()
        chosen = FewestInstancesScheduler().select(servers, 1)
        assert chosen.name == "s0"

    def test_skips_full_servers(self):
        servers = make_servers(2)
        servers[0].place(Container("a", 4))
        chosen = FewestInstancesScheduler().select(servers, 2)
        assert chosen.name == "s1"

    def test_raises_when_nothing_fits(self):
        servers = make_servers(1)
        servers[0].place(Container("a", 4))
        with pytest.raises(InsufficientResourcesError):
            FewestInstancesScheduler().select(servers, 1)


class TestBestFit:
    def test_packs_fullest_server(self):
        servers = make_servers()
        servers[0].place(Container("a", 3))
        servers[1].place(Container("a", 1))
        chosen = BestFitScheduler().select(servers, 1)
        assert chosen.name == "s0"

    def test_raises_when_nothing_fits(self):
        servers = make_servers(1)
        servers[0].place(Container("a", 4))
        with pytest.raises(InsufficientResourcesError):
            BestFitScheduler().select(servers, 1)


class TestWorstFit:
    def test_spreads_to_emptiest(self):
        servers = make_servers()
        servers[0].place(Container("a", 3))
        servers[1].place(Container("a", 1))
        chosen = WorstFitScheduler().select(servers, 1)
        assert chosen.name == "s2"
