"""Scenario registry: registration, expansion, and provenance."""

import pytest

from repro.core.errors import ScenarioError, UnknownScenarioError
from repro.sim import scenarios

NAME = "_test_dummy"


def _dummy_run(params):
    return {"value": params["a"] * 10 + params["b"]}


@pytest.fixture
def dummy():
    scenarios.unregister(NAME)
    scenarios.register(
        NAME,
        description="test scenario",
        defaults={"seed": 7, "label": "x"},
        sweep={"a": (1, 2), "b": (3, 4, 5)},
    )(_dummy_run)
    yield NAME
    scenarios.unregister(NAME)


class TestRegistry:
    def test_builtins_registered(self):
        present = scenarios.names()
        for name in (
            "smoke",
            "fig08_battery_policies",
            "fig10_solar_caps",
            "ablation_threshold",
            "ablation_battery",
            "extension_geo",
        ):
            assert name in present

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownScenarioError):
            scenarios.get("no-such-scenario")

    def test_duplicate_registration_raises(self, dummy):
        with pytest.raises(ScenarioError):
            scenarios.register(NAME)(_dummy_run)

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError):
            scenarios.register("_test_empty_axis", sweep={"a": ()})(_dummy_run)
        scenarios.unregister("_test_empty_axis")

    def test_axis_shadowing_default_rejected(self):
        with pytest.raises(ScenarioError):
            scenarios.register(
                "_test_shadow", defaults={"a": 1}, sweep={"a": (1, 2)}
            )(_dummy_run)
        scenarios.unregister("_test_shadow")

    def test_describe_and_matrix_size(self, dummy):
        assert scenarios.matrix_size(dummy) == 6
        text = scenarios.describe(dummy)
        assert NAME in text and "axis a" in text and "matrix size: 6" in text


class TestExpansion:
    def test_full_matrix_in_product_order(self, dummy):
        specs = scenarios.expand(dummy)
        assert len(specs) == 6
        assert [s.index for s in specs] == list(range(6))
        combos = [(s.params["a"], s.params["b"]) for s in specs]
        assert combos == [(1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)]
        assert all(s.params["seed"] == 7 for s in specs)
        assert all(s.params["label"] == "x" for s in specs)

    def test_scalar_override_pins_axis(self, dummy):
        specs = scenarios.expand(dummy, {"a": 2})
        assert len(specs) == 3
        assert all(s.params["a"] == 2 for s in specs)

    def test_scalar_override_replaces_default(self, dummy):
        specs = scenarios.expand(dummy, {"seed": 99})
        assert all(s.params["seed"] == 99 for s in specs)

    def test_list_override_redefines_axis(self, dummy):
        specs = scenarios.expand(dummy, {"b": [9], "seed": [1, 2]})
        assert len(specs) == 2 * 1 * 2  # a(2) x b(1) x seed(2)
        assert {s.params["b"] for s in specs} == {9}
        assert {s.params["seed"] for s in specs} == {1, 2}

    def test_unknown_override_raises(self, dummy):
        with pytest.raises(ScenarioError):
            scenarios.expand(dummy, {"typo": 1})

    def test_empty_override_axis_raises(self, dummy):
        with pytest.raises(ScenarioError):
            scenarios.expand(dummy, {"a": []})


class TestSpecProvenance:
    def test_config_hash_stable_and_distinct(self, dummy):
        first, second = scenarios.expand(dummy)[:2]
        again = scenarios.expand(dummy)[0]
        assert first.config_hash == again.config_hash
        assert first.config_hash != second.config_hash

    def test_seed_property(self, dummy):
        spec = scenarios.expand(dummy)[0]
        assert spec.seed == 7

    def test_label_is_readable(self, dummy):
        spec = scenarios.expand(dummy)[0]
        assert spec.label() == f"{NAME}[a=1,b=3,label=x,seed=7]"

    def test_spec_pickles(self, dummy):
        import pickle

        spec = scenarios.expand(dummy)[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.config_hash == spec.config_hash
