"""Fleet scenario family: registry, construction, and validation."""

import pytest

from repro.sim import scenarios
from repro.sim.fleet import (
    POLICY_MIXES,
    build_churn_fleet,
    build_fleet,
    run_fleet,
    run_fleet_churn,
)


class TestRegistry:
    def test_fleet_family_registered(self):
        for name in ("fleet_small", "fleet_medium", "fleet_large"):
            scenario = scenarios.get(name)
            assert "fleet" in scenario.tags
            assert set(scenario.defaults) == {"seed", "apps", "ticks", "mix"}

    def test_population_sizes(self):
        assert scenarios.get("fleet_small").defaults["apps"] == 50
        assert scenarios.get("fleet_medium").defaults["apps"] == 200
        assert scenarios.get("fleet_large").defaults["apps"] == 1000


class TestBuildFleet:
    def test_builds_requested_population(self, small_fleet_params):
        fleet = build_fleet(small_fleet_params)
        assert len(fleet.applications) == small_fleet_params["apps"]
        assert fleet.ecovisor.has_market
        assert fleet.ecovisor.plant.has_solar
        assert fleet.ecovisor.plant.has_battery

    def test_every_mix_builds(self, small_fleet_params):
        for mix in POLICY_MIXES:
            fleet = build_fleet({**small_fleet_params, "mix": mix})
            assert len(fleet.applications) == small_fleet_params["apps"]

    def test_unknown_mix_rejected(self, small_fleet_params):
        with pytest.raises(ValueError, match="unknown policy mix"):
            build_fleet({**small_fleet_params, "mix": "bogus"})

    def test_nonpositive_apps_rejected(self, small_fleet_params):
        with pytest.raises(ValueError, match="apps must be positive"):
            build_fleet({**small_fleet_params, "apps": 0})


class TestRunFleet:
    def test_metrics_shape(self, small_fleet_params):
        metrics = run_fleet(small_fleet_params)
        assert set(metrics) == {
            "ticks_executed",
            "apps",
            "containers",
            "completed_jobs",
            "mean_progress",
            "energy_wh",
            "carbon_g",
            "cost_usd",
        }
        assert metrics["ticks_executed"] == float(small_fleet_params["ticks"])
        assert metrics["apps"] == float(small_fleet_params["apps"])
        assert metrics["energy_wh"] > 0.0
        assert metrics["carbon_g"] > 0.0
        assert metrics["cost_usd"] > 0.0
        assert 0.0 < metrics["mean_progress"] <= 1.0

    def test_seed_changes_population(self, small_fleet_params):
        a = run_fleet(small_fleet_params)
        b = run_fleet({**small_fleet_params, "seed": small_fleet_params["seed"] + 1})
        assert a != b


class TestChurnFleet:
    def test_registered_with_churn_defaults(self):
        scenario = scenarios.get("fleet_churn")
        assert "churn" in scenario.tags
        assert {"admit_rate", "evict_rate"} <= set(scenario.defaults)

    def test_zero_rates_degenerate_to_static_fleet(self, small_fleet_params):
        params = {**small_fleet_params, "admit_rate": 0.0, "evict_rate": 0.0}
        metrics = run_fleet_churn(params)
        static = run_fleet(small_fleet_params)
        assert metrics["admitted"] == 0.0
        assert metrics["evicted"] == 0.0
        # The base population (same FLEET_PARAM_KEYS) is bit-identical,
        # so the energy books match the static scenario exactly.
        assert metrics["energy_wh"] == static["energy_wh"]
        assert metrics["cost_usd"] == static["cost_usd"]

    def test_negative_rates_rejected(self, small_fleet_params):
        with pytest.raises(ValueError, match="churn rates"):
            build_churn_fleet({**small_fleet_params, "admit_rate": -1.0})

    def test_schedule_is_deterministic(self, small_fleet_params):
        params = {
            **small_fleet_params,
            "ticks": 30,
            "admit_rate": 0.7,
            "evict_rate": 0.5,
        }
        a = run_fleet_churn(dict(params))
        b = run_fleet_churn(dict(params))
        assert a == b
        assert a["admitted"] > 0.0

    def test_churn_rates_shape_the_schedule(self, small_fleet_params):
        params = {**small_fleet_params, "ticks": 30}
        low = run_fleet_churn({**params, "admit_rate": 0.2, "evict_rate": 0.1})
        high = run_fleet_churn({**params, "admit_rate": 1.5, "evict_rate": 0.1})
        assert high["admitted"] > low["admitted"]
