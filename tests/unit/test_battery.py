"""Physical battery model: SoC tracking, rate limits, DoD floor, losses."""

import pytest

from repro.energy.battery import Battery

HOUR = 3600.0


class TestInitialState:
    def test_initial_level(self, small_battery_config):
        battery = Battery(small_battery_config)
        assert battery.level_wh == pytest.approx(50.0)
        assert battery.soc_fraction == pytest.approx(0.50)

    def test_usable_excludes_floor(self, small_battery_config):
        battery = Battery(small_battery_config)
        # 50 Wh stored, 30 Wh protected: 20 Wh usable.
        assert battery.usable_wh == pytest.approx(20.0)
        assert battery.usable_capacity_wh == pytest.approx(70.0)

    def test_headroom(self, small_battery_config):
        battery = Battery(small_battery_config)
        assert battery.headroom_wh == pytest.approx(50.0)

    def test_rate_limits_from_c_rates(self, small_battery_config):
        battery = Battery(small_battery_config)
        assert battery.max_charge_power_w == pytest.approx(25.0)
        assert battery.max_discharge_power_w == pytest.approx(100.0)


class TestCharging:
    def test_charge_stores_energy(self, small_battery_config):
        battery = Battery(small_battery_config)
        accepted = battery.charge(10.0, HOUR)
        assert accepted == pytest.approx(10.0)
        assert battery.level_wh == pytest.approx(60.0)

    def test_charge_rate_limited(self, small_battery_config):
        battery = Battery(small_battery_config)
        accepted = battery.charge(100.0, HOUR)
        assert accepted == pytest.approx(25.0)  # 0.25C cap

    def test_charge_stops_at_full(self, small_battery_config):
        battery = Battery(small_battery_config)
        battery.charge(25.0, 2 * HOUR)  # stores 50 Wh -> full
        assert battery.is_full
        assert battery.charge(25.0, HOUR) == pytest.approx(0.0)

    def test_charge_efficiency_loss(self, lossy_battery_config):
        battery = Battery(lossy_battery_config)
        battery.charge(10.0, HOUR)
        # 10 Wh in, 9 Wh stored.
        assert battery.level_wh == pytest.approx(59.0)

    def test_charge_rejects_negative_power(self, small_battery_config):
        with pytest.raises(ValueError):
            Battery(small_battery_config).charge(-1.0, HOUR)

    def test_charge_rejects_nonpositive_duration(self, small_battery_config):
        with pytest.raises(ValueError):
            Battery(small_battery_config).charge(1.0, 0.0)


class TestDischarging:
    def test_discharge_delivers_energy(self, small_battery_config):
        battery = Battery(small_battery_config)
        delivered = battery.discharge(10.0, HOUR)
        assert delivered == pytest.approx(10.0)
        assert battery.level_wh == pytest.approx(40.0)

    def test_discharge_stops_at_floor(self, small_battery_config):
        battery = Battery(small_battery_config)
        delivered = battery.discharge(100.0, HOUR)
        # Only 20 Wh usable above the 30% floor.
        assert delivered * 1.0 == pytest.approx(20.0)
        assert battery.is_empty
        assert battery.level_wh == pytest.approx(30.0)

    def test_empty_battery_delivers_nothing(self, small_battery_config):
        battery = Battery(small_battery_config)
        battery.discharge(100.0, HOUR)
        assert battery.discharge(10.0, HOUR) == pytest.approx(0.0)

    def test_discharge_efficiency_loss(self, lossy_battery_config):
        battery = Battery(lossy_battery_config)
        delivered = battery.discharge(9.0, HOUR)
        assert delivered == pytest.approx(9.0)
        # Delivering 9 Wh drains 10 Wh from the store.
        assert battery.level_wh == pytest.approx(40.0)

    def test_discharge_rejects_negative_power(self, small_battery_config):
        with pytest.raises(ValueError):
            Battery(small_battery_config).discharge(-1.0, HOUR)


class TestEnergyWindows:
    def test_max_discharge_energy_rate_limited(self, small_battery_config):
        battery = Battery(small_battery_config)
        # One minute at 1C (100 W) = 1.667 Wh, less than the 20 Wh stock.
        assert battery.max_discharge_energy_wh(60.0) == pytest.approx(100.0 / 60.0)

    def test_max_discharge_energy_stock_limited(self, small_battery_config):
        battery = Battery(small_battery_config)
        assert battery.max_discharge_energy_wh(HOUR) == pytest.approx(20.0)

    def test_max_charge_energy_headroom_limited(self, small_battery_config):
        battery = Battery(small_battery_config)
        assert battery.max_charge_energy_wh(4 * HOUR) == pytest.approx(50.0)


class TestWearAccounting:
    def test_cycle_counting(self, small_battery_config):
        battery = Battery(small_battery_config)
        battery.charge(25.0, HOUR)
        battery.discharge(25.0, HOUR)
        # 50 Wh throughput over a 2*100 Wh full cycle = 0.25 cycles.
        assert battery.equivalent_full_cycles == pytest.approx(0.25)

    def test_meters_accumulate(self, small_battery_config):
        battery = Battery(small_battery_config)
        battery.charge(10.0, HOUR)
        battery.discharge(5.0, HOUR)
        assert battery.total_charged_wh == pytest.approx(10.0)
        assert battery.total_discharged_wh == pytest.approx(5.0)
