"""Command-line interface."""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser, build_route_rows, main, parse_param_overrides

DOCS_API_TOUR = Path(__file__).resolve().parents[2] / "docs" / "api_tour.md"


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_accepts_all_figures(self):
        for name in (
            "fig01", "fig04a", "fig04b", "fig05", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig11", "list",
        ):
            args = build_parser().parse_args([name])
            assert args.experiment == name

    def test_points_option(self):
        args = build_parser().parse_args(["fig10", "--points", "20,50"])
        assert args.points == "20,50"

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "smoke", "--jobs", "2", "--param", "ticks=15"]
        )
        assert args.experiment == "sweep"
        assert args.scenario == "smoke"
        assert args.jobs == 2
        assert args.param == ["ticks=15"]


class TestParamOverrides:
    def test_scalar_types(self):
        overrides = parse_param_overrides(
            ["ticks=15,scale=0.5", "policy=dynamic", "flag=true"]
        )
        assert overrides == {
            "ticks": 15, "scale": 0.5, "policy": "dynamic", "flag": True
        }

    def test_slash_list_becomes_axis(self):
        overrides = parse_param_overrides(["solar_pct=10/50/90"])
        assert overrides == {"solar_pct": [10, 50, 90]}

    def test_malformed_pair_raises(self):
        with pytest.raises(ValueError):
            parse_param_overrides(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig04a" in out
        assert "fig11" in out

    def test_fig01(self, capsys):
        assert main(["fig01", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "ontario" in out and "caiso" in out

    def test_fig04a_small(self, capsys):
        assert main(["fig04a", "--reps", "2"]) == 0
        out = capsys.readouterr().out
        assert "W&S (2X)" in out
        assert "CO2-agnostic" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--points", "50"]) == 0
        out = capsys.readouterr().out
        assert "solar  50%" in out

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "fig10_solar_caps" in out
        assert "fleet_churn" in out

    def test_routes_prints_live_table(self, capsys):
        assert main(["routes"]) == 0
        out = capsys.readouterr().out
        assert "GET     /v1/apps/{app}/state" in out
        assert "/v1/admin/apps" in out
        assert "/v1/apps/{app}/events" in out
        assert "admit_app" in out


class TestRouteDocsSync:
    """docs/api_tour.md's route table must match the live Router."""

    def _documented_routes(self):
        rows = set()
        pattern = re.compile(r"^\| (GET|POST|PATCH|DELETE) \| `([^`]+)` \|")
        for line in DOCS_API_TOUR.read_text().splitlines():
            found = pattern.match(line)
            if found:
                rows.add((found.group(1), found.group(2)))
        return rows

    def test_docs_table_matches_live_router(self):
        live = {(method, path) for method, path, *_ in build_route_rows()}
        documented = self._documented_routes()
        assert documented == live, (
            "docs/api_tour.md route table is out of sync with the live "
            "Router; run `python -m repro routes` and update the docs.\n"
            f"missing from docs: {sorted(live - documented)}\n"
            f"stale in docs: {sorted(documented - live)}"
        )

    def test_sweep_smoke_serial(self, capsys):
        assert main(["sweep", "smoke", "--param", "ticks=15"]) == 0
        out = capsys.readouterr().out
        assert "sweep smoke: 2 runs (serial)" in out
        assert "2/2 ok" in out

    def test_sweep_smoke_parallel(self, capsys):
        assert main(["sweep", "smoke", "--jobs", "2", "--param", "ticks=15"]) == 0
        out = capsys.readouterr().out
        assert "2 worker processes" in out
        assert "2/2 ok" in out

    def test_sweep_reports_failures_nonzero(self, capsys):
        assert main(["sweep", "smoke", "--param", "ticks=15,fail=1"]) == 1
        out = capsys.readouterr().out
        assert "ERR" in out
        assert "0/2 ok" in out

    def test_sweep_without_scenario_errors(self):
        with pytest.raises(SystemExit):
            main(["sweep"])

    def test_figure_command_rejects_stray_positional(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig10", "oops", "--points", "50"])
        assert "unexpected argument 'oops'" in capsys.readouterr().err

    def test_single_run_sweep_reports_serial(self, capsys):
        assert main(
            ["sweep", "smoke", "--jobs", "4",
             "--param", "ticks=15,workers=2"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 runs (serial)" in out

    def test_fig10_duplicate_points_deduped(self, capsys):
        assert main(["fig10", "--points", "50,50"]) == 0
        out = capsys.readouterr().out
        assert out.count("solar  50%") == 1

    def test_sweep_out_writes_json(self, capsys, tmp_path):
        out = tmp_path / "table.json"
        assert main(
            ["sweep", "smoke", "--param", "ticks=15", "--out", str(out)]
        ) == 0
        assert f"wrote results table to {out}" in capsys.readouterr().out
        import json

        rows = json.loads(out.read_text())
        assert len(rows) == 2
        assert rows[0]["scenario"] == "smoke"
        assert rows[0]["status"] == "ok"
        assert "config_hash" in rows[0]

    def test_sweep_out_writes_csv_by_extension(self, capsys, tmp_path):
        out = tmp_path / "table.csv"
        assert main(
            ["sweep", "smoke", "--param", "ticks=15", "--out", str(out)]
        ) == 0
        import csv

        with out.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["scenario"] == "smoke"
        assert {"config_hash", "status", "workers"} <= set(rows[0])

    def test_sweep_out_serial_and_parallel_identical(self, tmp_path):
        serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
        assert main(["sweep", "smoke", "--param", "ticks=15",
                     "--out", str(serial)]) == 0
        assert main(["sweep", "smoke", "--jobs", "2", "--param", "ticks=15",
                     "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_sweep_unknown_scenario_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "no-such-scenario"])
        err = capsys.readouterr().err
        assert "unknown scenario: 'no-such-scenario'" in err

    def test_sweep_bad_param_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "smoke", "--param", "typo=5"])
        err = capsys.readouterr().err
        assert "has no parameter 'typo'" in err


class TestProfile:
    def test_profile_prints_phase_table(self, capsys):
        assert main(["profile", "fleet_small", "--ticks", "12"]) == 0
        out = capsys.readouterr().out
        assert "=== profile fleet_small:" in out
        for phase in (
            "begin_tick",
            "policy_batch",
            "policy_fallback",
            "workload_step",
            "settle",
            "telemetry_flush",
        ):
            assert phase in out
        assert "tick total" in out
        assert "of wall-clock" in out
        assert "slow ticks" in out

    def test_profile_out_writes_report(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        assert main(
            ["profile", "fleet_small", "--ticks", "12", "--out", str(out)]
        ) == 0
        import json

        report = json.loads(out.read_text())
        assert report["scenario"] == "fleet_small"
        assert report["ticks_executed"] == 12
        assert len(report["summary"]["phase_table"]) == 6
        assert f"wrote profile report to {out}" in capsys.readouterr().out

    def test_profile_phase_sum_tracks_wall_clock(self):
        from repro.cli import run_profile

        report = run_profile("fleet_small", ticks=12)
        # The brackets partition each tick; wall additionally includes
        # cache priming and loop overhead outside the brackets.
        assert 0.0 < report["phase_sum_s"] <= report["wall_s"]
        assert report["coverage"] > 0.5

    def test_profile_without_scenario_errors(self):
        with pytest.raises(SystemExit):
            main(["profile"])

    def test_profile_rejects_non_fleet_scenario(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "smoke"])
        assert "fleet" in capsys.readouterr().err


class TestTracesCommand:
    def test_list_is_the_default_action(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "caiso-2022" in out
        assert "wind-cf-2022" in out
        assert "gCO2eq/kWh" in out

    def test_show_prints_descriptor_and_stats(self, capsys):
        assert main(["traces", "show", "caiso-2022"]) == 0
        out = capsys.readouterr().out
        assert "sha256:" in out
        assert "samples:  1152" in out
        assert "duck curve" in out

    def test_show_unknown_dataset_errors_listing_names(self, capsys):
        with pytest.raises(SystemExit):
            main(["traces", "show", "nope"])
        err = capsys.readouterr().err
        assert "unknown dataset 'nope'" in err
        assert "caiso-2022" in err

    def test_show_without_dataset_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["traces", "show"])
        assert "requires a dataset name" in capsys.readouterr().err

    def test_validate_verifies_every_dataset(self, capsys):
        assert main(["traces", "validate"]) == 0
        out = capsys.readouterr().out
        assert "8/8 datasets verified" in out

    def test_unknown_action_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["traces", "frobnicate"])
        assert "unknown traces action" in capsys.readouterr().err

    def test_dataset_arg_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["sweep", "smoke", "caiso-2022"])
