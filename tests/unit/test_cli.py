"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_accepts_all_figures(self):
        for name in (
            "fig01", "fig04a", "fig04b", "fig05", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig11", "list",
        ):
            args = build_parser().parse_args([name])
            assert args.experiment == name

    def test_points_option(self):
        args = build_parser().parse_args(["fig10", "--points", "20,50"])
        assert args.points == "20,50"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig04a" in out
        assert "fig11" in out

    def test_fig01(self, capsys):
        assert main(["fig01", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "ontario" in out and "caiso" in out

    def test_fig04a_small(self, capsys):
        assert main(["fig04a", "--reps", "2"]) == 0
        out = capsys.readouterr().out
        assert "W&S (2X)" in out
        assert "CO2-agnostic" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--points", "50"]) == 0
        out = capsys.readouterr().out
        assert "solar  50%" in out
