"""Experiment builders and the batch policy runner."""

import pytest

from repro.carbon.traces import constant_trace, make_region_trace
from repro.policies import CarbonAgnosticPolicy
from repro.sim.experiment import (
    arrival_offsets,
    carbon_threshold,
    grid_environment,
    run_batch_policy,
    solar_battery_environment,
)
from repro.workloads.mltrain import MLTrainingJob


class TestEnvironments:
    def test_grid_environment_wiring(self):
        env = grid_environment(days=1)
        assert env.plant.has_grid
        assert not env.plant.has_solar
        assert env.ecovisor.platform is env.platform
        assert env.engine.ecovisor is env.ecovisor

    def test_grid_environment_with_explicit_trace(self):
        trace = constant_trace(123.0)
        env = grid_environment(trace=trace)
        assert env.carbon_service.intensity_at(0.0) == 123.0

    def test_solar_battery_environment_wiring(self):
        env = solar_battery_environment(
            solar_peak_w=20.0, battery_capacity_wh=40.0, days=1
        )
        assert env.plant.has_solar
        assert env.plant.has_battery
        assert env.plant.battery.capacity_wh == 40.0

    def test_solar_battery_environment_gridless(self):
        env = solar_battery_environment(
            solar_peak_w=20.0, battery_capacity_wh=40.0, days=1, with_grid=False
        )
        assert not env.plant.has_grid


class TestThresholds:
    def test_carbon_threshold_percentile(self):
        trace = make_region_trace("caiso", days=2)
        threshold = carbon_threshold(trace, 30.0, 24 * 3600.0)
        window = trace.window(0.0, 24 * 3600.0)
        below = (window <= threshold).mean()
        assert below == pytest.approx(0.30, abs=0.05)

    def test_window_defaults_to_trace(self):
        trace = constant_trace(100.0)
        assert carbon_threshold(trace, 50.0) == pytest.approx(100.0)


class TestArrivalOffsets:
    def test_deterministic(self):
        a = arrival_offsets(5, 1000.0, seed=1)
        b = arrival_offsets(5, 1000.0, seed=1)
        assert a == b

    def test_within_first_half(self):
        offsets = arrival_offsets(20, 1000.0)
        assert all(0.0 <= o <= 500.0 for o in offsets)

    def test_count(self):
        assert len(arrival_offsets(7, 1000.0)) == 7


class TestRunBatchPolicy:
    def test_produces_one_result_per_offset(self):
        trace = constant_trace(150.0, days=1)
        results = run_batch_policy(
            make_app=lambda: MLTrainingJob(
                total_work_units=1000.0, warmup_ticks_on_resume=0
            ),
            make_policy=lambda tr: CarbonAgnosticPolicy(4),
            policy_label="agnostic",
            base_trace=trace,
            offsets=[0.0, 3600.0],
            max_ticks=600,
        )
        assert len(results) == 2
        assert all(r.completed for r in results)
        assert all(r.policy_label == "agnostic" for r in results)
        # 1000 units at ~4 u/s ~ 250 s -> 5 ticks.
        assert results[0].runtime_s == pytest.approx(300.0, abs=120.0)
        assert results[0].carbon_g > 0

    def test_incomplete_run_marked(self):
        trace = constant_trace(150.0, days=1)
        results = run_batch_policy(
            make_app=lambda: MLTrainingJob(total_work_units=1e9),
            make_policy=lambda tr: CarbonAgnosticPolicy(1),
            policy_label="agnostic",
            base_trace=trace,
            offsets=[0.0],
            max_ticks=5,
        )
        assert not results[0].completed
        assert results[0].runtime_s == float("inf")
