"""Event bus dispatch semantics."""

import pytest

from repro.core.events import (
    BatteryEmptyEvent,
    BatteryFullEvent,
    CarbonChangeEvent,
    EventBus,
    SolarChangeEvent,
    TickEvent,
)


class TestSubscribePublish:
    def test_subscriber_receives_event(self):
        bus = EventBus()
        got = []
        bus.subscribe(TickEvent, got.append)
        bus.publish(TickEvent(time_s=0.0, tick_index=3))
        assert len(got) == 1
        assert got[0].tick_index == 3

    def test_publish_returns_delivery_count(self):
        bus = EventBus()
        bus.subscribe(TickEvent, lambda e: None)
        bus.subscribe(TickEvent, lambda e: None)
        assert bus.publish(TickEvent(time_s=0.0)) == 2

    def test_no_subscribers_is_fine(self):
        bus = EventBus()
        assert bus.publish(TickEvent(time_s=0.0)) == 0

    def test_type_filtering(self):
        bus = EventBus()
        ticks, solar = [], []
        bus.subscribe(TickEvent, ticks.append)
        bus.subscribe(SolarChangeEvent, solar.append)
        bus.publish(TickEvent(time_s=0.0))
        bus.publish(SolarChangeEvent(time_s=0.0, app_name="a"))
        assert len(ticks) == 1
        assert len(solar) == 1

    def test_exact_type_match_only(self):
        """Subclasses are distinct event types; no structural dispatch."""
        bus = EventBus()
        got = []
        bus.subscribe(BatteryFullEvent, got.append)
        bus.publish(BatteryEmptyEvent(time_s=0.0, app_name="a"))
        assert got == []

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        bus.subscribe(TickEvent, got.append)
        bus.unsubscribe(TickEvent, got.append)
        bus.publish(TickEvent(time_s=0.0))
        assert got == []

    def test_unsubscribe_absent_callback_is_noop(self):
        bus = EventBus()
        bus.unsubscribe(TickEvent, lambda e: None)  # must not raise

    def test_published_counts(self):
        bus = EventBus()
        bus.publish(TickEvent(time_s=0.0))
        bus.publish(TickEvent(time_s=60.0))
        assert bus.published_count(TickEvent) == 2
        assert bus.published_count(SolarChangeEvent) == 0

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count(TickEvent) == 0
        bus.subscribe(TickEvent, lambda e: None)
        assert bus.subscriber_count(TickEvent) == 1

    def test_subscriber_exception_propagates(self):
        bus = EventBus()

        def bad(_):
            raise RuntimeError("policy bug")

        bus.subscribe(TickEvent, bad)
        with pytest.raises(RuntimeError):
            bus.publish(TickEvent(time_s=0.0))


class TestEventPayloads:
    def test_solar_change_delta(self):
        event = SolarChangeEvent(
            time_s=0.0, app_name="a", previous_w=5.0, current_w=8.0
        )
        assert event.delta_w == pytest.approx(3.0)

    def test_carbon_change_delta(self):
        event = CarbonChangeEvent(
            time_s=0.0, previous_g_per_kwh=200.0, current_g_per_kwh=150.0
        )
        assert event.delta_g_per_kwh == pytest.approx(-50.0)

    def test_events_are_frozen(self):
        event = TickEvent(time_s=0.0)
        with pytest.raises(AttributeError):
            event.time_s = 99.0
