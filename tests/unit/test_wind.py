"""Wind capacity-factor traces, the WindPlant source, and hybrid delivery."""

import numpy as np
import pytest

from repro.core.config import SolarConfig, WindConfig
from repro.core.errors import TraceError
from repro.energy.grid import GridConnection
from repro.energy.solar import SolarArrayEmulator, TabularSolarTrace
from repro.energy.system import PhysicalEnergySystem
from repro.energy.wind import (
    WIND_SAMPLE_INTERVAL_S,
    WindCapacityTrace,
    WindPlant,
    synthesize_wind_trace,
)


class TestWindCapacityTrace:
    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(TraceError):
            WindCapacityTrace([])
        with pytest.raises(TraceError):
            WindCapacityTrace([0.5, 1.2])
        with pytest.raises(TraceError):
            WindCapacityTrace([-0.1])

    def test_lookup_truncates_and_clamps(self):
        trace = WindCapacityTrace([0.2, 0.4, 0.6])
        assert trace.capacity_factor_at(0.0) == 0.2
        assert trace.capacity_factor_at(WIND_SAMPLE_INTERVAL_S - 1) == 0.2
        assert trace.capacity_factor_at(WIND_SAMPLE_INTERVAL_S) == 0.4
        assert trace.capacity_factor_at(1e9) == 0.6  # clamp past the end
        with pytest.raises(TraceError):
            trace.capacity_factor_at(-1.0)

    def test_samples_are_read_only(self):
        trace = WindCapacityTrace([0.3, 0.5])
        with pytest.raises(ValueError):
            trace.samples[0] = 0.9
        assert trace.mean() == pytest.approx(0.4)
        assert trace.duration_s == 2 * WIND_SAMPLE_INTERVAL_S


class TestSynthesizeWindTrace:
    def test_deterministic_per_seed(self):
        a = synthesize_wind_trace(days=2, seed=7)
        b = synthesize_wind_trace(days=2, seed=7)
        c = synthesize_wind_trace(days=2, seed=8)
        np.testing.assert_array_equal(a.samples, b.samples)
        assert not np.array_equal(a.samples, c.samples)

    def test_bounds_and_shape(self):
        trace = synthesize_wind_trace(days=3)
        assert len(trace.samples) == 3 * 288
        assert trace.samples.min() >= 0.0
        assert trace.samples.max() <= 0.95
        with pytest.raises(TraceError):
            synthesize_wind_trace(days=0)

    def test_blows_around_the_clock(self):
        # Unlike solar, wind output is nonzero at night: the mean over
        # the midnight-to-4am window stays well above zero.
        trace = synthesize_wind_trace(days=4)
        per_day = 288
        night = np.concatenate(
            [trace.samples[d * per_day : d * per_day + 48] for d in range(4)]
        )
        assert night.mean() > 0.1


class TestWindPlant:
    def test_output_is_cf_times_rated_times_scale(self):
        trace = WindCapacityTrace([0.5])
        plant = WindPlant(WindConfig(rated_power_w=200.0, scale=1.5), trace)
        assert plant.available_power_w(0.0) == pytest.approx(150.0)
        assert plant.scale == 1.5

    def test_with_scale_shares_the_trace(self):
        trace = WindCapacityTrace([0.5])
        base = WindPlant(WindConfig(rated_power_w=200.0), trace)
        doubled = base.with_scale(2.0)
        assert doubled.available_power_w(0.0) == 2 * base.available_power_w(0.0)
        assert doubled._trace is base._trace

    def test_deliver_meters_energy(self):
        plant = WindPlant(WindConfig(rated_power_w=100.0), WindCapacityTrace([1.0]))
        plant.deliver(60.0, 1800.0)  # 60 W for half an hour
        assert plant.total_energy_wh == pytest.approx(30.0)

    def test_default_trace_is_synthesized(self):
        plant = WindPlant()
        assert plant.available_power_w(0.0) >= 0.0


class TestHybridDelivery:
    def _plant(self, solar_w: float, wind_cf: float, irradiance: float = 1.0):
        solar = SolarArrayEmulator(
            SolarConfig(peak_power_w=solar_w, panel_efficiency_derating=1.0),
            TabularSolarTrace([irradiance]),
        )
        wind = WindPlant(
            WindConfig(rated_power_w=100.0), WindCapacityTrace([wind_cf])
        )
        return PhysicalEnergySystem(
            grid=GridConnection(), solar=solar, wind=wind
        )

    def test_renewable_power_sums_solar_and_wind(self):
        plant = self._plant(solar_w=60.0, wind_cf=0.4)
        assert plant.solar_power_w(0.0) == pytest.approx(60.0)
        assert plant.wind_power_w(0.0) == pytest.approx(40.0)
        assert plant.renewable_power_w(0.0) == pytest.approx(100.0)
        assert plant.has_wind and plant.has_renewable

    def test_delivery_splits_pro_rata_by_availability(self):
        plant = self._plant(solar_w=60.0, wind_cf=0.4)  # 60 W solar, 40 W wind
        plant.deliver_renewable(50.0, 3600.0, 0.0)
        assert plant.solar.total_energy_wh == pytest.approx(30.0)  # 60%
        assert plant.wind.total_energy_wh == pytest.approx(20.0)  # 40%

    def test_zero_availability_splits_evenly(self):
        plant = self._plant(solar_w=60.0, wind_cf=0.0, irradiance=0.0)
        plant.deliver_renewable(10.0, 3600.0, 0.0)
        assert plant.solar.total_energy_wh == pytest.approx(5.0)
        assert plant.wind.total_energy_wh == pytest.approx(5.0)

    def test_wind_only_plant(self):
        wind = WindPlant(WindConfig(rated_power_w=80.0), WindCapacityTrace([0.5]))
        plant = PhysicalEnergySystem(grid=GridConnection(), wind=wind)
        assert not plant.has_solar and plant.has_renewable
        assert plant.renewable_power_w(0.0) == pytest.approx(40.0)
        plant.deliver_renewable(40.0, 3600.0, 0.0)
        assert wind.total_energy_wh == pytest.approx(40.0)

    def test_snapshot_reports_wind_power(self):
        plant = self._plant(solar_w=60.0, wind_cf=0.4)
        snap = plant.snapshot(0.0)
        assert snap.wind_power_w == pytest.approx(40.0)
        assert snap.solar_power_w == pytest.approx(60.0)
        assert "wind" in repr(plant)
