"""ML training workload: scaling curve and stall power."""

import pytest

from repro.workloads.mltrain import (
    DEFAULT_SCALING_ANCHORS,
    MLTrainingJob,
    effective_parallelism,
    sync_efficiency,
)


class TestScalingCurve:
    def test_linear_region(self):
        assert effective_parallelism(4) == pytest.approx(4.0)
        assert effective_parallelism(2) == pytest.approx(2.0)

    def test_knee_at_eight(self):
        assert effective_parallelism(8) == pytest.approx(7.8)

    def test_saturation(self):
        assert effective_parallelism(12) == pytest.approx(8.8)
        assert effective_parallelism(100) == pytest.approx(9.2)  # flat beyond

    def test_zero_workers(self):
        assert effective_parallelism(0) == 0.0

    def test_efficiency_declines(self):
        assert sync_efficiency(4) > sync_efficiency(8) > sync_efficiency(12)

    def test_paper_ratios(self):
        """The calibration targets from Figure 4a's reported numbers."""
        job = MLTrainingJob()
        # Near-linear to 2x: speedup(8)/speedup(4) ~ 1.95.
        assert job.speedup(8) == pytest.approx(1.95, abs=0.05)
        # 3x is only ~13% faster than 2x.
        assert job.speedup(12) / job.speedup(8) == pytest.approx(1.13, abs=0.03)


class TestThroughput:
    def test_full_utilization(self):
        job = MLTrainingJob()
        assert job.throughput_units_per_s([1.0] * 4) == pytest.approx(4.0)

    def test_caps_scale_throughput(self):
        job = MLTrainingJob()
        full = job.throughput_units_per_s([1.0] * 4)
        capped = job.throughput_units_per_s([0.5] * 4)
        assert capped == pytest.approx(full / 2)

    def test_no_workers(self):
        assert MLTrainingJob().throughput_units_per_s([]) == 0.0

    def test_ideal_runtime(self):
        job = MLTrainingJob(total_work_units=400.0)
        assert job.ideal_runtime_s(4) == pytest.approx(100.0)


class TestStallPower:
    def test_demand_utilization_below_one_when_stalling(self):
        job = MLTrainingJob(stall_power_fraction=0.5)
        # At 12 workers, busy fraction is 8.8/12; stalls draw half power.
        busy = 8.8 / 12
        expected = busy + 0.5 * (1 - busy)
        assert job.demand_utilization(12) == pytest.approx(expected)

    def test_no_stall_at_linear_scale(self):
        job = MLTrainingJob()
        assert job.demand_utilization(4) == pytest.approx(1.0)

    def test_stall_fraction_zero_means_busy_only(self):
        job = MLTrainingJob(stall_power_fraction=0.0)
        assert job.demand_utilization(12) == pytest.approx(8.8 / 12)

    def test_energy_per_work_increases_beyond_knee(self):
        """The physical reason Wait&Scale(3x) emits more carbon."""
        job = MLTrainingJob()

        def energy_per_work(n):
            power = n * job.demand_utilization(n)
            rate = job.worker_rate_units_per_s * effective_parallelism(n)
            return power / rate

        assert energy_per_work(12) > energy_per_work(8) * 1.10


class TestValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            MLTrainingJob(worker_rate_units_per_s=0.0)

    def test_rejects_unsorted_anchors(self):
        with pytest.raises(ValueError):
            MLTrainingJob(scaling_anchors=((4.0, 4.0), (2.0, 2.0)))

    def test_rejects_single_anchor(self):
        with pytest.raises(ValueError):
            MLTrainingJob(scaling_anchors=((0.0, 0.0),))

    def test_rejects_bad_stall_fraction(self):
        with pytest.raises(ValueError):
            MLTrainingJob(stall_power_fraction=1.5)

    def test_default_anchors_sorted(self):
        xs = [a[0] for a in DEFAULT_SCALING_ANCHORS]
        assert xs == sorted(xs)
