"""Table 2 library layer."""

import pytest

from repro.core.api import connect
from repro.core.config import ShareConfig
from repro.core.library import AppEnergyLibrary
from tests.conftest import make_ecovisor, run_ticks


@pytest.fixture
def setup():
    eco = make_ecovisor(solar_w=0.0, carbon_g_per_kwh=300.0)
    eco.register_app("a", ShareConfig())
    api = connect(eco, "a")
    library = AppEnergyLibrary(api)
    return eco, api, library


class TestMonitoringQueries:
    def test_app_energy_and_carbon(self, setup):
        eco, api, lib = setup
        c = api.launch_container(1)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 60, demand)
        assert lib.get_app_energy(0.0, 3600.0) == pytest.approx(1.25, rel=1e-3)
        assert lib.get_app_carbon() == pytest.approx(0.375, rel=1e-3)
        assert lib.get_app_carbon(0.0, 1800.0) == pytest.approx(0.1875, rel=1e-2)

    def test_app_power_current(self, setup):
        eco, api, lib = setup
        c = api.launch_container(1)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 2, demand)
        assert lib.get_app_power() == pytest.approx(1.25)

    def test_container_energy_and_carbon(self, setup):
        eco, api, lib = setup
        c = api.launch_container(1)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 60, demand)
        assert lib.get_container_energy(c.id, 0.0, 3600.0) == pytest.approx(
            1.25, rel=1e-2
        )
        assert lib.get_container_carbon(c.id, 0.0, 3600.0) == pytest.approx(
            0.375, rel=1e-2
        )


class TestCarbonRate:
    def test_container_rate_enforced_as_cap(self, setup):
        eco, api, lib = setup
        c = api.launch_container(1)
        # 0.0625 mg/s at 300 g/kWh -> 0.75 W cap.
        lib.set_carbon_rate(c.id, 0.0625)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 3, demand)
        assert c.power_cap_w == pytest.approx(0.75, rel=1e-3)
        assert api.get_container_power(c.id) <= 0.75 + 1e-9

    def test_rate_cleared(self, setup):
        eco, api, lib = setup
        c = api.launch_container(1)
        lib.set_carbon_rate(c.id, 0.0625)
        run_ticks(eco, 1)
        lib.set_carbon_rate(c.id, None)
        assert c.power_cap_w is None

    def test_app_rate_spreads_over_containers(self, setup):
        eco, api, lib = setup
        c1 = api.launch_container(1)
        c2 = api.launch_container(1)
        lib.set_app_carbon_rate(0.125)
        run_ticks(eco, 2)
        assert c1.power_cap_w == pytest.approx(0.75, rel=1e-3)
        assert c2.power_cap_w == pytest.approx(0.75, rel=1e-3)

    def test_negative_rate_rejected(self, setup):
        _, _, lib = setup
        with pytest.raises(ValueError):
            lib.set_carbon_rate("x", -1.0)
        with pytest.raises(ValueError):
            lib.set_app_carbon_rate(-1.0)


class TestCarbonBudget:
    def test_budget_tracking(self, setup):
        eco, api, lib = setup
        lib.set_carbon_budget(1.0)
        c = api.launch_container(1)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 60, demand)
        remaining = lib.remaining_budget_g()
        assert remaining == pytest.approx(1.0 - 0.375, rel=1e-2)
        assert not lib.budget_exceeded()

    def test_budget_exceeded(self, setup):
        eco, api, lib = setup
        lib.set_carbon_budget(0.01)
        c = api.launch_container(4)

        def demand(tick):
            c.set_demand_utilization(1.0)

        run_ticks(eco, 60, demand)
        assert lib.budget_exceeded()

    def test_no_budget_means_none(self, setup):
        _, _, lib = setup
        assert lib.remaining_budget_g() is None
        assert not lib.budget_exceeded()

    def test_budget_cleared(self, setup):
        _, _, lib = setup
        lib.set_carbon_budget(5.0)
        lib.set_carbon_budget(None)
        assert lib.carbon_budget_g is None

    def test_negative_budget_rejected(self, setup):
        _, _, lib = setup
        with pytest.raises(ValueError):
            lib.set_carbon_budget(-1.0)


class TestNotifications:
    def test_carbon_change_notification(self):
        from repro.carbon.service import CarbonIntensityService
        from repro.carbon.traces import CarbonTrace
        from repro.core.config import CarbonServiceConfig

        eco = make_ecovisor()
        eco._carbon_service = CarbonIntensityService(
            CarbonServiceConfig(region="jumpy"),
            trace=CarbonTrace([100.0, 400.0] * 5),
        )
        eco.register_app("a", ShareConfig())
        lib = AppEnergyLibrary(connect(eco, "a"))
        got = []
        lib.notify_carbon_change(got.append)
        run_ticks(eco, 12)
        assert len(got) >= 1

    def test_battery_full_notification_filtered_by_app(self, small_battery_config):
        eco = make_ecovisor(solar_w=50.0, battery_config=small_battery_config)
        eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
        eco.register_app("b", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
        lib_a = AppEnergyLibrary(connect(eco, "a"))
        got_a = []
        lib_a.notify_battery_full(got_a.append)
        run_ticks(eco, 60 * 6)
        assert all(event.app_name == "a" for event in got_a)
        assert len(got_a) == 1

    def test_solar_change_notification(self):
        from repro.core.config import SolarConfig
        from repro.energy.solar import SolarArrayEmulator, TabularSolarTrace

        eco = make_ecovisor()
        eco._plant._solar = SolarArrayEmulator(
            SolarConfig(peak_power_w=100.0, panel_efficiency_derating=1.0),
            TabularSolarTrace([0.0, 0.5, 1.0, 0.2]),
        )
        eco.register_app("a", ShareConfig(solar_fraction=1.0))
        lib = AppEnergyLibrary(connect(eco, "a"))
        got = []
        lib.notify_solar_change(got.append)
        run_ticks(eco, 4)
        assert len(got) >= 1
