"""Solar traces and the array emulator."""

import numpy as np
import pytest

from repro.core.config import SolarConfig
from repro.core.errors import TraceError
from repro.energy.solar import (
    ConstantSolarTrace,
    SolarArrayEmulator,
    SolarTrace,
    TabularSolarTrace,
)

DAY_S = 86400.0


class TestSolarTrace:
    def test_zero_at_night(self):
        trace = SolarTrace(days=2, seed=1)
        assert trace.irradiance_at(0.0) == 0.0  # midnight
        assert trace.irradiance_at(3 * 3600.0) == 0.0  # 3 am

    def test_positive_at_noon(self):
        trace = SolarTrace(days=2, seed=1)
        assert trace.irradiance_at(12 * 3600.0) > 0.2

    def test_bounded(self):
        trace = SolarTrace(days=3, seed=7)
        assert trace.samples.min() >= 0.0
        assert trace.samples.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = SolarTrace(days=2, seed=5)
        b = SolarTrace(days=2, seed=5)
        assert np.array_equal(a.samples, b.samples)

    def test_different_seeds_differ(self):
        a = SolarTrace(days=2, seed=5)
        b = SolarTrace(days=2, seed=6)
        assert not np.array_equal(a.samples, b.samples)

    def test_clamps_beyond_end(self):
        trace = SolarTrace(days=1, seed=1)
        assert trace.irradiance_at(10 * DAY_S) == trace.irradiance_at(
            DAY_S - 60.0
        )

    def test_rejects_negative_time(self):
        with pytest.raises(TraceError):
            SolarTrace(days=1).irradiance_at(-1.0)

    def test_rejects_bad_day_count(self):
        with pytest.raises(TraceError):
            SolarTrace(days=0)

    def test_rejects_bad_sun_hours(self):
        with pytest.raises(TraceError):
            SolarTrace(days=1, sunrise_hour=20.0, sunset_hour=6.0)

    def test_samples_are_read_only(self):
        trace = SolarTrace(days=1)
        with pytest.raises(ValueError):
            trace.samples[0] = 0.5


class TestConstantAndTabularTraces:
    def test_constant(self):
        trace = ConstantSolarTrace(0.6)
        assert trace.irradiance_at(0.0) == 0.6
        assert trace.irradiance_at(1e6) == 0.6

    def test_constant_rejects_out_of_range(self):
        with pytest.raises(TraceError):
            ConstantSolarTrace(1.5)

    def test_tabular_lookup(self):
        trace = TabularSolarTrace([0.0, 0.5, 1.0])
        assert trace.irradiance_at(0.0) == 0.0
        assert trace.irradiance_at(60.0) == 0.5
        assert trace.irradiance_at(120.0) == 1.0
        assert trace.irradiance_at(999.0) == 1.0  # clamps

    def test_tabular_rejects_out_of_range_samples(self):
        with pytest.raises(TraceError):
            TabularSolarTrace([0.0, 2.0])

    def test_tabular_rejects_empty(self):
        with pytest.raises(TraceError):
            TabularSolarTrace([])


class TestSolarArrayEmulator:
    def test_output_scales_with_peak_and_derating(self):
        emulator = SolarArrayEmulator(
            SolarConfig(peak_power_w=100.0, panel_efficiency_derating=0.9),
            ConstantSolarTrace(0.5),
        )
        assert emulator.available_power_w(0.0) == pytest.approx(45.0)

    def test_scale_multiplies_output(self):
        emulator = SolarArrayEmulator(
            SolarConfig(peak_power_w=100.0, scale=0.25,
                        panel_efficiency_derating=1.0),
            ConstantSolarTrace(1.0),
        )
        assert emulator.available_power_w(0.0) == pytest.approx(25.0)

    def test_with_scale_shares_trace(self):
        base = SolarArrayEmulator(
            SolarConfig(peak_power_w=100.0, panel_efficiency_derating=1.0),
            ConstantSolarTrace(1.0),
        )
        scaled = base.with_scale(0.5)
        assert scaled.available_power_w(0.0) == pytest.approx(
            base.available_power_w(0.0) * 0.5
        )

    def test_delivery_metering(self):
        emulator = SolarArrayEmulator(trace=ConstantSolarTrace(1.0))
        emulator.deliver(60.0, 60.0)
        assert emulator.total_energy_wh == pytest.approx(1.0)
