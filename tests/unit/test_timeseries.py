"""Time-series database: recording, windows, aggregation, integration."""

import pytest

from repro.core.errors import TraceError
from repro.telemetry.timeseries import Series, TimeSeriesDatabase


@pytest.fixture
def db() -> TimeSeriesDatabase:
    database = TimeSeriesDatabase()
    for i in range(10):
        database.record("power", i * 60.0, float(i))
    return database


class TestSeries:
    def test_append_and_latest(self):
        series = Series("s")
        series.append(0.0, 1.0)
        series.append(60.0, 2.0)
        assert series.latest() == (60.0, 2.0)
        assert len(series) == 2

    def test_monotonic_enforced(self):
        series = Series("s")
        series.append(60.0, 1.0)
        with pytest.raises(TraceError):
            series.append(30.0, 2.0)

    def test_equal_times_allowed(self):
        series = Series("s")
        series.append(60.0, 1.0)
        series.append(60.0, 2.0)
        assert len(series) == 2

    def test_latest_on_empty(self):
        with pytest.raises(TraceError):
            Series("s").latest()

    def test_window_half_open(self):
        series = Series("s")
        for t in (0.0, 60.0, 120.0):
            series.append(t, t)
        times, values = series.window(0.0, 120.0)
        assert list(times) == [0.0, 60.0]


class TestDatabase:
    def test_record_creates_series(self, db):
        assert db.has_series("power")
        assert "power" in db.series_names()

    def test_missing_series_raises(self, db):
        with pytest.raises(TraceError):
            db.series("nope")

    def test_latest_with_default(self, db):
        assert db.latest("nope", default=7.0) == 7.0
        assert db.latest("power") == 9.0

    def test_latest_without_default_raises(self, db):
        with pytest.raises(TraceError):
            db.latest("nope")

    def test_mean(self, db):
        assert db.mean("power", 0.0, 600.0) == pytest.approx(4.5)

    def test_mean_empty_window_is_zero(self, db):
        assert db.mean("power", 10000.0, 20000.0) == 0.0

    def test_total(self, db):
        assert db.total("power", 0.0, 180.0) == pytest.approx(0.0 + 1.0 + 2.0)

    def test_percentile(self, db):
        assert db.percentile("power", 50, 0.0, 600.0) == pytest.approx(4.5)

    def test_percentile_empty_window_is_nan(self, db):
        import math

        assert math.isnan(db.percentile("power", 50, 1e6, 2e6))


class TestPowerIntegration:
    def test_constant_power(self):
        db = TimeSeriesDatabase()
        for i in range(60):
            db.record("p", i * 60.0, 60.0)
        # 60 W held for one hour = 60 Wh.
        assert db.integrate_power_wh("p", 0.0, 3600.0) == pytest.approx(60.0)

    def test_step_power(self):
        db = TimeSeriesDatabase()
        db.record("p", 0.0, 120.0)
        db.record("p", 1800.0, 0.0)
        # 120 W for half an hour, then zero.
        assert db.integrate_power_wh("p", 0.0, 3600.0) == pytest.approx(60.0)

    def test_single_sample(self):
        db = TimeSeriesDatabase()
        db.record("p", 0.0, 60.0)
        assert db.integrate_power_wh("p", 0.0, 60.0) == pytest.approx(1.0)

    def test_empty_window(self):
        db = TimeSeriesDatabase()
        db.record("p", 0.0, 60.0)
        assert db.integrate_power_wh("p", 100.0, 50.0) == 0.0


class TestRowExport:
    def test_to_rows_aligns_series(self):
        db = TimeSeriesDatabase()
        db.record("a", 0.0, 1.0)
        db.record("a", 60.0, 2.0)
        db.record("b", 0.0, 10.0)
        rows = db.to_rows(["a", "b"])
        assert rows[0] == (0.0, 1.0, 10.0)
        assert rows[1] == (60.0, 2.0, 10.0)  # b holds its last value

    def test_to_rows_empty_names(self):
        assert TimeSeriesDatabase().to_rows([]) == []


class TestCachedArrays:
    def test_arrays_cached_between_appends(self):
        series = Series("s")
        series.append(0.0, 1.0)
        first = series.values()
        assert series.values() is first  # cached
        series.append(60.0, 2.0)
        second = series.values()
        assert second is not first  # invalidated by the append
        assert second.tolist() == [1.0, 2.0]

    def test_cached_arrays_are_read_only(self):
        series = Series("s")
        series.append(0.0, 1.0)
        with pytest.raises(ValueError):
            series.values()[0] = 99.0
        with pytest.raises(ValueError):
            series.times()[0] = 99.0

    def test_window_views_reflect_data(self):
        series = Series("s")
        for i in range(5):
            series.append(i * 60.0, float(i))
        times, values = series.window(60.0, 240.0)
        assert times.tolist() == [60.0, 120.0, 180.0]
        assert values.tolist() == [1.0, 2.0, 3.0]

    def test_series_handle_get_or_create(self):
        db = TimeSeriesDatabase()
        handle = db.series_handle("x")
        assert db.series_handle("x") is handle
        handle.append(0.0, 5.0)
        assert db.latest("x") == 5.0
