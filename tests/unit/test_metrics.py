"""Analysis metric helpers."""

import math

import pytest

from repro.analysis.metrics import (
    carbon_reduction_pct,
    energy_efficiency_per_joule,
    percentile,
    runtime_improvement_pct,
    slo_violation_fraction,
)


class TestRuntimeImprovement:
    def test_basic(self):
        assert runtime_improvement_pct(100.0, 60.0) == pytest.approx(40.0)

    def test_regression_is_negative(self):
        assert runtime_improvement_pct(100.0, 120.0) == pytest.approx(-20.0)

    def test_zero_baseline(self):
        assert runtime_improvement_pct(0.0, 10.0) == 0.0


class TestEnergyEfficiency:
    def test_work_per_joule(self):
        # 3600 units on 1 Wh (3600 J) = 1 unit/J.
        assert energy_efficiency_per_joule(3600.0, 1.0) == pytest.approx(1.0)

    def test_zero_energy(self):
        assert energy_efficiency_per_joule(10.0, 0.0) == 0.0


class TestCarbonReduction:
    def test_basic(self):
        assert carbon_reduction_pct(4.0, 3.0) == pytest.approx(25.0)

    def test_zero_baseline(self):
        assert carbon_reduction_pct(0.0, 1.0) == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))


class TestSloViolations:
    def test_fraction(self):
        assert slo_violation_fraction([10, 20, 70, 80], 60.0) == pytest.approx(0.5)

    def test_empty(self):
        assert slo_violation_fraction([], 60.0) == 0.0
