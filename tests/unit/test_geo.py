"""Geo-distributed coordination."""

import pytest

from repro.carbon.traces import CarbonTrace, constant_trace
from repro.core.errors import ConfigurationError, SimulationError
from repro.geo import GeoCoordinator, SharedWorkPool
from repro.sim.experiment import grid_environment


def two_sites(trace_a, trace_b):
    return {
        "east": grid_environment(trace=trace_a),
        "west": grid_environment(trace=trace_b),
    }


class TestSharedWorkPool:
    def test_draw_consumes(self):
        pool = SharedWorkPool(100.0)
        assert pool.draw(30.0) == 30.0
        assert pool.remaining_units == 70.0

    def test_draw_clamps_at_total(self):
        pool = SharedWorkPool(100.0)
        assert pool.draw(150.0) == 100.0
        assert pool.is_complete

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SharedWorkPool(100.0).draw(-1.0)

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            SharedWorkPool(0.0)


class TestCoordinator:
    def test_requires_two_sites(self):
        with pytest.raises(ConfigurationError):
            GeoCoordinator({"only": grid_environment(trace=constant_trace(100.0))})

    def test_run_requires_submit(self):
        sites = two_sites(constant_trace(100.0), constant_trace(200.0))
        coordinator = GeoCoordinator(sites)
        with pytest.raises(SimulationError):
            coordinator.run(10)

    def test_double_submit_rejected(self):
        sites = two_sites(constant_trace(100.0), constant_trace(200.0))
        coordinator = GeoCoordinator(sites)
        coordinator.submit(1000.0)
        with pytest.raises(SimulationError):
            coordinator.submit(1000.0)

    def test_runs_at_cleanest_site(self):
        sites = two_sites(constant_trace(100.0), constant_trace(300.0))
        coordinator = GeoCoordinator(sites, workers=4)
        coordinator.submit(4 * 60.0 * 10)  # ten ticks of work
        result = coordinator.run(100)
        assert result.completed
        assert result.work_by_site["east"] > 0
        assert result.work_by_site["west"] == 0.0
        assert result.carbon_by_site["west"] == 0.0
        assert result.migrations == 0

    def test_migrates_when_other_site_becomes_cleaner(self):
        # East clean for 1 h then dirty; west the mirror image.
        east = CarbonTrace([100.0] * 12 + [400.0] * 200)
        west = CarbonTrace([400.0] * 12 + [100.0] * 200)
        sites = two_sites(east, west)
        coordinator = GeoCoordinator(
            sites, workers=4, migration_delay_ticks=3
        )
        coordinator.submit(4 * 60.0 * 120)  # needs ~2 h of work
        result = coordinator.run(400)
        assert result.completed
        assert result.migrations >= 1
        assert result.work_by_site["east"] > 0
        assert result.work_by_site["west"] > 0

    def test_migration_pause_costs_time(self):
        east = CarbonTrace([100.0] * 12 + [400.0] * 500)
        west = CarbonTrace([400.0] * 12 + [100.0] * 500)
        work = 4 * 60.0 * 150  # 2.5 h of work: outlasts east's clean hour
        slow = GeoCoordinator(
            two_sites(east, west), workers=4, migration_delay_ticks=30
        )
        fast = GeoCoordinator(
            two_sites(east, west), workers=4, migration_delay_ticks=0
        )
        slow.submit(work)
        fast.submit(work)
        slow_result = slow.run(600)
        fast_result = fast.run(600)
        assert fast_result.completed and slow_result.completed
        assert fast_result.runtime_s < slow_result.runtime_s

    def test_hysteresis_prevents_flapping(self):
        # Sites within the switch threshold of one another: stay home.
        east = constant_trace(100.0, days=1)
        west = constant_trace(110.0, days=1)
        coordinator = GeoCoordinator(
            two_sites(east, west), workers=4, switch_threshold_g_per_kwh=20.0
        )
        coordinator.submit(4 * 60.0 * 30)
        result = coordinator.run(200)
        assert result.completed
        assert result.migrations == 0

    def test_shifting_cuts_carbon_vs_single_site(self):
        """The headline claim of geo-distribution (paper Section 3.2)."""
        east = CarbonTrace(([100.0] * 36 + [400.0] * 36) * 10)
        west = CarbonTrace(([400.0] * 36 + [100.0] * 36) * 10)
        work = 4 * 60.0 * 240

        geo = GeoCoordinator(
            two_sites(east, west), workers=4, migration_delay_ticks=2
        )
        geo.submit(work)
        geo_result = geo.run(2000)

        single = GeoCoordinator(
            two_sites(east, constant_trace(10000.0, days=2)),
            workers=4,
            switch_threshold_g_per_kwh=1e9,  # pinned to east
        )
        single.submit(work)
        single_result = single.run(2000)

        assert geo_result.completed and single_result.completed
        assert geo_result.total_carbon_g < single_result.total_carbon_g
