"""Application and BatchJob base behaviour."""

import pytest

from repro.core.api import connect
from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig
from repro.workloads.base import Application, BatchJob
from tests.conftest import make_ecovisor


class FixedRateJob(BatchJob):
    """One work unit per worker-second, no overheads."""

    def throughput_units_per_s(self, utils):
        return float(sum(utils))


def bind(app, workers=0):
    eco = make_ecovisor(solar_w=0.0)
    eco.register_app(app.name, ShareConfig())
    api = connect(eco, app.name)
    app.bind(api)
    if workers:
        api.scale_to(workers, cores=1)
    return eco, api


def drive(eco, app, ticks, served_fraction=1.0, clock=None):
    clock = clock or SimulationClock(60.0)
    for _ in range(ticks):
        tick = clock.current_tick()
        eco.begin_tick(tick)
        eco.invoke_app_ticks(tick)
        app.step(tick, tick.duration_s)
        eco.settle(tick)
        app.finish_tick(tick, tick.duration_s, served_fraction)
        clock.advance()
    return clock


class TestBinding:
    def test_unbound_api_access_raises(self):
        job = FixedRateJob("j", 100.0)
        with pytest.raises(RuntimeError):
            job.api

    def test_bind_sets_api(self):
        job = FixedRateJob("j", 100.0)
        bind(job)
        assert job.is_bound


class TestProgress:
    def test_progress_accumulates(self):
        job = FixedRateJob("j", 240.0)
        eco, _ = bind(job, workers=2)
        drive(eco, job, 1)
        # 2 workers x 60 s = 120 units.
        assert job.progress_units == pytest.approx(120.0)
        assert not job.is_complete

    def test_completion_and_timestamp(self):
        job = FixedRateJob("j", 240.0)
        eco, _ = bind(job, workers=2)
        drive(eco, job, 3)
        assert job.is_complete
        assert job.completion_time_s == pytest.approx(120.0)
        assert job.progress_fraction == 1.0

    def test_progress_clamped_at_total(self):
        job = FixedRateJob("j", 100.0)
        eco, _ = bind(job, workers=4)
        drive(eco, job, 5)
        assert job.progress_units == pytest.approx(100.0)

    def test_served_fraction_scales_progress(self):
        job = FixedRateJob("j", 1000.0)
        eco, _ = bind(job, workers=2)
        drive(eco, job, 1, served_fraction=0.5)
        assert job.progress_units == pytest.approx(60.0)

    def test_no_workers_counts_suspended(self):
        job = FixedRateJob("j", 100.0)
        eco, _ = bind(job, workers=0)
        drive(eco, job, 3)
        assert job.suspended_ticks == 3
        assert job.running_ticks == 0

    def test_complete_job_idles_containers(self):
        job = FixedRateJob("j", 60.0)
        eco, api = bind(job, workers=1)
        drive(eco, job, 2)
        assert job.is_complete
        container = api.list_containers()[0]
        assert container.demand_utilization == 0.0


class TestWarmup:
    def test_warmup_delays_progress(self):
        job = FixedRateJob("j", 1000.0, warmup_ticks_on_resume=2)
        eco, _ = bind(job, workers=1)
        drive(eco, job, 3)
        # Two warmup ticks produce nothing; the third produces 60.
        assert job.progress_units == pytest.approx(60.0)

    def test_warmup_reapplied_after_suspension(self):
        job = FixedRateJob("j", 1000.0, warmup_ticks_on_resume=1)
        eco, api = bind(job, workers=1)
        clock = drive(eco, job, 2)  # 1 warmup + 1 productive = 60 units
        api.scale_to(0, cores=1)
        drive(eco, job, 1, clock=clock)  # suspended
        api.scale_to(1, cores=1)
        drive(eco, job, 2, clock=clock)  # warmup again, then 60 more
        assert job.progress_units == pytest.approx(120.0)


class TestValidation:
    def test_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            FixedRateJob("j", 0.0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            FixedRateJob("j", 1.0, warmup_ticks_on_resume=-1)

    def test_summary_fields(self):
        job = FixedRateJob("j", 60.0)
        eco, _ = bind(job, workers=1)
        drive(eco, job, 1)
        summary = job.summary()
        assert summary["progress_fraction"] == 1.0
        assert summary["running_ticks"] == 1.0


class TestWorkerRoleFiltering:
    def test_non_worker_containers_excluded_from_throughput(self):
        job = FixedRateJob("j", 1000.0)
        eco, api = bind(job, workers=1)
        api.launch_container(1, role="aux")
        drive(eco, job, 1)
        # Only the worker contributes.
        assert job.progress_units == pytest.approx(60.0)

    def test_services_never_complete(self):
        class Service(Application):
            def step(self, tick, duration_s):
                pass

            def finish_tick(self, tick, duration_s, served_fraction):
                pass

        service = Service("s")
        assert not service.is_complete
