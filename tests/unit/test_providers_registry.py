"""The bundled-dataset registry: checksums, provenance, resolvers."""

import numpy as np
import pytest

from repro.carbon.traces import CarbonTrace
from repro.core.errors import (
    DatasetIntegrityError,
    TraceError,
    UnknownTraceNameError,
)
from repro.energy.solar import TabularSolarTrace
from repro.energy.wind import WindCapacityTrace
from repro.market.prices import PriceTrace
from repro.providers import registry
from repro.providers.registry import (
    DATASETS,
    clear_sample_cache,
    dataset_provenance,
    descriptor,
    generation_datasets,
    load_samples,
    resolve_carbon_trace,
    resolve_generation,
    resolve_price_trace,
    validate_all,
)


class TestDescriptors:
    def test_registry_covers_the_required_dataset_kinds(self):
        kinds = {d.kind for d in DATASETS.values()}
        assert kinds == {"carbon", "price", "wind-cf", "solar-cf"}
        carbon = [d for d in DATASETS.values() if d.kind == "carbon"]
        prices = [d for d in DATASETS.values() if d.kind == "price"]
        assert len(carbon) >= 3  # at least three regional carbon traces
        assert len(prices) >= 2  # day-ahead and realtime

    def test_every_descriptor_pins_a_full_sha256(self):
        for desc in DATASETS.values():
            assert len(desc.sha256) == 64
            assert desc.path.exists(), desc.name

    def test_unknown_name_raises_value_error_listing_datasets(self):
        with pytest.raises(UnknownTraceNameError) as excinfo:
            descriptor("nope")
        assert isinstance(excinfo.value, ValueError)
        assert "caiso-2022" in str(excinfo.value)


class TestLoadSamples:
    def test_samples_are_read_only_and_cached(self):
        clear_sample_cache()
        first = load_samples("caiso-2022")
        second = load_samples("caiso-2022")
        assert first is second  # cache hit, same array
        with pytest.raises(ValueError):
            first[0] = 999.0

    def test_validate_all_passes_on_pristine_files(self):
        results = validate_all()
        assert sorted(results) == sorted(DATASETS)
        for name, sha in results.items():
            assert sha == DATASETS[name].sha256


class TestChecksumRejection:
    @pytest.fixture
    def tampered_data_dir(self, tmp_path, monkeypatch):
        """A data dir whose caiso-2022 file parses fine but has one
        altered value, so only the checksum can catch the drift."""
        for desc in DATASETS.values():
            tmp_path.joinpath(desc.filename).write_bytes(
                desc.path.read_bytes()
            )
        target = tmp_path / "caiso-2022.csv"
        lines = target.read_text().splitlines()
        for i, line in enumerate(lines):
            if line and not line.startswith(("#", "time_s")):
                time_field, value = line.split(",", 1)
                lines[i] = f"{time_field},{float(value) + 1.0!r}"
                break
        target.write_text("\n".join(lines) + "\n")
        monkeypatch.setattr(registry, "DATA_DIR", tmp_path)
        clear_sample_cache()
        yield tmp_path
        clear_sample_cache()

    def test_tampered_file_is_rejected(self, tampered_data_dir):
        with pytest.raises(DatasetIntegrityError, match="checksum"):
            load_samples("caiso-2022")

    def test_tampered_file_increments_failure_counter(self, tampered_data_dir):
        from repro.providers.registry import _DATASET_CHECKSUM_FAILURES

        counter = _DATASET_CHECKSUM_FAILURES.labels(dataset="caiso-2022")
        before = counter.value
        with pytest.raises(DatasetIntegrityError):
            load_samples("caiso-2022")
        assert counter.value == before + 1

    def test_verify_false_skips_the_checksum(self, tampered_data_dir):
        samples = load_samples("caiso-2022", verify=False)
        assert len(samples) > 0

    def test_validate_all_catches_the_drift(self, tampered_data_dir):
        with pytest.raises(DatasetIntegrityError):
            validate_all()

    def test_noncontiguous_timestamps_rejected(self, tampered_data_dir):
        target = tampered_data_dir / "ontario-2022.csv"
        text = target.read_text().replace("\n300,", "\n600,", 1)
        target.write_text(text)
        with pytest.raises(DatasetIntegrityError, match="non-contiguous"):
            load_samples("ontario-2022", verify=False)


class TestProvenance:
    def test_direct_dataset_param(self):
        prov = dataset_provenance({"region": "caiso-2022", "seed": 2023})
        assert prov == {
            "region": {
                "dataset": "caiso-2022",
                "sha256": DATASETS["caiso-2022"].sha256,
            }
        }

    def test_generation_spec_expands_to_aliased_datasets(self):
        prov = dataset_provenance({"generation": "wind+solar"})
        assert prov["generation.wind-cf-2022"]["dataset"] == "wind-cf-2022"
        assert prov["generation.solar-cf-2022"]["dataset"] == "solar-cf-2022"

    def test_non_dataset_values_are_ignored(self):
        assert dataset_provenance({"policy": "agnostic", "days": 2}) == {}

    def test_generation_datasets_helper(self):
        assert generation_datasets("solar") == ("solar-cf-2022",)
        assert set(generation_datasets("wind+solar")) == {
            "wind-cf-2022",
            "solar-cf-2022",
        }


class TestResolvers:
    def test_carbon_dataset_resolves_to_stock_trace(self):
        trace = resolve_carbon_trace("caiso-2022")
        assert type(trace) is CarbonTrace  # tracecache fast-path contract
        assert trace.region == "caiso"
        np.testing.assert_array_equal(
            np.asarray(trace.samples), load_samples("caiso-2022")
        )

    def test_carbon_falls_through_to_synthetic_regions(self):
        trace = resolve_carbon_trace("ontario", days=1, seed=7)
        assert type(trace) is CarbonTrace
        assert trace.region == "ontario"

    def test_carbon_unknown_lists_both_namespaces(self):
        with pytest.raises(UnknownTraceNameError) as excinfo:
            resolve_carbon_trace("nope")
        message = str(excinfo.value)
        assert "caiso-2022" in message  # datasets
        assert "ontario" in message  # synthetic regions

    def test_carbon_rejects_wrong_kind(self):
        with pytest.raises(UnknownTraceNameError):
            resolve_carbon_trace("caiso-dayahead-2022")

    def test_price_dataset_and_regime(self):
        dataset = resolve_price_trace("caiso-dayahead-2022")
        assert type(dataset) is PriceTrace
        assert dataset.regime == "caiso-dayahead-2022"
        regime = resolve_price_trace("tou", days=1)
        assert regime.regime == "tou"
        with pytest.raises(UnknownTraceNameError):
            resolve_price_trace("wind-cf-2022")

    def test_generation_solar_only(self):
        solar, wind = resolve_generation("solar")
        assert type(solar) is TabularSolarTrace
        assert wind is None

    def test_generation_hybrid(self):
        solar, wind = resolve_generation("wind+solar")
        assert type(solar) is TabularSolarTrace
        assert type(wind) is WindCapacityTrace
        # solar datasets are 5-minute; the solar trace is per-minute, so
        # each dataset sample is held for its five minutes.
        samples = load_samples("solar-cf-2022")
        assert solar.irradiance_at(0.0) == samples[0]
        assert solar.irradiance_at(299.0) == samples[0]
        assert solar.irradiance_at(300.0) == samples[1]
        np.testing.assert_array_equal(
            np.asarray(wind.samples), load_samples("wind-cf-2022")
        )

    def test_generation_explicit_dataset_names(self):
        solar, wind = resolve_generation("solar-cf-2022+wind-cf-2022")
        assert solar is not None and wind is not None

    def test_generation_unknown_component(self):
        with pytest.raises(UnknownTraceNameError) as excinfo:
            resolve_generation("coal")
        assert isinstance(excinfo.value, TraceError)
        assert "wind" in str(excinfo.value)
