"""The narrow Table 1 API facade."""

import pytest

from repro.core.api import connect
from repro.core.config import ShareConfig
from repro.core.errors import (
    AuthorizationError,
    ConfigurationError,
    UnknownApplicationError,
)
from tests.conftest import make_ecovisor, run_ticks


@pytest.fixture
def bound():
    eco = make_ecovisor(solar_w=10.0, carbon_g_per_kwh=250.0)
    eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    eco.register_app("b", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    return eco, connect(eco, "a"), connect(eco, "b")


class TestConnect:
    def test_connect_unknown_app(self):
        eco = make_ecovisor()
        with pytest.raises(UnknownApplicationError):
            connect(eco, "ghost")


class TestGetters:
    def test_solar_and_carbon(self, bound):
        eco, api, _ = bound
        run_ticks(eco, 1)
        assert api.get_solar_power() == pytest.approx(5.0)  # half of 10 W
        assert api.get_grid_carbon() == pytest.approx(250.0)

    def test_battery_getters(self, bound):
        eco, api, _ = bound
        assert api.get_battery_charge_level() > 0
        assert api.get_battery_capacity() > api.get_battery_charge_level()
        assert api.get_battery_discharge_rate() == 0.0

    def test_grid_power_after_settlement(self, bound):
        eco, api, _ = bound
        container = api.launch_container(4)

        def demand(tick):
            container.set_demand_utilization(1.0)

        run_ticks(eco, 2, demand)
        assert api.get_grid_power() == pytest.approx(0.0)  # solar covers 5 W

    def test_container_getters(self, bound):
        eco, api, _ = bound
        c = api.launch_container(1)
        api.set_container_powercap(c.id, 0.9)
        assert api.get_container_powercap(c.id) == pytest.approx(0.9)
        c.set_demand_utilization(1.0)
        assert api.get_container_power(c.id) == pytest.approx(0.9)


class TestSetters:
    def test_battery_setters(self, bound):
        _, api, _ = bound
        api.set_battery_charge_rate(3.0)
        api.set_battery_max_discharge(8.0)
        ves = api.ecovisor.ves_for("a")
        assert ves.battery.charge_rate_w == pytest.approx(3.0)
        assert ves.battery.max_discharge_w == pytest.approx(8.0)

    def test_battery_setters_require_battery(self):
        eco = make_ecovisor()
        eco.register_app("nobatt", ShareConfig())
        api = connect(eco, "nobatt")
        with pytest.raises(ConfigurationError):
            api.set_battery_charge_rate(1.0)
        assert api.get_battery_charge_level() == 0.0
        assert api.get_battery_discharge_rate() == 0.0

    def test_powercap_clear(self, bound):
        _, api, _ = bound
        c = api.launch_container(1)
        api.set_container_powercap(c.id, 0.5)
        api.set_container_powercap(c.id, None)
        assert api.get_container_powercap(c.id) is None


class TestAuthorization:
    def test_cross_app_denied(self, bound):
        _, api_a, api_b = bound
        c = api_a.launch_container(1)
        with pytest.raises(AuthorizationError):
            api_b.set_container_powercap(c.id, 1.0)
        with pytest.raises(AuthorizationError):
            api_b.get_container_power(c.id)
        with pytest.raises(AuthorizationError):
            api_b.stop_container(c.id)


class TestResourceManagement:
    def test_scale_to(self, bound):
        _, api, _ = bound
        api.scale_to(3, cores=1)
        assert len(api.list_containers()) == 3
        api.scale_to(1, cores=1)
        assert len(api.list_containers()) == 1

    def test_roles_preserved_by_scaling(self, bound):
        _, api, _ = bound
        coordinator = api.launch_container(1, role="coordinator")
        api.scale_to(2, cores=1)  # workers
        api.scale_to(0, cores=1)
        remaining = api.list_containers()
        assert [c.id for c in remaining] == [coordinator.id]

    def test_vertical_scaling(self, bound):
        _, api, _ = bound
        c = api.launch_container(1)
        api.set_container_cores(c.id, 2)
        assert c.cores == 2


class TestTickRegistration:
    def test_tick_callback_runs(self, bound):
        eco, api, _ = bound
        calls = []
        api.register_tick(calls.append)
        run_ticks(eco, 4)
        assert len(calls) == 4
        assert calls[0].index == 0
