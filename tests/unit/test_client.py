"""The typed Python SDK over the Router transport."""

import pytest

from repro.client import EcovisorAdminClient, EcovisorClient, TransportError
from repro.client.sdk import _raise_for_status
from repro.core.config import ShareConfig
from repro.core.errors import (
    AuthorizationError,
    ConfigurationError,
    UnknownApplicationError,
    UnknownContainerError,
)
from repro.core.state import EnergyState
from repro.rest.server import EcovisorRestServer
from tests.conftest import make_ecovisor, run_ticks


@pytest.fixture
def server():
    eco = make_ecovisor(solar_w=10.0, carbon_g_per_kwh=250.0)
    eco.register_app("a", ShareConfig(solar_fraction=0.5, battery_fraction=0.5))
    run_ticks(eco, 1)
    return EcovisorRestServer(eco)


@pytest.fixture
def client(server):
    return EcovisorClient(server, "a")


@pytest.fixture
def admin(server):
    return EcovisorAdminClient(server)


class TestEcovisorClient:
    def test_state_is_a_real_energy_state(self, client):
        state = client.state()
        assert isinstance(state, EnergyState)
        assert state.app_name == "a"
        assert state.solar_power_w == pytest.approx(5.0)
        assert state.battery is not None
        assert state.settled is True

    def test_getters(self, client):
        assert client.get_solar_power() == pytest.approx(5.0)
        assert client.get_grid_carbon() == pytest.approx(250.0)
        assert client.get_grid_price() == 0.0
        assert client.get_energy_cost() == 0.0
        assert client.get_battery_capacity() > 0.0

    def test_container_lifecycle(self, client):
        worker = client.launch_container(cores=2)
        assert worker.cores == 2.0
        listing = client.list_containers()
        assert [c.id for c in listing] == [worker.id]
        client.set_container_powercap(worker.id, 1.5)
        assert client.get_container_powercap(worker.id) == pytest.approx(1.5)
        client.set_container_cores(worker.id, 1.0)
        client.stop_container(worker.id)
        assert client.list_containers() == []

    def test_scale_to(self, client):
        ids = client.scale_to(3, cores=1.0)
        assert len(ids) == 3

    def test_battery_setters(self, client):
        client.set_battery_charge_rate(5.0)
        client.set_battery_max_discharge(8.0)

    def test_events_feed(self, client):
        page = client.events(cursor=0)
        assert page.app_name == "a"
        assert type(page.events[0]).__name__ == "AppAdmittedEvent"
        assert list(client.iter_events()) == list(page.events)

    def test_unknown_app_maps_to_exception(self, server):
        ghost = EcovisorClient(server, "ghost")
        with pytest.raises(UnknownApplicationError):
            ghost.state()

    def test_unknown_container_maps_to_exception(self, client):
        with pytest.raises(UnknownContainerError):
            client.get_container_power("nope")

    def test_cross_app_access_maps_to_authorization_error(self, server, client):
        worker = client.launch_container(cores=1)
        admin = EcovisorAdminClient(server)
        admin.admit_app("b")
        other = EcovisorClient(server, "b")
        with pytest.raises(AuthorizationError):
            other.set_container_powercap(worker.id, 1.0)

    def test_bad_input_maps_to_configuration_error(self, client):
        with pytest.raises(ConfigurationError):
            client.set_battery_charge_rate(-5.0)


class TestAdminClient:
    def test_list_and_get(self, admin):
        apps = admin.list_apps()
        assert [a.name for a in apps] == ["a"]
        assert admin.get_app("a").solar_fraction == 0.5

    def test_admit_set_share_evict(self, admin, server):
        share = admin.admit_app("b", solar_fraction=0.2, battery_fraction=0.2)
        assert share.name == "b"
        effective_at = admin.set_share("b", solar_fraction=0.3)
        assert effective_at == server._ecovisor.current_tick_index + 1
        account = admin.evict_app("b")
        assert account["finalized"] is True
        assert "b" not in [a.name for a in admin.list_apps()]

    def test_admit_oversubscription_raises(self, admin):
        with pytest.raises(ConfigurationError):
            admin.admit_app("b", solar_fraction=0.6)

    def test_evict_unknown_raises(self, admin):
        with pytest.raises(UnknownApplicationError):
            admin.evict_app("ghost")


class TestErrorMapping:
    def test_unmappable_status_is_transport_error(self):
        with pytest.raises(TransportError) as err:
            _raise_for_status(500, "boom")
        assert err.value.status == 500

    def test_404_splits_container_vs_application(self):
        with pytest.raises(UnknownContainerError):
            _raise_for_status(404, "unknown container: 'c-1'")
        with pytest.raises(UnknownApplicationError):
            _raise_for_status(404, "unknown application: 'ghost'")

    def test_app_named_container_maps_to_application_error(self, server):
        ghost = EcovisorClient(server, "my-container-app")
        with pytest.raises(UnknownApplicationError):
            ghost.state()

    def test_event_page_is_the_core_journal_page(self, client):
        from repro.core.journal import JournalPage

        assert isinstance(client.events(), JournalPage)
