"""Server hosting and measurement."""

import pytest

from repro.cluster.container import Container
from repro.cluster.server import Server
from repro.core.config import ServerConfig
from repro.core.errors import InsufficientResourcesError


@pytest.fixture
def server() -> Server:
    return Server("s0", ServerConfig())


class TestPlacement:
    def test_place_and_host(self, server):
        c = Container("app", 2)
        server.place(c)
        assert server.hosts(c.id)
        assert c.server_name == "s0"
        assert server.allocated_cores == 2
        assert server.free_cores == 2

    def test_overcommit_rejected(self, server):
        server.place(Container("app", 3))
        with pytest.raises(InsufficientResourcesError):
            server.place(Container("app", 2))

    def test_fractional_cores(self, server):
        server.place(Container("app", 0.5))
        assert server.free_cores == pytest.approx(3.5)

    def test_evict_releases_cores(self, server):
        c = Container("app", 2)
        server.place(c)
        server.evict(c.id)
        assert server.free_cores == 4
        assert c.server_name is None

    def test_instance_count_excludes_stopped(self, server):
        a, b = Container("app", 1), Container("app", 1)
        server.place(a)
        server.place(b)
        b.stop()
        assert server.instance_count == 1


class TestGrowth:
    def test_can_grow_within_capacity(self, server):
        c = Container("app", 1)
        server.place(c)
        assert server.can_grow(c, 4)

    def test_cannot_grow_beyond_capacity(self, server):
        c = Container("app", 2)
        server.place(c)
        server.place(Container("app", 1))
        assert not server.can_grow(c, 4)


class TestMeasurement:
    def test_measured_power_sums_containers(self, server):
        a, b = Container("app", 1), Container("app", 1)
        server.place(a)
        server.place(b)
        a.record_tick(1.0, 0.0, 0.0)
        b.record_tick(0.5, 0.0, 0.0)
        assert server.measured_power_w() == pytest.approx(1.5)

    def test_baseline_idle_power(self, server):
        server.place(Container("app", 2))
        # Half the cores are free: half the idle power is baseline.
        assert server.baseline_idle_power_w() == pytest.approx(1.35 / 2)

    def test_empty_server_baseline_is_full_idle(self, server):
        assert server.baseline_idle_power_w() == pytest.approx(1.35)
