"""Synthetic carbon-intensity traces (paper Figure 1 calibration)."""

import numpy as np
import pytest

from repro.carbon.traces import (
    REGION_PROFILES,
    CarbonTrace,
    SAMPLE_INTERVAL_S,
    constant_trace,
    make_region_trace,
    synthesize_trace,
)
from repro.core.errors import TraceError


class TestRegionCalibration:
    """The Figure 1 orderings: Ontario < Uruguay < California."""

    def test_region_mean_ordering(self):
        ontario = make_region_trace("ontario", days=4)
        uruguay = make_region_trace("uruguay", days=4)
        caiso = make_region_trace("caiso", days=4)
        assert ontario.mean() < uruguay.mean() < caiso.mean()

    def test_caiso_has_highest_variability(self):
        traces = {r: make_region_trace(r, days=4) for r in REGION_PROFILES}
        stds = {r: float(np.std(t.samples)) for r, t in traces.items()}
        assert stds["caiso"] > stds["uruguay"] > stds["ontario"]

    def test_bounds_respected(self):
        for region, profile in REGION_PROFILES.items():
            trace = make_region_trace(region, days=4)
            assert trace.samples.min() >= profile.floor
            assert trace.samples.max() <= profile.ceiling

    def test_caiso_duck_curve_dips_midday(self):
        """Midday intensity sits below the evening ramp on average."""
        trace = make_region_trace("caiso", days=10)
        hours = (np.arange(len(trace.samples)) * SAMPLE_INTERVAL_S / 3600.0) % 24
        midday = trace.samples[(hours >= 11) & (hours <= 15)].mean()
        evening = trace.samples[(hours >= 18) & (hours <= 21)].mean()
        assert midday < evening

    def test_unknown_region_rejected(self):
        with pytest.raises(TraceError):
            make_region_trace("atlantis")

    def test_deterministic(self):
        a = make_region_trace("caiso", days=2, seed=11)
        b = make_region_trace("caiso", days=2, seed=11)
        assert np.array_equal(a.samples, b.samples)


class TestCarbonTraceQueries:
    def test_intensity_lookup_is_stepwise(self):
        trace = CarbonTrace([100.0, 200.0, 300.0])
        assert trace.intensity_at(0.0) == 100.0
        assert trace.intensity_at(SAMPLE_INTERVAL_S - 1) == 100.0
        assert trace.intensity_at(SAMPLE_INTERVAL_S) == 200.0

    def test_clamps_beyond_end(self):
        trace = CarbonTrace([100.0, 200.0])
        assert trace.intensity_at(1e9) == 200.0

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            CarbonTrace([1.0]).intensity_at(-1.0)

    def test_negative_samples_rejected(self):
        with pytest.raises(TraceError):
            CarbonTrace([-5.0])

    def test_percentile(self):
        trace = CarbonTrace(list(range(101)))
        assert trace.percentile(30) == pytest.approx(30.0)

    def test_window_bounds(self):
        trace = CarbonTrace([10.0, 20.0, 30.0, 40.0])
        window = trace.window(SAMPLE_INTERVAL_S, 3 * SAMPLE_INTERVAL_S)
        assert list(window) == [20.0, 30.0]

    def test_empty_window_rejected(self):
        with pytest.raises(TraceError):
            CarbonTrace([1.0, 2.0]).window(100.0, 100.0)

    def test_mean(self):
        assert CarbonTrace([10.0, 20.0, 30.0]).mean() == pytest.approx(20.0)

    def test_duration(self):
        assert CarbonTrace([1.0] * 12).duration_s == pytest.approx(3600.0)


class TestRolled:
    def test_roll_shifts_origin(self):
        trace = CarbonTrace([10.0, 20.0, 30.0, 40.0])
        rolled = trace.rolled(2 * SAMPLE_INTERVAL_S)
        assert rolled.intensity_at(0.0) == 30.0
        assert rolled.intensity_at(2 * SAMPLE_INTERVAL_S) == 10.0

    def test_roll_preserves_distribution(self):
        trace = make_region_trace("caiso", days=2)
        rolled = trace.rolled(7 * 3600.0)
        assert rolled.mean() == pytest.approx(trace.mean())
        assert sorted(rolled.samples) == pytest.approx(sorted(trace.samples))

    def test_roll_wraps(self):
        trace = CarbonTrace([10.0, 20.0])
        rolled = trace.rolled(trace.duration_s)  # full wrap = identity
        assert list(rolled.samples) == [10.0, 20.0]

    def test_negative_offset_rejected(self):
        with pytest.raises(TraceError):
            CarbonTrace([1.0]).rolled(-1.0)


class TestConstantTrace:
    def test_flat(self):
        trace = constant_trace(123.0, days=1)
        assert trace.intensity_at(0.0) == 123.0
        assert trace.intensity_at(43200.0) == 123.0

    def test_rejects_negative(self):
        with pytest.raises(TraceError):
            constant_trace(-1.0)


class TestSynthesize:
    def test_rejects_zero_days(self):
        profile = REGION_PROFILES["ontario"]
        with pytest.raises(TraceError):
            synthesize_trace(profile, days=0)
