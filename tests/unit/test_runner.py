"""Parallel experiment runner: determinism, failure isolation, provenance."""

import json

import pytest

from repro.core.errors import UnknownScenarioError
from repro.sim import scenarios
from repro.sim.runner import (
    execute_spec,
    run_specs,
    run_sweep,
)

FAST_SMOKE = {"ticks": 15}


class TestSerialExecution:
    def test_smoke_sweep_succeeds(self):
        sweep = run_sweep("smoke", overrides=FAST_SMOKE, jobs=1)
        assert sweep.ok
        assert len(sweep) == 2  # workers axis
        for row in sweep.table():
            assert row["status"] == "ok"
            assert row["progress_units"] > 0
            assert row["energy_wh"] > 0

    def test_rows_in_matrix_order(self):
        sweep = run_sweep("smoke", overrides=FAST_SMOKE, jobs=1)
        assert [r.spec.index for r in sweep.results] == [0, 1]
        workers = [row["workers"] for row in sweep.table()]
        assert workers == sorted(workers)

    def test_unknown_scenario_raises(self):
        with pytest.raises(UnknownScenarioError):
            run_sweep("no-such-scenario")

    def test_execute_spec_provenance(self):
        spec = scenarios.expand("smoke", FAST_SMOKE)[0]
        result = execute_spec(spec)
        assert result.ok
        assert result.wall_time_s >= 0.0
        assert result.worker_pid > 0
        assert result.spec.config_hash == spec.config_hash

    def test_table_excludes_volatile_provenance(self):
        sweep = run_sweep("smoke", overrides=FAST_SMOKE, jobs=1)
        for row in sweep.table():
            assert "wall_time_s" not in row
            assert "worker_pid" not in row
            assert len(row["config_hash"]) == 12

    def test_locally_registered_scenario_runs(self):
        name = "_test_runner_local"
        scenarios.unregister(name)

        @scenarios.register(name, defaults={"x": 2}, sweep={"y": (1, 2, 3)})
        def _run(params):
            return {"product": params["x"] * params["y"]}

        try:
            sweep = run_specs(scenarios.expand(name), jobs=1)
            assert [row["product"] for row in sweep.table()] == [2, 4, 6]
        finally:
            scenarios.unregister(name)


class TestParallelDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = run_sweep("smoke", overrides=FAST_SMOKE, jobs=1)
        parallel = run_sweep("smoke", overrides=FAST_SMOKE, jobs=2)
        assert parallel.jobs == 2
        assert serial.metrics_json() == parallel.metrics_json()

    def test_fleet_family_parallel_matches_serial(self):
        # The fleet scenarios seed every RNG from config_digest of the
        # spec parameters, so worker processes rebuild bit-identical
        # fleets; the sweep table must be byte-identical serial vs
        # parallel (two seeds -> a two-spec matrix).
        overrides = {"apps": 8, "ticks": 15, "seed": [2023, 7]}
        serial = run_sweep("fleet_small", overrides=overrides, jobs=1)
        parallel = run_sweep("fleet_small", overrides=overrides, jobs=2)
        assert serial.ok and parallel.ok
        assert parallel.jobs == 2
        assert serial.metrics_json() == parallel.metrics_json()
        for row in serial.table():
            assert row["apps"] == 8.0
            assert row["ticks_executed"] == 15.0
            assert row["energy_wh"] > 0.0

    def test_fleet_churn_parallel_matches_serial(self):
        # The churn scenario additionally seeds its Poisson admit/evict
        # schedule from config_digest of the parameters, so the whole
        # lifecycle (admissions, rebalances, evictions, finalized
        # accounts) must replay byte-identically across workers.
        overrides = {
            "apps": 8,
            "ticks": 25,
            "admit_rate": 0.6,
            "evict_rate": 0.5,
            "seed": [2023, 7],
        }
        serial = run_sweep("fleet_churn", overrides=overrides, jobs=1)
        parallel = run_sweep("fleet_churn", overrides=overrides, jobs=2)
        assert serial.ok and parallel.ok
        assert parallel.jobs == 2
        assert serial.metrics_json() == parallel.metrics_json()
        for row in serial.table():
            assert row["ticks_executed"] == 25.0
            assert row["admitted"] > 0.0
            assert row["energy_wh"] > 0.0

    def test_metrics_json_is_canonical(self):
        sweep = run_sweep("smoke", overrides=FAST_SMOKE, jobs=1)
        assert json.loads(sweep.metrics_json()) == json.loads(
            json.dumps(sweep.table())
        )


class TestFailureIsolation:
    def test_crashing_scenario_does_not_kill_the_sweep(self):
        sweep = run_sweep(
            "smoke", overrides={**FAST_SMOKE, "fail": [0, 1]}, jobs=2
        )
        assert len(sweep) == 4  # fail(2) x workers(2)
        assert not sweep.ok
        failed = sweep.failures()
        assert len(failed) == 2
        for result in failed:
            assert result.spec.params["fail"] == 1
            assert "injected smoke-scenario failure" in result.error
            assert result.metrics == {}
        assert len(sweep.rows_ok()) == 2
        for row in sweep.rows_ok():
            assert row["progress_units"] > 0

    def test_failed_rows_keep_matrix_position(self):
        sweep = run_sweep(
            "smoke", overrides={**FAST_SMOKE, "fail": [1, 0]}, jobs=2
        )
        # Axis order: workers (registered) varies slowest, fail fastest.
        statuses = [row["status"] for row in sweep.table()]
        assert statuses == ["error", "ok", "error", "ok"]
