"""Unit conversions: the foundation everything else computes with."""

import math

import pytest

from repro.core import units


class TestPowerConversions:
    def test_watts_to_kilowatts(self):
        assert units.watts_to_kilowatts(1500.0) == 1.5

    def test_kilowatts_to_watts(self):
        assert units.kilowatts_to_watts(2.5) == 2500.0

    def test_roundtrip(self):
        assert units.kilowatts_to_watts(units.watts_to_kilowatts(123.4)) == pytest.approx(123.4)


class TestEnergyConversions:
    def test_wh_to_kwh(self):
        assert units.wh_to_kwh(500.0) == 0.5

    def test_kwh_to_wh(self):
        assert units.kwh_to_wh(1.2) == 1200.0

    def test_wh_to_joules(self):
        assert units.wh_to_joules(1.0) == 3600.0

    def test_joules_to_wh(self):
        assert units.joules_to_wh(7200.0) == 2.0


class TestTimeConversions:
    def test_seconds_to_hours(self):
        assert units.seconds_to_hours(5400.0) == 1.5

    def test_hours_to_seconds(self):
        assert units.hours_to_seconds(0.5) == 1800.0


class TestEnergyAndPower:
    def test_energy_for_one_hour(self):
        assert units.energy_wh(100.0, 3600.0) == pytest.approx(100.0)

    def test_energy_for_one_minute(self):
        assert units.energy_wh(60.0, 60.0) == pytest.approx(1.0)

    def test_power_from_energy(self):
        assert units.power_w(5.0, 1800.0) == pytest.approx(10.0)

    def test_power_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            units.power_w(5.0, 0.0)

    def test_energy_power_roundtrip(self):
        energy = units.energy_wh(42.0, 600.0)
        assert units.power_w(energy, 600.0) == pytest.approx(42.0)


class TestCarbonMath:
    def test_carbon_grams_basic(self):
        # 1 kWh at 200 g/kWh emits 200 g.
        assert units.carbon_grams(1000.0, 200.0) == pytest.approx(200.0)

    def test_carbon_grams_zero_intensity(self):
        assert units.carbon_grams(1000.0, 0.0) == 0.0

    def test_carbon_rate_basic(self):
        # 1 kW at 360 g/kWh = 360 g/h = 0.1 g/s = 100 mg/s.
        assert units.carbon_rate_mg_per_s(1000.0, 360.0) == pytest.approx(100.0)

    def test_carbon_rate_zero_power(self):
        assert units.carbon_rate_mg_per_s(0.0, 300.0) == 0.0

    def test_power_for_carbon_rate_inverts_rate(self):
        power = 750.0
        intensity = 240.0
        rate = units.carbon_rate_mg_per_s(power, intensity)
        assert units.power_for_carbon_rate(rate, intensity) == pytest.approx(power)

    def test_power_for_carbon_rate_carbon_free_grid(self):
        assert units.power_for_carbon_rate(10.0, 0.0) == math.inf


class TestClamp:
    def test_clamp_inside(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_below(self):
        assert units.clamp(-1.0, 0.0, 1.0) == 0.0

    def test_clamp_above(self):
        assert units.clamp(2.0, 0.0, 1.0) == 1.0

    def test_clamp_empty_interval(self):
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)


class TestFormatDuration:
    def test_seconds_only(self):
        assert units.format_duration(42) == "42s"

    def test_minutes_and_seconds(self):
        assert units.format_duration(90) == "1m 30s"

    def test_hours(self):
        assert units.format_duration(3660) == "1h 1m"

    def test_days(self):
        assert units.format_duration(90000) == "1d 1h"

    def test_zero(self):
        assert units.format_duration(0) == "0s"
