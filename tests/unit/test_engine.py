"""Simulation engine orchestration."""

import pytest

from repro.core.clock import SimulationClock
from repro.core.config import ShareConfig
from repro.core.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.workloads.base import Application, BatchJob
from tests.conftest import make_ecovisor


class CountingService(Application):
    """Records the engine's call ordering."""

    def __init__(self, name="svc"):
        super().__init__(name)
        self.calls = []

    def step(self, tick, duration_s):
        self.calls.append(("step", tick.index))

    def finish_tick(self, tick, duration_s, served_fraction):
        self.calls.append(("finish", tick.index, served_fraction))


class TinyJob(BatchJob):
    def __init__(self, name="job", work=120.0):
        super().__init__(name, work)

    def throughput_units_per_s(self, utils):
        return float(sum(utils))


class TestRun:
    def test_runs_requested_ticks(self):
        eco = make_ecovisor()
        engine = SimulationEngine(eco, SimulationClock(60.0))
        app = CountingService()
        engine.add_application(app, ShareConfig())
        executed = engine.run(5)
        assert executed == 5
        assert engine.clock.tick_index == 5

    def test_step_before_finish_each_tick(self):
        eco = make_ecovisor()
        engine = SimulationEngine(eco, SimulationClock(60.0))
        app = CountingService()
        engine.add_application(app, ShareConfig())
        engine.run(2)
        kinds = [c[0] for c in app.calls]
        assert kinds == ["step", "finish", "step", "finish"]

    def test_rejects_nonpositive_ticks(self):
        eco = make_ecovisor()
        engine = SimulationEngine(eco)
        with pytest.raises(SimulationError):
            engine.run(0)

    def test_default_clock_uses_ecovisor_interval(self):
        eco = make_ecovisor()
        engine = SimulationEngine(eco)
        assert engine.clock.tick_interval_s == eco.config.tick_interval_s


class TestEarlyStop:
    def test_stops_when_batch_completes(self):
        eco = make_ecovisor(solar_w=0.0)
        engine = SimulationEngine(eco, SimulationClock(60.0))
        job = TinyJob(work=120.0)
        api = engine.add_application(job, ShareConfig())
        api.scale_to(2, cores=1)
        executed = engine.run(100, stop_when_batch_complete=True)
        assert job.is_complete
        assert executed < 100

    def test_services_do_not_trigger_early_stop(self):
        eco = make_ecovisor()
        engine = SimulationEngine(eco, SimulationClock(60.0))
        engine.add_application(CountingService(), ShareConfig())
        executed = engine.run(5, stop_when_batch_complete=True)
        assert executed == 5

    def test_mixed_apps_wait_for_batch(self):
        eco = make_ecovisor(solar_w=0.0, num_servers=6)
        engine = SimulationEngine(eco, SimulationClock(60.0))
        job = TinyJob(work=240.0)
        svc = CountingService()
        api = engine.add_application(job, ShareConfig())
        engine.add_application(svc, ShareConfig())
        api.scale_to(2, cores=1)
        executed = engine.run(100, stop_when_batch_complete=True)
        assert job.is_complete
        assert executed < 100


class TestScheduledLifecycle:
    """Engine-scheduled admissions, evictions, and share changes."""

    def _engine(self):
        eco = make_ecovisor()
        return SimulationEngine(eco, SimulationClock(60.0)), eco

    def test_scheduled_admission_joins_at_its_tick(self):
        engine, eco = self._engine()
        engine.add_application(CountingService("base"), ShareConfig())
        late = CountingService("late")
        engine.schedule_admission(3, late, ShareConfig())
        engine.run(5)
        assert "late" in eco.app_names()
        # First stepped at tick 3, for ticks 3 and 4.
        assert [c[1] for c in late.calls if c[0] == "step"] == [3, 4]

    def test_scheduled_eviction_stops_participation(self):
        engine, eco = self._engine()
        app = CountingService("gone")
        engine.add_application(app, ShareConfig())
        engine.add_application(CountingService("stays"), ShareConfig())
        engine.schedule_eviction(2, "gone")
        engine.run(4)
        assert "gone" not in eco.app_names()
        assert [c[1] for c in app.calls if c[0] == "step"] == [0, 1]
        assert "gone" in engine.evicted_accounts
        assert engine.evicted_accounts["gone"].finalized

    def test_scheduled_share_change_effective_same_tick(self):
        engine, eco = self._engine()
        app = CountingService("app")
        engine.add_application(app, ShareConfig(solar_fraction=0.5))
        engine.schedule_share_change(2, "app", ShareConfig(solar_fraction=1.0))
        engine.run(2)
        assert eco.share_for("app").solar_fraction == 0.5
        engine.run(1)  # tick 2: staged at the top, applied in begin_tick
        assert eco.share_for("app").solar_fraction == 1.0

    def test_evicted_accounts_keep_the_latest_life(self):
        engine, eco = self._engine()
        engine.add_application(CountingService("x"), ShareConfig())
        engine.run(1)
        engine.remove_application("x")
        engine.add_application(CountingService("x"), ShareConfig())
        engine.run(1)
        second = engine.remove_application("x")
        # Latest life wins in the name-keyed dict; the displaced life
        # is preserved in the ledger archive.
        assert engine.evicted_accounts["x"] is second
        assert len(eco.ledger.archived_accounts) == 1

    def test_external_eviction_unregisters_the_application(self):
        # Eviction through the ecovisor (the REST admin path) must stop
        # the engine from stepping the zombie and counting it for the
        # batch-completion rule.
        engine, eco = self._engine()
        app = CountingService("ext")
        engine.add_application(app, ShareConfig())
        engine.run(2)
        eco.evict_app("ext")  # not via the engine
        assert engine.applications == []
        assert "ext" in engine.evicted_accounts
        engine.run(2)
        assert [c[1] for c in app.calls if c[0] == "step"] == [0, 1]

    def test_remove_application_mid_run(self):
        engine, eco = self._engine()
        engine.add_application(CountingService("a"), ShareConfig())
        engine.run(2)
        account = engine.remove_application("a")
        assert account.finalized
        assert eco.app_names() == []
        assert engine.applications == []
        engine.run(2)  # an empty fleet still ticks

    def test_stale_schedule_entries_do_not_abort_the_run(self):
        # An eviction and a share change racing the same app (or plain
        # stale names) must be skipped, not kill every other tenant.
        engine, eco = self._engine()
        engine.add_application(CountingService("a"), ShareConfig())
        survivor = CountingService("b")
        engine.add_application(survivor, ShareConfig())
        engine.schedule_eviction(2, "a")
        engine.schedule_share_change(2, "a", ShareConfig(solar_fraction=0.5))
        engine.schedule_eviction(3, "a")  # already gone
        engine.schedule_share_change(3, "ghost", ShareConfig())
        assert engine.run(5) == 5
        assert [c[1] for c in survivor.calls if c[0] == "step"] == list(range(5))
        assert eco.app_names() == ["b"]

    def test_evictions_free_capacity_for_same_tick_admissions(self):
        engine, eco = self._engine()
        engine.add_application(
            CountingService("old"), ShareConfig(solar_fraction=0.9)
        )
        engine.schedule_eviction(2, "old")
        engine.schedule_admission(
            2, CountingService("new"), ShareConfig(solar_fraction=0.9)
        )
        engine.run(4)
        assert eco.app_names() == ["new"]


class TestObservers:
    def test_observers_called_each_tick(self):
        eco = make_ecovisor()
        engine = SimulationEngine(eco, SimulationClock(60.0))
        seen = []
        engine.add_observer(lambda tick: seen.append(tick.index))
        engine.run(3)
        assert seen == [0, 1, 2]


class TestServedFractions:
    def test_shortage_passed_to_finish_tick(self):
        eco = make_ecovisor(solar_w=0.0)
        engine = SimulationEngine(eco, SimulationClock(60.0))
        app = CountingService()
        api = engine.add_application(
            app, ShareConfig(grid_power_w=0.5)
        )
        container = api.launch_container(1)

        class Pusher:
            def __call__(self, tick):
                container.set_demand_utilization(1.0)

        # Set demand inside step by subclassing instead:
        class Hungry(CountingService):
            def step(self, tick, duration_s):
                super().step(tick, duration_s)
                container.set_demand_utilization(1.0)

        eco2 = make_ecovisor(solar_w=0.0)
        engine2 = SimulationEngine(eco2, SimulationClock(60.0))
        hungry = Hungry("hungry")
        api2 = engine2.add_application(hungry, ShareConfig(grid_power_w=0.5))
        container = api2.launch_container(1)
        engine2.run(2)
        fractions = [c[2] for c in hungry.calls if c[0] == "finish"]
        assert all(f == pytest.approx(0.4) for f in fractions)


class TestBatchedToggle:
    def test_batched_by_default_and_primes_cache(self):
        ecovisor = make_ecovisor()
        engine = SimulationEngine(ecovisor, SimulationClock(60.0))
        assert engine.batched is True
        engine.run(3)
        assert ecovisor.batched is True
        assert ecovisor._signal_cache is not None

    def test_unbatched_clears_cache(self):
        ecovisor = make_ecovisor()
        engine = SimulationEngine(ecovisor, SimulationClock(60.0), batched=False)
        engine.run(3)
        assert ecovisor.batched is False
        assert ecovisor._signal_cache is None

    def test_toggle_between_runs(self):
        ecovisor = make_ecovisor()
        engine = SimulationEngine(ecovisor, SimulationClock(60.0))
        engine.run(2)
        engine.batched = False
        engine.run(2)
        assert ecovisor._signal_cache is None

    def test_run_past_primed_window_falls_back_to_live(self):
        # Priming covers max_ticks; a second run re-primes from the
        # clock's new position, so signals stay correct either way.
        ecovisor = make_ecovisor(carbon_g_per_kwh=150.0)
        engine = SimulationEngine(ecovisor, SimulationClock(60.0))
        engine.run(2)
        engine.run(2)
        assert ecovisor.current_carbon_g_per_kwh == 150.0
        assert len(ecovisor.carbon_service.history()) == 4
