"""Request traces for the web workloads."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.energy.solar import SolarTrace
from repro.workloads.traces import (
    RequestTrace,
    constant_request_trace,
    daytime_request_trace,
    diurnal_request_trace,
)


class TestRequestTrace:
    def test_lookup(self):
        trace = RequestTrace([10.0, 20.0, 30.0])
        assert trace.rate_at(0.0) == 10.0
        assert trace.rate_at(60.0) == 20.0
        assert trace.rate_at(1e9) == 30.0  # clamps

    def test_negative_time_rejected(self):
        with pytest.raises(TraceError):
            RequestTrace([1.0]).rate_at(-1.0)

    def test_negative_rates_rejected(self):
        with pytest.raises(TraceError):
            RequestTrace([-1.0])

    def test_stats(self):
        trace = RequestTrace([10.0, 20.0, 30.0])
        assert trace.peak_rate() == 30.0
        assert trace.mean_rate() == pytest.approx(20.0)

    def test_duration(self):
        assert RequestTrace([1.0] * 60).duration_s == pytest.approx(3600.0)


class TestDiurnalTrace:
    def test_peak_near_configured_hour(self):
        trace = diurnal_request_trace(
            hours=24, base_rps=10, peak_rps=100, peak_hour=20.0,
            noise_fraction=0.0, burst_probability=0.0,
        )
        hours = np.arange(len(trace.samples)) / 60.0
        peak_index = int(np.argmax(trace.samples))
        assert abs(hours[peak_index] - 20.0) < 2.0

    def test_bounds(self):
        trace = diurnal_request_trace(hours=48)
        assert trace.samples.min() >= 0.0

    def test_deterministic(self):
        a = diurnal_request_trace(hours=24, seed=3)
        b = diurnal_request_trace(hours=24, seed=3)
        assert np.array_equal(a.samples, b.samples)

    def test_bursts_raise_peak(self):
        calm = diurnal_request_trace(hours=48, burst_probability=0.0, seed=4)
        bursty = diurnal_request_trace(hours=48, burst_probability=0.05, seed=4)
        assert bursty.peak_rate() > calm.peak_rate()

    def test_burst_onset_ramps(self):
        """Bursts must ramp, not jump: adjacent-minute ratio is bounded."""
        trace = diurnal_request_trace(
            hours=48, noise_fraction=0.0, burst_probability=0.02,
            burst_multiplier=1.6, seed=5,
        )
        ratios = trace.samples[1:] / np.maximum(trace.samples[:-1], 1e-9)
        assert ratios.max() < 1.45

    def test_rejects_peak_below_base(self):
        with pytest.raises(TraceError):
            diurnal_request_trace(base_rps=100, peak_rps=50)

    def test_rejects_nonpositive_hours(self):
        with pytest.raises(TraceError):
            diurnal_request_trace(hours=0)


class TestDaytimeTrace:
    def test_follows_irradiance(self):
        solar = SolarTrace(days=1, seed=2)
        trace = daytime_request_trace(solar.samples, peak_rps=100, noise_fraction=0.0)
        # Zero at midnight, positive at noon.
        assert trace.rate_at(0.0) == 0.0
        assert trace.rate_at(12 * 3600.0) > 10.0

    def test_activity_floor(self):
        solar = SolarTrace(days=1, seed=2)
        trace = daytime_request_trace(
            solar.samples, peak_rps=100, activity_floor_rps=5.0,
            noise_fraction=0.0,
        )
        assert trace.rate_at(0.0) == pytest.approx(5.0)

    def test_rejects_empty_irradiance(self):
        with pytest.raises(TraceError):
            daytime_request_trace([])


class TestConstantTrace:
    def test_flat(self):
        trace = constant_request_trace(42.0, hours=1)
        assert trace.rate_at(0.0) == 42.0
        assert trace.rate_at(1800.0) == 42.0

    def test_rejects_negative(self):
        with pytest.raises(TraceError):
            constant_request_trace(-1.0)
