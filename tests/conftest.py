"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import constant_trace
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.clock import SimulationClock
from repro.core.config import (
    BatteryConfig,
    CarbonServiceConfig,
    ClusterConfig,
    EcovisorConfig,
    ServerConfig,
    ShareConfig,
    SolarConfig,
)
from repro.core.ecovisor import Ecovisor
from repro.energy.battery import Battery
from repro.energy.grid import GridConnection
from repro.energy.solar import ConstantSolarTrace, SolarArrayEmulator
from repro.energy.system import PhysicalEnergySystem
from repro.market.prices import PriceTrace
from repro.market.service import PriceSignal
from repro.sim.engine import SimulationEngine

TICK_S = 60.0


@pytest.fixture
def small_battery_config() -> BatteryConfig:
    """A 100 Wh battery with simple round numbers for hand computation."""
    return BatteryConfig(
        capacity_wh=100.0,
        empty_soc_fraction=0.30,
        max_charge_c_rate=0.25,
        max_discharge_c_rate=1.0,
        charge_efficiency=1.0,
        discharge_efficiency=1.0,
        initial_soc_fraction=0.50,
    )


@pytest.fixture
def lossy_battery_config() -> BatteryConfig:
    """Same battery but with 90% one-way efficiencies."""
    return BatteryConfig(
        capacity_wh=100.0,
        empty_soc_fraction=0.30,
        charge_efficiency=0.90,
        discharge_efficiency=0.90,
        initial_soc_fraction=0.50,
    )


def make_ecovisor(
    solar_w: float = 10.0,
    carbon_g_per_kwh: float = 200.0,
    battery_config: BatteryConfig | None = None,
    num_servers: int = 4,
    with_battery: bool = True,
    with_solar: bool = True,
    price_trace: PriceTrace | None = None,
) -> Ecovisor:
    """An ecovisor over constant solar/carbon, convenient for unit tests.

    Passing ``price_trace`` attaches the market layer (a
    :class:`PriceSignal` over the trace); otherwise the ecovisor runs
    cost-free, as before the market subsystem existed.
    """
    solar = (
        SolarArrayEmulator(
            SolarConfig(
                peak_power_w=max(solar_w, 1.0),
                scale=1.0 if solar_w > 0 else 0.0,
                panel_efficiency_derating=1.0,
            ),
            ConstantSolarTrace(1.0),
        )
        if with_solar
        else None
    )
    battery = Battery(battery_config or BatteryConfig()) if with_battery else None
    plant = PhysicalEnergySystem(
        grid=GridConnection(), battery=battery, solar=solar
    )
    carbon = CarbonIntensityService(
        CarbonServiceConfig(region="constant"),
        trace=constant_trace(carbon_g_per_kwh, days=7),
    )
    platform = ContainerOrchestrationPlatform(
        ClusterConfig(num_servers=num_servers, server=ServerConfig())
    )
    price_signal = PriceSignal(trace=price_trace) if price_trace is not None else None
    return Ecovisor(
        plant, platform, carbon, EcovisorConfig(), price_signal=price_signal
    )


@pytest.fixture
def ecovisor() -> Ecovisor:
    return make_ecovisor()


@pytest.fixture
def engine(ecovisor: Ecovisor) -> SimulationEngine:
    return SimulationEngine(ecovisor, SimulationClock(TICK_S))


def run_ticks(
    ecovisor: Ecovisor, ticks: int, demand_setter=None, clock=None
) -> SimulationClock:
    """Drive the bare ecovisor tick loop (no engine, no applications).

    Pass the returned clock back in to continue the same timeline
    across multiple calls (mid-run lifecycle tests).
    """
    clock = clock or SimulationClock(TICK_S)
    for _ in range(ticks):
        tick = clock.current_tick()
        ecovisor.begin_tick(tick)
        ecovisor.invoke_app_ticks(tick)
        if demand_setter is not None:
            demand_setter(tick)
        ecovisor.settle(tick)
        clock.advance()
    return clock


@pytest.fixture
def default_share() -> ShareConfig:
    return ShareConfig(solar_fraction=0.5, battery_fraction=0.5)


@pytest.fixture
def small_fleet_params() -> dict:
    """A seconds-scale fleet spec for the fleet scenario tests.

    Every random choice in a fleet flows from ``config_digest`` of these
    parameters (see :mod:`repro.sim.fleet`), so tests built on this
    fixture are deterministic across processes — the property the
    serial-vs-parallel sweep parity of ``fleet_*`` rests on.
    """
    return {"apps": 10, "ticks": 20, "seed": 2023, "mix": "balanced"}
