"""Integration: multi-tenant operation on one shared ecovisor (Fig 5)."""

import pytest

from repro.analysis.figures_batch import fig05_multitenancy


@pytest.fixture(scope="module")
def outcome():
    return fig05_multitenancy(days=2)


class TestConcurrentExecution:
    def test_both_jobs_complete(self, outcome):
        assert outcome["ml_completed"]
        assert outcome["blast_completed"]

    def test_thresholds_differ_per_application(self, outcome):
        """Each app chose its own percentile threshold (30th vs 33rd)."""
        assert outcome["ml_threshold"] != outcome["blast_threshold"]

    def test_per_app_carbon_isolated(self, outcome):
        assert outcome["ml_carbon_g"] > 0
        assert outcome["blast_carbon_g"] > 0


class TestContainerSeries:
    def test_series_present(self, outcome):
        names = outcome["bundle"].names()
        assert "carbon_intensity" in names
        assert "ml-training_containers" in names
        assert "blast_containers" in names
        assert "cluster_containers" in names

    def test_ml_scales_between_zero_and_eight(self, outcome):
        counts = {v for _, v in outcome["bundle"].series["ml-training_containers"]}
        assert counts <= {0.0, 8.0}
        assert 8.0 in counts
        assert 0.0 in counts

    def test_blast_scales_between_zero_and_twentyfour(self, outcome):
        counts = {v for _, v in outcome["bundle"].series["blast_containers"]}
        # 24 workers + 1 coordinator while running; coordinator-only
        # (1.0) while suspended; 0 after completion.
        assert max(counts) == 25.0

    def test_cluster_is_sum_of_apps(self, outcome):
        series = outcome["bundle"].series
        ml = [v for _, v in series["ml-training_containers"]]
        blast = [v for _, v in series["blast_containers"]]
        cluster = [v for _, v in series["cluster_containers"]]
        for a, b, c in zip(ml, blast, cluster):
            assert c == pytest.approx(a + b)

    def test_apps_sometimes_run_simultaneously(self, outcome):
        series = outcome["bundle"].series
        ml = [v for _, v in series["ml-training_containers"]]
        blast = [v for _, v in series["blast_containers"]]
        together = [
            1 for a, b in zip(ml, blast) if a > 0 and b > 1
        ]
        assert len(together) > 0
