"""Integration: Figure 6/7 carbon budgeting shapes (reduced horizon)."""

import pytest

from repro.analysis.figures_web import fig06_07_web_budgeting
from repro.carbon.traces import make_region_trace


@pytest.fixture(scope="module")
def outcome():
    # One-day carbon trace keeps the integration run fast; the experiment
    # module's own default is the paper's 48 h.
    trace = make_region_trace("caiso", days=2, seed=2023)
    return fig06_07_web_budgeting(carbon_trace=trace)


class TestSloBehaviour:
    def test_static_policy_violates_slo(self, outcome):
        static = [r for r in outcome["results"] if r.policy_label == "System Policy"]
        assert any(r.violation_ticks > 0 for r in static)

    def test_dynamic_policy_nearly_always_meets_slo(self, outcome):
        dynamic = [
            r for r in outcome["results"] if r.policy_label == "Dynamic Budget"
        ]
        for r in dynamic:
            assert r.violation_fraction < 0.02

    def test_dynamic_strictly_better_attainment(self, outcome):
        by_app = {}
        for r in outcome["results"]:
            by_app.setdefault(r.app_name, {})[r.policy_label] = r
        for app, rows in by_app.items():
            assert (
                rows["Dynamic Budget"].violation_fraction
                <= rows["System Policy"].violation_fraction
            )


class TestCarbonBehaviour:
    def test_dynamic_emits_less(self, outcome):
        by_app = {}
        for r in outcome["results"]:
            by_app.setdefault(r.app_name, {})[r.policy_label] = r
        for app, rows in by_app.items():
            assert (
                rows["Dynamic Budget"].carbon_g < rows["System Policy"].carbon_g
            )

    def test_dynamic_stays_within_budget(self, outcome):
        """Total emissions must not exceed rate x horizon."""
        horizon_s = 48 * 3600.0
        budget_g = outcome["target_rate_mg_per_s"] * horizon_s / 1000.0
        dynamic = [
            r for r in outcome["results"] if r.policy_label == "Dynamic Budget"
        ]
        for r in dynamic:
            assert r.carbon_g <= budget_g * 1.02


class TestSeries:
    def test_bundle_contains_expected_series(self, outcome):
        names = outcome["bundle"].names()
        assert "carbon_intensity" in names
        for prefix in ("static", "dynamic"):
            for app in ("webapp1", "webapp2"):
                assert f"{prefix}.{app}.p95_ms" in names
                assert f"{prefix}.{app}.workers" in names
                assert f"{prefix}.{app}.carbon_rate" in names

    def test_system_policy_workers_track_carbon_inversely(self, outcome):
        """Fig 7b: the rate-limit policy adds workers when carbon drops."""
        series = dict(outcome["bundle"].series)
        carbon = [v for _, v in series["carbon_intensity"]]
        workers = [v for _, v in series["static.webapp1.workers"]]
        n = min(len(carbon), len(workers))
        import numpy as np

        correlation = np.corrcoef(carbon[:n], workers[:n])[0, 1]
        assert correlation < -0.3
