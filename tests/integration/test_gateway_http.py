"""The async gateway over real sockets: caching, streaming, edge cases.

Every test boots a :class:`GatewayServer` on an ephemeral port over a
small deterministic fleet, drives ticks through the
:class:`TickDriver` (the single-writer path production uses), and talks
to it through the SDK's :class:`HttpTransport` — the full network stack,
no mocks.  Blocking SDK calls run in worker threads via
``asyncio.to_thread`` so they never stall the server's event loop.
"""

import asyncio
import json

import pytest

from repro.client import EcovisorAdminClient, EcovisorClient, HttpTransport
from repro.core.errors import UnknownApplicationError
from repro.core.events import CarbonChangeEvent
from repro.gateway import GatewayConfig, GatewayServer, TickDriver
from repro.sim.fleet import build_fleet

FLEET_PARAMS = {"apps": 4, "mix": "balanced", "seed": 7, "ticks": 40}


def run(coro):
    return asyncio.run(coro)


async def start_gateway(queue_size: int = 256):
    env = build_fleet(FLEET_PARAMS)
    gateway = GatewayServer(
        env.ecovisor,
        config=GatewayConfig(port=0, queue_size=queue_size),
    )
    await gateway.start()
    driver = TickDriver(gateway, env.engine)
    app = sorted(env.ecovisor.app_shares())[0]
    return env, gateway, driver, app


def counter_value(ecovisor, name: str) -> float:
    return ecovisor.metrics.get(name).value


class TestSnapshotCaching:
    def test_state_roundtrip_with_etag_and_304(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            await driver.step()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                first = await asyncio.to_thread(
                    transport.request, "GET", f"/v1/apps/{app}/state"
                )
                assert first.status == 200
                assert first.etag == f'"{app}:0:1"'
                assert first.header("Cache-Control") == "max-age=0, must-revalidate"
                assert first.body["app_name"] == app

                revalidated = await asyncio.to_thread(
                    transport.request,
                    "GET",
                    f"/v1/apps/{app}/state",
                    None,
                    {"If-None-Match": first.etag},
                )
                assert revalidated.status == 304
                assert revalidated.body is None
                assert revalidated.etag == first.etag
                assert counter_value(env.ecovisor, "gateway_etag_hits_total") == 1
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_etag_changes_after_a_tick(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            await driver.step()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                before = await asyncio.to_thread(
                    transport.request, "GET", f"/v1/apps/{app}/state"
                )
                await driver.step()
                after = await asyncio.to_thread(
                    transport.request,
                    "GET",
                    f"/v1/apps/{app}/state",
                    None,
                    {"If-None-Match": before.etag},
                )
                assert after.status == 200  # stale validator: full body
                assert after.etag != before.etag
                assert after.body["tick_index"] == 1
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_thousand_pollers_cost_one_dispatch_per_tick(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            await driver.step()
            requests = env.ecovisor.metrics.get("http_requests_total")
            state_route = requests.labels(
                route="/v1/apps/{app}/state", status="200"
            )
            transports = [
                HttpTransport("127.0.0.1", gateway.port) for _ in range(8)
            ]
            try:
                bodies = await asyncio.gather(*[
                    asyncio.to_thread(
                        t.request, "GET", f"/v1/apps/{app}/state"
                    )
                    for t in transports
                ])
                assert {json.dumps(b.body, sort_keys=True) for b in bodies} \
                    == {json.dumps(bodies[0].body, sort_keys=True)}
                # All eight concurrent pollers shared one dispatch.
                assert state_route.value == 1
            finally:
                for t in transports:
                    t.close()
                await gateway.stop()

        run(scenario())

    def test_mutation_invalidates_cached_snapshot(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            await driver.step()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                client = EcovisorClient(transport, app)
                admin = EcovisorAdminClient(transport)
                assert (await asyncio.to_thread(client.state)).app_name == app
                await asyncio.to_thread(admin.evict_app, app)
                with pytest.raises(UnknownApplicationError):
                    await asyncio.to_thread(client.state)
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())


class TestHttpSurface:
    def test_keep_alive_serves_many_requests_per_connection(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            await driver.step()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                client = EcovisorClient(transport, app)
                for _ in range(3):
                    state = await asyncio.to_thread(client.state)
                    assert state.app_name == app
                # One TCP connection handled all of it.
                assert counter_value(
                    env.ecovisor, "gateway_open_connections"
                ) == 1
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_unknown_app_maps_to_client_exception(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            await driver.step()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                ghost = EcovisorClient(transport, "ghost")
                with pytest.raises(UnknownApplicationError):
                    await asyncio.to_thread(ghost.state)
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_metrics_text_is_no_store(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            await driver.step()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                response = await asyncio.to_thread(
                    transport.request, "GET", "/v1/metrics"
                )
                assert response.status == 200
                assert response.header("Cache-Control") == "no-store"
                assert isinstance(response.body, str)
                assert "gateway_open_connections" in response.body
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_malformed_request_answers_400(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(b"BOGUS\r\n\r\n")
            await writer.drain()
            status = await reader.readline()
            assert b"400" in status
            writer.close()
            await gateway.stop()

        run(scenario())


class TestSseStreaming:
    def test_stream_delivers_ticked_events(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            transport = HttpTransport("127.0.0.1", gateway.port)
            client = EcovisorClient(transport, app)
            frames = []

            def collect():
                for frame in client.stream_events(cursor=0, raw=True):
                    frames.append(frame)
                    if frame.event == "stream_end":
                        return

            collector = asyncio.ensure_future(asyncio.to_thread(collect))
            try:
                await asyncio.sleep(0.1)
                await driver.run(5)
                admin = EcovisorAdminClient(transport)
                await asyncio.to_thread(admin.evict_app, app)
                await asyncio.wait_for(collector, timeout=10)
            finally:
                transport.close()
                await gateway.stop()
            return frames

        frames = run(scenario())
        assert frames[0].event == "stream_open"
        journal_frames = [f for f in frames if f.id is not None]
        assert journal_frames[0].event == "AppAdmittedEvent"
        assert [f.id for f in journal_frames] == list(
            range(len(journal_frames))
        )
        assert frames[-2].event == "AppEvictedEvent"
        assert frames[-1].event == "stream_end"
        assert json.loads(frames[-1].data) == {"reason": "evicted"}

    def test_last_event_id_resume_skips_seen_events(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                # Deterministic feed: the admission event (id 0) plus
                # five injected carbon changes (ids 1-5).
                def inject():
                    journal = env.ecovisor.journal
                    for i in range(5):
                        journal.record(
                            app,
                            CarbonChangeEvent(
                                time_s=float(i),
                                previous_g_per_kwh=1.0,
                                current_g_per_kwh=2.0,
                            ),
                        )

                await gateway.run_on_writer(inject)
                client = EcovisorClient(transport, app)

                def first_pass_ids():
                    collected = []
                    for frame in client.stream_events(cursor=0, raw=True):
                        if frame.id is not None:
                            collected.append(frame.id)
                            if len(collected) >= 2:
                                return collected
                    return collected

                assert await asyncio.to_thread(first_pass_ids) == [0, 1]

                # Reconnect the way an SSE client does: Last-Event-ID.
                def resume_ids():
                    collected = []
                    stream = transport.stream(
                        f"/v1/apps/{app}/events/stream",
                        headers={"Last-Event-ID": "1"},
                    )
                    try:
                        for frame in stream:
                            if frame.event == "stream_open":
                                continue
                            collected.append(frame.id)
                            if len(collected) >= 2:
                                return collected
                    finally:
                        stream.close()
                    return collected

                assert await asyncio.to_thread(resume_ids) == [2, 3]
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_resume_past_horizon_restarts_from_oldest(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway(queue_size=1024)
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                await driver.step()

                def overflow():
                    journal = env.ecovisor.journal
                    for i in range(300):  # journal capacity is 256
                        journal.record(
                            app,
                            CarbonChangeEvent(
                                time_s=float(i),
                                previous_g_per_kwh=1.0,
                                current_g_per_kwh=2.0,
                            ),
                        )

                await gateway.run_on_writer(overflow)

                def take_three():
                    collected = []
                    stream = transport.stream(f"/v1/apps/{app}/events/stream")
                    try:
                        for frame in stream:
                            collected.append(frame)
                            if len(collected) >= 3:
                                return collected
                    finally:
                        stream.close()
                    return collected

                frames = await asyncio.to_thread(take_three)
                assert frames[0].event == "stream_open"
                assert frames[1].event == "journal_dropped"
                payload = json.loads(frames[1].data)
                assert payload["dropped"] > 0
                assert payload["journal_dropped"] > 0
                # The stream resumes at the oldest retained event.
                assert frames[2].id == payload["dropped"]
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_journal_overflow_mid_stream_surfaces_journal_dropped(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway(queue_size=1024)
            transport = HttpTransport("127.0.0.1", gateway.port)
            client = EcovisorClient(transport, app)
            seen = []
            got_drop = asyncio.Event()
            loop = asyncio.get_running_loop()

            def collect():
                for frame in client.stream_events(cursor=0, raw=True):
                    seen.append(frame)
                    if frame.event == "journal_dropped":
                        loop.call_soon_threadsafe(got_drop.set)
                        return

            collector = asyncio.ensure_future(asyncio.to_thread(collect))
            try:
                await driver.step()
                await asyncio.sleep(0.1)

                def overflow():
                    journal = env.ecovisor.journal
                    for i in range(300):
                        journal.record(
                            app,
                            CarbonChangeEvent(
                                time_s=float(i),
                                previous_g_per_kwh=1.0,
                                current_g_per_kwh=2.0,
                            ),
                        )

                # Overflow the feed, then tick: the pump's next read has
                # lost events and must say so in-band.
                await gateway.run_on_writer(overflow)
                await driver.step()
                await asyncio.wait_for(got_drop.wait(), timeout=10)
                await asyncio.wait_for(collector, timeout=10)
            finally:
                transport.close()
                await gateway.stop()
            return seen

        seen = run(scenario())
        drop = [f for f in seen if f.event == "journal_dropped"]
        assert len(drop) == 1
        assert json.loads(drop[0].data)["dropped"] > 0

    def test_stream_for_unknown_app_is_404(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            transport = HttpTransport("127.0.0.1", gateway.port)
            try:
                def open_stream():
                    next(transport.stream("/v1/apps/ghost/events/stream"))

                with pytest.raises(ConnectionError) as excinfo:
                    await asyncio.to_thread(open_stream)
                assert "404" in str(excinfo.value)
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())

    def test_sse_metrics_move(self):
        async def scenario():
            env, gateway, driver, app = await start_gateway()
            transport = HttpTransport("127.0.0.1", gateway.port)
            client = EcovisorClient(transport, app)
            frames = []

            def collect():
                for frame in client.stream_events(cursor=0, raw=True):
                    frames.append(frame)
                    if frame.event == "stream_end":
                        return

            collector = asyncio.ensure_future(asyncio.to_thread(collect))
            try:
                await asyncio.sleep(0.1)
                await driver.run(3)
                admin = EcovisorAdminClient(transport)
                await asyncio.to_thread(admin.evict_app, app)
                await asyncio.wait_for(collector, timeout=10)
                assert counter_value(
                    env.ecovisor, "gateway_sse_events_sent_total"
                ) >= len(frames)
                assert counter_value(
                    env.ecovisor, "gateway_sse_bytes_sent_total"
                ) >= sum(len(f.data) for f in frames)
                assert counter_value(
                    env.ecovisor, "gateway_sse_queue_dropped_total"
                ) == 0
            finally:
                transport.close()
                await gateway.stop()

        run(scenario())
