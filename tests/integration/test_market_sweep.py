"""The extension_market scenario: billing consistency and Pareto shape."""

import pytest

from repro.analysis.figures_market import market_pareto_rows, run_market_case
from repro.sim import scenarios
from repro.sim.runner import run_sweep

# A miniature but structurally complete matrix: all three regimes, all
# three policies, both lambda endpoints, one simulated day.
SMALL = {"days": 1, "work_units": 6000.0, "lam": [0.0, 1.0]}


@pytest.fixture(scope="module")
def small_sweep():
    sweep = run_sweep("extension_market", overrides=SMALL, jobs=1)
    assert sweep.ok, [r.error for r in sweep.failures()]
    return sweep


class TestCatalogRegistration:
    def test_new_scenarios_registered(self):
        names = scenarios.names()
        for name in ("extension_market", "fig05_multitenancy", "fig11_stragglers"):
            assert name in names

    def test_default_matrix_size(self):
        # 3 regimes x 3 policies x 3 lambdas.
        assert scenarios.matrix_size("extension_market") == 27
        # 11 solar percentages x 2 replica policies.
        assert scenarios.matrix_size("fig11_stragglers") == 22
        assert scenarios.matrix_size("fig05_multitenancy") == 1


class TestMarketSweep:
    def test_all_runs_complete_and_bill_consistently(self, small_sweep):
        for row in small_sweep.rows_ok():
            assert row["completed"] == 1.0, row
            assert row["cost_recompute_abs_err"] < 1e-9, row
            assert row["cost_usd"] >= 0.0

    def test_parallel_is_byte_identical(self, small_sweep):
        parallel = run_sweep("extension_market", overrides=SMALL, jobs=2)
        assert parallel.ok
        assert parallel.metrics_json() == small_sweep.metrics_json()

    def test_pareto_rows_shape(self, small_sweep):
        rows = market_pareto_rows(small_sweep.rows_ok())
        regimes = {r["regime"] for r in rows}
        assert regimes == {"flat", "tou", "realtime"}
        for regime in regimes:
            points = [r for r in rows if r["regime"] == regime]
            # carbon-threshold, price-threshold, and the two lambda
            # endpoints (the threshold policies collapse their lambda
            # duplicates into one point each).
            labels = {p["policy_point"] for p in points}
            assert "carbon-threshold" in labels
            assert "price-threshold" in labels
            assert "carbon-cost(lam=0.00)" in labels
            assert "carbon-cost(lam=1.00)" in labels
            assert any(p["pareto"] == 1.0 for p in points)

    def test_lambda_endpoints_match_single_signal_policies(self, small_sweep):
        rows = {
            (r["regime"], r["policy_point"]): r
            for r in market_pareto_rows(small_sweep.rows_ok())
        }
        for regime in ("flat", "tou", "realtime"):
            assert rows[(regime, "carbon-cost(lam=0.00)")]["carbon_g"] == (
                rows[(regime, "carbon-threshold")]["carbon_g"]
            )
            assert rows[(regime, "carbon-cost(lam=1.00)")]["cost_usd"] == (
                rows[(regime, "price-threshold")]["cost_usd"]
            )


class TestRunMarketCase:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_market_case("flat", "mystery", 0.0, days=1)

    def test_unknown_regime_rejected(self):
        from repro.core.errors import TraceError

        with pytest.raises(TraceError):
            run_market_case("bespoke", "carbon-threshold", 0.0, days=1)
