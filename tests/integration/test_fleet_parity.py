"""Fleet parity: batched hot path vs per-app fallback, byte-identical.

The batched tick engine (primed signal arrays, one bulk container-power
pass reused for demand/cluster telemetry, cached series handles) must be
an *optimization*, not a semantic change.  These tests run the same
deterministic fleet twice — ``engine.batched = True`` and ``False`` —
and require tick-for-tick identical :class:`EnergyState` snapshots,
settlement ledgers, telemetry series, and sweep metrics.
"""

import hashlib
import json

import pytest

from repro.cluster.container import reset_container_id_counter
from repro.sim.fleet import build_fleet, fleet_root_seed, run_fleet

PARAMS = {"apps": 24, "ticks": 50, "seed": 2023, "mix": "balanced"}


def _capture_run(params, batched):
    """Run one fleet, recording every app's snapshot at every tick."""
    # Container ids embed a process-global counter; reset it so both
    # captures name identical containers identically (ids appear in
    # snapshots and telemetry series names).
    reset_container_id_counter()
    fleet = build_fleet({**params, "batched": batched})
    ecovisor = fleet.ecovisor
    names = ecovisor.app_names()
    per_tick_states = []

    def observer(tick):
        per_tick_states.append(
            {name: ecovisor.state_for(name).to_dict() for name in names}
        )

    fleet.engine.add_observer(observer)
    fleet.engine.run(int(params["ticks"]))
    return fleet, per_tick_states


@pytest.fixture(scope="module")
def captures():
    batched = _capture_run(PARAMS, True)
    fallback = _capture_run(PARAMS, False)
    return batched, fallback


def _first_difference(states_a, states_b):
    """Locate the first differing (tick, app, field) for a readable fail."""
    for t, (sa, sb) in enumerate(zip(states_a, states_b)):
        for name in sa:
            if sa[name] != sb[name]:
                for field in sa[name]:
                    if sa[name][field] != sb[name][field]:
                        return (
                            f"tick {t}, app {name}, field {field}: "
                            f"{sa[name][field]!r} != {sb[name][field]!r}"
                        )
    return None


class TestBatchedUnbatchedParity:
    def test_snapshots_identical_every_tick(self, captures):
        (_, states_a), (_, states_b) = captures
        assert len(states_a) == PARAMS["ticks"]
        # Digest comparison keeps a (hypothetical) failure readable:
        # diffing two multi-megabyte JSON strings in the assertion
        # message is what we want to avoid.
        digest_a = hashlib.sha256(
            json.dumps(states_a, sort_keys=True).encode()
        ).hexdigest()
        digest_b = hashlib.sha256(
            json.dumps(states_b, sort_keys=True).encode()
        ).hexdigest()
        assert digest_a == digest_b, _first_difference(states_a, states_b)

    def test_settlement_ledgers_identical(self, captures):
        (fleet_a, _), (fleet_b, _) = captures
        for name in fleet_a.ecovisor.app_names():
            a = fleet_a.ecovisor.ledger.account(name)
            b = fleet_b.ecovisor.ledger.account(name)
            assert a.settlements == b.settlements  # frozen dataclass eq
            assert (a.energy_wh, a.carbon_g, a.cost_usd, a.unmet_wh) == (
                b.energy_wh,
                b.carbon_g,
                b.cost_usd,
                b.unmet_wh,
            )

    def test_telemetry_series_identical(self, captures):
        (fleet_a, _), (fleet_b, _) = captures
        db_a = fleet_a.ecovisor.database
        db_b = fleet_b.ecovisor.database
        assert db_a.series_names() == db_b.series_names()
        for name in db_a.series_names():
            series_a, series_b = db_a.series(name), db_b.series(name)
            assert series_a.times().tolist() == series_b.times().tolist(), name
            assert series_a.values().tolist() == series_b.values().tolist(), name

    def test_signal_histories_identical(self, captures):
        (fleet_a, _), (fleet_b, _) = captures
        eco_a, eco_b = fleet_a.ecovisor, fleet_b.ecovisor
        assert eco_a.carbon_service.history() == eco_b.carbon_service.history()
        assert eco_a.price_signal.history() == eco_b.price_signal.history()

    def test_modes_actually_differed(self, captures):
        (fleet_a, _), (fleet_b, _) = captures
        assert fleet_a.ecovisor.batched is True
        assert fleet_b.ecovisor.batched is False
        # The batched run primed its signal cache; the fallback did not.
        assert fleet_a.ecovisor._signal_cache is not None
        assert fleet_b.ecovisor._signal_cache is None


class TestFleetDeterminism:
    def test_metrics_identical_across_modes(self):
        params = {"apps": 16, "ticks": 30, "seed": 7, "mix": "carbon"}
        assert run_fleet({**params, "batched": True}) == run_fleet(
            {**params, "batched": False}
        )

    def test_root_seed_from_config_digest_only(self):
        base = {"apps": 10, "ticks": 20, "seed": 3, "mix": "balanced"}
        assert fleet_root_seed(base) == fleet_root_seed({**base, "batched": False})
        assert fleet_root_seed(base) != fleet_root_seed({**base, "seed": 4})

    def test_rebuild_is_bit_identical(self):
        params = {"apps": 10, "ticks": 25, "seed": 11, "mix": "balanced"}
        assert run_fleet(dict(params)) == run_fleet(dict(params))
