"""Integration: Figure 8/9 battery policy shapes."""

import pytest

from repro.analysis.figures_battery import fig08_09_battery_policies


@pytest.fixture(scope="module")
def outcome():
    return fig08_09_battery_policies()


class TestZeroCarbon:
    def test_no_app_ever_emits(self, outcome):
        for value in outcome["zero_carbon"].values():
            assert value == 0.0


class TestSparkRuntime:
    def test_both_variants_complete(self, outcome):
        assert outcome["spark_runtime_static_s"] != float("inf")
        assert outcome["spark_runtime_dynamic_s"] != float("inf")

    def test_dynamic_substantially_faster(self, outcome):
        """Paper: the dynamic policy reduces runtime by 39%."""
        assert outcome["spark_runtime_reduction_pct"] > 20.0

    def test_dynamic_lost_bounded_work(self, outcome):
        """Opportunistic workers lose some un-checkpointed work, but the
        auto-checkpoint interval bounds the damage."""
        assert outcome["spark_lost_units_dynamic"] > 0.0
        assert outcome["spark_lost_units_dynamic"] < 0.15 * 400000.0


class TestWebSlo:
    def test_static_violates_under_peak_load(self, outcome):
        static = next(
            r for r in outcome["web_results"] if r.policy_label == "System Policy"
        )
        assert static.violation_fraction > 0.10

    def test_dynamic_nearly_always_meets(self, outcome):
        dynamic = next(
            r for r in outcome["web_results"] if r.policy_label == "Dynamic"
        )
        assert dynamic.violation_fraction < 0.02


class TestBatterySeries:
    def test_soc_series_stay_in_range(self, outcome):
        series = dict(outcome["bundle"].series)
        for app in ("spark", "web-monitor"):
            soc_values = [v for _, v in series[f"dynamic.{app}.soc"]]
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in soc_values)

    def test_batteries_both_charge_and_discharge(self, outcome):
        """Fig 9b: signed battery power shows both signs over the run."""
        series = dict(outcome["bundle"].series)
        for app in ("spark", "web-monitor"):
            power = [v for _, v in series[f"dynamic.{app}.battery_power_w"]]
            assert max(power) > 0.0
            assert min(power) < 0.0

    def test_apps_use_batteries_differently(self, outcome):
        """Multi-tenancy: per-app SoC trajectories differ (Fig 9a)."""
        series = dict(outcome["bundle"].series)
        spark = [v for _, v in series["dynamic.spark.soc"]]
        web = [v for _, v in series["dynamic.web-monitor.soc"]]
        n = min(len(spark), len(web))
        differences = [abs(a - b) for a, b in zip(spark[:n], web[:n])]
        assert max(differences) > 0.05
