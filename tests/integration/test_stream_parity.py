"""Stream parity: SSE replay == cursor polling, and gateway == no gateway.

Two contracts pin the gateway as a pure *transport*:

1. **Wire parity** — the ``data:`` payload of every SSE journal frame
   is byte-identical to the cursor-poll serialization of the same event
   (``json.dumps(event_to_dict(e), sort_keys=True)``), and the ``id:``
   sequence matches the journal cursors, so a client may switch between
   streaming and polling mid-feed without ever seeing a different byte.
2. **Determinism** — a full ``fleet_medium`` run stepped through the
   gateway's single-writer executor while concurrent HTTP pollers and
   SSE subscribers hammer the API produces **byte-identical** surfaces
   (ledgers, telemetry, journals — SHA-256 over canonical JSON) to the
   same fleet run with no gateway at all.  Serving traffic must never
   perturb the simulation.
"""

import asyncio
import json

from repro.client import EcovisorAdminClient, EcovisorClient, HttpTransport
from repro.cluster.container import reset_container_id_counter
from repro.core.events import event_to_dict
from repro.gateway import GatewayConfig, GatewayServer, TickDriver
from repro.sim.fleet import build_fleet

from tests.integration.test_columnar_parity import _digest, collect_surfaces

SMALL_PARAMS = {"apps": 4, "mix": "balanced", "seed": 11, "ticks": 30}
MEDIUM_PARAMS = {"seed": 2023, "apps": 200, "ticks": 120, "mix": "balanced"}


def run(coro):
    return asyncio.run(coro)


async def read_http_response(reader):
    """Read one Content-Length-framed response; returns (status, headers)."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    if length:
        await reader.readexactly(length)
    return status, headers


class TestSseReplayParity:
    def test_sse_stream_is_byte_identical_to_cursor_poll(self):
        async def scenario():
            env = build_fleet(SMALL_PARAMS)
            gateway = GatewayServer(env.ecovisor, config=GatewayConfig(port=0))
            await gateway.start()
            driver = TickDriver(gateway, env.engine)
            app = sorted(env.ecovisor.app_shares())[0]
            transport = HttpTransport("127.0.0.1", gateway.port)
            client = EcovisorClient(transport, app)
            frames = []

            def collect():
                for frame in client.stream_events(cursor=0, raw=True):
                    frames.append(frame)
                    if frame.event == "stream_end":
                        return

            collector = asyncio.ensure_future(asyncio.to_thread(collect))
            try:
                await asyncio.sleep(0.05)
                await driver.run(SMALL_PARAMS["ticks"])
                admin = EcovisorAdminClient(transport)
                await asyncio.to_thread(admin.evict_app, app)
                await asyncio.wait_for(collector, timeout=15)
                # The journal stays readable after eviction: replay the
                # whole feed the way a poller would.
                page = await asyncio.to_thread(client.events, 0)
            finally:
                transport.close()
                await gateway.stop()
            return frames, page

        frames, page = run(scenario())
        streamed = [f for f in frames if f.id is not None]
        polled = [
            json.dumps(event_to_dict(event), sort_keys=True)
            for event in page.events
        ]
        assert len(streamed) == len(polled) > 1
        assert [f.data for f in streamed] == polled  # byte-identical
        assert [f.id for f in streamed] == list(range(len(polled)))
        assert streamed[-1].event == "AppEvictedEvent"

    def test_stream_events_objects_match_cursor_poll_objects(self):
        async def scenario():
            env = build_fleet(SMALL_PARAMS)
            gateway = GatewayServer(env.ecovisor, config=GatewayConfig(port=0))
            await gateway.start()
            driver = TickDriver(gateway, env.engine)
            app = sorted(env.ecovisor.app_shares())[0]
            await driver.run(10)
            transport = HttpTransport("127.0.0.1", gateway.port)
            client = EcovisorClient(transport, app)
            try:
                page = await asyncio.to_thread(client.events, 0)

                def streamed_events():
                    return list(
                        client.stream_events(
                            cursor=0, max_events=len(page.events)
                        )
                    )

                events = await asyncio.to_thread(streamed_events)
            finally:
                transport.close()
                await gateway.stop()
            return events, page

        events, page = run(scenario())
        assert len(events) > 0
        assert tuple(events) == page.events  # dataclass equality


class TestGatewayDeterminism:
    def test_fleet_medium_under_gateway_load_is_byte_identical(self):
        # Container ids embed a process-global counter and appear in
        # telemetry series names; reset before each build so both runs
        # name identical containers identically.
        reset_container_id_counter()
        baseline_env = build_fleet(MEDIUM_PARAMS)
        baseline_env.engine.run(MEDIUM_PARAMS["ticks"])
        baseline = _digest(collect_surfaces(baseline_env.ecovisor, {}))

        async def gateway_run():
            reset_container_id_counter()
            env = build_fleet(MEDIUM_PARAMS)
            gateway = GatewayServer(env.ecovisor, config=GatewayConfig(port=0))
            await gateway.start()
            driver = TickDriver(gateway, env.engine)
            apps = sorted(env.ecovisor.app_shares())
            stop = asyncio.Event()

            async def poll_state(app):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                etag = None
                requests = 0
                try:
                    while not stop.is_set():
                        head = (
                            f"GET /v1/apps/{app}/state HTTP/1.1\r\n"
                            "Host: gw\r\n"
                        )
                        if etag:
                            head += f"If-None-Match: {etag}\r\n"
                        head += "\r\n"
                        writer.write(head.encode())
                        await writer.drain()
                        status, headers = await read_http_response(reader)
                        assert status in (200, 304)
                        etag = headers.get("etag", etag)
                        requests += 1
                finally:
                    writer.close()
                return requests

            async def subscribe(app):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                writer.write(
                    f"GET /v1/apps/{app}/events/stream HTTP/1.1\r\n"
                    "Host: gw\r\nAccept: text/event-stream\r\n\r\n".encode()
                )
                await writer.drain()
                received = 0
                try:
                    while not stop.is_set():
                        try:
                            await asyncio.wait_for(
                                reader.readline(), timeout=0.2
                            )
                            received += 1
                        except asyncio.TimeoutError:
                            continue
                finally:
                    writer.close()
                return received

            load = [
                asyncio.ensure_future(poll_state(app)) for app in apps[:10]
            ] + [
                asyncio.ensure_future(subscribe(app)) for app in apps[:4]
            ]
            try:
                await driver.run(MEDIUM_PARAMS["ticks"])
            finally:
                stop.set()
                counts = await asyncio.gather(*load, return_exceptions=True)
                await gateway.stop()
            # The load was real: every poller got answers.
            numeric = [c for c in counts if isinstance(c, int)]
            assert len(numeric) == len(counts), counts
            assert sum(numeric) > 0
            return _digest(collect_surfaces(env.ecovisor, {}))

        under_load = run(gateway_run())
        assert under_load == baseline