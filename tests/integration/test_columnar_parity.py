"""Columnar parity: the struct-of-arrays kernel vs the object path.

:mod:`repro.core.fleetarrays` re-implements the per-tick settle and
snapshot arithmetic over preallocated numpy rows.  Its contract — pinned
here — is that it is an *optimization*, never a semantic change: every
observable the simulator produces must be **byte-identical** between the
columnar hot path (``engine.batched = True``) and the per-app object
reference path (``engine.batched = False``).

Where :mod:`tests.integration.test_fleet_parity` checks one committed
fleet configuration, this module is a *differential harness*: hypothesis
draws randomized fleet sizes, policy mixes, trace seeds (which select
the solar/carbon/price regimes and, through the shared-plant stride, the
battery-holding subset), and churn schedules, and every drawn fleet is
run down both paths and compared on four surfaces:

- per-app :class:`EnergyState` snapshots at every tick (the lazy
  :class:`~repro.core.state.RowEnergyState` views must materialize the
  exact floats the eager objects carry),
- per-app settlement ledgers (every ``TickSettlement`` plus the
  cumulative account totals),
- the full telemetry database (series names, timestamps, values — the
  columnar path buffers these and flushes lazily), and
- per-app event journals (battery/solar/share/lifecycle signals in
  publish order, including retired feeds of evicted churn tenants).

Comparison is by SHA-256 over a canonical JSON dump, so "identical"
means identical down to the float bit patterns (``json.dumps`` emits
shortest-round-trip reprs); on mismatch a recursive diff locates the
first differing (surface, tick, app, field) for a readable failure.
"""

import dataclasses
import hashlib
import json
import os
from pathlib import Path

from hypothesis import HealthCheck, assume, example, given, settings
from hypothesis import strategies as st

from repro.cluster.container import reset_container_id_counter
from repro.core.errors import InsufficientResourcesError
from repro.sim.fleet import POLICY_MIXES, build_churn_fleet, build_fleet

# Small-but-varied fleets: large enough to mix all policy kinds, both
# workload classes, and battery holders vs grid-only tenants; small
# enough that each example's two runs stay well under a second.
FLEET_PARAMS = st.fixed_dictionaries(
    {
        "apps": st.integers(min_value=3, max_value=20),
        "ticks": st.integers(min_value=5, max_value=36),
        "seed": st.integers(min_value=0, max_value=2**16),
        "mix": st.sampled_from(sorted(POLICY_MIXES)),
    }
)

CHURN_PARAMS = st.fixed_dictionaries(
    {
        "apps": st.integers(min_value=6, max_value=12),
        "ticks": st.integers(min_value=8, max_value=24),
        "seed": st.integers(min_value=0, max_value=2**16),
        "mix": st.sampled_from(sorted(POLICY_MIXES)),
        "admit_rate": st.sampled_from([0.0, 0.3, 0.8]),
        "evict_rate": st.sampled_from([0.0, 0.25, 0.7]),
    }
)

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    print_blob=True,
)


def _capture(params, batched, churn=False):
    """Run one fleet down one path; return every observable surface."""
    # Container ids embed a process-global counter; reset it so both
    # captures name identical containers identically (ids appear in
    # snapshots, telemetry series names, and journal payloads).
    reset_container_id_counter()
    build = build_churn_fleet if churn else build_fleet
    fleet = build({**params, "batched": batched})
    ecovisor = fleet.ecovisor
    engine = fleet.engine

    states = []

    def observer(tick):
        states.append(
            {
                name: ecovisor.state_for(name).to_dict()
                for name in ecovisor.app_names()
            }
        )

    engine.add_observer(observer)
    engine.run(int(params["ticks"]))
    assert ecovisor.batched is batched and ecovisor.columnar is batched
    return collect_surfaces(ecovisor, states)


def collect_surfaces(ecovisor, states):
    """Every observable surface of a finished run, JSON-serializable.

    Shared with :mod:`tests.integration.test_fallback_parity`, which
    builds its own (partially batch-incompatible) fleets but compares
    the same four surfaces.
    """
    ledger = ecovisor.ledger
    accounts = {}
    for name in sorted(ledger.app_names()):
        account = ledger.account(name)
        accounts[name] = {
            "settlements": [
                dataclasses.asdict(s) for s in account.settlements
            ],
            "energy_wh": account.energy_wh,
            "carbon_g": account.carbon_g,
            "cost_usd": account.cost_usd,
            "unmet_wh": account.unmet_wh,
        }

    database = ecovisor.database
    telemetry = {
        name: [
            database.series(name).times().tolist(),
            database.series(name).values().tolist(),
        ]
        for name in database.series_names()
    }

    journal = ecovisor.journal
    journals = {}
    for name in sorted(ledger.app_names()):
        if not journal.has_feed(name):
            continue
        page = journal.read(name)
        journals[name] = {
            "events": [dataclasses.asdict(e) for e in page.events],
            "next_cursor": page.next_cursor,
            "dropped": page.dropped,
        }

    return {
        "states": states,
        "accounts": accounts,
        "telemetry": telemetry,
        "journals": journals,
    }


def _digest(capture):
    """SHA-256 over canonical JSON: equal digests == byte-equal floats."""
    return hashlib.sha256(
        json.dumps(capture, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _first_difference(a, b, path="capture"):
    """Recursively locate the first mismatch for a readable assertion."""
    if type(a) is not type(b):
        return f"{path}: {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        if a.keys() != b.keys():
            only_a = sorted(set(a) - set(b))
            only_b = sorted(set(b) - set(a))
            return f"{path}: keys differ (columnar-only {only_a}, object-only {only_b})"
        for key in a:
            if a[key] != b[key]:
                return _first_difference(a[key], b[key], f"{path}[{key!r}]")
    elif isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return _first_difference(x, y, f"{path}[{i}]")
    elif a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def _record_failure(params, churn, diff, columnar, objects):
    """Persist a reproduction blob + first-difference report to disk.

    CI uploads the directory (plus hypothesis's example database) as
    workflow artifacts when the parity suite fails, so a red run on a
    shared runner is debuggable without re-shrinking locally.  The file
    tag is content-derived: hypothesis re-runs a failing example many
    times while shrinking, and every intermediate example dedupes onto
    its own pair of files (the final, smallest one included).
    """
    out = Path(os.environ.get("PARITY_FAILURE_DIR", "parity-failures"))
    out.mkdir(parents=True, exist_ok=True)
    blob = {
        "test_module": "tests/integration/test_columnar_parity.py",
        "churn": churn,
        "params": params,
        "digest_columnar": _digest(columnar),
        "digest_objects": _digest(objects),
        "reproduce": (
            "_assert_parity(%r, churn=%r)  # or add as @example" % (params, churn)
        ),
    }
    tag = hashlib.sha256(
        json.dumps(blob, sort_keys=True).encode()
    ).hexdigest()[:12]
    (out / f"repro-{tag}.json").write_text(
        json.dumps(blob, indent=2, sort_keys=True) + "\n"
    )
    (out / f"first-difference-{tag}.txt").write_text(
        f"params: {params!r}\nchurn: {churn}\nfirst difference: {diff}\n"
    )


def _assert_parity(params, churn=False):
    try:
        columnar = _capture(params, batched=True, churn=churn)
        objects = _capture(params, batched=False, churn=churn)
    except InsufficientResourcesError:
        # The drawn churn schedule oversubscribed the little cluster —
        # a scenario-capacity limit, not a parity property.  Discard
        # the example (both paths would raise at the same tick).
        assume(False)
    # The digest compares JSON reprs (float bit patterns); the direct
    # comparison confirms the structures agree too, catching a
    # hypothetical repr collision.
    if _digest(columnar) == _digest(objects) and columnar == objects:
        return
    diff = _first_difference(columnar, objects) or (
        "digests differ but structures compare equal (repr-level difference)"
    )
    _record_failure(params, churn, diff, columnar, objects)
    raise AssertionError(diff)


class TestColumnarDifferentialParity:
    @settings(max_examples=8, **_SETTINGS)
    @given(params=FLEET_PARAMS)
    @example(params={"apps": 20, "ticks": 36, "seed": 2023, "mix": "balanced"})
    @example(params={"apps": 3, "ticks": 5, "seed": 0, "mix": "agnostic"})
    def test_static_fleet_surfaces_byte_identical(self, params):
        """Randomized static fleets: all four surfaces, both paths."""
        _assert_parity(params)

    @settings(max_examples=5, **_SETTINGS)
    @given(params=CHURN_PARAMS)
    @example(
        params={
            "apps": 8,
            "ticks": 24,
            "seed": 2023,
            "mix": "balanced",
            "admit_rate": 0.8,
            "evict_rate": 0.25,
        }
    )
    def test_churn_fleet_surfaces_byte_identical(self, params):
        """Admit/evict/set_share churn mid-run: rows retire and respawn
        without perturbing a single byte of any surface."""
        _assert_parity(params, churn=True)


class TestHarnessSensitivity:
    """The harness itself must be able to see a difference."""

    def test_digest_differs_across_seeds(self):
        base = {"apps": 6, "ticks": 8, "seed": 1, "mix": "balanced"}
        a = _capture(base, batched=True)
        b = _capture({**base, "seed": 2}, batched=True)
        assert _digest(a) != _digest(b)

    def test_first_difference_locates_field(self):
        a = {"states": [{"app": {"x": 1.0}}]}
        b = {"states": [{"app": {"x": 1.5}}]}
        message = _first_difference(a, b)
        assert "states" in message and "'x'" in message and "1.5" in message

    def test_failure_recorder_writes_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PARITY_FAILURE_DIR", str(tmp_path / "pf"))
        a = {"states": [{"app": {"x": 1.0}}]}
        b = {"states": [{"app": {"x": 1.5}}]}
        _record_failure({"apps": 3}, False, _first_difference(a, b), a, b)
        files = sorted(p.name for p in (tmp_path / "pf").iterdir())
        assert len(files) == 2
        repro = next(f for f in files if f.startswith("repro-"))
        report = next(f for f in files if f.startswith("first-difference-"))
        blob = json.loads((tmp_path / "pf" / repro).read_text())
        assert blob["params"] == {"apps": 3}
        assert blob["digest_columnar"] != blob["digest_objects"]
        assert "1.5" in (tmp_path / "pf" / report).read_text()
