"""Golden parity: legacy getter path vs snapshot path, byte-identical.

One scenario per policy family, run twice: once with the ported
snapshot-reading policy, once with a *legacy twin* — the pre-v1
implementation of the same policy, overriding ``on_tick(self, tick)``
with the old single-argument signature and issuing the deprecated
Table 1 getter calls.  The twins exercise both halves of the back-compat
story at once (the arity shim and the getter delegation); the sweep
tables (carbon, cost, energy, runtime) must match bit-for-bit.
"""

from repro.carbon.forecast import OracleForecaster
from repro.carbon.traces import make_region_trace
from repro.core.config import ShareConfig
from repro.market.prices import make_price_trace
from repro.policies.battery import DynamicSparkBatteryPolicy
from repro.policies.price_threshold import PriceThresholdPolicy
from repro.policies.rate_limit import CarbonRateLimitPolicy
from repro.policies.solar_matching import StaticSolarCapPolicy
from repro.policies.wait_and_scale import WaitAndScalePolicy
from repro.sim.experiment import (
    UNLIMITED_GRID_SHARE,
    carbon_threshold,
    grid_environment,
    solar_battery_environment,
)
from repro.workloads.base import BatchJob
from repro.workloads.parallel import ParallelJob
from repro.workloads.spark import SparkJob


class _UnitJob(BatchJob):
    """Unit-throughput batch job for the threshold-family scenarios."""

    def throughput_units_per_s(self, effective_utilizations):
        return sum(effective_utilizations)


# ----------------------------------------------------------------------
# Legacy twins: single-arg on_tick + deprecated getters (pre-v1 bodies)
# ----------------------------------------------------------------------
class LegacyWaitAndScale(WaitAndScalePolicy):
    def on_tick(self, tick):
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        intensity = self.api.get_grid_carbon()
        target = 0 if intensity > self._threshold else self.scaled_workers
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores, self._gpu)


class LegacyPriceThreshold(PriceThresholdPolicy):
    def on_tick(self, tick):
        self._forecaster.observe(tick.start_s)
        self._maybe_refresh(tick.start_s)
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        price = self.api.get_grid_price()
        assert self._threshold is not None
        target = 0 if price > self._threshold else self.scaled_workers
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores)


class LegacyRateLimit(CarbonRateLimitPolicy):
    def _legacy_measured_worker_power_w(self) -> float:
        workers = [c for c in self.api.list_containers() if c.role == "worker"]
        if not workers:
            return self._worker_power_w
        total = sum(self.api.get_container_power(c.id) for c in workers)
        per_worker = total / len(workers)
        floor = 0.1 * self._worker_power_w
        return max(per_worker, floor)

    def on_tick(self, tick):
        from repro.core.units import power_for_carbon_rate

        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        allowance_w = power_for_carbon_rate(self._rate, self.api.get_grid_carbon())
        target = int(allowance_w // self._legacy_measured_worker_power_w())
        target = max(self._min_workers, min(self._max_workers, target))
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores)


class LegacySparkBattery(DynamicSparkBatteryPolicy):
    def on_tick(self, tick):
        app = self.app
        if app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        if not self.api.get_solar_power() > self._day_threshold_w:
            if self._was_day and isinstance(app, SparkJob):
                total = self.current_worker_count()
                if total > 0:
                    app.kill_workers(total, total, tick.start_s)
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            self._surge_workers = 0
            self._was_day = False
            return
        self._was_day = True
        solar_w = self.api.get_solar_power()
        level = self.api.get_battery_charge_level()
        capacity = self.api.get_battery_capacity()
        battery_nearly_full = (
            capacity > 0 and level / capacity >= self._battery_full_fraction
        )
        base_demand_w = self._base_workers * self._worker_power_w
        target = self._base_workers
        if battery_nearly_full and solar_w > base_demand_w + self._worker_power_w:
            extra = int((solar_w - base_demand_w) // self._worker_power_w)
            target = min(self._max_workers, self._base_workers + extra)
        current = self.current_worker_count()
        if target < current and isinstance(app, SparkJob):
            app.kill_workers(current - target, current, tick.start_s)
        if target != current:
            self.scale_workers(target, self._cores)
        self._surge_workers = max(0, target - self._base_workers)


class LegacySolarCap(StaticSolarCapPolicy):
    def on_tick(self, tick):
        if self._stop_if_complete():
            return
        containers = self.api.list_containers()
        if not containers:
            return
        cap_w = self.api.get_solar_power() / len(containers)
        for container in containers:
            self.api.set_container_powercap(container.id, cap_w)


# ----------------------------------------------------------------------
# Scenario runners: build env fresh, run, return the sweep-table row
# ----------------------------------------------------------------------
def _table_row(env, app):
    account = env.ecovisor.ledger.account(app.name)
    return (
        account.carbon_g,
        account.cost_usd,
        account.energy_wh,
        account.solar_wh,
        account.battery_wh,
        account.grid_wh,
        account.unmet_wh,
        app.completion_time_s,
        app.is_complete,
    )


def _run_threshold(policy_cls):
    trace = make_region_trace("caiso", days=2, seed=7)
    env = grid_environment(trace=trace)
    app = _UnitJob("job", total_work_units=150000.0)
    threshold = carbon_threshold(trace, 40.0)
    policy = policy_cls(threshold, base_workers=2, scale_factor=2.0)
    env.engine.add_application(app, UNLIMITED_GRID_SHARE, policy)
    env.engine.run(900, stop_when_batch_complete=True)
    return _table_row(env, app)


def _run_price(policy_cls):
    trace = make_region_trace("caiso", days=2, seed=11)
    price = make_price_trace("realtime", days=2, seed=11)
    env = grid_environment(trace=trace, price_trace=price)
    app = _UnitJob("job", total_work_units=120000.0)
    policy = policy_cls(
        OracleForecaster(env.price_signal),
        percentile=40.0,
        window_s=24 * 3600.0,
        base_workers=2,
        scale_factor=2.0,
    )
    env.engine.add_application(app, UNLIMITED_GRID_SHARE, policy)
    env.engine.run(900, stop_when_batch_complete=True)
    return _table_row(env, app)


def _run_rate_limit(policy_cls):
    trace = make_region_trace("caiso", days=1, seed=3)
    env = grid_environment(trace=trace)
    app = _UnitJob("web", total_work_units=1e9)  # effectively a service
    policy = policy_cls(
        target_rate_mg_per_s=0.8, worker_power_w=2.0, max_workers=8
    )
    env.engine.add_application(app, UNLIMITED_GRID_SHARE, policy)
    env.engine.run(240)
    return _table_row(env, app)


def _run_spark_battery(policy_cls):
    env = solar_battery_environment(
        solar_peak_w=60.0, battery_capacity_wh=120.0, days=2, seed=5
    )
    app = SparkJob("spark", total_work_units=250000.0)
    policy = policy_cls(base_workers=2, worker_power_w=4.0, max_workers=8)
    env.engine.add_application(
        app,
        ShareConfig(solar_fraction=1.0, battery_fraction=1.0),
        policy,
    )
    env.engine.run(1200, stop_when_batch_complete=True)
    return _table_row(env, app)


def _run_solar_cap(policy_cls):
    env = solar_battery_environment(
        solar_peak_w=40.0, battery_capacity_wh=50.0, days=1, seed=9
    )
    app = ParallelJob("par", num_tasks=4, num_rounds=6, seed=13)
    policy = policy_cls()
    env.engine.add_application(
        app, ShareConfig(solar_fraction=1.0), policy
    )
    env.engine.run(600, stop_when_batch_complete=True)
    return _table_row(env, app)


# ----------------------------------------------------------------------
# The golden assertions: one per policy family
# ----------------------------------------------------------------------
class TestGoldenParity:
    def test_threshold_family(self):
        assert _run_threshold(WaitAndScalePolicy) == _run_threshold(
            LegacyWaitAndScale
        )

    def test_market_family(self):
        snapshot = _run_price(PriceThresholdPolicy)
        legacy = _run_price(LegacyPriceThreshold)
        assert snapshot == legacy
        assert snapshot[1] > 0.0  # the scenario actually billed cost

    def test_rate_limit_family(self):
        assert _run_rate_limit(CarbonRateLimitPolicy) == _run_rate_limit(
            LegacyRateLimit
        )

    def test_battery_family(self):
        snapshot = _run_spark_battery(DynamicSparkBatteryPolicy)
        legacy = _run_spark_battery(LegacySparkBattery)
        assert snapshot == legacy
        assert snapshot[4] > 0.0  # battery energy actually flowed

    def test_solar_cap_family(self):
        snapshot = _run_solar_cap(StaticSolarCapPolicy)
        legacy = _run_solar_cap(LegacySolarCap)
        assert snapshot == legacy
        assert snapshot[3] > 0.0  # solar energy actually flowed
