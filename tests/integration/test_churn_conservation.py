"""Energy/cost conservation across tenant churn (control plane v1.1).

The fleet_churn scenario admits, rebalances, and evicts tenants mid-run.
These tests pin the lifecycle's accounting invariants every tick:

- the ledger's cluster totals equal the sum of per-app accounts
  *including evicted apps' finalized accounts*;
- the plant-side grid and solar meters agree with the ledger's summed
  per-app flows (the physical world and the books reconcile);
- an evicted app's finalized account never changes again, and its
  terminal AppEvictedEvent carries exactly the finalized figures.
"""

import pytest

from repro.core.events import AppEvictedEvent
from repro.sim.fleet import build_churn_fleet

CHURN_PARAMS = {
    "apps": 12,
    "ticks": 40,
    "seed": 2023,
    "mix": "balanced",
    "admit_rate": 0.6,
    "evict_rate": 0.5,
}


@pytest.fixture(scope="module")
def churn_run():
    """One churn fleet driven with per-tick conservation probes."""
    fleet = build_churn_fleet(dict(CHURN_PARAMS))
    ecovisor = fleet.ecovisor
    ledger = fleet.ecovisor.ledger
    plant = fleet.ecovisor.plant
    eviction_events = []
    ecovisor.events.subscribe(AppEvictedEvent, eviction_events.append)

    per_tick = []

    def probe(tick):
        accounts = [ledger.account(name) for name in ledger.app_names()]
        per_tick.append(
            {
                "tick": tick.index,
                "apps": len(ecovisor.app_names()),
                "ledger_energy_wh": ledger.total_energy_wh(),
                "sum_energy_wh": sum(a.energy_wh for a in accounts),
                "ledger_cost_usd": ledger.total_cost_usd(),
                "sum_cost_usd": sum(a.cost_usd for a in accounts),
                "ledger_carbon_g": ledger.total_carbon_g(),
                "sum_carbon_g": sum(a.carbon_g for a in accounts),
                "sum_grid_wh": sum(a.grid_wh for a in accounts),
                "meter_grid_wh": plant.grid.total_energy_wh,
                "sum_solar_wh": sum(
                    s.solar_used_wh + s.solar_to_battery_wh
                    for a in accounts
                    for s in a.settlements
                ),
                "meter_solar_wh": plant.solar.total_energy_wh,
            }
        )

    fleet.engine.add_observer(probe)
    executed = fleet.engine.run(CHURN_PARAMS["ticks"])
    return {
        "fleet": fleet,
        "executed": executed,
        "per_tick": per_tick,
        "eviction_events": eviction_events,
    }


class TestChurnConservation:
    def test_churn_actually_happened(self, churn_run):
        evicted = churn_run["fleet"].engine.evicted_accounts
        assert len(evicted) >= 3
        populations = {row["apps"] for row in churn_run["per_tick"]}
        assert len(populations) > 1  # the tenant count really varied

    def test_ledger_totals_equal_account_sum_every_tick(self, churn_run):
        for row in churn_run["per_tick"]:
            assert row["ledger_energy_wh"] == pytest.approx(
                row["sum_energy_wh"], abs=1e-9
            ), f"tick {row['tick']}"
            assert row["ledger_cost_usd"] == pytest.approx(
                row["sum_cost_usd"], abs=1e-12
            )
            assert row["ledger_carbon_g"] == pytest.approx(
                row["sum_carbon_g"], abs=1e-9
            )

    def test_grid_meter_reconciles_every_tick(self, churn_run):
        for row in churn_run["per_tick"]:
            assert row["meter_grid_wh"] == pytest.approx(
                row["sum_grid_wh"], rel=1e-9, abs=1e-9
            ), f"tick {row['tick']}"

    def test_solar_meter_reconciles_every_tick(self, churn_run):
        for row in churn_run["per_tick"]:
            assert row["meter_solar_wh"] == pytest.approx(
                row["sum_solar_wh"], rel=1e-9, abs=1e-9
            ), f"tick {row['tick']}"

    def test_totals_are_monotone_across_evictions(self, churn_run):
        energies = [row["ledger_energy_wh"] for row in churn_run["per_tick"]]
        assert all(b >= a - 1e-12 for a, b in zip(energies, energies[1:]))
        assert energies[-1] > 0.0

    def test_evicted_accounts_frozen_at_their_terminal_event(self, churn_run):
        ledger = churn_run["fleet"].ecovisor.ledger
        assert churn_run["eviction_events"]
        for event in churn_run["eviction_events"]:
            account = ledger.account(event.app_name)
            assert account.finalized
            # The account never moved after the terminal event was cut.
            assert account.energy_wh == event.energy_wh
            assert account.carbon_g == event.carbon_g
            assert account.cost_usd == event.cost_usd

    def test_shares_never_oversubscribed(self, churn_run):
        ecovisor = churn_run["fleet"].ecovisor
        assert 0.0 <= ecovisor.allocated_solar_fraction <= 1.0 + 1e-9
        assert 0.0 <= ecovisor.allocated_battery_fraction <= 1.0 + 1e-9

    def test_rebalanced_tenants_exist(self, churn_run):
        # The schedule grants solar+battery micro-shares to a subset of
        # dynamic tenants; at least one must have gone through set_share.
        shares = churn_run["fleet"].ecovisor.app_shares()
        dynamic_with_share = [
            name
            for name, share in shares.items()
            if name.startswith("churn-") and share.solar_fraction > 0.0
        ]
        evicted_with_share = [
            e for e in churn_run["eviction_events"] if e.app_name.startswith("churn-")
        ]
        assert dynamic_with_share or evicted_with_share

    def test_run_is_deterministic(self, churn_run):
        fleet = build_churn_fleet(dict(CHURN_PARAMS))
        fleet.engine.run(CHURN_PARAMS["ticks"])
        ledger = fleet.ecovisor.ledger
        reference = churn_run["fleet"].ecovisor.ledger
        assert ledger.total_energy_wh() == reference.total_energy_wh()
        assert ledger.total_cost_usd() == reference.total_cost_usd()
        assert ledger.app_names() == reference.app_names()
