"""Integration: Figure 4 policy orderings at reduced repetition count.

Runs the calibrated per-figure experiments (the same code the benchmarks
use) with 6 of the paper's 10 repetitions and asserts the qualitative
results.  Thresholds are set for the 6-rep scale; the benchmarks report
the full 10-rep numbers.
"""

import pytest

from repro.analysis.figures_batch import fig04a_ml_training, fig04b_blast


@pytest.fixture(scope="module")
def ml():
    summaries = fig04a_ml_training(reps=6)
    return {s.policy_label: s for s in summaries}


@pytest.fixture(scope="module")
def blast():
    summaries = fig04b_blast(reps=6)
    return {s.policy_label: s for s in summaries}


class TestFig4aML:
    def test_all_policies_complete(self, ml):
        for summary in ml.values():
            assert summary.completion_rate == 1.0

    def test_agnostic_is_fastest(self, ml):
        agnostic = ml["CO2-agnostic"]
        for label in ("System Policy", "W&S (2X)", "W&S (3X)"):
            assert ml[label].mean_runtime_s > agnostic.mean_runtime_s

    def test_suspend_resume_cuts_carbon_substantially(self, ml):
        """Paper: -24.5%."""
        change = ml["System Policy"].carbon_change_vs(ml["CO2-agnostic"])
        assert change < -0.15

    def test_suspend_resume_inflates_runtime_severely(self, ml):
        """Paper: 7.4x; at this scale we require > 2.5x."""
        assert ml["System Policy"].runtime_ratio_vs(ml["CO2-agnostic"]) > 2.5

    def test_ws2_dominates_suspend_resume_on_runtime(self, ml):
        """Paper: 2.58x vs 7.4x."""
        assert ml["W&S (2X)"].mean_runtime_s < ml["System Policy"].mean_runtime_s

    def test_ws2_carbon_comparable_to_suspend_resume(self, ml):
        """Within ~15 percentage points of suspend/resume's reduction."""
        suspend = ml["System Policy"].carbon_change_vs(ml["CO2-agnostic"])
        ws2 = ml["W&S (2X)"].carbon_change_vs(ml["CO2-agnostic"])
        assert abs(ws2 - suspend) < 0.15

    def test_ws3_emits_more_than_ws2(self, ml):
        """Over-scaling synchronous SGD burns carbon (paper: +14.94%)."""
        assert ml["W&S (3X)"].mean_carbon_g > ml["W&S (2X)"].mean_carbon_g * 1.05

    def test_ws3_no_faster_in_proportion(self, ml):
        """Paper: only -12.3% runtime for +50% workers."""
        ratio = ml["W&S (3X)"].mean_runtime_s / ml["W&S (2X)"].mean_runtime_s
        assert 0.75 < ratio <= 1.01


class TestFig4bBlast:
    def test_all_complete(self, blast):
        for summary in blast.values():
            assert summary.completion_rate == 1.0

    def test_suspend_resume_cuts_carbon(self, blast):
        """Paper: -25.01%."""
        change = blast["System Policy"].carbon_change_vs(blast["CO2-agnostic"])
        assert change < -0.15

    def test_suspend_resume_inflates_runtime(self, blast):
        """Paper: 5.1x; direction at this scale."""
        assert blast["System Policy"].runtime_ratio_vs(
            blast["CO2-agnostic"]
        ) > 1.5

    def test_ws_runtime_strictly_improves_with_scale_to_3x(self, blast):
        assert (
            blast["W&S (3X)"].mean_runtime_s
            < blast["W&S (2X)"].mean_runtime_s
            < blast["System Policy"].mean_runtime_s
        )

    def test_ws3_much_faster_than_suspend_resume(self, blast):
        """Paper: -83.4%; we require at least -40% at this scale."""
        ratio = (
            blast["W&S (3X)"].mean_runtime_s
            / blast["System Policy"].mean_runtime_s
        )
        assert ratio < 0.6

    def test_ws_carbon_not_worse_than_suspend_resume_up_to_3x(self, blast):
        """Linear scaling keeps energy flat, so carbon stays comparable
        (the paper reports it *improves*)."""
        suspend = blast["System Policy"].mean_carbon_g
        assert blast["W&S (2X)"].mean_carbon_g <= suspend * 1.1
        assert blast["W&S (3X)"].mean_carbon_g <= suspend * 1.1

    def test_queue_bottleneck_at_4x(self, blast):
        """Paper: runtime flat, carbon rises at 4x."""
        assert blast["W&S (4X)"].mean_runtime_s == pytest.approx(
            blast["W&S (3X)"].mean_runtime_s, rel=0.02
        )
        assert (
            blast["W&S (4X)"].mean_carbon_g
            > blast["W&S (3X)"].mean_carbon_g * 1.1
        )
