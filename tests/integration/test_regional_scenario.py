"""The ``regional`` scenario: offline determinism, provenance, fast path."""

import numpy as np
import pytest

from repro.analysis.figures_regional import regional_summary_rows
from repro.sim import scenarios
from repro.sim.runner import run_sweep

#: A reduced matrix so the determinism checks stay fast: two regions,
#: two policies, solar-only generation (4 runs per sweep).
SMALL = {
    "region": ["caiso-2022", "ontario-2022"],
    "policy": ["agnostic", "wait-and-scale"],
    "generation": "solar",
}


class TestRegionalDeterminism:
    def test_serial_parallel_and_repeat_are_byte_identical(self, monkeypatch):
        # The scenario must not reach for the network even implicitly.
        monkeypatch.setenv("REPRO_OFFLINE", "1")
        serial = run_sweep("regional", overrides=SMALL, jobs=1)
        parallel = run_sweep("regional", overrides=SMALL, jobs=2)
        repeat = run_sweep("regional", overrides=SMALL, jobs=1)
        assert not serial.failures()
        assert serial.metrics_json() == parallel.metrics_json()
        assert serial.metrics_json() == repeat.metrics_json()

    def test_all_runs_complete_and_state_their_provenance(self):
        sweep = run_sweep("regional", overrides=SMALL, jobs=1)
        for result in sweep:
            assert result.ok, result.error
            assert result.metrics["completed"] == 1.0
            assert result.metrics["carbon_dataset"] == (
                result.spec.params["region"]
            )
            assert len(result.metrics["carbon_checksum"]) == 64


class TestDatasetProvenanceInHashes:
    def test_regional_specs_carry_dataset_checksums(self):
        from repro.providers.registry import DATASETS

        spec = scenarios.expand("regional")[0]
        provenance = spec.dataset_provenance
        region = spec.params["region"]
        assert provenance["region"]["dataset"] == region
        assert provenance["region"]["sha256"] == DATASETS[region].sha256
        # The generation spec contributes its capacity-factor datasets.
        assert any(key.startswith("generation") for key in provenance)

    def test_hash_distinguishes_datasets(self):
        specs = scenarios.expand("regional")
        hashes = {spec.config_hash for spec in specs}
        assert len(hashes) == len(specs)

    def test_non_dataset_scenarios_keep_clean_payloads(self):
        spec = scenarios.expand("smoke")[0]
        assert spec.dataset_provenance == {}


class TestRegionalFastPath:
    def test_dataset_backed_hybrid_plant_vectorizes_bit_exactly(self):
        """Provider-resolved signals ride the tracecache numpy fast path."""
        from repro.core.config import SolarConfig, WindConfig
        from repro.core.tracecache import build_signal_cache
        from repro.energy.grid import GridConnection
        from repro.energy.solar import SolarArrayEmulator
        from repro.energy.system import PhysicalEnergySystem
        from repro.energy.wind import WindPlant
        from repro.providers.registry import (
            resolve_carbon_trace,
            resolve_generation,
            resolve_price_trace,
        )
        from repro.sim.experiment import DEFAULT_CLUSTER, _wire

        solar_trace, wind_trace = resolve_generation("wind+solar")
        plant = PhysicalEnergySystem(
            grid=GridConnection(),
            solar=SolarArrayEmulator(
                SolarConfig(peak_power_w=100.0), solar_trace
            ),
            wind=WindPlant(WindConfig(rated_power_w=100.0), wind_trace),
        )
        env = _wire(
            plant,
            resolve_carbon_trace("caiso-2022"),
            DEFAULT_CLUSTER,
            60.0,
            resolve_price_trace("caiso-dayahead-2022"),
        )
        times = np.arange(400) * 60.0
        cache = build_signal_cache(
            env.plant, env.carbon_service, env.price_signal, 0, times
        )
        for i, t in enumerate(times):
            assert cache.carbon[i] == env.carbon_service.intensity_at(float(t))
            assert cache.price[i] == env.price_signal.price_at(float(t))
            assert cache.solar_w[i] == env.plant.renewable_power_w(float(t))

    def test_wind_array_builder_engages_for_stock_types(self):
        from repro.core.config import WindConfig
        from repro.core.tracecache import _stock_wind_array
        from repro.energy.wind import WindPlant
        from repro.providers.registry import resolve_generation

        _, wind_trace = resolve_generation("wind")
        plant = WindPlant(WindConfig(rated_power_w=100.0), wind_trace)
        times = np.arange(100) * 60.0
        vectorized = _stock_wind_array(plant, times)
        assert vectorized is not None  # fast path, not scalar fallback
        for i, t in enumerate(times):
            assert vectorized[i] == plant.available_power_w(float(t))


class TestSummaryRows:
    def test_reduction_is_relative_to_same_key_agnostic(self):
        table = [
            {
                "region": "caiso-2022",
                "generation": "solar",
                "policy": "agnostic",
                "carbon_g": 10.0,
                "runtime_s": 100.0,
                "completed": 1.0,
                "carbon_dataset": "caiso-2022",
                "carbon_checksum": "a" * 64,
            },
            {
                "region": "caiso-2022",
                "generation": "solar",
                "policy": "wait-and-scale",
                "carbon_g": 4.0,
                "runtime_s": 150.0,
                "completed": 1.0,
                "carbon_dataset": "caiso-2022",
                "carbon_checksum": "a" * 64,
            },
        ]
        rows = regional_summary_rows(table)
        by_policy = {r["policy"]: r for r in rows}
        assert by_policy["agnostic"]["carbon_reduction_vs_agnostic"] == 0.0
        assert by_policy["wait-and-scale"][
            "carbon_reduction_vs_agnostic"
        ] == pytest.approx(0.6)

    def test_unknown_policy_raises_value_error(self):
        from repro.analysis.figures_regional import run_regional_case

        with pytest.raises(ValueError, match="unknown regional policy"):
            run_regional_case("caiso-2022", "nope")
