"""Integration: Figure 10/11 solar-exploitation shapes (coarse sweeps)."""

import pytest

from repro.analysis.figures_solar import (
    fig10_solar_caps,
    fig11_straggler_mitigation,
)


@pytest.fixture(scope="module")
def fig10_rows():
    return fig10_solar_caps(percentages=(20, 50, 80))


@pytest.fixture(scope="module")
def fig11_rows():
    return fig11_straggler_mitigation(percentages=(100, 150, 200))


class TestFig10:
    def test_all_runs_complete(self, fig10_rows):
        for row in fig10_rows:
            assert row["static_completed"] == 1.0
            assert row["dynamic_completed"] == 1.0

    def test_dynamic_never_slower(self, fig10_rows):
        for row in fig10_rows:
            assert row["runtime_improvement_pct"] >= -1.0

    def test_improvement_grows_as_solar_shrinks(self, fig10_rows):
        """Paper: 'as solar energy decreases, the importance of
        dynamically balancing power to reduce runtime increases'."""
        improvements = [r["runtime_improvement_pct"] for r in fig10_rows]
        assert improvements[0] > improvements[-1]

    def test_energy_efficiency_rises_with_solar(self, fig10_rows):
        efficiencies = [r["energy_efficiency_per_j"] for r in fig10_rows]
        assert efficiencies == sorted(efficiencies)


class TestFig11:
    def test_all_runs_complete(self, fig11_rows):
        for row in fig11_rows:
            assert row["baseline_completed"] == 1.0
            assert row["replicas_completed"] == 1.0

    def test_no_improvement_without_excess(self, fig11_rows):
        at_100 = fig11_rows[0]
        assert at_100["solar_pct"] == 100.0
        assert abs(at_100["runtime_improvement_pct"]) < 5.0

    def test_excess_solar_buys_runtime(self, fig11_rows):
        at_150 = fig11_rows[1]
        assert at_150["runtime_improvement_pct"] > 10.0

    def test_diminishing_returns(self, fig11_rows):
        """Going 150% -> 200% adds little (at most one replica finishes)."""
        gain_150 = fig11_rows[1]["runtime_improvement_pct"]
        gain_200 = fig11_rows[2]["runtime_improvement_pct"]
        assert gain_200 - gain_150 < gain_150

    def test_energy_efficiency_declines_with_excess(self, fig11_rows):
        efficiencies = [r["energy_efficiency_per_j"] for r in fig11_rows]
        assert efficiencies[-1] <= efficiencies[0]
