"""Fallback parity: batch-incompatible tenants inside a batched fleet.

The vectorized upcall plane (:mod:`repro.core.upcalls`) routes each
tenant either through a grouped per-class kernel or through the per-app
reference path.  The routing rules are conservative — a policy subclass
that does not re-opt-in with ``batch_compatible`` in its *own* class
body falls back, as does any legacy single-argument ``on_tick``
registered through the arity shim.  This module pins the property the
rules exist for: a **mixed** fleet, where some tenants take the batch
kernels and others take the fallback path in the same tick, produces
byte-identical observables to the fully-unbatched reference run.

Three fallback shapes ride inside an otherwise-batched fleet:

- a bare subclass of a stock batch-compatible policy (identical
  behavior, but the opt-in flag deliberately does not inherit),
- a legacy policy overriding ``on_tick(self, tick)`` (arity-1, shimmed),
- a second legacy tenant admitted mid-run and evicted again later, so
  the plane regroups around a fallback app coming and going.

The batched run's tick profiler must show *both* ``policy_batch`` and
``policy_fallback`` time — otherwise the fleet silently collapsed onto
one path and the test proves nothing.
"""

from repro.cluster.container import reset_container_id_counter
from repro.core.clock import TickInfo
from repro.core.config import ShareConfig
from repro.policies import SuspendResumePolicy
from repro.policies.base import Policy
from repro.sim.fleet import build_fleet
from repro.workloads.mltrain import MLTrainingJob

from tests.integration.test_columnar_parity import (
    _digest,
    _first_difference,
    collect_surfaces,
)

#: Mid-range caiso carbon intensity: the shadow suspend/resume tenant
#: sees both sides of the threshold over the run.
CARBON_THRESHOLD = 350.0

PARAMS = {"apps": 9, "ticks": 40, "seed": 2023, "mix": "balanced"}
ADMIT_TICK = 8
EVICT_TICK = 24


class ShadowSuspendPolicy(SuspendResumePolicy):
    """Byte-for-byte the stock policy — but a *subclass*, so the plane
    must route it to the per-app fallback path (``batch_compatible`` is
    checked on the class's own ``__dict__`` and does not inherit)."""


class LegacyStepPolicy(Policy):
    """Pre-v1 controller: single-argument ``on_tick`` via the arity shim.

    Deterministically steps its worker pool 1 <-> 2 on a fixed period so
    the fallback path exercises real scaling actions, not just no-ops.
    """

    def __init__(self, period: int = 5):
        super().__init__()
        self._period = period

    def on_attach(self) -> None:
        self.scale_workers(1)

    def on_tick(self, tick: TickInfo) -> None:  # legacy arity-1 shape
        want = 2 if (tick.index // self._period) % 2 else 1
        if self.current_worker_count() != want:
            self.scale_workers(want)


def _capture(batched):
    """One mixed fleet down one engine path: surfaces + phase totals."""
    reset_container_id_counter()
    fleet = build_fleet({**PARAMS, "batched": batched})
    engine = fleet.engine
    ecovisor = fleet.ecovisor
    grid_only = ShareConfig(grid_power_w=float("inf"))
    minute = 60.0

    engine.add_application(
        MLTrainingJob(name="shadow-suspend", total_work_units=30 * minute),
        grid_only,
        ShadowSuspendPolicy(CARBON_THRESHOLD, 1),
    )
    engine.add_application(
        MLTrainingJob(name="legacy-static", total_work_units=35 * minute),
        grid_only,
        LegacyStepPolicy(),
    )
    # A fallback tenant that arrives and departs mid-run: the plane must
    # regroup (and the columnar rows retire) around a per-app-path app.
    engine.schedule_admission(
        ADMIT_TICK,
        MLTrainingJob(name="legacy-churn", total_work_units=10 * minute),
        grid_only,
        LegacyStepPolicy(period=3),
    )
    engine.schedule_eviction(EVICT_TICK, "legacy-churn")

    engine.profiler.enabled = True
    states = []

    def observer(tick):
        states.append(
            {
                name: ecovisor.state_for(name).to_dict()
                for name in ecovisor.app_names()
            }
        )

    engine.add_observer(observer)
    engine.run(int(PARAMS["ticks"]))
    return collect_surfaces(ecovisor, states), engine.profiler.phase_totals()


class TestFallbackParity:
    def test_opt_in_flag_does_not_inherit(self):
        """The routing predicate the fallback tenants rely on."""
        assert SuspendResumePolicy.__dict__.get("batch_compatible") is True
        assert "batch_compatible" not in ShadowSuspendPolicy.__dict__
        assert "batch_compatible" not in LegacyStepPolicy.__dict__

    def test_mixed_fleet_surfaces_byte_identical(self):
        mixed, phases = _capture(batched=True)
        reference, _ = _capture(batched=False)

        # The mixed run must actually have been mixed: grouped kernels
        # for the stock tenants AND per-app fallbacks for ours.
        assert phases["policy_batch"] > 0.0
        assert phases["policy_fallback"] > 0.0

        if _digest(mixed) == _digest(reference) and mixed == reference:
            return
        diff = _first_difference(mixed, reference) or (
            "digests differ but structures compare equal"
        )
        raise AssertionError(diff)

    def test_churn_tenant_lived_and_left(self):
        """The mid-run tenant really joined, journaled, and was evicted."""
        surfaces, _ = _capture(batched=True)
        final_states = surfaces["states"][-1]
        assert "legacy-churn" not in final_states
        assert "legacy-churn" in surfaces["accounts"]
        assert surfaces["accounts"]["legacy-churn"]["energy_wh"] > 0.0
        assert "legacy-churn" in surfaces["journals"]
        mid_states = surfaces["states"][ADMIT_TICK + 1]
        assert "legacy-churn" in mid_states
