"""Integration: the README quickstart flow end to end."""

import pytest

from repro.core import AppEnergyLibrary
from repro.policies import WaitAndScalePolicy
from repro.sim import UNLIMITED_GRID_SHARE, grid_environment
from repro.sim.experiment import carbon_threshold
from repro.workloads import MLTrainingJob


class TestQuickstart:
    def test_full_flow(self):
        env = grid_environment(region="caiso", days=2)
        job = MLTrainingJob(total_work_units=10000.0)
        threshold = carbon_threshold(env.carbon_service.trace, 30.0)
        env.engine.add_application(
            job, UNLIMITED_GRID_SHARE, WaitAndScalePolicy(threshold, 4, 2.0)
        )
        env.engine.run(2 * 24 * 60, stop_when_batch_complete=True)
        assert job.is_complete
        assert job.completion_time_s is not None
        assert env.ecovisor.ledger.app_carbon_g(job.name) > 0

    def test_library_over_quickstart(self):
        env = grid_environment(region="caiso", days=1)
        job = MLTrainingJob(total_work_units=5000.0)
        threshold = carbon_threshold(env.carbon_service.trace, 50.0)
        api = env.engine.add_application(
            job, UNLIMITED_GRID_SHARE, WaitAndScalePolicy(threshold, 4, 2.0)
        )
        library = AppEnergyLibrary(api)
        env.engine.run(24 * 60, stop_when_batch_complete=True)
        assert library.get_app_carbon() == pytest.approx(
            env.ecovisor.ledger.app_carbon_g(job.name)
        )
        horizon = env.engine.clock.now_s
        assert library.get_app_energy(0.0, horizon) > 0

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            env = grid_environment(region="caiso", days=1, seed=7)
            job = MLTrainingJob(total_work_units=5000.0)
            threshold = carbon_threshold(env.carbon_service.trace, 40.0)
            env.engine.add_application(
                job, UNLIMITED_GRID_SHARE, WaitAndScalePolicy(threshold, 4, 2.0)
            )
            env.engine.run(24 * 60, stop_when_batch_complete=True)
            results.append(
                (job.completion_time_s, env.ecovisor.ledger.app_carbon_g(job.name))
            )
        assert results[0] == results[1]
