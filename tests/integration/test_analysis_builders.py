"""Integration: remaining analysis-builder surfaces."""

import pytest

from repro.analysis.figures_batch import fig01_carbon_traces
from repro.analysis.figures_solar import fig10_day_series


class TestFig01Bundle:
    def test_three_regions_present(self):
        bundle = fig01_carbon_traces(days=1)
        assert bundle.names() == ["caiso", "ontario", "uruguay"]

    def test_five_minute_sampling(self):
        bundle = fig01_carbon_traces(days=1)
        times = [t for t, _ in bundle.series["caiso"]]
        assert times[1] - times[0] == pytest.approx(300.0)
        assert len(times) == 288  # one day of 5-minute samples

    def test_deterministic(self):
        a = fig01_carbon_traces(days=1)
        b = fig01_carbon_traces(days=1)
        assert a.series == b.series


class TestFig10DaySeries:
    @pytest.fixture(scope="class")
    def bundle(self):
        return fig10_day_series()

    def test_solar_and_app_power_series_present(self, bundle):
        names = bundle.names()
        assert "solar_w" in names
        assert "application_power_w" in names

    def test_per_container_cap_series_present(self, bundle):
        container_series = [
            n for n in bundle.names() if n.startswith("container.")
        ]
        assert len(container_series) >= 10  # one per node

    def test_application_power_bounded_by_solar_envelope(self, bundle):
        """The dynamic caps keep demand within the solar supply."""
        solar = dict(bundle.series["solar_w"])
        app = dict(bundle.series["application_power_w"])
        overdraws = [
            t for t in app
            if t in solar and app[t] > solar[t] + 0.5  # half-watt tolerance
        ]
        assert len(overdraws) <= len(app) * 0.02
