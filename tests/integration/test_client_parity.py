"""SDK parity: EcovisorClient must be byte-identical to EcovisorAPI.

Every ``EcovisorAPI`` method is driven twice — in-process and through
``EcovisorClient`` over the Router transport — and the results must be
*byte-identical* (exact float equality, identical serialized
snapshots).  The event feed must replay exactly the signals the
in-process ``SignalBus`` delivered, reconstructed to equal dataclasses.
"""

import json

import pytest

from repro.client import EcovisorAdminClient, EcovisorClient
from repro.core.api import connect
from repro.core.config import ShareConfig
from repro.core.signals import (
    AppEvicted,
    BatteryEmpty,
    BatteryFull,
    CarbonChange,
    PriceChange,
    ShareChanged,
    SolarChange,
)
from repro.market.prices import make_price_trace
from repro.policies import CarbonAgnosticPolicy
from repro.rest.server import EcovisorRestServer
from repro.sim.experiment import solar_battery_environment
from repro.workloads.mltrain import MLTrainingJob

SIGNAL_TYPES = (
    CarbonChange,
    PriceChange,
    SolarChange,
    BatteryFull,
    BatteryEmpty,
    ShareChanged,
    AppEvicted,
)


@pytest.fixture(scope="module")
def world():
    """A market-attached solar+battery run with real workload demand."""
    env = solar_battery_environment(
        solar_peak_w=20.0,
        battery_capacity_wh=60.0,
        days=1,
        price_trace=make_price_trace("realtime", days=1),
    )
    env.engine.add_application(
        MLTrainingJob(name="shop", total_work_units=1e9),
        ShareConfig(solar_fraction=0.5, battery_fraction=0.5),
        CarbonAgnosticPolicy(workers=2),
    )
    env.engine.add_application(
        MLTrainingJob(name="batch", total_work_units=1e9),
        ShareConfig(grid_power_w=float("inf")),
        CarbonAgnosticPolicy(workers=1),
    )
    api = connect(env.ecovisor, "shop")

    # Mirror the journal's delivery through the in-process SignalBus:
    # one subscription per signal type, collected in delivery order.
    delivered = []
    for signal_type in SIGNAL_TYPES:
        api.signals.on(signal_type, delivered.append)

    env.engine.run(3 * 60)  # three hours crossing solar ramp-up
    server = EcovisorRestServer(env.ecovisor)
    return {
        "env": env,
        "api": api,
        "client": EcovisorClient(server, "shop"),
        "admin": EcovisorAdminClient(server),
        "server": server,
        "delivered": delivered,
    }


class TestObservationParity:
    def test_state_snapshot_byte_identical(self, world):
        via_api = json.dumps(world["api"].state().to_dict(), sort_keys=True)
        via_client = json.dumps(world["client"].state().to_dict(), sort_keys=True)
        assert via_api == via_client
        # And the reconstructed object equals the in-process one.
        assert world["client"].state() == world["api"].state()

    def test_every_scalar_getter_byte_identical(self, world):
        api, client = world["api"], world["client"]
        assert client.get_solar_power() == api.get_solar_power()
        assert client.get_grid_power() == api.get_grid_power()
        assert client.get_grid_carbon() == api.get_grid_carbon()
        assert client.get_grid_price() == api.get_grid_price()
        assert client.get_energy_cost() == api.get_energy_cost()
        assert client.get_battery_charge_level() == api.get_battery_charge_level()
        assert client.get_battery_capacity() == api.get_battery_capacity()
        assert (
            client.get_battery_discharge_rate() == api.get_battery_discharge_rate()
        )

    def test_meaningful_figures(self, world):
        # Guard against vacuous parity: the run produced real flows.
        state = world["client"].state()
        assert state.total_energy_wh > 0.0
        assert state.total_cost_usd > 0.0
        assert state.has_market is True
        assert state.battery is not None

    def test_container_surface_parity(self, world):
        api, client = world["api"], world["client"]
        in_process = api.list_containers()
        via_client = client.list_containers()
        assert [c.id for c in via_client] == [c.id for c in in_process]
        assert [c.cores for c in via_client] == [c.cores for c in in_process]
        assert [c.role for c in via_client] == [c.role for c in in_process]
        for container in in_process:
            assert client.get_container_power(container.id) == (
                api.get_container_power(container.id)
            )
            assert client.get_container_powercap(container.id) == (
                api.get_container_powercap(container.id)
            )


class TestActuationParity:
    def test_setters_visible_in_process(self, world):
        api, client = world["api"], world["client"]
        client.set_battery_charge_rate(2.5)
        assert api.ecovisor.ves_for("shop").battery.charge_rate_w == 2.5
        client.set_battery_max_discharge(4.0)
        assert api.ecovisor.ves_for("shop").battery.max_discharge_w == 4.0
        container = api.list_containers()[0]
        client.set_container_powercap(container.id, 1.25)
        assert api.get_container_powercap(container.id) == 1.25
        client.set_container_powercap(container.id, None)
        assert api.get_container_powercap(container.id) is None

    def test_launch_and_scale_through_client(self, world):
        api, client = world["api"], world["client"]
        before = len(api.list_containers())
        worker = client.launch_container(cores=1, role="extra")
        assert any(c.id == worker.id for c in api.list_containers())
        client.stop_container(worker.id)
        assert len(api.list_containers()) == before


class TestEventFeedParity:
    def test_feed_replays_signal_bus_deliveries_exactly(self, world):
        page = world["client"].events(cursor=0)
        assert page.dropped == 0
        # events[0] is the admission (published before any subscriber
        # could exist); everything after must equal the in-process
        # deliveries, as equal dataclasses, in order.
        assert type(page.events[0]).__name__ == "AppAdmittedEvent"
        assert list(page.events[1:]) == world["delivered"]
        assert len(world["delivered"]) > 0

    def test_cursor_tail_is_incremental(self, world):
        page = world["client"].events(cursor=0)
        tail = world["client"].events(cursor=page.next_cursor - 2)
        assert list(tail.events) == list(page.events[-2:])


class TestLifecycleParity:
    def test_admit_rebalance_evict_through_the_sdk(self, world):
        admin = world["admin"]
        env = world["env"]
        admin.admit_app("guest", solar_fraction=0.1, battery_fraction=0.1)
        assert "guest" in env.ecovisor.app_names()
        guest = EcovisorClient(world["server"], "guest")
        guest.launch_container(cores=1)
        admin.set_share("guest", solar_fraction=0.2)
        assert env.ecovisor.pending_share("guest").solar_fraction == 0.2
        env.engine.run(5)
        assert env.ecovisor.share_for("guest").solar_fraction == 0.2
        account = admin.evict_app("guest")
        in_process = env.ecovisor.ledger.account("guest")
        assert account["energy_wh"] == in_process.energy_wh
        assert account["cost_usd"] == in_process.cost_usd
        assert in_process.finalized
        # The guest's feed survives with the terminal event readable.
        page = guest.events(cursor=0)
        names = [type(e).__name__ for e in page.events]
        assert names[0] == "AppAdmittedEvent"
        assert "ShareChangedEvent" in names
        assert names[-1] == "AppEvictedEvent"


class TestObservabilityParity:
    """The two observability routes through the SDK vs direct requests.

    A scrape counts *prior* scrapes of ``/v1/metrics`` into
    ``http_requests_total``, so two consecutive scrapes differ exactly
    on that route's series; masking those lines must leave the outputs
    byte-identical.
    """

    @staticmethod
    def _mask_self_scrape(text: str) -> str:
        return "\n".join(
            line
            for line in text.splitlines()
            if 'route="/v1/metrics"' not in line
        )

    def test_metrics_scrape_byte_identical_modulo_self_count(self, world):
        via_client = world["client"].metrics()
        direct = world["server"].request("GET", "/v1/metrics").body
        assert self._mask_self_scrape(via_client) == self._mask_self_scrape(
            direct
        )
        assert "# TYPE http_requests_total counter" in via_client
        assert "# TYPE tick_total_seconds histogram" in via_client

    def test_admin_client_shares_the_same_scrape(self, world):
        assert self._mask_self_scrape(
            world["admin"].metrics()
        ) == self._mask_self_scrape(world["client"].metrics())

    def test_tick_profile_byte_identical(self, world):
        via_client = world["client"].tick_profile(last=4)
        direct = world["server"].request("GET", "/v1/metrics/ticks?last=4").body
        assert json.dumps(via_client, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_journal_drop_figure_rides_the_events_page(self, world):
        page = world["client"].events(cursor=0)
        in_process = world["env"].ecovisor.journal.overflow_dropped_for("shop")
        assert page.journal_dropped == in_process

    def test_profiled_ticks_surface_through_the_sdk(self, world):
        # Mutates the shared world (runs extra ticks), so it runs last:
        # every parity test above re-reads both sides live anyway.
        engine = world["env"].engine
        engine.profiler.enabled = True
        engine.run(5)
        payload = world["client"].tick_profile(last=3)
        assert payload["enabled"] is True
        assert payload["returned"] == 3
        for tick in payload["ticks"]:
            assert sum(tick["phases"].values()) == pytest.approx(
                tick["total_s"]
            )
        direct = world["server"].request("GET", "/v1/metrics/ticks?last=3").body
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
