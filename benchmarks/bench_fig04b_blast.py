"""Figure 4b: BLAST under five carbon policies (10 arrivals).

Paper targets: suspend/resume cuts carbon ~25% at a 5.1x runtime
penalty; Wait&Scale scales well to 3x (runtime -83.4% vs the system
policy); at 4x the central queue server saturates, so carbon rises with
no runtime gain.
"""

from repro.analysis.figures_batch import fig04b_blast


def test_fig04b_blast(benchmark):
    summaries = benchmark.pedantic(
        fig04b_blast, kwargs={"reps": 10}, rounds=1, iterations=1
    )
    by_label = {s.policy_label: s for s in summaries}
    base = by_label["CO2-agnostic"]
    suspend = by_label["System Policy"]

    print("\n=== Figure 4b: BLAST (10 random arrivals) ===")
    print(f"{'policy':14s} {'runtime':>11s} {'x agn':>7s} {'rt vs SR':>9s} "
          f"{'carbon':>9s} {'vs agn':>8s}")
    for s in summaries:
        rt_vs_sr = (s.mean_runtime_s / suspend.mean_runtime_s - 1) * 100
        print(
            f"{s.policy_label:14s} {s.mean_runtime_s / 60:8.1f} min "
            f"{s.runtime_ratio_vs(base):6.2f}x {rt_vs_sr:+8.1f}% "
            f"{s.mean_carbon_g:7.3f} g {s.carbon_change_vs(base) * 100:+7.1f}%"
        )
    print("paper: SR -25% @ 5.1x | W&S(2x) rt -78% vs SR | "
          "W&S(3x) rt -83% vs SR | W&S(4x) carbon rises, rt flat")

    ws2, ws3, ws4 = (
        by_label["W&S (2X)"], by_label["W&S (3X)"], by_label["W&S (4X)"]
    )
    assert suspend.carbon_change_vs(base) < -0.15
    assert ws3.mean_runtime_s < ws2.mean_runtime_s < suspend.mean_runtime_s
    assert abs(ws4.mean_runtime_s - ws3.mean_runtime_s) < 0.02 * ws3.mean_runtime_s
    assert ws4.mean_carbon_g > ws3.mean_carbon_g * 1.1
    benchmark.extra_info["ws3_runtime_vs_suspend"] = (
        ws3.mean_runtime_s / suspend.mean_runtime_s
    )
    benchmark.extra_info["suspend_carbon_change"] = suspend.carbon_change_vs(base)
