"""Ablation: the cost of imperfect carbon foresight.

The paper's policies derive their thresholds from the trace itself — a
perfect forecast.  This ablation re-runs Wait&Scale(2x) with thresholds
derived from deployable forecasters (persistence, diurnal profile) and
compares carbon/runtime against the oracle, quantifying how much of the
paper's benefit survives realistic forecasting.
"""

from repro.carbon.forecast import (
    DiurnalProfileForecaster,
    OracleForecaster,
    PersistenceForecaster,
)
from repro.carbon.traces import make_region_trace
from repro.policies import CarbonAgnosticPolicy
from repro.policies.forecast_threshold import ForecastWaitAndScalePolicy
from repro.sim.experiment import grid_environment
from repro.sim.results import BatchRunResult, summarize_batch
from repro.workloads.mltrain import MLTrainingJob

FORECASTERS = {
    "oracle": OracleForecaster,
    "diurnal-profile": DiurnalProfileForecaster,
    "persistence": PersistenceForecaster,
}
OFFSETS = (0.0, 9 * 3600.0, 26 * 3600.0, 40 * 3600.0)
WINDOW_S = 24 * 3600.0


def run_case(forecaster_name, offset):
    trace = make_region_trace("caiso", days=4).rolled(offset)
    env = grid_environment(trace=trace)
    job = MLTrainingJob(total_work_units=29000.0)
    forecaster = FORECASTERS[forecaster_name](env.carbon_service)
    # Warm up with two days of historical observations, as a deployed
    # forecaster would have (the rolled trace's first days stand in for
    # the days preceding the job's arrival).
    for i in range(2 * 288):
        forecaster.observe(i * 300.0)
    policy = ForecastWaitAndScalePolicy(
        forecaster, percentile=30.0, window_s=WINDOW_S,
        base_workers=4, scale_factor=2.0,
    )
    from repro.sim.experiment import UNLIMITED_GRID_SHARE

    env.engine.add_application(job, UNLIMITED_GRID_SHARE, policy)
    env.engine.run(4 * 24 * 60, stop_when_batch_complete=True)
    account = env.ecovisor.ledger.account(job.name)
    return BatchRunResult(
        policy_label=forecaster_name,
        arrival_offset_s=offset,
        runtime_s=job.completion_time_s or float("inf"),
        carbon_g=account.carbon_g,
        energy_wh=account.energy_wh,
        completed=job.is_complete,
    )


def run_sweep():
    agnostic_carbon = []
    for offset in OFFSETS:
        trace = make_region_trace("caiso", days=4).rolled(offset)
        env = grid_environment(trace=trace)
        job = MLTrainingJob(total_work_units=29000.0)
        from repro.sim.experiment import UNLIMITED_GRID_SHARE

        env.engine.add_application(
            job, UNLIMITED_GRID_SHARE, CarbonAgnosticPolicy(4)
        )
        env.engine.run(4 * 24 * 60, stop_when_batch_complete=True)
        agnostic_carbon.append(env.ecovisor.ledger.app_carbon_g(job.name))
    baseline = sum(agnostic_carbon) / len(agnostic_carbon)

    summaries = {}
    for name in FORECASTERS:
        summaries[name] = summarize_batch(
            [run_case(name, offset) for offset in OFFSETS]
        )
    return baseline, summaries


def test_ablation_forecast_quality(benchmark):
    baseline, summaries = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: forecast quality for W&S(2x) thresholds ===")
    print(f"carbon-agnostic baseline: {baseline:.3f} g")
    print(f"{'forecaster':16s} {'runtime':>9s} {'carbon':>9s} {'vs agnostic':>12s}")
    for name, s in summaries.items():
        print(
            f"{name:16s} {s.mean_runtime_hours:7.2f} h {s.mean_carbon_g:7.3f} g "
            f"{(s.mean_carbon_g - baseline) / baseline * 100:+11.1f}%"
        )
    print("lesson: a flat persistence threshold degenerates Wait&Scale")
    print("into always-run (no carbon cut); a day-profile forecaster")
    print("recovers most of the oracle's reduction.")

    for s in summaries.values():
        assert s.completion_rate == 1.0
    assert summaries["oracle"].mean_carbon_g < baseline
    assert (
        summaries["diurnal-profile"].mean_carbon_g
        < summaries["persistence"].mean_carbon_g
    )
    benchmark.extra_info["oracle_carbon_g"] = summaries["oracle"].mean_carbon_g
    benchmark.extra_info["persistence_carbon_g"] = summaries[
        "persistence"
    ].mean_carbon_g
