"""Market extension: the carbon-vs-cost Pareto frontier.

Targets: with the market layer attached, carbon-optimal and cost-optimal
schedules diverge — the carbon-threshold policy chases the midday solar
dip (clean, mid-peak price) while the price-threshold policy chases the
off-peak night (cheap, dirtier); the blended carbon-cost policy's λ knob
traces the frontier between them.  Every run bills grid energy through
the per-tick settlement path, and the ledger's cumulative cost must
equal the settlement sum exactly.

Runs on the scenario runner: the regime x policy x λ matrix executes as
independent worker processes (``extension_market`` scenario).
"""

from repro.analysis.figures_market import extension_market_table
from repro.sim.runner import default_jobs


def run_via_runner():
    return extension_market_table(jobs=default_jobs())


def test_extension_market(benchmark):
    rows = benchmark.pedantic(run_via_runner, rounds=1, iterations=1)

    print("\n=== Market extension: carbon-vs-cost Pareto frontier (2 days) ===")
    print(f"{'regime':9s} {'policy point':22s} {'carbon':>9s} {'cost':>11s} "
          f"{'runtime':>8s} {'pareto':>7s}")
    for row in rows:
        print(
            f"{row['regime']:9s} {row['policy_point']:22s} "
            f"{row['carbon_g']:7.3f} g ${row['cost_usd']:.6f} "
            f"{row['runtime_s'] / 3600:6.2f} h {'  *' if row['pareto'] else '':>7s}"
        )

    by_regime = {}
    for row in rows:
        by_regime.setdefault(row["regime"], {})[row["policy_point"]] = row

    assert set(by_regime) == {"flat", "tou", "realtime"}
    for regime, points in by_regime.items():
        assert all(p["completed"] == 1.0 for p in points.values()), regime
        carbon_pt = points["carbon-threshold"]
        price_pt = points["price-threshold"]
        # The Pareto spread: the carbon policy is strictly cleaner, the
        # price policy strictly cheaper (they pick different windows).
        assert carbon_pt["carbon_g"] < price_pt["carbon_g"], regime
        assert price_pt["cost_usd"] < carbon_pt["cost_usd"], regime
        # The λ endpoints reproduce the single-signal policies exactly.
        assert points["carbon-cost(lam=0.00)"]["carbon_g"] == carbon_pt["carbon_g"]
        assert points["carbon-cost(lam=1.00)"]["cost_usd"] == price_pt["cost_usd"]
        # At least the two endpoints sit on the frontier.
        assert sum(p["pareto"] for p in points.values()) >= 2, regime
    benchmark.extra_info["points_per_regime"] = len(rows) / len(by_regime)
