"""Regional extension: one policy grid across bundled regional datasets.

Targets: the ``regional`` scenario resolves every signal (carbon, price,
on-site generation) by name from the provider registry and runs the same
policy grid across three historical carbon datasets.  All runs complete
within the two-day window; on the high-variance CAISO grid both
carbon-aware policies beat the agnostic baseline; adding wind to the
solar plant strictly cuts carbon in every cell; and every row carries
its carbon dataset's name and SHA-256, so the table is self-describing.

Per-region divergence is the scenario's finding, not a failure: on flat,
clean grids (Ontario) waiting for "clean" periods buys little, so the
assertions pin the CAISO savings and completion — not a universal win.

Runs on the scenario runner: the region x policy x generation matrix
executes as independent worker processes (``regional`` scenario).
"""

from repro.analysis.figures_regional import regional_grids_table
from repro.sim.runner import default_jobs


def run_via_runner():
    return regional_grids_table(jobs=default_jobs())


def test_regional_grids(benchmark):
    rows = benchmark.pedantic(run_via_runner, rounds=1, iterations=1)

    print("\n=== Regional grids: one policy grid, three carbon datasets ===")
    print(f"{'region':14s} {'generation':11s} {'policy':15s} {'carbon':>9s} "
          f"{'runtime':>8s} {'vs agn':>8s}")
    for row in rows:
        print(
            f"{row['region']:14s} {row['generation']:11s} "
            f"{row['policy']:15s} {row['carbon_g']:7.3f} g "
            f"{row['runtime_s'] / 3600:6.2f} h "
            f"{row['carbon_reduction_vs_agnostic'] * 100:+7.1f}%"
        )

    by_key = {(r["region"], r["generation"], r["policy"]): r for r in rows}
    regions = {r["region"] for r in rows}
    policies = ("agnostic", "wait-and-scale", "suspend-resume")

    assert regions == {"caiso-2022", "ontario-2022", "germany-2022"}
    assert len(rows) == len(regions) * 2 * len(policies)
    assert all(r["completed"] == 1.0 for r in rows)
    # Every row states its data provenance: dataset name + full SHA-256.
    for row in rows:
        assert row["carbon_dataset"] == row["region"]
        assert len(row["carbon_checksum"]) == 64
    # The paper's headline holds where the grid actually swings: on
    # CAISO's duck curve both carbon-aware policies beat agnostic.
    caiso_base = by_key[("caiso-2022", "solar", "agnostic")]["carbon_g"]
    for policy in ("wait-and-scale", "suspend-resume"):
        assert by_key[("caiso-2022", "solar", policy)]["carbon_g"] < caiso_base
    # Wind on top of solar strictly cleans every (region, policy) cell.
    for region in regions:
        for policy in policies:
            hybrid = by_key[(region, "wind+solar", policy)]["carbon_g"]
            solar_only = by_key[(region, "solar", policy)]["carbon_g"]
            assert hybrid < solar_only, (region, policy)
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["regions"] = len(regions)
