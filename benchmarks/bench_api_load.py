"""Gateway load harness: cached-GET throughput and SSE fan-out.

Builds a fleet, fronts it with the asyncio :class:`GatewayServer`, and
hammers it over real loopback sockets in two phases:

1. **Cached GET storm** — ``--clients`` concurrent keep-alive clients
   loop ``GET /v1/apps/{app}/state`` with ``If-None-Match`` for
   ``--duration`` seconds.  After each client's first request every
   response is a 304 served from the per-tick shared snapshot cache, so
   this measures the gateway's conditional-GET hot path: requests/s and
   p50/p99 latency.
2. **SSE fan-out** — ``--subscribers`` concurrent streams (spread over
   the fleet's apps, each resuming from its feed tip), then a burst of
   ``--events-per-app`` journal events per app.  Every subscriber must
   receive every event of its app with contiguous ids — **zero loss**
   below the queue bound — and the phase reports fan-out delivery
   throughput (frames/s across all subscribers).

The committed baseline lives at ``benchmarks/BENCH_api_load.json``; the
CI ``perf-regression`` job reruns the harness with ``--check`` and fails
the build on a >1.5x requests/s drop (the zero-loss fan-out property is
asserted unconditionally, baseline or not):

    PYTHONPATH=src python benchmarks/bench_api_load.py \
        --check benchmarks/BENCH_api_load.json

    PYTHONPATH=src python benchmarks/bench_api_load.py \
        --write-baseline benchmarks/BENCH_api_load.json

With ``--connect HOST:PORT`` the harness instead targets an already
running server (e.g. ``python -m repro serve fleet_small``): it
discovers apps via ``/v1/admin/apps``, runs the cached GET storm, and a
short SSE subscribe + Last-Event-ID reconnect check — the CI
``gateway-smoke`` step.  External mode skips the fan-out burst (it needs
in-process event injection) and never writes or checks baselines.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.events import CarbonChangeEvent
from repro.gateway import GatewayConfig, GatewayServer, TickDriver
from repro.sim.fleet import build_fleet

SCHEMA = "bench_api_load/v1"


def entry_key(apps: int, clients: int, subscribers: int) -> str:
    return f"apps={apps},clients={clients},subscribers={subscribers}"


async def _read_response(reader: asyncio.StreamReader) -> Tuple[int, Dict[str, str], bytes]:
    """Read one Content-Length-framed response from a keep-alive socket."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed connection")
    status = int(status_line.split()[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", 0))
    if length:
        body = await reader.readexactly(length)
    return status, headers, body


async def _get_json(host: str, port: int, path: str) -> Any:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        status, _, body = await _read_response(reader)
        if status != 200:
            raise ConnectionError(f"GET {path} -> {status}")
        return json.loads(body)
    finally:
        writer.close()


async def _cached_get_storm(
    host: str, port: int, apps: List[str], clients: int, duration: float
) -> Dict[str, Any]:
    """Phase 1: keep-alive conditional-GET clients, shared wall clock."""
    latencies: List[float] = []
    totals = {"requests": 0, "not_modified": 0}
    deadline = time.perf_counter() + duration

    async def client(app: str) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        etag: Optional[str] = None
        try:
            while time.perf_counter() < deadline:
                head = f"GET /v1/apps/{app}/state HTTP/1.1\r\nHost: bench\r\n"
                if etag:
                    head += f"If-None-Match: {etag}\r\n"
                head += "\r\n"
                started = time.perf_counter()
                writer.write(head.encode())
                await writer.drain()
                status, headers, _ = await _read_response(reader)
                latencies.append(time.perf_counter() - started)
                if status not in (200, 304):
                    raise ConnectionError(f"state poll -> {status}")
                totals["requests"] += 1
                if status == 304:
                    totals["not_modified"] += 1
                etag = headers.get("etag", etag)
        finally:
            writer.close()

    started = time.perf_counter()
    await asyncio.gather(*(client(apps[i % len(apps)]) for i in range(clients)))
    wall_s = time.perf_counter() - started
    latencies.sort()

    def pct(q: float) -> float:
        return latencies[min(int(q * len(latencies)), len(latencies) - 1)]

    return {
        "clients": clients,
        "duration_s": duration,
        "wall_s": wall_s,
        "requests_total": totals["requests"],
        "requests_per_s": totals["requests"] / wall_s,
        "not_modified_total": totals["not_modified"],
        "etag_hit_rate": totals["not_modified"] / max(totals["requests"], 1),
        "latency_p50_ms": pct(0.50) * 1e3,
        "latency_p99_ms": pct(0.99) * 1e3,
    }


async def _read_sse_head(reader: asyncio.StreamReader) -> None:
    status_line = await reader.readline()
    if b"200" not in status_line:
        raise ConnectionError(f"stream refused: {status_line!r}")
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return


async def _sse_fanout(
    gateway: GatewayServer,
    apps: List[str],
    subscribers: int,
    events_per_app: int,
) -> Dict[str, Any]:
    """Phase 2: fan one event burst out to every subscriber, losslessly."""
    host, port = "127.0.0.1", gateway.port
    journal = gateway.ecovisor.journal
    tips = await gateway.run_on_writer(
        lambda: {app: journal.read(app).next_cursor for app in apps}
    )
    # 3.10-compatible barrier: every subscriber must have received its
    # stream_open frame (i.e. be registered with the broker) before the
    # burst, or "zero loss" would race registration.
    registered = 0
    all_ready = asyncio.Event()

    def note_ready() -> None:
        nonlocal registered
        registered += 1
        if registered == subscribers:
            all_ready.set()

    async def subscribe(app: str) -> Tuple[int, List[int]]:
        reader, writer = await asyncio.open_connection(host, port)
        ids: List[int] = []
        try:
            writer.write(
                f"GET /v1/apps/{app}/events/stream?cursor={tips[app]} "
                "HTTP/1.1\r\nHost: bench\r\n"
                "Accept: text/event-stream\r\n\r\n".encode()
            )
            await writer.drain()
            await _read_sse_head(reader)
            while True:  # consume the stream_open frame, then report in
                line = await reader.readline()
                if line in (b"\n", b"\r\n"):
                    break
            note_ready()
            while len(ids) < events_per_app:
                line = await reader.readline()
                if not line:
                    break
                if line.startswith(b"id:"):
                    ids.append(int(line[3:]))
        finally:
            writer.close()
        return tips[app], ids

    tasks = [
        asyncio.ensure_future(subscribe(apps[i % len(apps)]))
        for i in range(subscribers)
    ]

    def burst() -> None:
        for app in apps:
            for i in range(events_per_app):
                journal.record(
                    app,
                    CarbonChangeEvent(
                        time_s=float(i),
                        previous_g_per_kwh=100.0,
                        current_g_per_kwh=100.0 + i,
                    ),
                )
        gateway.broker.pump()

    await all_ready.wait()
    started = time.perf_counter()
    await gateway.run_on_writer(burst)
    results = await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - started

    lost = 0
    for tip, ids in results:
        expected = list(range(tip, tip + events_per_app))
        if ids != expected:
            lost += 1
    delivered = sum(len(ids) for _, ids in results)
    dropped = gateway.ecovisor.metrics.get(
        "gateway_sse_queue_dropped_total"
    ).value
    return {
        "subscribers": subscribers,
        "events_per_app": events_per_app,
        "fanout_events_total": delivered,
        "fanout_wall_s": wall_s,
        "fanout_events_per_s": delivered / wall_s,
        "queue_dropped_total": dropped,
        "subscribers_with_loss": lost,
    }


async def _sse_reconnect_check(host: str, port: int, app: str) -> Dict[str, Any]:
    """External-mode smoke: stream, disconnect, resume via Last-Event-ID."""

    async def next_event_id(headers: str) -> int:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET /v1/apps/{app}/events/stream?cursor=0 HTTP/1.1\r\n"
                f"Host: bench\r\nAccept: text/event-stream\r\n{headers}\r\n".encode()
            )
            await writer.drain()
            await _read_sse_head(reader)
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                if line.startswith(b"id:"):
                    return int(line[3:])
        finally:
            writer.close()

    first = await next_event_id("")
    resumed = await next_event_id(f"Last-Event-ID: {first}\r\n")
    if resumed != first + 1:
        raise SystemExit(
            f"SSE reconnect check failed: saw id {first}, resumed with "
            f"Last-Event-ID and got id {resumed} (expected {first + 1})"
        )
    return {"first_id": first, "resumed_id": resumed}


async def run_inprocess(
    apps: int,
    ticks: int,
    mix: str,
    seed: int,
    clients: int,
    duration: float,
    subscribers: int,
    events_per_app: int,
    queue_size: int,
) -> Dict[str, Any]:
    env = build_fleet(
        {"apps": apps, "ticks": max(ticks, 1), "seed": seed, "mix": mix}
    )
    gateway = GatewayServer(
        env.ecovisor, config=GatewayConfig(port=0, queue_size=queue_size)
    )
    await gateway.start()
    try:
        await TickDriver(gateway, env.engine).run(ticks)
        names = sorted(env.ecovisor.app_shares())
        storm = await _cached_get_storm(
            "127.0.0.1", gateway.port, names, clients, duration
        )
        fanout = await _sse_fanout(gateway, names, subscribers, events_per_app)
    finally:
        await gateway.stop()
    return {
        "schema": SCHEMA,
        "apps": apps,
        "ticks": ticks,
        "mix": mix,
        "seed": seed,
        "queue_size": queue_size,
        **storm,
        **fanout,
    }


async def run_external(
    host: str, port: int, clients: int, duration: float
) -> Dict[str, Any]:
    listing = await _get_json(host, port, "/v1/admin/apps")
    names = sorted(entry["name"] for entry in listing["apps"])
    if not names:
        raise SystemExit(f"no apps registered at {host}:{port}")
    storm = await _cached_get_storm(host, port, names, clients, duration)
    reconnect = await _sse_reconnect_check(host, port, names[0])
    return {
        "schema": SCHEMA,
        "mode": "external",
        "target": f"{host}:{port}",
        "apps": len(names),
        **storm,
        "sse_reconnect": reconnect,
    }


def print_table(result: Dict[str, Any]) -> None:
    print(
        f"\n=== gateway load: {result['apps']} apps, "
        f"{result['clients']} clients x {result['duration_s']:.1f}s ==="
    )
    print(f"{'requests':>22s}: {result['requests_total']}")
    print(f"{'throughput':>22s}: {result['requests_per_s']:.0f} req/s")
    print(f"{'etag hit rate':>22s}: {result['etag_hit_rate'] * 100:.1f}% (304s)")
    print(f"{'latency p50':>22s}: {result['latency_p50_ms']:.3f} ms")
    print(f"{'latency p99':>22s}: {result['latency_p99_ms']:.3f} ms")
    if "fanout_events_total" in result:
        print(
            f"{'sse fan-out':>22s}: {result['subscribers']} subscribers x "
            f"{result['events_per_app']} events"
        )
        print(
            f"{'delivered':>22s}: {result['fanout_events_total']} frames "
            f"({result['fanout_events_per_s']:.0f}/s, "
            f"{result['subscribers_with_loss']} lossy, "
            f"{result['queue_dropped_total']} queue drops)"
        )
    if "sse_reconnect" in result:
        r = result["sse_reconnect"]
        print(
            f"{'sse reconnect':>22s}: id {r['first_id']} -> "
            f"resumed at {r['resumed_id']} (ok)"
        )


def check_zero_loss(result: Dict[str, Any]) -> int:
    """Unconditional correctness gate: no loss below the queue bound."""
    if result.get("subscribers_with_loss") or result.get("queue_dropped_total"):
        print(
            f"FAIL: SSE fan-out lost events below the queue bound "
            f"({result['subscribers_with_loss']} lossy subscribers, "
            f"{result['queue_dropped_total']} queue drops with "
            f"events_per_app={result['events_per_app']} < "
            f"queue_size={result['queue_size']})",
            file=sys.stderr,
        )
        return 1
    return 0


def load_baseline(path: Path) -> Dict[str, Any]:
    if not path.exists():
        return {"schema": SCHEMA, "entries": {}}
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA or "entries" not in data:
        raise SystemExit(f"{path}: not a {SCHEMA} baseline file")
    return data


def check_against_baseline(
    result: Dict[str, Any], path: Path, max_regression: float
) -> int:
    key = entry_key(result["apps"], result["clients"], result["subscribers"])
    baseline = load_baseline(path).get("entries", {}).get(key)
    if baseline is None:
        print(f"FAIL: no baseline entry {key!r} in {path}", file=sys.stderr)
        return 1
    status = 0
    for metric in ("requests_per_s", "fanout_events_per_s"):
        floor = baseline[metric] / max_regression
        verdict = "ok" if result[metric] >= floor else "REGRESSION"
        print(
            f"perf gate [{key}] {metric}: measured {result[metric]:.0f}, "
            f"baseline {baseline[metric]:.0f}, floor {floor:.0f} "
            f"(max regression {max_regression:.2f}x) -> {verdict}"
        )
        if verdict != "ok":
            status = 1
    if status:
        print(
            "Gateway throughput regressed beyond the budget. If "
            "intentional, apply the 'perf-baseline-reset' PR label and "
            "regenerate benchmarks/BENCH_api_load.json "
            "(see docs/gateway.md).",
            file=sys.stderr,
        )
    return status


def write_baseline(result: Dict[str, Any], path: Path) -> None:
    data = load_baseline(path)
    key = entry_key(result["apps"], result["clients"], result["subscribers"])
    data["entries"][key] = result
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"baseline entry {key!r} written to {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", type=int, default=50)
    parser.add_argument("--ticks", type=int, default=20)
    parser.add_argument("--mix", type=str, default="balanced")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--subscribers", type=int, default=500)
    parser.add_argument("--events-per-app", type=int, default=100)
    parser.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="per-connection SSE queue bound (events-per-app must stay below)",
    )
    parser.add_argument(
        "--connect",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="target a running `repro serve` instead of an in-process "
        "gateway (cached-GET storm + SSE reconnect smoke only)",
    )
    parser.add_argument("--out", type=str, default=None, help="JSON output path")
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        help="baseline file to gate against (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="allowed throughput slowdown vs the baseline (default 1.5x)",
    )
    parser.add_argument(
        "--write-baseline",
        type=str,
        default=None,
        help="write/update this run's entry in the given baseline file",
    )
    args = parser.parse_args()

    if args.connect is not None:
        host, _, port = args.connect.rpartition(":")
        result = asyncio.run(
            run_external(host or "127.0.0.1", int(port), args.clients, args.duration)
        )
        print_table(result)
        if args.out:
            Path(args.out).write_text(json.dumps(result, indent=2, sort_keys=True))
        if args.check or args.write_baseline:
            raise SystemExit("--connect mode does not support baselines")
        return

    if args.events_per_app >= args.queue_size:
        raise SystemExit(
            "--events-per-app must stay below --queue-size: the zero-loss "
            "property only holds below the queue bound"
        )
    result = asyncio.run(
        run_inprocess(
            apps=args.apps,
            ticks=args.ticks,
            mix=args.mix,
            seed=args.seed,
            clients=args.clients,
            duration=args.duration,
            subscribers=args.subscribers,
            events_per_app=args.events_per_app,
            queue_size=args.queue_size,
        )
    )
    print_table(result)
    status = check_zero_loss(result)
    if args.out:
        Path(args.out).write_text(json.dumps(result, indent=2, sort_keys=True))
    if args.write_baseline:
        write_baseline(result, Path(args.write_baseline))
    if args.check:
        status = check_against_baseline(
            result, Path(args.check), args.max_regression
        ) or status
    raise SystemExit(status)


if __name__ == "__main__":
    main()
