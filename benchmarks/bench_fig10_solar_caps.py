"""Figure 10: static vs dynamic per-container power caps on solar.

Paper targets (Fig 10c): the dynamic policy's runtime improvement grows
as available solar shrinks; energy-efficiency (work per joule) grows
with available solar because the idle floor is amortized.

Runs on the scenario runner: the 9x2 (solar %, policy) matrix executes
across worker processes and is paired back into comparison rows.
"""

from repro.analysis.figures_solar import fig10_solar_caps
from repro.sim.runner import default_jobs

PERCENTAGES = (10, 20, 30, 40, 50, 60, 70, 80, 90)


def test_fig10_solar_caps(benchmark):
    rows = benchmark.pedantic(
        fig10_solar_caps,
        kwargs={"percentages": PERCENTAGES, "jobs": default_jobs()},
        rounds=1, iterations=1,
    )

    print("\n=== Figure 10(c): power balancing vs available solar ===")
    print(f"{'solar %':>8s} {'static':>9s} {'dynamic':>9s} "
          f"{'improvement':>12s} {'work/J':>8s}")
    for row in rows:
        print(
            f"{row['solar_pct']:7.0f}% "
            f"{row['runtime_static_s'] / 3600:7.2f} h "
            f"{row['runtime_dynamic_s'] / 3600:7.2f} h "
            f"{row['runtime_improvement_pct']:10.1f} % "
            f"{row['energy_efficiency_per_j']:8.4f}"
        )
    print("paper: improvement ~45% at 10% solar falling to ~5% at 90%;")
    print("energy-efficiency rises with solar.")

    improvements = [r["runtime_improvement_pct"] for r in rows]
    efficiencies = [r["energy_efficiency_per_j"] for r in rows]
    assert improvements[0] > 20.0
    assert improvements[0] > improvements[-1]
    assert improvements[-1] < 20.0
    assert efficiencies[0] < efficiencies[-1]
    assert all(r["dynamic_completed"] == 1.0 for r in rows)
    benchmark.extra_info["improvement_at_10pct"] = improvements[0]
    benchmark.extra_info["improvement_at_90pct"] = improvements[-1]
