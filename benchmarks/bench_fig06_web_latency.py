"""Figure 6: p95 latency under static rate-limiting vs dynamic budgeting.

Paper targets: the system-level rate limit violates both apps' SLOs
during simultaneous high-carbon/high-load periods; the dynamic budget
policy holds the SLO throughout the 48 h trace.
"""

from repro.analysis.figures_web import fig06_07_web_budgeting


def test_fig06_web_latency(benchmark):
    outcome = benchmark.pedantic(fig06_07_web_budgeting, rounds=1, iterations=1)

    print("\n=== Figure 6: web p95 latency vs SLO (48 h) ===")
    print(f"{'policy':16s} {'app':9s} {'SLO':>7s} {'violations':>11s} "
          f"{'mean p95':>9s} {'worst p95':>10s}")
    for r in outcome["results"]:
        print(
            f"{r.policy_label:16s} {r.app_name:9s} {r.slo_ms:5.0f}ms "
            f"{r.violation_fraction * 100:9.2f} % {r.mean_p95_ms:7.1f}ms "
            f"{r.worst_p95_ms:8.0f}ms"
        )
    print("paper: system policy violates near trace end (high carbon + load);")
    print("dynamic budgeting always satisfies the SLO.")

    static = [r for r in outcome["results"] if r.policy_label == "System Policy"]
    dynamic = [r for r in outcome["results"] if r.policy_label == "Dynamic Budget"]
    assert any(r.violation_ticks > 0 for r in static)
    for r in dynamic:
        assert r.violation_fraction < 0.01
    benchmark.extra_info["static_worst_violation_fraction"] = max(
        r.violation_fraction for r in static
    )
