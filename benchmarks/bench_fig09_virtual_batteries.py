"""Figure 9: per-application virtual battery SoC and charge/discharge.

Paper targets: the two applications' battery usage patterns differ
significantly despite sharing one physical battery — each cycles its
share according to its own policy (Fig 9a SoC, Fig 9b signed power).
"""

import numpy as np

from repro.analysis.figures_battery import fig08_09_battery_policies


def test_fig09_virtual_batteries(benchmark):
    outcome = benchmark.pedantic(
        fig08_09_battery_policies, rounds=1, iterations=1
    )
    series = outcome["bundle"].series

    print("\n=== Figure 9: virtual battery multi-tenancy (dynamic run) ===")
    stats = {}
    for app in ("spark", "web-monitor"):
        soc = np.asarray([v for _, v in series[f"dynamic.{app}.soc"]])
        power = np.asarray(
            [v for _, v in series[f"dynamic.{app}.battery_power_w"]]
        )
        stats[app] = (soc, power)
        print(
            f"{app:12s} SoC {soc.min() * 100:5.1f}%..{soc.max() * 100:5.1f}% "
            f"battery power {power.min():+6.2f}..{power.max():+6.2f} W"
        )
    print("paper: usage patterns differ significantly per application;")
    print("the 30% SoC floor ('min soc limit') is never crossed.")

    for app, (soc, power) in stats.items():
        assert soc.min() >= 0.30 - 1e-9  # the DoD floor holds
        assert power.max() > 0.0  # charges
        assert power.min() < 0.0  # discharges
    spark_soc, web_soc = stats["spark"][0], stats["web-monitor"][0]
    n = min(len(spark_soc), len(web_soc))
    assert np.abs(spark_soc[:n] - web_soc[:n]).max() > 0.05
    benchmark.extra_info["spark_soc_min"] = float(spark_soc.min())
    benchmark.extra_info["web_soc_min"] = float(web_soc.min())
