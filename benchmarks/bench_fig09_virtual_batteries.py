"""Figure 9: per-application virtual battery SoC and charge/discharge.

Paper targets: the two applications' battery usage patterns differ
significantly despite sharing one physical battery — each cycles its
share according to its own policy (Fig 9a SoC, Fig 9b signed power).

Runs on the scenario runner, pinning the ``policy`` axis to the dynamic
case (the run Figure 9 plots) and reading the virtual-battery statistics
the scenario reports.
"""

from repro.sim.runner import default_jobs, run_sweep


def run_dynamic_case():
    sweep = run_sweep(
        "fig08_battery_policies", overrides={"policy": "dynamic"},
        jobs=default_jobs(),
    )
    assert sweep.ok, [r.error for r in sweep.failures()]
    (row,) = sweep.rows_ok()
    return row


def test_fig09_virtual_batteries(benchmark):
    row = benchmark.pedantic(run_dynamic_case, rounds=1, iterations=1)

    print("\n=== Figure 9: virtual battery multi-tenancy (dynamic run) ===")
    for app, label in (("spark", "spark"), ("web", "web-monitor")):
        print(
            f"{label:12s} SoC {row[f'{app}_soc_min'] * 100:5.1f}%.."
            f"{row[f'{app}_soc_max'] * 100:5.1f}% "
            f"battery power {row[f'{app}_battery_power_min_w']:+6.2f}.."
            f"{row[f'{app}_battery_power_max_w']:+6.2f} W"
        )
    print("paper: usage patterns differ significantly per application;")
    print("the 30% SoC floor ('min soc limit') is never crossed.")

    for app in ("spark", "web"):
        assert row[f"{app}_soc_min"] >= 0.30 - 1e-9  # the DoD floor holds
        assert row[f"{app}_battery_power_max_w"] > 0.0  # charges
        assert row[f"{app}_battery_power_min_w"] < 0.0  # discharges
    assert row["soc_divergence_max"] > 0.05
    benchmark.extra_info["spark_soc_min"] = row["spark_soc_min"]
    benchmark.extra_info["web_soc_min"] = row["web_soc_min"]
