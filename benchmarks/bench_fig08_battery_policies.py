"""Figure 8: static vs dynamic virtual-battery policies (solar + battery).

Paper targets: the Spark-specific dynamic policy reduces runtime by ~39%
by surging onto excess solar once its battery fills; the web-specific
dynamic policy always meets its 100 ms SLO while the fixed 4-worker
system policy does not.  All applications remain zero-carbon.
"""

from repro.analysis.figures_battery import fig08_09_battery_policies


def test_fig08_battery_policies(benchmark):
    outcome = benchmark.pedantic(
        fig08_09_battery_policies, rounds=1, iterations=1
    )

    print("\n=== Figure 8: battery usage policies (4 days, zero-carbon) ===")
    print(
        f"Spark runtime: static {outcome['spark_runtime_static_s'] / 3600:6.1f} h, "
        f"dynamic {outcome['spark_runtime_dynamic_s'] / 3600:6.1f} h "
        f"-> -{outcome['spark_runtime_reduction_pct']:.1f}% (paper: -39%)"
    )
    print(
        f"Dynamic surge work lost to unclean kills: "
        f"{outcome['spark_lost_units_dynamic']:.0f} units"
    )
    for r in outcome["web_results"]:
        print(
            f"web-monitor {r.policy_label:14s} violations "
            f"{r.violation_fraction * 100:5.1f}% mean p95 {r.mean_p95_ms:7.1f} ms "
            f"(SLO {r.slo_ms:.0f} ms)"
        )
    print(f"carbon (all must be 0): {outcome['zero_carbon']}")

    assert outcome["spark_runtime_reduction_pct"] > 20.0
    static_web = next(
        r for r in outcome["web_results"] if r.policy_label == "System Policy"
    )
    dynamic_web = next(
        r for r in outcome["web_results"] if r.policy_label == "Dynamic"
    )
    assert static_web.violation_fraction > 0.10
    assert dynamic_web.violation_fraction < 0.01
    assert all(v == 0.0 for v in outcome["zero_carbon"].values())
    benchmark.extra_info["spark_runtime_reduction_pct"] = outcome[
        "spark_runtime_reduction_pct"
    ]
