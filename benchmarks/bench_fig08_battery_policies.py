"""Figure 8: static vs dynamic virtual-battery policies (solar + battery).

Paper targets: the Spark-specific dynamic policy reduces runtime by ~39%
by surging onto excess solar once its battery fills; the web-specific
dynamic policy always meets its 100 ms SLO while the fixed 4-worker
system policy does not.  All applications remain zero-carbon.

Runs on the scenario runner: the static and dynamic cases execute as
independent worker processes (``fig08_battery_policies`` scenario).
"""

from repro.sim.runner import default_jobs, run_sweep


def run_via_runner():
    sweep = run_sweep("fig08_battery_policies", jobs=default_jobs())
    assert sweep.ok, [r.error for r in sweep.failures()]
    return {row["policy"]: row for row in sweep.rows_ok()}


def test_fig08_battery_policies(benchmark):
    rows = benchmark.pedantic(run_via_runner, rounds=1, iterations=1)
    static, dynamic = rows["static"], rows["dynamic"]
    reduction_pct = (
        (static["spark_runtime_s"] - dynamic["spark_runtime_s"])
        / static["spark_runtime_s"] * 100.0
    )

    print("\n=== Figure 8: battery usage policies (4 days, zero-carbon) ===")
    print(
        f"Spark runtime: static {static['spark_runtime_s'] / 3600:6.1f} h, "
        f"dynamic {dynamic['spark_runtime_s'] / 3600:6.1f} h "
        f"-> -{reduction_pct:.1f}% (paper: -39%)"
    )
    print(
        f"Dynamic surge work lost to unclean kills: "
        f"{dynamic['spark_lost_units']:.0f} units"
    )
    for label, row in (("System Policy", static), ("Dynamic", dynamic)):
        print(
            f"web-monitor {label:14s} violations "
            f"{row['web_violation_fraction'] * 100:5.1f}% "
            f"mean p95 {row['web_mean_p95_ms']:7.1f} ms "
            f"(SLO {row['web_slo_ms']:.0f} ms)"
        )
    carbon = {
        f"{policy}_{app}_g": rows[policy][f"{app}_carbon_g"]
        for policy in ("static", "dynamic")
        for app in ("spark", "web")
    }
    print(f"carbon (all must be 0): {carbon}")

    assert reduction_pct > 20.0
    assert static["web_violation_fraction"] > 0.10
    assert dynamic["web_violation_fraction"] < 0.01
    assert all(v == 0.0 for v in carbon.values())
    benchmark.extra_info["spark_runtime_reduction_pct"] = reduction_pct
