"""Ablation: carbon-threshold percentile sensitivity (DESIGN.md §5).

The paper fixes the suspend/resume threshold at the 30th percentile for
ML training.  This ablation sweeps the percentile to expose the
carbon-vs-runtime tradeoff the choice embodies: lower percentiles run
cleaner but wait longer.
"""

from repro.carbon.traces import make_region_trace
from repro.policies import WaitAndScalePolicy
from repro.sim.experiment import (
    arrival_offsets,
    carbon_threshold,
    run_batch_policy,
)
from repro.sim.results import summarize_batch
from repro.workloads.mltrain import MLTrainingJob

PERCENTILES = (20.0, 30.0, 40.0, 50.0)


def run_sweep():
    trace = make_region_trace("caiso", days=4)
    offsets = arrival_offsets(6, trace.duration_s)
    rows = []
    for pct in PERCENTILES:
        threshold = carbon_threshold(trace, pct, 48 * 3600.0)
        summary = summarize_batch(run_batch_policy(
            make_app=lambda: MLTrainingJob(total_work_units=29000.0),
            make_policy=lambda t, thr=threshold: WaitAndScalePolicy(thr, 4, 2.0),
            policy_label=f"p{pct:.0f}",
            base_trace=trace,
            offsets=offsets,
            max_ticks=4 * 24 * 60,
        ))
        rows.append((pct, threshold, summary))
    return rows


def test_ablation_threshold_percentile(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: W&S(2x) carbon threshold percentile ===")
    print(f"{'pctile':>7s} {'threshold':>10s} {'runtime':>9s} {'carbon':>9s}")
    for pct, threshold, summary in rows:
        print(
            f"{pct:6.0f}% {threshold:8.1f} g {summary.mean_runtime_hours:7.2f} h "
            f"{summary.mean_carbon_g:7.3f} g"
        )
    print("expected: higher percentiles run sooner (lower runtime) on")
    print("dirtier power (higher carbon) — the tradeoff is monotone-ish.")

    runtimes = [s.mean_runtime_s for _, _, s in rows]
    carbons = [s.mean_carbon_g for _, _, s in rows]
    # Loosest threshold must be fastest; strictest must be cleanest.
    assert runtimes[-1] <= runtimes[0]
    assert carbons[0] <= carbons[-1]
    benchmark.extra_info["carbon_spread"] = carbons[-1] - carbons[0]
