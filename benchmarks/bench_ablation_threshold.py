"""Ablation: carbon-threshold percentile sensitivity (DESIGN.md §5).

The paper fixes the suspend/resume threshold at the 30th percentile for
ML training.  This ablation sweeps the percentile to expose the
carbon-vs-runtime tradeoff the choice embodies: lower percentiles run
cleaner but wait longer.

Runs on the scenario runner: one worker process per percentile
(``ablation_threshold`` scenario), results in matrix order.
"""

from repro.sim.runner import default_jobs, run_sweep


def run_sweep_rows():
    sweep = run_sweep("ablation_threshold", jobs=default_jobs())
    assert sweep.ok, [r.error for r in sweep.failures()]
    return sweep.rows_ok()


def test_ablation_threshold_percentile(benchmark):
    rows = benchmark.pedantic(run_sweep_rows, rounds=1, iterations=1)

    print("\n=== Ablation: W&S(2x) carbon threshold percentile ===")
    print(f"{'pctile':>7s} {'threshold':>10s} {'runtime':>9s} {'carbon':>9s}")
    for row in rows:
        print(
            f"{row['percentile']:6.0f}% {row['threshold_g_per_kwh']:8.1f} g "
            f"{row['mean_runtime_s'] / 3600:7.2f} h "
            f"{row['mean_carbon_g']:7.3f} g"
        )
    print("expected: higher percentiles run sooner (lower runtime) on")
    print("dirtier power (higher carbon) — the tradeoff is monotone-ish.")

    runtimes = [row["mean_runtime_s"] for row in rows]
    carbons = [row["mean_carbon_g"] for row in rows]
    # Loosest threshold must be fastest; strictest must be cleanest.
    assert runtimes[-1] <= runtimes[0]
    assert carbons[0] <= carbons[-1]
    benchmark.extra_info["carbon_spread"] = carbons[-1] - carbons[0]
