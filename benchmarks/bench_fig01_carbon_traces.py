"""Figure 1: grid carbon-intensity for three regions over four days.

Regenerates the figure's series and prints the per-region statistics the
figure makes visible: Ontario low and flat (nuclear), Uruguay
low-moderate (hydro), California high with the largest swings (fossil +
solar penetration).
"""

import numpy as np

from repro.analysis.figures_batch import fig01_carbon_traces


def test_fig01_carbon_traces(benchmark):
    bundle = benchmark.pedantic(
        fig01_carbon_traces, kwargs={"days": 4}, rounds=1, iterations=1
    )

    print("\n=== Figure 1: grid carbon intensity (gCO2/kWh, 4 days) ===")
    print(f"{'region':10s} {'mean':>7s} {'min':>7s} {'max':>7s} {'std':>7s}")
    stats = {}
    for region in ("ontario", "uruguay", "caiso"):
        values = np.asarray([v for _, v in bundle.series[region]])
        stats[region] = values
        print(
            f"{region:10s} {values.mean():7.1f} {values.min():7.1f} "
            f"{values.max():7.1f} {values.std():7.1f}"
        )
    print("paper: Ontario lowest (nuclear), Uruguay slightly higher (hydro),")
    print("California highest mean AND variability (fossil + duck curve).")

    assert stats["ontario"].mean() < stats["uruguay"].mean() < stats["caiso"].mean()
    assert stats["caiso"].std() > stats["uruguay"].std() > stats["ontario"].std()
    benchmark.extra_info["caiso_mean"] = float(stats["caiso"].mean())
    benchmark.extra_info["ontario_mean"] = float(stats["ontario"].mean())
