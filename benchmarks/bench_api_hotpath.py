"""API hot path: getter-storm vs per-tick EnergyState snapshot.

Before API v1, every observer of an application's energy state — its
policy, the telemetry sampler, a REST poller — re-issued the Table 1
getters against live ecovisor state each tick: N apps x M observers x K
getters of redundant traversal on the hottest path in every sweep.  v1
computes one immutable :class:`~repro.core.state.EnergyState` per app
per tick and shares it by reference.

This benchmark drives the bare tick protocol over a 10-app scenario
(grid + solar + battery + market, 3 loaded containers per app) with
three observers per app, in three configurations:

- ``baseline``  — no observers (the tick protocol itself);
- ``getters``   — each observer issues the legacy getter storm through
  APIs forced onto the live-read path (``use_snapshots=False``, the
  pre-v1 behaviour);
- ``snapshot``  — each observer reads fields of the shared per-tick
  snapshot delivered to its ``(tick, state)`` upcall.

The observation cost of a mode is its total time minus the baseline;
the headline number is the getter/snapshot observation-cost ratio.
Both non-baseline modes include the snapshot build (it always runs in
v1), so the comparison is conservative for the snapshot path.

Run standalone (the CI perf-smoke job):

    PYTHONPATH=src python benchmarks/bench_api_hotpath.py \
        --apps 10 --ticks 300 --out bench-api-hotpath.json

or under pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/bench_api_hotpath.py
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List

from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import constant_trace
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.api import EcovisorAPI, connect
from repro.core.clock import SimulationClock
from repro.core.config import (
    BatteryConfig,
    CarbonServiceConfig,
    ClusterConfig,
    EcovisorConfig,
    ServerConfig,
    ShareConfig,
    SolarConfig,
)
from repro.core.ecovisor import Ecovisor
from repro.energy.battery import Battery
from repro.energy.grid import GridConnection
from repro.energy.solar import ConstantSolarTrace, SolarArrayEmulator
from repro.energy.system import PhysicalEnergySystem
from repro.market.prices import constant_price_trace
from repro.market.service import PriceSignal

TICK_S = 60.0
OBSERVERS_PER_APP = 3
CONTAINERS_PER_APP = 3


def build_ecovisor(num_apps: int) -> Ecovisor:
    """A 10-app-class scenario: grid + solar + battery + market."""
    plant = PhysicalEnergySystem(
        grid=GridConnection(),
        battery=Battery(BatteryConfig(capacity_wh=500.0)),
        solar=SolarArrayEmulator(
            SolarConfig(peak_power_w=200.0, scale=1.0),
            ConstantSolarTrace(0.6),
        ),
    )
    carbon = CarbonIntensityService(
        CarbonServiceConfig(region="constant"),
        trace=constant_trace(250.0, days=7),
    )
    platform = ContainerOrchestrationPlatform(
        ClusterConfig(num_servers=4 * num_apps, server=ServerConfig())
    )
    ecovisor = Ecovisor(
        plant,
        platform,
        carbon,
        EcovisorConfig(tick_interval_s=TICK_S),
        price_signal=PriceSignal(trace=constant_price_trace(0.30, days=7)),
    )
    fraction = 1.0 / num_apps
    for index in range(num_apps):
        name = f"app{index:02d}"
        ecovisor.register_app(
            name,
            ShareConfig(
                solar_fraction=fraction,
                battery_fraction=fraction,
                grid_power_w=float("inf"),
            ),
        )
        for _ in range(CONTAINERS_PER_APP):
            container = ecovisor.launch_container(name, cores=1)
            container.set_demand_utilization(0.8)
    return ecovisor


def _getter_storm(api: EcovisorAPI, container_ids: List[str]) -> float:
    """One observer's legacy polling pass: the full Table 1 read surface."""
    total = api.get_solar_power()
    total += api.get_grid_power()
    total += api.get_grid_carbon()
    total += api.get_grid_price()
    total += api.get_energy_cost()
    total += api.get_battery_charge_level()
    total += api.get_battery_capacity()
    total += api.get_battery_discharge_rate()
    for container_id in container_ids:
        total += api.get_container_power(container_id)
    return total


def _snapshot_read(state) -> float:
    """One observer's snapshot pass: the same figures, one shared object."""
    total = state.solar_power_w
    total += state.grid_power_w
    total += state.grid_carbon_g_per_kwh
    total += state.grid_price_usd_per_kwh
    total += state.total_cost_usd
    total += state.battery_charge_level_wh
    total += state.battery_capacity_wh
    total += state.battery_discharge_rate_w
    for power in state.container_power_w.values():
        total += power
    return total


def run_mode(mode: str, num_apps: int, ticks: int) -> float:
    """Run ``ticks`` of the tick protocol under one observer mode."""
    ecovisor = build_ecovisor(num_apps)
    sink: List[float] = [0.0]

    def make_getter_observer(api: EcovisorAPI, ids: List[str]):
        def observer(tick):
            sink[0] += _getter_storm(api, ids)

        return observer

    for name in ecovisor.app_names():
        container_ids = [c.id for c in ecovisor.containers_for(name)]
        if mode == "getters":
            # Live-read APIs: the pre-v1 behaviour under measurement.
            api = connect(ecovisor, name, use_snapshots=False)
            for _ in range(OBSERVERS_PER_APP):
                ecovisor.register_tick_callback(
                    name, make_getter_observer(api, container_ids)
                )
        elif mode == "snapshot":
            for _ in range(OBSERVERS_PER_APP):

                def observer(tick, state):
                    sink[0] += _snapshot_read(state)

                ecovisor.register_tick_callback(name, observer)
        elif mode != "baseline":
            raise ValueError(f"unknown mode {mode!r}")

    clock = SimulationClock(TICK_S)
    started = time.perf_counter()
    for _ in range(ticks):
        tick = clock.current_tick()
        ecovisor.begin_tick(tick)
        ecovisor.invoke_app_ticks(tick)
        ecovisor.settle(tick)
        clock.advance()
    return time.perf_counter() - started


def run_micro(num_apps: int, passes: int = 2000) -> Dict[str, float]:
    """Per-observation cost, isolated: one storm vs one snapshot read."""
    ecovisor = build_ecovisor(num_apps)
    clock = SimulationClock(TICK_S)
    for _ in range(2):  # settle so every field carries real values
        tick = clock.current_tick()
        ecovisor.begin_tick(tick)
        ecovisor.invoke_app_ticks(tick)
        ecovisor.settle(tick)
        clock.advance()
    name = ecovisor.app_names()[0]
    live_api = connect(ecovisor, name, use_snapshots=False)
    v1_api = connect(ecovisor, name)
    container_ids = [c.id for c in ecovisor.containers_for(name)]

    started = time.perf_counter()
    for _ in range(passes):
        _getter_storm(live_api, container_ids)
    getter_us = (time.perf_counter() - started) / passes * 1e6

    started = time.perf_counter()
    for _ in range(passes):
        _snapshot_read(v1_api.state())
    snapshot_us = (time.perf_counter() - started) / passes * 1e6
    return {
        "micro_getter_us": getter_us,
        "micro_snapshot_us": snapshot_us,
        "observation_speedup": getter_us / snapshot_us,
    }


def run_benchmark(num_apps: int = 10, ticks: int = 300) -> Dict[str, float]:
    baseline_s = run_mode("baseline", num_apps, ticks)
    getters_s = run_mode("getters", num_apps, ticks)
    snapshot_s = run_mode("snapshot", num_apps, ticks)
    result = {
        "apps": num_apps,
        "ticks": ticks,
        "observers_per_app": OBSERVERS_PER_APP,
        "containers_per_app": CONTAINERS_PER_APP,
        "baseline_s": baseline_s,
        "getters_s": getters_s,
        "snapshot_s": snapshot_s,
        "getter_obs_us_per_tick": (getters_s - baseline_s) / ticks * 1e6,
        "snapshot_obs_us_per_tick": (snapshot_s - baseline_s) / ticks * 1e6,
        "total_speedup": getters_s / snapshot_s,
    }
    result.update(run_micro(num_apps))
    return result


def print_table(result: Dict[str, float]) -> None:
    print(
        f"\n=== API hot path: {result['apps']:.0f} apps x "
        f"{result['observers_per_app']:.0f} observers x "
        f"{result['ticks']:.0f} ticks ==="
    )
    print(f"{'mode':>10s} {'total':>10s} {'observation/tick':>18s}")
    print(f"{'baseline':>10s} {result['baseline_s']:9.3f}s {'—':>18s}")
    print(
        f"{'getters':>10s} {result['getters_s']:9.3f}s "
        f"{result['getter_obs_us_per_tick']:15.1f} us"
    )
    print(
        f"{'snapshot':>10s} {result['snapshot_s']:9.3f}s "
        f"{result['snapshot_obs_us_per_tick']:15.1f} us"
    )
    print(
        f"one observation: getter storm {result['micro_getter_us']:.1f} us, "
        f"snapshot read {result['micro_snapshot_us']:.1f} us "
        f"({result['observation_speedup']:.1f}x)"
    )
    print(f"end-to-end tick loop speedup: {result['total_speedup']:.2f}x")


def test_snapshot_beats_getter_storm(benchmark):
    """The snapshot path must be measurably faster than the getter storm."""
    result = benchmark.pedantic(
        lambda: run_benchmark(num_apps=10, ticks=200), rounds=1, iterations=1
    )
    print_table(result)
    benchmark.extra_info.update(result)
    assert result["observation_speedup"] > 1.0
    assert result["getters_s"] > result["snapshot_s"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", type=int, default=10)
    parser.add_argument("--ticks", type=int, default=300)
    parser.add_argument("--out", type=str, default=None, help="JSON output path")
    args = parser.parse_args()
    result = run_benchmark(num_apps=args.apps, ticks=args.ticks)
    print_table(result)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
