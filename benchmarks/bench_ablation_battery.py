"""Ablation: battery efficiency and depth-of-discharge floor (DESIGN.md §5).

Sweeps the battery's one-way efficiency and the DoD floor to show how
much solar-shifted energy a zero-carbon application actually recovers —
the knob the paper's charge-controller configuration (30% floor) fixes.

Runs on the scenario runner: the 3x2 (efficiency, floor) matrix of the
``ablation_battery`` scenario executes across worker processes.
"""

from repro.sim.runner import default_jobs, run_sweep


def run_sweep_rows():
    sweep = run_sweep("ablation_battery", jobs=default_jobs())
    assert sweep.ok, [r.error for r in sweep.failures()]
    return sweep.rows_ok()


def test_ablation_battery_parameters(benchmark):
    rows = benchmark.pedantic(run_sweep_rows, rounds=1, iterations=1)

    print("\n=== Ablation: battery efficiency x DoD floor (3 solar days) ===")
    print(f"{'eff':>5s} {'floor':>6s} {'work':>10s} {'from batt':>10s} "
          f"{'from solar':>11s} {'curtailed':>10s}")
    results = {}
    for row in rows:
        results[(row["efficiency"], row["floor"])] = row
        print(
            f"{row['efficiency']:5.2f} {row['floor']:5.0%} "
            f"{row['progress_units']:9.0f}u "
            f"{row['battery_wh']:8.2f}Wh {row['solar_wh']:9.2f}Wh "
            f"{row['curtailed_wh']:8.2f}Wh"
        )
    print("expected: lower efficiency and higher floors recover less")
    print("battery energy, so the job completes less work.")

    # Same floor: worse efficiency recovers no more battery energy.
    assert (
        results[(0.85, 0.30)]["battery_wh"]
        <= results[(1.00, 0.30)]["battery_wh"] + 1e-6
    )
    # Same efficiency: the 30% floor strands capacity vs no floor.
    assert (
        results[(0.95, 0.30)]["progress_units"]
        <= results[(0.95, 0.00)]["progress_units"] + 1e-6
    )
    benchmark.extra_info["work_at_paper_config"] = results[(0.95, 0.30)][
        "progress_units"
    ]
