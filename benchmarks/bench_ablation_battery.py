"""Ablation: battery efficiency and depth-of-discharge floor (DESIGN.md §5).

Sweeps the battery's one-way efficiency and the DoD floor to show how
much solar-shifted energy a zero-carbon application actually recovers —
the knob the paper's charge-controller configuration (30% floor) fixes.
"""

from repro.core.clock import SimulationClock
from repro.core.config import (
    BatteryConfig,
    CarbonServiceConfig,
    ClusterConfig,
    EcovisorConfig,
    ShareConfig,
    SolarConfig,
)
from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import constant_trace
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.ecovisor import Ecovisor
from repro.energy.battery import Battery
from repro.energy.solar import SolarArrayEmulator, SolarTrace
from repro.energy.system import PhysicalEnergySystem
from repro.policies import StaticBatterySmoothingPolicy
from repro.sim.engine import SimulationEngine
from repro.workloads.spark import SparkJob

EFFICIENCIES = (1.0, 0.95, 0.85)
FLOORS = (0.0, 0.30)


def run_case(efficiency: float, floor: float) -> dict:
    # Sized so the battery binds: a 6-worker pool (7.5 W) outdraws the
    # morning/evening solar shoulders, so recovered battery energy (and
    # therefore efficiency and the DoD floor) directly limits work done.
    battery = Battery(BatteryConfig(
        capacity_wh=15.0,
        empty_soc_fraction=floor,
        charge_efficiency=efficiency,
        discharge_efficiency=efficiency,
        initial_soc_fraction=max(0.5, floor + 0.2),
    ))
    solar = SolarArrayEmulator(
        SolarConfig(peak_power_w=14.0), SolarTrace(days=3, seed=2023)
    )
    plant = PhysicalEnergySystem(battery=battery, solar=solar)
    platform = ContainerOrchestrationPlatform(ClusterConfig(num_servers=8))
    carbon = CarbonIntensityService(
        CarbonServiceConfig(region="constant"), trace=constant_trace(200.0, days=3)
    )
    ecovisor = Ecovisor(plant, platform, carbon, EcovisorConfig())
    engine = SimulationEngine(ecovisor, SimulationClock(60.0))
    job = SparkJob(name="spark", total_work_units=1e9)
    policy = StaticBatterySmoothingPolicy(6, 1.25)
    engine.add_application(
        job,
        ShareConfig(solar_fraction=1.0, battery_fraction=1.0, grid_power_w=0.0),
        policy,
    )
    engine.run(3 * 24 * 60)
    account = ecovisor.ledger.account("spark")
    return {
        "progress": job.progress_units,
        "battery_wh": account.battery_wh,
        "solar_wh": account.solar_wh,
        "curtailed_wh": account.curtailed_wh,
    }


def run_sweep():
    rows = []
    for efficiency in EFFICIENCIES:
        for floor in FLOORS:
            rows.append(((efficiency, floor), run_case(efficiency, floor)))
    return rows


def test_ablation_battery_parameters(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: battery efficiency x DoD floor (3 solar days) ===")
    print(f"{'eff':>5s} {'floor':>6s} {'work':>10s} {'from batt':>10s} "
          f"{'from solar':>11s} {'curtailed':>10s}")
    results = {}
    for (efficiency, floor), out in rows:
        results[(efficiency, floor)] = out
        print(
            f"{efficiency:5.2f} {floor:5.0%} {out['progress']:9.0f}u "
            f"{out['battery_wh']:8.2f}Wh {out['solar_wh']:9.2f}Wh "
            f"{out['curtailed_wh']:8.2f}Wh"
        )
    print("expected: lower efficiency and higher floors recover less")
    print("battery energy, so the job completes less work.")

    # Same floor: worse efficiency recovers no more battery energy.
    assert (
        results[(0.85, 0.30)]["battery_wh"]
        <= results[(1.00, 0.30)]["battery_wh"] + 1e-6
    )
    # Same efficiency: the 30% floor strands capacity vs no floor.
    assert (
        results[(0.95, 0.30)]["progress"]
        <= results[(0.95, 0.00)]["progress"] + 1e-6
    )
    benchmark.extra_info["work_at_paper_config"] = results[(0.95, 0.30)][
        "progress"
    ]
