"""Extension: geo-distributed ecovisor coordination (paper Section 7).

The paper's stated future work: coordinate distributed ecovisor
clusters so geo-distributed applications can "shift workload to the
site(s) with the lowest carbon-intensity".  This bench runs a
delay-tolerant batch pool across two sites with anti-correlated carbon
(their duck curves are out of phase) and compares carbon against
pinning the job to either single site.

Runs on the scenario runner: the three placements (``extension_geo``
scenario) execute as independent worker processes.
"""

from repro.sim.runner import default_jobs, run_sweep


def run_sweep_rows():
    sweep = run_sweep("extension_geo", jobs=default_jobs())
    assert sweep.ok, [r.error for r in sweep.failures()]
    return {row["placement"]: row for row in sweep.rows_ok()}


def test_extension_geo_shifting(benchmark):
    results = benchmark.pedantic(run_sweep_rows, rounds=1, iterations=1)

    print("\n=== Extension: geo-distributed carbon shifting (2 sites) ===")
    print(f"{'placement':14s} {'runtime':>9s} {'carbon':>9s} {'migrations':>11s}")
    for name, row in results.items():
        print(
            f"{name:14s} {row['runtime_s'] / 3600:7.2f} h "
            f"{row['carbon_g']:7.3f} g {row['migrations']:11.0f}"
        )
    geo = results["geo-shifting"]
    print(
        "work split: "
        f"east {geo['work_east']:.0f}u, west {geo['work_west']:.0f}u"
    )
    print("expected: shifting to the cleaner site cuts carbon vs either")
    print("single-site placement at a small runtime cost (migration pauses).")

    singles = [results["east-only"], results["west-only"]]
    assert geo["completed"] == 1.0 and all(r["completed"] == 1.0 for r in singles)
    assert geo["carbon_g"] < min(r["carbon_g"] for r in singles)
    assert geo["migrations"] >= 1
    benchmark.extra_info["geo_carbon_g"] = geo["carbon_g"]
    benchmark.extra_info["best_single_site_g"] = min(
        r["carbon_g"] for r in singles
    )
