"""Extension: geo-distributed ecovisor coordination (paper Section 7).

The paper's stated future work: coordinate distributed ecovisor
clusters so geo-distributed applications can "shift workload to the
site(s) with the lowest carbon-intensity".  This bench runs a
delay-tolerant batch pool across two sites with anti-correlated carbon
(their duck curves are out of phase) and compares carbon against
pinning the job to either single site.
"""

from repro.carbon.traces import make_region_trace
from repro.geo import GeoCoordinator
from repro.sim.experiment import grid_environment

WORK_UNITS = 8 * 60.0 * 600  # ~10 h of work for 8 workers
MAX_TICKS = 2 * 24 * 60


def build_sites():
    # Same region statistics, phase-shifted 12 h: when one site's grid is
    # dirty, the other's is clean (a US-EU style pairing).
    base = make_region_trace("caiso", days=3, seed=2023)
    shifted = base.rolled(12 * 3600.0)
    return base, shifted


def run_all():
    base, shifted = build_sites()
    results = {}
    geo = GeoCoordinator(
        {
            "east": grid_environment(trace=base),
            "west": grid_environment(trace=shifted),
        },
        workers=8,
        migration_delay_ticks=5,
    )
    geo.submit(WORK_UNITS)
    results["geo-shifting"] = geo.run(MAX_TICKS)

    for name, trace in (("east-only", base), ("west-only", shifted)):
        pinned = GeoCoordinator(
            {
                "east": grid_environment(trace=trace),
                "west": grid_environment(trace=trace.rolled(1.0)),
            },
            workers=8,
            switch_threshold_g_per_kwh=1e9,  # never migrate
        )
        pinned.submit(WORK_UNITS)
        results[name] = pinned.run(MAX_TICKS)
    return results


def test_extension_geo_shifting(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n=== Extension: geo-distributed carbon shifting (2 sites) ===")
    print(f"{'placement':14s} {'runtime':>9s} {'carbon':>9s} {'migrations':>11s}")
    for name, r in results.items():
        print(
            f"{name:14s} {r.runtime_s / 3600:7.2f} h {r.total_carbon_g:7.3f} g "
            f"{r.migrations:11d}"
        )
    geo = results["geo-shifting"]
    print(f"work split: {geo.work_by_site}")
    print("expected: shifting to the cleaner site cuts carbon vs either")
    print("single-site placement at a small runtime cost (migration pauses).")

    singles = [results["east-only"], results["west-only"]]
    assert geo.completed and all(r.completed for r in singles)
    assert geo.total_carbon_g < min(r.total_carbon_g for r in singles)
    assert geo.migrations >= 1
    benchmark.extra_info["geo_carbon_g"] = geo.total_carbon_g
    benchmark.extra_info["best_single_site_g"] = min(
        r.total_carbon_g for r in singles
    )
