"""Ablation: synchronization stall power (DESIGN.md §5).

The ML model charges barrier stalls a fraction of dynamic power
(gradient all-reduce and busy polling are not free).  This is the knob
that makes over-scaling carbon-expensive: at stall power 0, W&S(3x)
would emit barely more than W&S(2x); at 1.0 it would pay the full
50%-more-workers energy bill.  The paper's reported +14.94% sits between.
"""

from repro.carbon.traces import make_region_trace
from repro.policies import WaitAndScalePolicy
from repro.sim.experiment import (
    arrival_offsets,
    carbon_threshold,
    run_batch_policy,
)
from repro.sim.results import summarize_batch
from repro.workloads.mltrain import MLTrainingJob

STALL_FRACTIONS = (0.0, 0.5, 1.0)


def run_sweep():
    trace = make_region_trace("caiso", days=4)
    offsets = arrival_offsets(6, trace.duration_s)
    threshold = carbon_threshold(trace, 30.0, 48 * 3600.0)
    rows = []
    for stall in STALL_FRACTIONS:
        pair = {}
        for factor in (2.0, 3.0):
            summary = summarize_batch(run_batch_policy(
                make_app=lambda s=stall: MLTrainingJob(
                    total_work_units=29000.0, stall_power_fraction=s
                ),
                make_policy=lambda t, thr=threshold, f=factor: (
                    WaitAndScalePolicy(thr, 4, f)
                ),
                policy_label=f"ws{factor:.0f}",
                base_trace=trace,
                offsets=offsets,
                max_ticks=4 * 24 * 60,
            ))
            pair[factor] = summary
        rows.append((stall, pair))
    return rows


def test_ablation_stall_power(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: barrier-stall power fraction ===")
    print(f"{'stall':>6s} {'W&S2 carbon':>12s} {'W&S3 carbon':>12s} "
          f"{'3x vs 2x':>9s}")
    penalties = []
    for stall, pair in rows:
        penalty = pair[3.0].mean_carbon_g / pair[2.0].mean_carbon_g - 1.0
        penalties.append(penalty)
        print(
            f"{stall:6.1f} {pair[2.0].mean_carbon_g:10.3f} g "
            f"{pair[3.0].mean_carbon_g:10.3f} g {penalty * 100:+8.1f}%"
        )
    print("paper: +14.94% carbon at 3x vs 2x; the stall-power fraction")
    print("interpolates between free stalls (0) and full-power stalls (1).")

    # The over-scaling carbon penalty grows with stall power.
    assert penalties == sorted(penalties)
    benchmark.extra_info["penalty_at_default_0.5"] = penalties[1]
