"""Figure 5: ML (W&S 2x) and BLAST (W&S 3x) sharing one ecovisor.

Regenerates the container-count time series of Figure 5(b)-(d): both
applications run concurrently, each suspending and scaling against its
own carbon threshold, on the same physical cluster.
"""

from repro.analysis.figures_batch import fig05_multitenancy


def test_fig05_multitenancy(benchmark):
    outcome = benchmark.pedantic(
        fig05_multitenancy, kwargs={"days": 2}, rounds=1, iterations=1
    )
    bundle = outcome["bundle"]

    print("\n=== Figure 5: multi-tenant carbon-aware scaling (2 days) ===")
    print(f"ML threshold (30th pct/48h):   {outcome['ml_threshold']:.1f} g/kWh")
    print(f"BLAST threshold (33rd pct):    {outcome['blast_threshold']:.1f} g/kWh")
    ml = [v for _, v in bundle.series["ml-training_containers"]]
    blast = [v for _, v in bundle.series["blast_containers"]]
    cluster = [v for _, v in bundle.series["cluster_containers"]]
    print(f"ML containers:      0..{max(ml):.0f} (paper Fig 5b: 0..8)")
    print(f"BLAST containers:   0..{max(blast):.0f} (paper Fig 5c: 0..24 +queue)")
    print(f"cluster containers: 0..{max(cluster):.0f} (paper Fig 5d: 0..~36)")
    print(
        f"ML completed: {outcome['ml_completed']}, "
        f"BLAST completed: {outcome['blast_completed']}"
    )
    print(
        f"carbon: ML {outcome['ml_carbon_g']:.3f} g, "
        f"BLAST {outcome['blast_carbon_g']:.3f} g"
    )

    assert outcome["ml_completed"] and outcome["blast_completed"]
    assert max(ml) == 8.0
    assert max(blast) == 25.0  # 24 workers + 1 queue server
    benchmark.extra_info["cluster_peak_containers"] = max(cluster)
