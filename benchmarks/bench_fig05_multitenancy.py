"""Figure 5: ML (W&S 2x) and BLAST (W&S 3x) sharing one ecovisor.

Regenerates the headline numbers of Figure 5(b)-(d): both applications
run concurrently, each suspending and scaling against its own carbon
threshold, on the same physical cluster.

Runs on the scenario runner (``fig05_multitenancy`` scenario), which
reduces the container-count time series to the peak counts the paper's
panels report; the time-series view itself remains available via
``python -m repro fig05``.
"""

from repro.sim.runner import default_jobs, run_sweep


def run_via_runner():
    sweep = run_sweep("fig05_multitenancy", jobs=default_jobs())
    assert sweep.ok, [r.error for r in sweep.failures()]
    (row,) = sweep.rows_ok()
    return row


def test_fig05_multitenancy(benchmark):
    row = benchmark.pedantic(run_via_runner, rounds=1, iterations=1)

    print("\n=== Figure 5: multi-tenant carbon-aware scaling (2 days) ===")
    print(f"ML threshold (30th pct/48h):   {row['ml_threshold_g_per_kwh']:.1f} g/kWh")
    print(f"BLAST threshold (33rd pct):    {row['blast_threshold_g_per_kwh']:.1f} g/kWh")
    print(f"ML containers:      0..{row['ml_peak_containers']:.0f} (paper Fig 5b: 0..8)")
    print(
        f"BLAST containers:   0..{row['blast_peak_containers']:.0f} "
        f"(paper Fig 5c: 0..24 +queue)"
    )
    print(
        f"cluster containers: 0..{row['cluster_peak_containers']:.0f} "
        f"(paper Fig 5d: 0..~36)"
    )
    print(
        f"ML completed: {bool(row['ml_completed'])}, "
        f"BLAST completed: {bool(row['blast_completed'])}"
    )
    print(
        f"carbon: ML {row['ml_carbon_g']:.3f} g, "
        f"BLAST {row['blast_carbon_g']:.3f} g"
    )

    assert row["ml_completed"] == 1.0 and row["blast_completed"] == 1.0
    assert row["ml_peak_containers"] == 8.0
    assert row["blast_peak_containers"] == 25.0  # 24 workers + 1 queue server
    benchmark.extra_info["cluster_peak_containers"] = row["cluster_peak_containers"]
