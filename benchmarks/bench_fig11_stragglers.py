"""Figure 11: replica-based straggler mitigation under excess solar.

Paper targets: excess renewable power (100-200% of the job's maximum
draw) converted into replica tasks reduces runtime with diminishing
returns, while overall energy-efficiency decreases (replicas duplicate
work) — acceptable because the excess would otherwise be curtailed.

Runs on the scenario runner: each (solar %, replica policy) point
executes as an independent worker process (``fig11_stragglers``
scenario).
"""

from repro.analysis.figures_solar import fig11_straggler_mitigation
from repro.sim.runner import default_jobs

PERCENTAGES = (100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200)


def run_via_runner():
    return fig11_straggler_mitigation(
        percentages=PERCENTAGES, jobs=default_jobs()
    )


def test_fig11_stragglers(benchmark):
    rows = benchmark.pedantic(run_via_runner, rounds=1, iterations=1)

    print("\n=== Figure 11: straggler mitigation with excess solar ===")
    print(f"{'solar %':>8s} {'baseline':>9s} {'replicas':>9s} "
          f"{'improvement':>12s} {'work/J':>8s}")
    for row in rows:
        print(
            f"{row['solar_pct']:7.0f}% "
            f"{row['runtime_baseline_s'] / 3600:7.2f} h "
            f"{row['runtime_replicas_s'] / 3600:7.2f} h "
            f"{row['runtime_improvement_pct']:10.1f} % "
            f"{row['energy_efficiency_per_j']:8.4f}"
        )
    print("paper: improvement grows with excess solar, with diminishing")
    print("returns; energy-efficiency declines as replicas consume excess.")

    improvements = [r["runtime_improvement_pct"] for r in rows]
    efficiencies = [r["energy_efficiency_per_j"] for r in rows]
    assert abs(improvements[0]) < 5.0  # no excess, no replicas
    assert max(improvements) > 15.0
    # Diminishing returns: the second half of the sweep adds less than
    # the first half did.
    mid = len(improvements) // 2
    first_half_gain = improvements[mid] - improvements[0]
    second_half_gain = improvements[-1] - improvements[mid]
    assert second_half_gain < first_half_gain
    assert efficiencies[-1] <= efficiencies[0]
    benchmark.extra_info["peak_improvement_pct"] = max(improvements)
