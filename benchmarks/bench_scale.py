"""Fleet-scale tick-loop throughput: the repo's committed perf baseline.

Builds a fleet scenario (see :mod:`repro.sim.fleet`) and times nothing
but ``engine.run`` — the batched tick hot path: signal sampling, virtual
solar refresh, snapshot builds, policy upcalls, settlement, telemetry.
Emits a JSON record with:

- ``ticks_per_s``        — tick-loop throughput (higher is better);
- ``per_app_us_per_tick``— amortized per-application cost of one tick;
- ``peak_rss_mb``        — peak resident set size of the process;
- ``unbatched_wall_s`` / ``speedup_vs_unbatched`` — the same fleet run
  with the engine's batched hot path disabled (``engine.batched =
  False``), the fallback loop the parity tests pin against.

The committed baseline lives at ``benchmarks/BENCH_scale.json``.  The CI
``perf-regression`` job reruns this benchmark and **fails the build**
when measured throughput drops below ``baseline / --max-regression``
(default 1.5x); see docs/performance.md for the override protocol and
how to regenerate the baseline:

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --apps 50 --ticks 200 --check benchmarks/BENCH_scale.json

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --apps 200 --ticks 120 --write-baseline benchmarks/BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.sim.fleet import build_churn_fleet, build_fleet

SCHEMA = "bench_scale/v1"

#: Scenario families the benchmark can time.  ``fleet`` is the static
#: population; ``fleet_churn`` adds the digest-seeded Poisson
#: admit/evict schedule, timing the control plane's lifecycle path
#: (admission, share rebalancing, eviction) inside the tick loop.
SCENARIOS = ("fleet", "fleet_churn")


def peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux: KiB units)."""
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes
        return rss_kib / (1024.0 * 1024.0)
    return rss_kib / 1024.0


def entry_key(apps: int, ticks: int, mix: str, scenario: str = "fleet") -> str:
    base = f"apps={apps},ticks={ticks},mix={mix}"
    if scenario != "fleet":
        return f"scenario={scenario},{base}"
    return base


def time_fleet_run(
    apps: int,
    ticks: int,
    mix: str,
    seed: int,
    batched: bool,
    scenario: str = "fleet",
    profile: bool = False,
) -> Dict[str, Any]:
    """Build one fleet (static or churn) and time ``engine.run`` alone.

    With ``profile``, the engine's tick profiler is enabled for the run
    and the per-phase rollup rides along in the returned dict — the
    timing then includes the profiler's (gated, ~1%) overhead.
    """
    params = {
        "apps": apps,
        "ticks": ticks,
        "seed": seed,
        "mix": mix,
        "batched": batched,
    }
    builder = build_churn_fleet if scenario == "fleet_churn" else build_fleet
    fleet = builder(params)
    if profile:
        fleet.engine.profiler.enabled = True
    started = time.perf_counter()
    executed = fleet.engine.run(ticks)
    wall_s = time.perf_counter() - started
    result: Dict[str, Any] = {
        "wall_s": wall_s,
        "ticks_executed": float(executed),
        "containers": float(fleet.num_containers),
    }
    if profile:
        summary = fleet.engine.profiler.summary()
        result["profile"] = {
            "phase_table": summary["phase_table"],
            "mean_tick_s": summary["mean_tick_s"],
            "p50_tick_s": summary["p50_tick_s"],
            "p99_tick_s": summary["p99_tick_s"],
            "slow_ticks_total": summary["slow_ticks_total"],
        }
    return result


def run_benchmark(
    apps: int = 200,
    ticks: int = 120,
    mix: str = "balanced",
    seed: int = 2023,
    skip_unbatched: bool = False,
    scenario: str = "fleet",
    profile: bool = False,
) -> Dict[str, Any]:
    if scenario not in SCENARIOS:
        raise SystemExit(f"unknown scenario {scenario!r}; known: {SCENARIOS}")
    batched = time_fleet_run(
        apps, ticks, mix, seed, batched=True, scenario=scenario, profile=profile
    )
    wall_s = batched["wall_s"]
    result: Dict[str, Any] = {
        "schema": SCHEMA,
        "scenario": scenario,
        "apps": apps,
        "ticks": ticks,
        "mix": mix,
        "seed": seed,
        "containers": batched["containers"],
        "wall_s": wall_s,
        "ticks_per_s": ticks / wall_s,
        "per_app_us_per_tick": wall_s / ticks / apps * 1e6,
        "peak_rss_mb": peak_rss_mb(),
    }
    if profile:
        # The phase breakdown explains *where* a regression happened,
        # not just that it happened.
        result["profile"] = batched["profile"]
    if not skip_unbatched:
        unbatched = time_fleet_run(
            apps, ticks, mix, seed, batched=False, scenario=scenario
        )
        result["unbatched_wall_s"] = unbatched["wall_s"]
        result["speedup_vs_unbatched"] = unbatched["wall_s"] / wall_s
    return result


def check_profiler_overhead(
    apps: int,
    ticks: int,
    mix: str,
    seed: int,
    scenario: str,
    budget: float,
    repeats: int = 3,
) -> int:
    """Gate the profiler's enabled-vs-disabled cost; exit status 0/1.

    A 2% budget cannot be checked by comparing two whole-run wall times
    on a shared runner: ambient interference (CPU steal, frequency
    drift) perturbs a quarter-second run by far more than that, and the
    machine's quiet floor itself wanders over the tens of seconds that
    back-to-back runs span.  The gate therefore pairs the modes at
    *chunk* granularity: four identical fleets are built up front — a
    (disabled, enabled) pair and an (enabled, disabled) pair, opposite
    build orders cancelling allocation-order bias — and short same-work
    slices of ``engine.run`` rotate between them, so each ratio's two
    samples sit milliseconds apart and see the same machine.  Each
    rotation yields two enabled/disabled ratios; the middle-half
    trimmed mean of all ratios discards the chunks an interference
    burst landed on, and what survives isolates the profiler's cost.
    """
    chunk_ticks = max(ticks // 8, 5)
    chunks = 8 * max(repeats, 1)
    params = {
        "apps": apps,
        "ticks": chunk_ticks * (chunks + 1),
        "seed": seed,
        "mix": mix,
        "batched": True,
    }
    builder = build_churn_fleet if scenario == "fleet_churn" else build_fleet

    def build(profile: bool) -> Any:
        fleet = builder(params)
        if profile:
            fleet.engine.profiler.enabled = True
        # First chunk untimed: trace-cache priming, allocator growth.
        fleet.engine.run(chunk_ticks)
        return fleet.engine

    d1, e1 = build(False), build(True)
    e2, d2 = build(True), build(False)
    ratios: List[float] = []
    for i in range(chunks):
        rotation = (d1, e1, e2, d2) if i % 2 == 0 else (e1, d1, d2, e2)
        walls = {}
        for engine in rotation:
            started = time.perf_counter()
            engine.run(chunk_ticks)
            walls[id(engine)] = time.perf_counter() - started
        ratios.append(walls[id(e1)] / walls[id(d1)])
        ratios.append(walls[id(e2)] / walls[id(d2)])
    trim = len(ratios) // 4
    core = sorted(ratios)[trim : len(ratios) - trim]
    overhead = sum(core) / len(core) - 1.0
    verdict = "ok" if overhead <= budget else "FAIL"
    print(
        f"\nprofiler overhead gate ({apps} apps, {len(ratios)} paired "
        f"{chunk_ticks}-tick chunk ratios, middle-half trimmed mean): "
        f"{overhead * 100:+.2f}% (budget {budget * 100:.1f}%) -> {verdict}"
    )
    if verdict != "ok":
        print(
            "Profiler overhead exceeded the budget: the enabled-path "
            "brackets got more expensive, or timing leaked into the "
            "disabled loop (it must stay free of perf_counter calls).",
            file=sys.stderr,
        )
        return 1
    return 0


def print_table(result: Dict[str, Any]) -> None:
    print(
        f"\n=== {result.get('scenario', 'fleet')} tick loop: "
        f"{result['apps']} apps x {result['ticks']} ticks "
        f"({result['containers']:.0f} containers, mix={result['mix']}) ==="
    )
    print(f"{'wall time':>22s}: {result['wall_s']:.3f} s")
    print(f"{'throughput':>22s}: {result['ticks_per_s']:.1f} ticks/s")
    print(f"{'per-app cost':>22s}: {result['per_app_us_per_tick']:.1f} us/app/tick")
    print(f"{'peak RSS':>22s}: {result['peak_rss_mb']:.1f} MiB")
    if "speedup_vs_unbatched" in result:
        print(
            f"{'unbatched fallback':>22s}: {result['unbatched_wall_s']:.3f} s "
            f"({result['speedup_vs_unbatched']:.2f}x slower than batched)"
        )
    if "profile" in result:
        for row in result["profile"]["phase_table"]:
            print(
                f"{row['phase']:>22s}: {row['total_s']:.3f} s "
                f"({row['share'] * 100:.1f}% of tick time)"
            )


def load_baseline(path: Path) -> Dict[str, Any]:
    if not path.exists():
        return {"schema": SCHEMA, "entries": {}}
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA or "entries" not in data:
        raise SystemExit(f"{path}: not a {SCHEMA} baseline file")
    return data


def check_against_baseline(
    result: Dict[str, Any], path: Path, max_regression: float
) -> int:
    """Exit status 0 if within budget, 1 on regression or missing entry."""
    key = entry_key(
        result["apps"], result["ticks"], result["mix"],
        result.get("scenario", "fleet"),
    )
    baseline = load_baseline(path).get("entries", {}).get(key)
    if baseline is None:
        print(f"FAIL: no baseline entry {key!r} in {path}", file=sys.stderr)
        return 1
    floor = baseline["ticks_per_s"] / max_regression
    verdict = "ok" if result["ticks_per_s"] >= floor else "REGRESSION"
    print(
        f"\nperf gate [{key}]: measured {result['ticks_per_s']:.1f} ticks/s, "
        f"baseline {baseline['ticks_per_s']:.1f}, floor {floor:.1f} "
        f"(max regression {max_regression:.2f}x) -> {verdict}"
    )
    if verdict != "ok":
        print(
            "Throughput regressed beyond the budget. If intentional, apply "
            "the 'perf-baseline-reset' PR label and regenerate "
            "benchmarks/BENCH_scale.json (see docs/performance.md).",
            file=sys.stderr,
        )
        return 1
    return 0


def write_baseline(result: Dict[str, Any], path: Path) -> None:
    data = load_baseline(path)
    key = entry_key(
        result["apps"], result["ticks"], result["mix"],
        result.get("scenario", "fleet"),
    )
    data["entries"][key] = result
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"baseline entry {key!r} written to {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", type=int, default=200)
    parser.add_argument("--ticks", type=int, default=120)
    parser.add_argument("--mix", type=str, default="balanced")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--scenario",
        type=str,
        default="fleet",
        choices=SCENARIOS,
        help="fleet (static population) or fleet_churn (Poisson admit/evict)",
    )
    parser.add_argument("--out", type=str, default=None, help="JSON output path")
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        help="baseline file to gate against (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="allowed throughput slowdown vs the baseline (default 1.5x)",
    )
    parser.add_argument(
        "--write-baseline",
        type=str,
        default=None,
        help="write/update this run's entry in the given baseline file",
    )
    parser.add_argument(
        "--skip-unbatched",
        action="store_true",
        help="measure only the batched path (faster; used by the CI gate)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run with the tick profiler enabled and record the phase "
             "breakdown in the JSON output",
    )
    parser.add_argument(
        "--overhead-check",
        type=float,
        default=None,
        metavar="BUDGET",
        help="gate the profiler's enabled-vs-disabled overhead at BUDGET "
             "(e.g. 0.02 for 2%%); runs instead of the normal benchmark",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per mode for --overhead-check (min wall time wins)",
    )
    args = parser.parse_args()
    if args.overhead_check is not None:
        raise SystemExit(
            check_profiler_overhead(
                apps=args.apps,
                ticks=args.ticks,
                mix=args.mix,
                seed=args.seed,
                scenario=args.scenario,
                budget=args.overhead_check,
                repeats=args.repeats,
            )
        )
    result = run_benchmark(
        apps=args.apps,
        ticks=args.ticks,
        mix=args.mix,
        seed=args.seed,
        skip_unbatched=args.skip_unbatched,
        scenario=args.scenario,
        profile=args.profile,
    )
    print_table(result)
    if args.out:
        Path(args.out).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.write_baseline:
        write_baseline(result, Path(args.write_baseline))
    if args.check:
        raise SystemExit(
            check_against_baseline(result, Path(args.check), args.max_regression)
        )


if __name__ == "__main__":
    main()
