"""Figure 4a: ML training under four carbon policies (10 arrivals).

Paper targets: suspend/resume cuts carbon ~24.5% at a 7.4x runtime
penalty; Wait&Scale(2x) achieves a comparable cut at ~2.58x; and
Wait&Scale(3x) pays ~15% more carbon than 2x for only ~12% less runtime.
"""

from repro.analysis.figures_batch import fig04a_ml_training


def test_fig04a_ml_training(benchmark):
    summaries = benchmark.pedantic(
        fig04a_ml_training, kwargs={"reps": 10}, rounds=1, iterations=1
    )
    by_label = {s.policy_label: s for s in summaries}
    base = by_label["CO2-agnostic"]

    print("\n=== Figure 4a: PyTorch ML training (10 random arrivals) ===")
    print(f"{'policy':14s} {'runtime':>10s} {'x agn':>7s} {'carbon':>9s} "
          f"{'vs agn':>8s} {'std(rt)':>8s}")
    for s in summaries:
        print(
            f"{s.policy_label:14s} {s.mean_runtime_hours:8.2f} h "
            f"{s.runtime_ratio_vs(base):6.2f}x {s.mean_carbon_g:7.3f} g "
            f"{s.carbon_change_vs(base) * 100:+7.1f}% "
            f"{s.std_runtime_s / 3600:7.2f} h"
        )
    print("paper: SR -24.5% @ 7.4x | W&S(2x) ~-24% @ 2.58x | "
          "W&S(3x) +14.9% carb vs 2x, -12.3% rt")

    suspend, ws2, ws3 = (
        by_label["System Policy"], by_label["W&S (2X)"], by_label["W&S (3X)"]
    )
    assert suspend.carbon_change_vs(base) < -0.15
    assert suspend.runtime_ratio_vs(base) > 2.5
    assert ws2.mean_runtime_s < suspend.mean_runtime_s
    assert ws3.mean_carbon_g > ws2.mean_carbon_g
    benchmark.extra_info["suspend_runtime_ratio"] = suspend.runtime_ratio_vs(base)
    benchmark.extra_info["suspend_carbon_change"] = suspend.carbon_change_vs(base)
    benchmark.extra_info["ws2_runtime_ratio"] = ws2.runtime_ratio_vs(base)
