"""Figure 7: carbon rate and worker counts for the two web applications.

Paper targets: the dynamic budget policy runs below the target carbon
rate most of the time (banking credit) and exceeds it only during load
peaks; it also emits ~23% less carbon than the always-at-the-rate system
policy.  Worker counts differ per application despite sharing a cluster.
"""

import numpy as np

from repro.analysis.figures_web import fig06_07_web_budgeting


def test_fig07_web_multitenancy(benchmark):
    outcome = benchmark.pedantic(fig06_07_web_budgeting, rounds=1, iterations=1)
    series = outcome["bundle"].series
    target = outcome["target_rate_mg_per_s"]

    print("\n=== Figure 7: carbon rate + workers (48 h) ===")
    print(f"target rate: {target:.2f} mg/s (paper: 20 mg/s at their scale)")
    rows = {}
    for prefix in ("static", "dynamic"):
        for app in ("webapp1", "webapp2"):
            rates = np.asarray([v for _, v in series[f"{prefix}.{app}.carbon_rate"]])
            workers = np.asarray([v for _, v in series[f"{prefix}.{app}.workers"]])
            rows[(prefix, app)] = (rates, workers)
            print(
                f"{prefix:8s} {app:9s} mean rate {rates.mean():5.3f} mg/s "
                f"(max {rates.max():5.3f})  workers mean {workers.mean():4.1f} "
                f"(max {workers.max():2.0f})"
            )

    static_carbon = {
        r.app_name: r.carbon_g
        for r in outcome["results"]
        if r.policy_label == "System Policy"
    }
    dynamic_carbon = {
        r.app_name: r.carbon_g
        for r in outcome["results"]
        if r.policy_label == "Dynamic Budget"
    }
    for app in ("webapp1", "webapp2"):
        reduction = (
            (static_carbon[app] - dynamic_carbon[app]) / static_carbon[app] * 100
        )
        print(f"{app}: dynamic emits {reduction:.1f}% less (paper: ~23%)")
        assert reduction > 10.0

    # Dynamic policy runs below the target rate on average (banks credit)
    # but exceeds it at times (spends credit).
    for app in ("webapp1", "webapp2"):
        rates, _ = rows[("dynamic", app)]
        assert rates.mean() < target
        assert rates.max() > target
    benchmark.extra_info["dynamic_mean_rate_app1"] = float(
        rows[("dynamic", "webapp1")][0].mean()
    )
