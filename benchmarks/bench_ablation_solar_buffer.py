"""Ablation: the one-tick solar buffer (paper Section 3.1, DESIGN.md §5).

The ecovisor retains a sliver of battery capacity so applications always
know the solar power available in the next tick interval — at the cost
of acting on one-tick-old information.  This ablation compares a
solar-tracking policy with and without the buffer under fast-moving
clouds: without the buffer the policy sees the truth instantly (a
perfect-knowledge upper bound the paper's design trades away for
predictability).
"""


from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import constant_trace
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.clock import SimulationClock
from repro.core.config import (
    CarbonServiceConfig,
    ClusterConfig,
    EcovisorConfig,
    ServerConfig,
    ShareConfig,
    SolarConfig,
)
from repro.core.ecovisor import Ecovisor
from repro.energy.grid import GridConnection
from repro.energy.solar import SolarArrayEmulator, SolarTrace
from repro.energy.system import PhysicalEnergySystem
from repro.policies import DynamicSolarCapPolicy
from repro.sim.engine import SimulationEngine
from repro.workloads.parallel import ParallelJob

CLUSTER = ClusterConfig(
    num_servers=8, server=ServerConfig(cores=4, idle_power_w=0.25)
)


def run_case(buffer_enabled: bool) -> dict:
    solar = SolarArrayEmulator(
        SolarConfig(peak_power_w=12.5, panel_efficiency_derating=1.0),
        SolarTrace(days=4, seed=11, cloudiness=0.6),  # very cloudy: fast swings
    )
    plant = PhysicalEnergySystem(grid=GridConnection(), solar=solar)
    carbon = CarbonIntensityService(
        CarbonServiceConfig(region="constant"),
        trace=constant_trace(200.0, days=4),
    )
    platform = ContainerOrchestrationPlatform(CLUSTER)
    ecovisor = Ecovisor(
        plant, platform, carbon,
        EcovisorConfig(solar_buffer_enabled=buffer_enabled),
    )
    engine = SimulationEngine(ecovisor, SimulationClock(60.0))
    job = ParallelJob(
        name="parallel", num_tasks=10, num_rounds=6,
        mean_task_work_units=600.0, seed=11,
    )
    engine.add_application(
        job,
        ShareConfig(solar_fraction=1.0, grid_power_w=0.0),
        DynamicSolarCapPolicy(),
    )
    engine.run(4 * 24 * 60, stop_when_batch_complete=True)
    account = ecovisor.ledger.account("parallel")
    return {
        "runtime_s": job.completion_time_s or float("inf"),
        "unmet_wh": account.unmet_wh,
        "energy_wh": account.energy_wh,
        "completed": job.is_complete,
    }


def run_both():
    return {
        "buffered": run_case(True),
        "unbuffered": run_case(False),
    }


def test_ablation_solar_buffer(benchmark):
    out = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print("\n=== Ablation: one-tick solar buffer under heavy clouds ===")
    for name, row in out.items():
        print(
            f"{name:11s} runtime {row['runtime_s'] / 3600:6.2f} h "
            f"unmet {row['unmet_wh']:6.3f} Wh energy {row['energy_wh']:7.2f} Wh"
        )
    print("expected: the buffer trades a small staleness penalty (caps set")
    print("from last tick's solar can overshoot a sudden dip, causing unmet")
    print("energy) for applications always knowing their next-tick supply.")

    assert out["buffered"]["completed"] and out["unbuffered"]["completed"]
    ratio = out["buffered"]["runtime_s"] / out["unbuffered"]["runtime_s"]
    assert 0.9 < ratio < 1.2  # the buffer costs little
    benchmark.extra_info["runtime_ratio_buffered_vs_not"] = ratio
    benchmark.extra_info["buffered_unmet_wh"] = out["buffered"]["unmet_wh"]
