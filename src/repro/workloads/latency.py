"""Queueing latency model for the web applications.

The paper's web experiments report 95th-percentile request latency under
a load balancer distributing requests over a pool of worker containers
(Section 5.2).  We model the pool as an M/M/c queue:

- Erlang-C gives the probability an arriving request waits.
- The waiting-time tail of M/M/c is exponential, so the p-th percentile
  of waiting time has closed form.
- Response time percentile is approximated as percentile(wait) +
  percentile(service), a standard conservative decomposition.

In overload (utilization >= 1) the queue is unstable; we model latency as
growing linearly with the excess arrival rate over the tick, which is
enough to register clear SLO violations (the regime of Figure 6 b/c near
the end of the trace).
"""

from __future__ import annotations

import math

OVERLOAD_LATENCY_SCALE_MS = 2000.0
MAX_REPORTED_LATENCY_MS = 60000.0
SATURATION_RHO = 0.97


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability of waiting in an M/M/c queue (Erlang-C formula).

    ``offered_load`` is a = lambda/mu.  Computed via the numerically
    stable Erlang-B recurrence.  Returns 1.0 when the queue is unstable.
    """
    if servers <= 0:
        return 1.0
    rho = offered_load / servers
    if rho >= 1.0:
        return 1.0
    if offered_load <= 0.0:
        return 0.0
    blocking = 1.0  # Erlang-B with 0 servers
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking / (1.0 - rho * (1.0 - blocking))


def percentile_wait_s(
    arrival_rate_rps: float,
    servers: int,
    service_rate_rps: float,
    percentile: float = 95.0,
) -> float:
    """The ``percentile``-th percentile of M/M/c waiting time (seconds).

    Uses P(W > t) = C * exp(-(c*mu - lambda) * t); returns 0 when the
    no-wait probability already exceeds the percentile, and infinity when
    the queue is unstable.
    """
    if servers <= 0 or service_rate_rps <= 0:
        return math.inf
    if arrival_rate_rps <= 0:
        return 0.0
    capacity = servers * service_rate_rps
    if arrival_rate_rps >= capacity:
        return math.inf
    tail = 1.0 - percentile / 100.0
    wait_probability = erlang_c(servers, arrival_rate_rps / service_rate_rps)
    if wait_probability <= tail:
        return 0.0
    return math.log(wait_probability / tail) / (capacity - arrival_rate_rps)


def percentile_latency_ms(
    arrival_rate_rps: float,
    servers: int,
    service_rate_rps: float,
    percentile: float = 95.0,
) -> float:
    """Percentile response latency (ms) of an M/M/c worker pool.

    Stable regime: percentile(wait) + percentile(service).  Because the
    simulator discretizes time into minute ticks, the backlog a queue can
    build within one tick is bounded, so the formula plateaus at 97%
    utilization (the raw M/M/c wait diverges there).  Beyond capacity,
    latency grows linearly in the overload ratio.  The combined curve is
    monotone in arrival rate and anti-monotone in server count, capped
    for reporting.
    """
    if servers <= 0 or service_rate_rps <= 0:
        return MAX_REPORTED_LATENCY_MS
    tail = 1.0 - percentile / 100.0
    service_pctl_s = -math.log(tail) / service_rate_rps
    capacity = servers * service_rate_rps
    effective_rate = min(arrival_rate_rps, SATURATION_RHO * capacity)
    wait_s = percentile_wait_s(
        effective_rate, servers, service_rate_rps, percentile
    )
    latency_ms = (wait_s + service_pctl_s) * 1000.0
    if arrival_rate_rps >= capacity:
        overload = arrival_rate_rps / capacity - 1.0
        latency_ms += OVERLOAD_LATENCY_SCALE_MS * (overload + 0.05)
    return min(latency_ms, MAX_REPORTED_LATENCY_MS)


def min_servers_for_slo(
    arrival_rate_rps: float,
    service_rate_rps: float,
    slo_ms: float,
    percentile: float = 95.0,
    max_servers: int = 64,
) -> int:
    """Smallest worker count whose percentile latency meets ``slo_ms``.

    This is the sizing computation an SLO-driven autoscaler performs each
    tick.  Returns ``max_servers`` when even that many cannot meet the
    SLO (the caller decides whether to violate or shed load).
    """
    if arrival_rate_rps <= 0:
        return 1
    for servers in range(1, max_servers + 1):
        latency = percentile_latency_ms(
            arrival_rate_rps, servers, service_rate_rps, percentile
        )
        if latency <= slo_ms:
            return servers
    return max_servers
