"""Distributed web application workload.

Models the paper's Wikipedia-hosting web applications (Section 5.2.1): a
front-end load balancer distributing requests across a pool of worker
containers, horizontally scaled by its policy.  Per tick the application:

- reads its request rate from the workload trace,
- sets each worker's demand utilization to its busy fraction (so power
  tracks load), and
- after settlement, computes the 95th-percentile latency from the M/M/c
  model using the workers' *effective* (cap-clamped) capacity scaled by
  the served-energy fraction — a power shortage shows up as latency.

Latency, request rate, worker count, and SLO violations are recorded into
the ecovisor's time-series database under ``app.<name>.*``.
"""

from __future__ import annotations


from repro.core.clock import TickInfo
from repro.workloads.base import Application
from repro.workloads.latency import percentile_latency_ms
from repro.workloads.traces import RequestTrace


class WebApplication(Application):
    """An SLO-bound, horizontally scalable web service."""

    batch_compatible = True

    def __init__(
        self,
        name: str,
        trace: RequestTrace,
        slo_ms: float = 60.0,
        service_rate_rps: float = 100.0,
        latency_percentile: float = 95.0,
    ):
        super().__init__(name)
        if slo_ms <= 0:
            raise ValueError(f"SLO must be positive, got {slo_ms}")
        if service_rate_rps <= 0:
            raise ValueError("per-worker service rate must be positive")
        self._trace = trace
        self._slo_ms = slo_ms
        self._service_rate = service_rate_rps
        self._percentile = latency_percentile
        self._current_rate_rps = 0.0
        self._tick_count = 0
        self._violation_ticks = 0
        self._latency_sum_ms = 0.0
        self._worst_latency_ms = 0.0
        self._requests_total = 0.0

    # ------------------------------------------------------------------
    # Observables used by policies
    # ------------------------------------------------------------------
    @property
    def trace(self) -> RequestTrace:
        return self._trace

    @property
    def slo_ms(self) -> float:
        return self._slo_ms

    @property
    def service_rate_rps(self) -> float:
        """Per-worker service capacity at full utilization (req/s)."""
        return self._service_rate

    @property
    def latency_percentile(self) -> float:
        return self._percentile

    @property
    def current_rate_rps(self) -> float:
        """Request rate during the current tick (policies read this)."""
        return self._current_rate_rps

    # ------------------------------------------------------------------
    # Result metrics
    # ------------------------------------------------------------------
    @property
    def violation_ticks(self) -> int:
        return self._violation_ticks

    @property
    def tick_count(self) -> int:
        return self._tick_count

    @property
    def violation_fraction(self) -> float:
        if self._tick_count == 0:
            return 0.0
        return self._violation_ticks / self._tick_count

    @property
    def mean_latency_ms(self) -> float:
        if self._tick_count == 0:
            return 0.0
        return self._latency_sum_ms / self._tick_count

    @property
    def worst_latency_ms(self) -> float:
        return self._worst_latency_ms

    @property
    def requests_total(self) -> float:
        return self._requests_total

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def step(self, tick: TickInfo, duration_s: float) -> None:
        self._current_rate_rps = self._trace.rate_at(tick.start_s)
        containers = self.running_containers()
        n = len(containers)
        if n == 0:
            return
        # Each worker's busy fraction: its share of the arrival rate over
        # its full-utilization capacity.
        busy = min(1.0, self._current_rate_rps / (n * self._service_rate))
        for container in containers:
            container.set_demand_utilization(busy)

    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        containers = self.running_containers()
        n = len(containers)
        self._tick_count += 1
        if n == 0:
            # No capacity: an outage if there is real load.  Sub-1-rps
            # trickles (e.g. a monitoring app at dawn) are not counted as
            # outages — there is effectively nothing to serve.
            latency_ms = (
                0.0 if self._current_rate_rps < 1.0 else 60000.0
            )
        else:
            # Effective per-worker rate: the power cap limits how busy a
            # worker may run; a served-energy shortfall brownouts the pool.
            mean_cap = sum(c.cap_utilization for c in containers) / n
            effective_rate = (
                self._service_rate
                * mean_cap
                * max(0.0, min(1.0, served_fraction))
            )
            latency_ms = percentile_latency_ms(
                self._current_rate_rps, n, max(effective_rate, 1e-9),
                self._percentile,
            )
        violated = latency_ms > self._slo_ms
        if violated and self._current_rate_rps > 0:
            self._violation_ticks += 1
        self._latency_sum_ms += latency_ms
        self._worst_latency_ms = max(self._worst_latency_ms, latency_ms)
        self._requests_total += self._current_rate_rps * duration_s
        db = self.api.ecovisor.database
        t = tick.start_s
        db.record(f"app.{self.name}.p95_ms", t, latency_ms)
        db.record(f"app.{self.name}.request_rate_rps", t, self._current_rate_rps)
        db.record(f"app.{self.name}.slo_violated", t, 1.0 if violated else 0.0)

    # ------------------------------------------------------------------
    # Vectorized engine protocol (core/upcalls.py)
    # ------------------------------------------------------------------
    # The M/M/c percentile-latency model is inherently per-app scalar
    # math, so the class opts into grouped delivery (its effects are
    # app-local: own containers' demand, own counters, app-unique db
    # keys) but the kernels simply delegate member by member.

    @classmethod
    def step_batch(cls, tick: TickInfo, duration_s: float, rows) -> None:
        for app in rows.apps:
            app.step(tick, duration_s)

    @classmethod
    def finish_tick_batch(
        cls, tick: TickInfo, duration_s: float, fractions, rows
    ) -> None:
        for app in rows.apps:
            app.finish_tick(tick, duration_s, fractions.get(app.name, 1.0))

    def workers_needed_for_slo(self, max_workers: int = 64) -> int:
        """Sizing helper: workers needed for the SLO at the current rate."""
        from repro.workloads.latency import min_servers_for_slo

        return min_servers_for_slo(
            self._current_rate_rps,
            self._service_rate,
            self._slo_ms,
            self._percentile,
            max_workers,
        )
