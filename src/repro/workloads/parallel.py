"""Synthetic barrier-synchronized parallel job with stragglers.

Models the paper's Section 5.4 workload: a parallel job running one task
per node, synchronizing at a barrier each round ("the job periodically
synchronizes across tasks and performs I/O").  Task work varies round to
round, and injected stragglers take several times longer — so under a
*static* per-container power split, fast tasks finish early and idle at
the barrier (burning idle power while contributing nothing), while the
straggler gates the round.

Two mitigation levers (each its own policy in
:mod:`repro.policies.solar_matching` / :mod:`repro.policies.straggler`):

- **Dynamic power caps** (Figure 10): shift power toward tasks with more
  remaining work so all tasks hit the barrier together.
- **Replica tasks** (Figure 11): when excess solar exists, clone the
  straggler onto a spare container; the round completes when either copy
  finishes ("at most one replica task will finish").
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.clock import TickInfo
from repro.workloads.base import Application


class ParallelJob(Application):
    """Barrier-synchronized rounds of per-node tasks with stragglers."""

    def __init__(
        self,
        name: str = "parallel",
        num_tasks: int = 10,
        num_rounds: int = 24,
        mean_task_work_units: float = 900.0,
        work_cv: float = 0.20,
        straggler_probability: float = 0.12,
        straggler_factor: float = 2.5,
        worker_rate_units_per_s: float = 1.0,
        seed: int = 42,
    ):
        super().__init__(name)
        if num_tasks <= 0 or num_rounds <= 0:
            raise ValueError("tasks and rounds must be positive")
        if not 0.0 <= straggler_probability <= 1.0:
            raise ValueError("straggler probability must be in [0, 1]")
        if straggler_factor < 1.0:
            raise ValueError("straggler factor must be >= 1")
        self._num_tasks = num_tasks
        self._num_rounds = num_rounds
        self._worker_rate = worker_rate_units_per_s
        self._straggler_factor = straggler_factor
        rng = np.random.default_rng(seed)
        sigma = max(work_cv, 1e-9)
        self._work_matrix = rng.lognormal(
            mean=np.log(mean_task_work_units) - 0.5 * sigma**2,
            sigma=sigma,
            size=(num_rounds, num_tasks),
        )
        # Stragglers are *slow executions*, not larger tasks: the primary
        # node runs the task at 1/straggler_factor speed (interference,
        # slow I/O), so a replica on a healthy node can overtake it.
        self._straggler_matrix = (
            rng.random((num_rounds, num_tasks)) < straggler_probability
        )
        self._current_round = 0
        self._remaining = self._work_matrix[0].copy()
        self._task_containers: Dict[int, str] = {}
        self._replica_containers: Dict[int, str] = {}
        self._completion_time_s: Optional[float] = None
        self._work_done_units = 0.0

    # ------------------------------------------------------------------
    # Structure the policies need
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self._num_tasks

    @property
    def num_rounds(self) -> int:
        return self._num_rounds

    @property
    def current_round(self) -> int:
        return self._current_round

    @property
    def is_complete(self) -> bool:
        return self._current_round >= self._num_rounds

    @property
    def completion_time_s(self) -> Optional[float]:
        return self._completion_time_s

    @property
    def work_done_units(self) -> float:
        """Useful work completed (excludes duplicated replica work)."""
        return self._work_done_units

    @property
    def total_useful_work_units(self) -> float:
        return float(self._work_matrix.sum())

    def task_remaining(self) -> np.ndarray:
        """Remaining work per task in the current round (read-only copy)."""
        return self._remaining.copy()

    def assign_task_container(self, task_index: int, container_id: str) -> None:
        """Pin ``task_index``'s primary work to a container."""
        self._check_task(task_index)
        self._task_containers[task_index] = container_id

    def add_replica(self, task_index: int, container_id: str) -> None:
        """Run a replica of a task on a spare container (Figure 11)."""
        self._check_task(task_index)
        self._replica_containers[task_index] = container_id

    def clear_replicas(self) -> List[str]:
        """Drop all replicas (round finished); returns their container ids."""
        ids = list(self._replica_containers.values())
        self._replica_containers.clear()
        return ids

    def replica_count(self) -> int:
        return len(self._replica_containers)

    def straggler_tasks(self, threshold_factor: float = 1.5) -> List[int]:
        """Tasks whose remaining work exceeds ``threshold_factor`` x median.

        This is progress-based straggler detection — the application
        "tracks the progress of each task" (Section 5.4.1).
        """
        unfinished = self._remaining[self._remaining > 0]
        if len(unfinished) == 0:
            return []
        median = float(np.median(unfinished))
        if median <= 0:
            return []
        return [
            i
            for i in range(self._num_tasks)
            if self._remaining[i] > threshold_factor * median
        ]

    def injected_stragglers_this_round(self) -> List[int]:
        """Ground-truth injected stragglers (for tests and analysis)."""
        if self.is_complete:
            return []
        return list(np.flatnonzero(self._straggler_matrix[self._current_round]))

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def step(self, tick: TickInfo, duration_s: float) -> None:
        running = {c.id: c for c in self.running_containers()}
        if self.is_complete:
            for container in running.values():
                container.set_demand_utilization(0.0)
            return
        busy_ids = set()
        for task, container_id in self._task_containers.items():
            if self._remaining[task] > 0 and container_id in running:
                busy_ids.add(container_id)
        for task, container_id in self._replica_containers.items():
            if self._remaining[task] > 0 and container_id in running:
                busy_ids.add(container_id)
        for container_id, container in running.items():
            # Tasks waiting at the barrier idle (draw idle power only).
            container.set_demand_utilization(1.0 if container_id in busy_ids else 0.0)

    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        if self.is_complete:
            return
        running = {c.id: c for c in self.running_containers()}
        scale = max(0.0, min(1.0, served_fraction))
        slow_this_round = self._straggler_matrix[self._current_round]
        for task in range(self._num_tasks):
            if self._remaining[task] <= 0:
                continue
            speed = self._container_speed(self._task_containers.get(task), running)
            if slow_this_round[task]:
                speed /= self._straggler_factor
            # Replicas run on healthy nodes at full speed.
            replica_speed = self._container_speed(
                self._replica_containers.get(task), running
            )
            # The task completes when the faster copy finishes; per-tick,
            # that is the max of the two speeds.
            effective = max(speed, replica_speed) * scale
            done = min(self._remaining[task], effective * duration_s)
            self._remaining[task] -= done
            self._work_done_units += done
        if np.all(self._remaining <= 1e-9):
            self._current_round += 1
            if self._current_round < self._num_rounds:
                self._remaining = self._work_matrix[self._current_round].copy()
            elif self._completion_time_s is None:
                self._completion_time_s = tick.end_s

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _container_speed(
        self, container_id: Optional[str], running: Dict[str, object]
    ) -> float:
        if container_id is None or container_id not in running:
            return 0.0
        container = running[container_id]
        return self._worker_rate * container.effective_utilization

    def _check_task(self, task_index: int) -> None:
        if not 0 <= task_index < self._num_tasks:
            raise IndexError(
                f"task index {task_index} out of range [0, {self._num_tasks})"
            )
