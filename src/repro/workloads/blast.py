"""BLAST-like embarrassingly parallel search workload.

Models the paper's elastic NCBI BLAST job (Section 5.1.1): a pool of
independent sequence-search tasks served to workers by a central queue
server.  Because tasks are independent, the job scales almost linearly —
until the queue server saturates: "BLAST's central queue server becomes a
bottleneck when serving tasks to more than 3x workers" (Section 5.1.2).

Scaling model: aggregate throughput is ``rate * min(sum(utilizations),
queue_capacity_workers)`` — linear until the number of (fully utilized)
workers reaches the queue capacity, flat beyond it.  Workers above the
cap still draw power, which is why Wait&Scale(4x) *increases* carbon with
no runtime benefit in Figure 4b.

The queue server itself runs in a small long-lived ``coordinator``
container from job start to completion — including through suspensions
(it holds the task queue state).  Its always-on draw is the reason
finishing faster also cuts carbon: the longer a suspend/resume run drags
on, the more coordinator energy it burns during high-carbon periods.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.clock import TickInfo
from repro.workloads.base import BatchJob

DEFAULT_QUEUE_CAPACITY_WORKERS = 24.0  # 3x the 8-worker baseline
DEFAULT_COORDINATOR_CORES = 0.25
DEFAULT_COORDINATOR_BASE_UTILIZATION = 0.10


class BlastJob(BatchJob):
    """Elastic, embarrassingly parallel job behind a central task queue."""

    def __init__(
        self,
        name: str = "blast",
        total_work_units: float = 9600.0,
        worker_rate_units_per_s: float = 1.0,
        queue_capacity_workers: float = DEFAULT_QUEUE_CAPACITY_WORKERS,
        warmup_ticks_on_resume: int = 0,
        coordinator_cores: float = DEFAULT_COORDINATOR_CORES,
        coordinator_base_utilization: float = DEFAULT_COORDINATOR_BASE_UTILIZATION,
    ):
        super().__init__(name, total_work_units, warmup_ticks_on_resume)
        if worker_rate_units_per_s <= 0:
            raise ValueError("worker rate must be positive")
        if queue_capacity_workers <= 0:
            raise ValueError("queue capacity must be positive")
        if coordinator_cores < 0:
            raise ValueError("coordinator cores must be >= 0 (0 disables it)")
        if not 0.0 <= coordinator_base_utilization <= 1.0:
            raise ValueError("coordinator base utilization must be in [0, 1]")
        self._worker_rate = worker_rate_units_per_s
        self._queue_capacity = queue_capacity_workers
        self._coordinator_cores = coordinator_cores
        self._coordinator_base_util = coordinator_base_utilization
        self._coordinator_id: Optional[str] = None

    @property
    def queue_capacity_workers(self) -> float:
        return self._queue_capacity

    @property
    def worker_rate_units_per_s(self) -> float:
        return self._worker_rate

    @property
    def coordinator_id(self) -> Optional[str]:
        return self._coordinator_id

    def on_bind(self) -> None:
        """Launch the central queue server (if configured)."""
        if self._coordinator_cores > 0:
            container = self.api.launch_container(
                self._coordinator_cores, role="coordinator"
            )
            self._coordinator_id = container.id

    def throughput_units_per_s(self, effective_utilizations: List[float]) -> float:
        """Linear scaling clamped by the central queue server's capacity."""
        if not effective_utilizations:
            return 0.0
        effective_workers = sum(effective_utilizations)
        return self._worker_rate * min(effective_workers, self._queue_capacity)

    def step(self, tick: TickInfo, duration_s: float) -> None:
        super().step(tick, duration_s)
        coordinator = self._find_coordinator()
        if coordinator is None:
            return
        if self.is_complete:
            coordinator.set_demand_utilization(0.0)
            return
        # Queue-serving load grows with the active worker pool, saturating
        # at the queue capacity (the Section 5.1 bottleneck).
        workers = len(self.worker_containers())
        service_load = min(1.0, workers / self._queue_capacity)
        coordinator.set_demand_utilization(
            self._coordinator_base_util + (1.0 - self._coordinator_base_util) * service_load
        )

    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        super().finish_tick(tick, duration_s, served_fraction)
        if self.is_complete and self._coordinator_id is not None:
            if self.api.ecovisor.platform.has_container(self._coordinator_id):
                self.api.stop_container(self._coordinator_id)
            self._coordinator_id = None

    def ideal_runtime_s(self, num_workers: int) -> float:
        """Runtime at full utilization with ``num_workers`` (for calibration)."""
        rate = self.throughput_units_per_s([1.0] * num_workers)
        if rate <= 0:
            return float("inf")
        return self.total_work_units / rate

    def _find_coordinator(self):
        if self._coordinator_id is None:
            return None
        for container in self.running_containers():
            if container.id == self._coordinator_id:
                return container
        return None
