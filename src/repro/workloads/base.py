"""Application base classes.

Applications in this reproduction mirror the paper's containerized
applications: they run in containers managed through the ecovisor API and
receive the ``tick()`` upcall (via their *policy*, which encapsulates the
carbon-management logic; see :mod:`repro.policies`).

The engine drives each application twice per tick:

1. :meth:`Application.step` — before settlement: the application sets
   each container's *demand utilization* (how busy it wants to be).
   Container power caps then clamp what actually runs.
2. :meth:`Application.finish_tick` — after settlement: the application
   commits progress and records metrics using the containers' *effective*
   utilization and the settlement's served-energy fraction (power
   shortages degrade capacity, as Section 3 describes for resource
   revocations).

:class:`BatchJob` adds completion semantics and the throughput hook that
the ML-training, BLAST, Spark, and synthetic-parallel models implement.
"""

from __future__ import annotations

import abc
from itertools import repeat
from operator import attrgetter
from typing import Dict, List, Optional

import numpy as np

from repro.core.api import EcovisorAPI
from repro.core.clock import TickInfo


class Application(abc.ABC):
    """A containerized application managed through the ecovisor API."""

    #: Vectorized upcall plane opt-in (see ``core/upcalls.py`` and
    #: docs/performance.md).  A workload class that sets this to True
    #: **in its own body** and provides classmethods
    #: ``step_batch(cls, tick, duration_s, rows)`` and
    #: ``finish_tick_batch(cls, tick, duration_s, fractions, rows)``
    #: lets the batched engine drive all its instances with one grouped
    #: call per class.  The contract: effects must stay app-local (own
    #: containers' demand, own attributes, app-unique telemetry keys),
    #: so delivering a class group together instead of interleaved with
    #: other apps is unobservable.  Checked on the class's ``__dict__``
    #: on purpose: subclasses fall back to the per-app path unless they
    #: re-opt-in.
    batch_compatible = False

    def __init__(self, name: str):
        self._name = name
        self._api: Optional[EcovisorAPI] = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def api(self) -> EcovisorAPI:
        if self._api is None:
            raise RuntimeError(f"application {self._name!r} is not bound to an API")
        return self._api

    @property
    def is_bound(self) -> bool:
        return self._api is not None

    def bind(self, api: EcovisorAPI) -> None:
        """Attach the application to its ecovisor API handle."""
        self._api = api
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses; runs once after :meth:`bind`."""

    @abc.abstractmethod
    def step(self, tick: TickInfo, duration_s: float) -> None:
        """Set per-container demand utilizations for the coming interval."""

    @abc.abstractmethod
    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        """Commit progress/metrics after the interval's energy settlement."""

    @property
    def is_complete(self) -> bool:
        """Batch jobs override; services never complete."""
        return False

    def running_containers(self):
        return self.api.list_containers()

    def worker_containers(self):
        """Running containers with the default ``worker`` role.

        Reads the bound handle directly: this runs twice per app per
        tick (step and finish), where the guard property's extra frame
        is measurable at fleet scale.
        """
        api = self._api
        if api is None:
            raise RuntimeError(f"application {self._name!r} is not bound to an API")
        return api.list_containers(role="worker")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._name!r})"


class BatchJob(Application):
    """A job with a fixed amount of work and a completion time.

    Subclasses define :meth:`throughput_units_per_s`, mapping the current
    containers' effective utilizations to aggregate work throughput.  The
    base class tracks committed progress, suspend/resume transitions
    (with a configurable warmup penalty on resume, modelling checkpoint
    reload and pipeline refill), and the completion timestamp.
    """

    def __init__(
        self,
        name: str,
        total_work_units: float,
        warmup_ticks_on_resume: int = 0,
    ):
        super().__init__(name)
        if total_work_units <= 0:
            raise ValueError(f"total work must be positive, got {total_work_units}")
        if warmup_ticks_on_resume < 0:
            raise ValueError("warmup ticks must be >= 0")
        self._total_work = float(total_work_units)
        self._progress = 0.0
        self._warmup_ticks_on_resume = warmup_ticks_on_resume
        self._warmup_remaining = 0
        self._was_running = False
        self._completion_time_s: Optional[float] = None
        self._pending_units = 0.0
        self._suspended_ticks = 0
        self._running_ticks = 0

    # ------------------------------------------------------------------
    # Progress accounting
    # ------------------------------------------------------------------
    @property
    def total_work_units(self) -> float:
        return self._total_work

    @property
    def progress_units(self) -> float:
        return self._progress

    @property
    def progress_fraction(self) -> float:
        return min(1.0, self._progress / self._total_work)

    @property
    def is_complete(self) -> bool:
        return self._progress >= self._total_work - 1e-9

    @property
    def completion_time_s(self) -> Optional[float]:
        """Simulation time at which the job finished (None if unfinished)."""
        return self._completion_time_s

    @property
    def suspended_ticks(self) -> int:
        return self._suspended_ticks

    @property
    def running_ticks(self) -> int:
        return self._running_ticks

    # ------------------------------------------------------------------
    # Throughput model hook
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def throughput_units_per_s(self, effective_utilizations: List[float]) -> float:
        """Aggregate work rate given each running container's utilization."""

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def step_demand_utilization(self, num_workers: int) -> float:
        """Demand utilization :meth:`step` assigns each worker.

        Subclasses with a utilization model (e.g. barrier-stall spin)
        override this instead of re-fetching the worker list in their
        own ``step``.
        """
        return 1.0

    def step(self, tick: TickInfo, duration_s: float) -> None:
        if self.is_complete:
            for container in self.running_containers():
                container.set_demand_utilization(0.0)
            self._pending_units = 0.0
            return
        containers = self.worker_containers()
        running_now = len(containers) > 0
        if running_now and not self._was_running:
            self._warmup_remaining = self._warmup_ticks_on_resume
        self._was_running = running_now
        if containers:
            demand = self.step_demand_utilization(len(containers))
            for container in containers:
                container.set_demand_utilization(demand)
        self._pending_units = 0.0  # computed in finish_tick from effective utils

    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        if self.is_complete:
            return
        containers = self.worker_containers()
        if not containers:
            self._suspended_ticks += 1
            return
        self._running_ticks += 1
        if self._warmup_remaining > 0:
            # Resume warmup: containers draw power but make no progress
            # (checkpoint reload, data pipeline refill, re-sync).
            self._warmup_remaining -= 1
            return
        utils = [c.effective_utilization for c in containers]
        rate = self.throughput_units_per_s(utils)
        done = rate * duration_s * max(0.0, min(1.0, served_fraction))
        self._progress = min(self._total_work, self._progress + done)
        if self.is_complete and self._completion_time_s is None:
            self._completion_time_s = tick.end_s

    # ------------------------------------------------------------------
    # Vectorized engine protocol (core/upcalls.py)
    # ------------------------------------------------------------------
    # BatchJob itself does NOT set batch_compatible: concrete subclasses
    # opt in per class (the plane checks the class's own __dict__), and
    # inherit these kernels.  Each kernel is the masked, array-level
    # transcription of the scalar body above — branch for branch — so
    # N members produce byte-identical state to N sequential calls.

    @classmethod
    def step_batch(cls, tick: TickInfo, duration_s: float, rows) -> None:
        """Vectorized :meth:`step` over one class group."""
        apps = rows.apps
        # Last tick's finish left every member's post-update progress in
        # ``updated_progress``; nothing between ticks writes
        # ``_progress`` for a batched member, so it is still current.
        progress = rows.updated_progress
        if progress is None:
            progress = rows.gather("_progress")
        rows.step_progress = progress
        total = rows.col("_total_work")
        complete = progress >= total - 1e-9
        plan = rows.worker_plan()
        counts = plan.counts
        if complete.any():
            # Scalar complete branch: zero demand on *all* running
            # containers (any role), every tick until they are stopped.
            platform = rows.platform
            for k in np.flatnonzero(complete).tolist():
                for container in platform._running_for(rows.names[k]):
                    container.set_demand_utilization(0.0)
                plan.written[k] = False
        active = ~complete
        running_now = counts > 0
        was = rows.was_running
        if was is None:
            was = rows.was_running = rows.gather("_was_running", dtype=bool)
        warmup = rows.warmup
        for k in np.flatnonzero(active & running_now & ~was).tolist():
            app = apps[k]
            value = app._warmup_ticks_on_resume
            app._warmup_remaining = value
            if warmup is not None:
                warmup[k] = value
        changed = active & (was != running_now)
        if changed.any():
            for k in np.flatnonzero(changed).tolist():
                apps[k]._was_running = bool(running_now[k])
            was[changed] = running_now[changed]
        # Demand only needs (re)writing when the worker plan changed:
        # within a plan the count — hence step_demand_utilization's
        # value — is fixed, and the scalar rewrite of an equal value is
        # a container-setter no-op.
        need = active & running_now & ~plan.written
        for k in np.flatnonzero(need).tolist():
            app = apps[k]
            demand = app.step_demand_utilization(int(counts[k]))
            for container in plan.lists[k]:
                container.set_demand_utilization(demand)
            plan.written[k] = True

    @classmethod
    def finish_tick_batch(
        cls, tick: TickInfo, duration_s: float, fractions, rows
    ) -> None:
        """Vectorized :meth:`finish_tick` over one class group.

        Leaves every member's post-update progress in
        ``rows.updated_progress`` for subclass sweeps (e.g. Spark's
        auto-checkpoint).
        """
        apps = rows.apps
        n = rows.n
        # step_batch's gather is still current: nothing between the two
        # phases writes ``_progress``.
        progress = rows.step_progress
        rows.step_progress = None
        if progress is None:
            progress = rows.gather("_progress")
        total = rows.col("_total_work")
        complete = progress >= total - 1e-9
        rows.updated_progress = progress
        active = ~complete
        if not active.any():
            return
        plan = rows.worker_plan()
        counts = plan.counts
        for k in np.flatnonzero(active & (counts == 0)).tolist():
            apps[k]._suspended_ticks += 1
        runners = active & (counts > 0)
        if not runners.any():
            return
        for k in np.flatnonzero(runners).tolist():
            apps[k]._running_ticks += 1
        warmup = rows.warmup
        if warmup is None:
            warmup = rows.warmup = rows.gather(
                "_warmup_remaining", dtype=np.int64
            )
        warm = runners & (warmup > 0)
        if warm.any():
            for k in np.flatnonzero(warm).tolist():
                apps[k]._warmup_remaining = int(warmup[k]) - 1
            warmup[warm] -= 1
        prog = runners & ~warm
        if not prog.any():
            return
        flat = plan.flat
        m = len(flat)
        # effective_utilization inlined: plan members are running, so it
        # is min(demand, cap) — np.minimum matches the scalar min() bit
        # for bit, and bincount accumulates each member's utils from 0.0
        # in the same launch order as the scalar per-container sum.
        demand = np.fromiter(
            map(attrgetter("_demand_utilization"), flat), dtype=float, count=m
        )
        cap = np.fromiter(
            map(attrgetter("_cap_utilization"), flat), dtype=float, count=m
        )
        utils = np.minimum(demand, cap)
        sums = np.bincount(plan.flat_member, weights=utils, minlength=n)
        rate = cls._batch_rate(rows, plan, utils, sums)
        frac = np.fromiter(
            map(fractions.get, rows.names, repeat(1.0)), dtype=float, count=n
        )
        done = rate * duration_s * np.maximum(0.0, np.minimum(1.0, frac))
        new_progress = np.minimum(total, progress + done)
        end_s = tick.end_s
        for k in np.flatnonzero(prog).tolist():
            app = apps[k]
            value = float(new_progress[k])
            app._progress = value
            progress[k] = value
            if value >= total[k] - 1e-9 and app._completion_time_s is None:
                app._completion_time_s = end_s
        rows.updated_progress = progress

    @classmethod
    def _batch_rate(cls, rows, plan, utils: np.ndarray, sums: np.ndarray):
        """Per-member throughput for :meth:`finish_tick_batch`.

        Generic fallback: slice each member's utilization list out of
        the flat gather and call the scalar model.  Subclasses whose
        model reduces to the utilization *sum* override this with a
        closed-form array expression (``sums`` is the per-member
        launch-order sum).
        """
        offsets = plan.offsets
        rates = np.zeros(rows.n)
        counts = plan.counts
        apps = rows.apps
        for k in range(rows.n):
            if counts[k]:
                rates[k] = apps[k].throughput_units_per_s(
                    utils[offsets[k] : offsets[k + 1]].tolist()
                )
        return rates

    # ------------------------------------------------------------------
    # Result summary
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return {
            "progress_fraction": self.progress_fraction,
            "completion_time_s": self._completion_time_s or float("nan"),
            "suspended_ticks": float(self._suspended_ticks),
            "running_ticks": float(self._running_ticks),
        }
