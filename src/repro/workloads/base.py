"""Application base classes.

Applications in this reproduction mirror the paper's containerized
applications: they run in containers managed through the ecovisor API and
receive the ``tick()`` upcall (via their *policy*, which encapsulates the
carbon-management logic; see :mod:`repro.policies`).

The engine drives each application twice per tick:

1. :meth:`Application.step` — before settlement: the application sets
   each container's *demand utilization* (how busy it wants to be).
   Container power caps then clamp what actually runs.
2. :meth:`Application.finish_tick` — after settlement: the application
   commits progress and records metrics using the containers' *effective*
   utilization and the settlement's served-energy fraction (power
   shortages degrade capacity, as Section 3 describes for resource
   revocations).

:class:`BatchJob` adds completion semantics and the throughput hook that
the ML-training, BLAST, Spark, and synthetic-parallel models implement.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.core.api import EcovisorAPI
from repro.core.clock import TickInfo


class Application(abc.ABC):
    """A containerized application managed through the ecovisor API."""

    def __init__(self, name: str):
        self._name = name
        self._api: Optional[EcovisorAPI] = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def api(self) -> EcovisorAPI:
        if self._api is None:
            raise RuntimeError(f"application {self._name!r} is not bound to an API")
        return self._api

    @property
    def is_bound(self) -> bool:
        return self._api is not None

    def bind(self, api: EcovisorAPI) -> None:
        """Attach the application to its ecovisor API handle."""
        self._api = api
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses; runs once after :meth:`bind`."""

    @abc.abstractmethod
    def step(self, tick: TickInfo, duration_s: float) -> None:
        """Set per-container demand utilizations for the coming interval."""

    @abc.abstractmethod
    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        """Commit progress/metrics after the interval's energy settlement."""

    @property
    def is_complete(self) -> bool:
        """Batch jobs override; services never complete."""
        return False

    def running_containers(self):
        return self.api.list_containers()

    def worker_containers(self):
        """Running containers with the default ``worker`` role.

        Reads the bound handle directly: this runs twice per app per
        tick (step and finish), where the guard property's extra frame
        is measurable at fleet scale.
        """
        api = self._api
        if api is None:
            raise RuntimeError(f"application {self._name!r} is not bound to an API")
        return api.list_containers(role="worker")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._name!r})"


class BatchJob(Application):
    """A job with a fixed amount of work and a completion time.

    Subclasses define :meth:`throughput_units_per_s`, mapping the current
    containers' effective utilizations to aggregate work throughput.  The
    base class tracks committed progress, suspend/resume transitions
    (with a configurable warmup penalty on resume, modelling checkpoint
    reload and pipeline refill), and the completion timestamp.
    """

    def __init__(
        self,
        name: str,
        total_work_units: float,
        warmup_ticks_on_resume: int = 0,
    ):
        super().__init__(name)
        if total_work_units <= 0:
            raise ValueError(f"total work must be positive, got {total_work_units}")
        if warmup_ticks_on_resume < 0:
            raise ValueError("warmup ticks must be >= 0")
        self._total_work = float(total_work_units)
        self._progress = 0.0
        self._warmup_ticks_on_resume = warmup_ticks_on_resume
        self._warmup_remaining = 0
        self._was_running = False
        self._completion_time_s: Optional[float] = None
        self._pending_units = 0.0
        self._suspended_ticks = 0
        self._running_ticks = 0

    # ------------------------------------------------------------------
    # Progress accounting
    # ------------------------------------------------------------------
    @property
    def total_work_units(self) -> float:
        return self._total_work

    @property
    def progress_units(self) -> float:
        return self._progress

    @property
    def progress_fraction(self) -> float:
        return min(1.0, self._progress / self._total_work)

    @property
    def is_complete(self) -> bool:
        return self._progress >= self._total_work - 1e-9

    @property
    def completion_time_s(self) -> Optional[float]:
        """Simulation time at which the job finished (None if unfinished)."""
        return self._completion_time_s

    @property
    def suspended_ticks(self) -> int:
        return self._suspended_ticks

    @property
    def running_ticks(self) -> int:
        return self._running_ticks

    # ------------------------------------------------------------------
    # Throughput model hook
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def throughput_units_per_s(self, effective_utilizations: List[float]) -> float:
        """Aggregate work rate given each running container's utilization."""

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def step_demand_utilization(self, num_workers: int) -> float:
        """Demand utilization :meth:`step` assigns each worker.

        Subclasses with a utilization model (e.g. barrier-stall spin)
        override this instead of re-fetching the worker list in their
        own ``step``.
        """
        return 1.0

    def step(self, tick: TickInfo, duration_s: float) -> None:
        if self.is_complete:
            for container in self.running_containers():
                container.set_demand_utilization(0.0)
            self._pending_units = 0.0
            return
        containers = self.worker_containers()
        running_now = len(containers) > 0
        if running_now and not self._was_running:
            self._warmup_remaining = self._warmup_ticks_on_resume
        self._was_running = running_now
        if containers:
            demand = self.step_demand_utilization(len(containers))
            for container in containers:
                container.set_demand_utilization(demand)
        self._pending_units = 0.0  # computed in finish_tick from effective utils

    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        if self.is_complete:
            return
        containers = self.worker_containers()
        if not containers:
            self._suspended_ticks += 1
            return
        self._running_ticks += 1
        if self._warmup_remaining > 0:
            # Resume warmup: containers draw power but make no progress
            # (checkpoint reload, data pipeline refill, re-sync).
            self._warmup_remaining -= 1
            return
        utils = [c.effective_utilization for c in containers]
        rate = self.throughput_units_per_s(utils)
        done = rate * duration_s * max(0.0, min(1.0, served_fraction))
        self._progress = min(self._total_work, self._progress + done)
        if self.is_complete and self._completion_time_s is None:
            self._completion_time_s = tick.end_s

    # ------------------------------------------------------------------
    # Result summary
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return {
            "progress_fraction": self.progress_fraction,
            "completion_time_s": self._completion_time_s or float("nan"),
            "suspended_ticks": float(self._suspended_ticks),
            "running_ticks": float(self._running_ticks),
        }
