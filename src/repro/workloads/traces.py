"""Workload traces.

The paper's web experiments subject applications to "two different
variable workload demand patterns based on a real-world trace covering 48
hours" (the Wikipedia hosting trace of Urdaneta et al. [67], Section
5.2.1), and the monitoring application of Section 5.3 sees a daytime-only
workload that follows solar generation.  Those traces are not
redistributable, so this module synthesizes deterministic equivalents:

- :func:`diurnal_request_trace` — a Wikipedia-like diurnal request-rate
  pattern with configurable phase, weekend damping, noise, and bursts.
- :func:`daytime_request_trace` — activity proportional to solar
  irradiance (the monitoring/logging app's workload).

Crucially for Figure 6, the default phases make workload peaks *misalign*
with the carbon-intensity trace so that periods of simultaneously high
carbon and high load exist near the end of the trace — the regime where
the static rate-limiting policy violates its SLO.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.errors import TraceError
from repro.core.units import SECONDS_PER_HOUR

_SAMPLES_PER_HOUR = 60  # one-minute resolution


class RequestTrace:
    """A request-rate (requests/second) time series at 1-minute resolution."""

    def __init__(self, samples: Sequence[float]):
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or len(arr) == 0:
            raise TraceError("request trace needs a non-empty 1-D sample array")
        if arr.min() < 0:
            raise TraceError("request rates cannot be negative")
        self._samples = arr

    @property
    def samples(self) -> np.ndarray:
        view = self._samples.view()
        view.flags.writeable = False
        return view

    @property
    def duration_s(self) -> float:
        return len(self._samples) * 60.0

    def rate_at(self, time_s: float) -> float:
        """Request rate (req/s) at ``time_s``; clamps beyond the end."""
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        index = min(
            int(time_s / SECONDS_PER_HOUR * _SAMPLES_PER_HOUR),
            len(self._samples) - 1,
        )
        return float(self._samples[index])

    def peak_rate(self) -> float:
        return float(self._samples.max())

    def mean_rate(self) -> float:
        return float(self._samples.mean())


def diurnal_request_trace(
    hours: float = 48.0,
    base_rps: float = 40.0,
    peak_rps: float = 200.0,
    peak_hour: float = 20.0,
    noise_fraction: float = 0.08,
    burst_probability: float = 0.01,
    burst_multiplier: float = 1.6,
    seed: int = 7,
) -> RequestTrace:
    """Synthesize a diurnal web request trace.

    The shape follows observed web traffic: a broad daily swing peaking at
    ``peak_hour`` local time, multiplicative noise, and occasional short
    bursts (flash crowds).
    """
    if hours <= 0:
        raise TraceError(f"trace must cover positive hours, got {hours}")
    if peak_rps < base_rps:
        raise TraceError("peak rate must be >= base rate")
    rng = np.random.default_rng(seed)
    n = int(hours * _SAMPLES_PER_HOUR)
    t_hours = np.arange(n) / _SAMPLES_PER_HOUR
    hour_of_day = t_hours % 24.0
    # Cosine diurnal swing peaking at peak_hour, plus a secondary mid-
    # morning shoulder typical of web traffic.
    swing = 0.5 * (1.0 + np.cos(2 * math.pi * (hour_of_day - peak_hour) / 24.0))
    shoulder = 0.25 * np.exp(
        -((hour_of_day - ((peak_hour - 9.0) % 24.0)) ** 2) / (2 * 2.0**2)
    )
    shape = np.clip(swing + shoulder, 0.0, 1.0)
    rates = base_rps + (peak_rps - base_rps) * shape
    noise = rng.normal(1.0, noise_fraction, size=n)
    rates = rates * np.clip(noise, 0.5, 1.5)
    # Bursts: each selected minute starts a 10-minute flash crowd whose
    # onset ramps over ~3 minutes (crowds build up, they do not teleport).
    burst_starts = rng.random(n) < burst_probability
    burst = np.ones(n)
    ramp = np.concatenate(
        [
            np.linspace(1.0, burst_multiplier, 4)[1:],  # 3-minute ramp up
            np.full(5, burst_multiplier),  # plateau
            np.linspace(burst_multiplier, 1.0, 3)[1:],  # ramp down
        ]
    )
    for start in np.flatnonzero(burst_starts):
        end = min(n, start + len(ramp))
        burst[start:end] = np.maximum(burst[start:end], ramp[: end - start])
    rates = rates * burst
    return RequestTrace(np.clip(rates, 0.0, None))


def daytime_request_trace(
    irradiance_samples: Sequence[float],
    peak_rps: float = 120.0,
    activity_floor_rps: float = 0.0,
    seed: int = 11,
    noise_fraction: float = 0.10,
) -> RequestTrace:
    """A request trace proportional to solar irradiance (daytime-only).

    Models the paper's solar monitoring/logging web application, which is
    dormant at night because "there is no data to log" (Section 5.3.1).
    """
    irradiance = np.asarray(irradiance_samples, dtype=float)
    if irradiance.ndim != 1 or len(irradiance) == 0:
        raise TraceError("irradiance samples must be a non-empty 1-D sequence")
    rng = np.random.default_rng(seed)
    noise = np.clip(rng.normal(1.0, noise_fraction, size=len(irradiance)), 0.3, 1.7)
    rates = activity_floor_rps + peak_rps * irradiance * noise
    return RequestTrace(np.clip(rates, 0.0, None))


def constant_request_trace(rate_rps: float, hours: float = 24.0) -> RequestTrace:
    """A flat request trace for tests and calibration."""
    if rate_rps < 0:
        raise TraceError("request rate cannot be negative")
    n = int(hours * _SAMPLES_PER_HOUR)
    return RequestTrace(np.full(n, float(rate_rps)))
