"""Spark-like delay-tolerant batch workload with checkpointing.

Models the paper's image preprocessing / feature extraction pyspark job
(Section 5.3.1): a delay-tolerant computation that runs on solar power
and a battery during the day, checkpoints completed operations to HDFS,
and suspends at night to preserve a zero carbon footprint.  "Incomplete
workers are terminated without checkpointing every evening and their
in-memory results are lost."

Progress therefore splits into:

- **checkpointed** progress, durably stored in (simulated) HDFS, and
- **volatile** progress held in worker memory since the last checkpoint.

Checkpoints commit automatically every ``checkpoint_interval_s`` while
running.  When workers are killed, the volatile progress of the killed
fraction is lost — the risk the dynamic battery policy of Figure 8(c)
deliberately takes when it opportunistically scales onto excess solar.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.clock import TickInfo
from repro.workloads.base import BatchJob

DEFAULT_CHECKPOINT_INTERVAL_S = 1800.0


class SparkJob(BatchJob):
    """Checkpointing data-parallel job (near-linear scaling)."""

    batch_compatible = True

    def __init__(
        self,
        name: str = "spark",
        total_work_units: float = 200000.0,
        worker_rate_units_per_s: float = 1.0,
        sync_overhead: float = 0.02,
        checkpoint_interval_s: float = DEFAULT_CHECKPOINT_INTERVAL_S,
        warmup_ticks_on_resume: int = 2,
    ):
        super().__init__(name, total_work_units, warmup_ticks_on_resume)
        if worker_rate_units_per_s <= 0:
            raise ValueError("worker rate must be positive")
        if checkpoint_interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")
        self._worker_rate = worker_rate_units_per_s
        self._sync_overhead = sync_overhead
        self._checkpoint_interval_s = checkpoint_interval_s
        self._checkpointed_units = 0.0
        self._last_checkpoint_s = 0.0
        self._lost_units_total = 0.0
        self._checkpoint_count = 0
        self._denom_by_n: dict = {}

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------
    @property
    def checkpointed_units(self) -> float:
        """Progress durably committed to (simulated) HDFS."""
        return self._checkpointed_units

    @property
    def volatile_units(self) -> float:
        """Progress held only in worker memory since the last checkpoint."""
        return max(0.0, self.progress_units - self._checkpointed_units)

    @property
    def lost_units_total(self) -> float:
        """Work discarded across all unclean worker terminations."""
        return self._lost_units_total

    @property
    def checkpoint_count(self) -> int:
        return self._checkpoint_count

    @property
    def checkpoint_interval_s(self) -> float:
        return self._checkpoint_interval_s

    def checkpoint(self, time_s: float) -> float:
        """Commit all volatile progress; returns the amount committed."""
        committed = self.volatile_units
        self._checkpointed_units = self.progress_units
        self._last_checkpoint_s = time_s
        self._checkpoint_count += 1
        return committed

    def kill_workers(self, killed: int, total: int, time_s: float) -> float:
        """Terminate ``killed`` of ``total`` workers without checkpointing.

        The killed workers' share of volatile progress is lost (their
        in-memory results are gone).  Returns the lost work.  The caller
        (a policy) is responsible for actually scaling the containers.
        """
        if total <= 0 or killed <= 0:
            return 0.0
        fraction = min(1.0, killed / total)
        lost = self.volatile_units * fraction
        self._progress = max(self._checkpointed_units, self._progress - lost)
        self._lost_units_total += lost
        return lost

    def suspend_with_checkpoint(self, time_s: float) -> float:
        """Cleanly checkpoint before a planned suspension (dusk shutdown)."""
        return self.checkpoint(time_s)

    # ------------------------------------------------------------------
    # Throughput model: near-linear with a small coordination overhead
    # ------------------------------------------------------------------
    def throughput_units_per_s(self, effective_utilizations: List[float]) -> float:
        n = len(effective_utilizations)
        if n == 0:
            return 0.0
        denom = self._denom_by_n.get(n)
        if denom is None:
            denom = self._denom_by_n[n] = 1.0 + self._sync_overhead * (n - 1)
        raw = self._worker_rate * sum(effective_utilizations)
        return raw / denom

    def _sync_denom(self, num_workers: int) -> float:
        """The memoized coordination denominator (``num_workers >= 1``)."""
        denom = self._denom_by_n.get(num_workers)
        if denom is None:
            denom = self._denom_by_n[num_workers] = 1.0 + self._sync_overhead * (
                num_workers - 1
            )
        return denom

    # ------------------------------------------------------------------
    # Engine protocol: auto-checkpoint on the configured interval
    # ------------------------------------------------------------------
    def finish_tick(
        self, tick: TickInfo, duration_s: float, served_fraction: float
    ) -> None:
        super().finish_tick(tick, duration_s, served_fraction)
        # Spark pools are all workers; the memoized worker list avoids
        # re-walking the container table after the settle phase.
        running = len(self.worker_containers()) > 0
        if (
            running
            and not self.is_complete
            and tick.end_s - self._last_checkpoint_s >= self._checkpoint_interval_s
        ):
            self.checkpoint(tick.end_s)

    @classmethod
    def _batch_rate(cls, rows, plan, utils, sums):
        """Vectorized throughput: ``(rate * sum) / denom`` per member.

        The denominator column is pure in the (fixed) per-plan worker
        counts, so it is cached on the plan and dies with it.
        """
        denoms = plan.extras.get("spark_denom")
        if denoms is None:
            denoms = plan.extras["spark_denom"] = np.fromiter(
                (
                    app._sync_denom(count) if count else 1.0
                    for app, count in zip(rows.apps, plan.counts.tolist())
                ),
                dtype=float,
                count=rows.n,
            )
        raw = rows.col("_worker_rate") * sums
        return raw / denoms

    @classmethod
    def finish_tick_batch(
        cls, tick: TickInfo, duration_s: float, fractions, rows
    ) -> None:
        """Progress update plus the interval auto-checkpoint sweep."""
        super().finish_tick_batch(tick, duration_s, fractions, rows)
        plan = rows.worker_plan()
        progress = rows.updated_progress
        total = rows.col("_total_work")
        complete = progress >= total - 1e-9
        last = rows.gather("_last_checkpoint_s")
        interval = rows.col("_checkpoint_interval_s")
        due = (
            (plan.counts > 0)
            & ~complete
            & (tick.end_s - last >= interval)
        )
        end_s = tick.end_s
        for k in np.flatnonzero(due).tolist():
            rows.apps[k].checkpoint(end_s)
