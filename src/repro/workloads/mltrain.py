"""Distributed ML training workload.

Models the paper's PyTorch job training ResNet-34 on CIFAR-100 for five
epochs (Section 5.1.1) as an iterative synchronous-SGD computation:
workers process batches in parallel, then synchronize gradients.  The
synchronization step is what limits scaling — "scaling up requires more
coordination among nodes, which causes synchronization delays that limit
speed-up and decrease energy-efficiency" (Section 5.1.2).

Scaling model: an *effective parallelism* curve, interpolated through
calibration anchors.  The default anchors encode the scaling behaviour
the paper's Figure 4a results imply: near-linear speedup from 4 to 8
workers (Wait&Scale(2x) achieves a carbon cut comparable to
suspend/resume, so energy per unit work barely grows), then a hard knee —
12 workers are only ~13% faster than 8 while drawing 50% more power,
which is why Wait&Scale(3x) *increases* carbon for a marginal runtime
gain.

Resume warmup models checkpoint reload and data-pipeline refill after a
suspension; frequent suspensions are why suspend/resume inflates runtime
beyond the pure duty-cycle factor (Figure 4a's 7.4x).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.workloads.base import BatchJob

DEFAULT_WORKER_RATE_UNITS_PER_S = 1.0
DEFAULT_WARMUP_TICKS = 1

# (workers, effective parallel workers) calibration anchors; linear
# interpolation between anchors, flat extrapolation beyond the last.
DEFAULT_SCALING_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (1.0, 1.0),
    (2.0, 2.0),
    (4.0, 4.0),
    (8.0, 7.8),
    (12.0, 8.8),
    (16.0, 9.2),
)

# Anchor tuples are immutable per job, so the interpolation grids — and
# the interpolated values themselves, which fleet runs request for the
# same handful of worker counts every tick — memoize cleanly.
_ANCHOR_GRIDS: Dict[
    Tuple[Tuple[float, float], ...], Tuple[np.ndarray, np.ndarray]
] = {}
_INTERP_CACHE: Dict[Tuple[float, Tuple[Tuple[float, float], ...]], float] = {}


def effective_parallelism(
    num_workers: float,
    anchors: Sequence[Tuple[float, float]] = DEFAULT_SCALING_ANCHORS,
) -> float:
    """Effective parallel worker count after synchronization losses."""
    if num_workers <= 0:
        return 0.0
    try:
        key = (num_workers, tuple(anchors))
        cached = _INTERP_CACHE.get(key)
    except TypeError:  # unhashable anchor points (e.g. lists)
        xs = np.asarray([a[0] for a in anchors])
        ys = np.asarray([a[1] for a in anchors])
        return float(np.interp(num_workers, xs, ys))
    if cached is None:
        grids = _ANCHOR_GRIDS.get(key[1])
        if grids is None:
            xs = np.asarray([a[0] for a in key[1]])
            ys = np.asarray([a[1] for a in key[1]])
            grids = _ANCHOR_GRIDS[key[1]] = (xs, ys)
        cached = _INTERP_CACHE[key] = float(
            np.interp(num_workers, grids[0], grids[1])
        )
    return cached


def sync_efficiency(
    num_workers: int,
    anchors: Sequence[Tuple[float, float]] = DEFAULT_SCALING_ANCHORS,
) -> float:
    """Parallel efficiency (effective / nominal workers)."""
    if num_workers <= 0:
        return 0.0
    return effective_parallelism(num_workers, anchors) / num_workers


class MLTrainingJob(BatchJob):
    """Synchronous data-parallel training job."""

    batch_compatible = True

    def __init__(
        self,
        name: str = "ml-training",
        total_work_units: float = 29000.0,
        worker_rate_units_per_s: float = DEFAULT_WORKER_RATE_UNITS_PER_S,
        scaling_anchors: Sequence[Tuple[float, float]] = DEFAULT_SCALING_ANCHORS,
        warmup_ticks_on_resume: int = DEFAULT_WARMUP_TICKS,
        stall_power_fraction: float = 0.5,
    ):
        super().__init__(name, total_work_units, warmup_ticks_on_resume)
        if worker_rate_units_per_s <= 0:
            raise ValueError("worker rate must be positive")
        anchors = tuple(scaling_anchors)
        if len(anchors) < 2:
            raise ValueError("scaling curve needs at least two anchors")
        if any(a[0] > b[0] for a, b in zip(anchors, anchors[1:])):
            raise ValueError("scaling anchors must be sorted by worker count")
        if not 0.0 <= stall_power_fraction <= 1.0:
            raise ValueError("stall power fraction must be in [0, 1]")
        self._worker_rate = worker_rate_units_per_s
        self._anchors = anchors
        self._stall_power_fraction = stall_power_fraction
        # Per-worker-count memos: anchors and stall fraction are fixed
        # for the job's lifetime, so these pure derivations are too.
        self._demand_by_n: Dict[int, float] = {}
        self._share_by_n: Dict[int, float] = {}

    @property
    def scaling_anchors(self) -> Tuple[Tuple[float, float], ...]:
        return self._anchors

    @property
    def worker_rate_units_per_s(self) -> float:
        return self._worker_rate

    @property
    def stall_power_fraction(self) -> float:
        return self._stall_power_fraction

    def busy_fraction(self, num_workers: int) -> float:
        """Fraction of time a worker computes (rest is barrier stall)."""
        if num_workers <= 0:
            return 0.0
        return effective_parallelism(num_workers, self._anchors) / num_workers

    def demand_utilization(self, num_workers: int) -> float:
        """CPU utilization a worker exhibits, including stall spin.

        Barrier stalls are not free: gradient all-reduce and busy-polling
        keep the CPU partially active, so a stalled worker draws
        ``stall_power_fraction`` of its dynamic power.  This is why
        over-scaling costs energy (and carbon) even though it adds little
        throughput.
        """
        busy = self.busy_fraction(num_workers)
        return busy + self._stall_power_fraction * (1.0 - busy)

    def step_demand_utilization(self, num_workers: int) -> float:
        cached = self._demand_by_n.get(num_workers)
        if cached is None:
            cached = self._demand_by_n[num_workers] = self.demand_utilization(
                num_workers
            )
        return cached

    def throughput_units_per_s(self, effective_utilizations: List[float]) -> float:
        """Aggregate training throughput under synchronous barriers.

        Only the *busy* share of utilization is productive: of a worker's
        demand utilization, ``busy/demand`` does training work and the
        rest is stall spin.  Power caps clamp total utilization, scaling
        productive work proportionally.
        """
        n = len(effective_utilizations)
        if n == 0:
            return 0.0
        productive_share = self._share_by_n.get(n)
        if productive_share is None:
            demand = self.demand_utilization(n)
            if demand <= 0:
                return 0.0
            productive_share = self._share_by_n[n] = (
                self.busy_fraction(n) / demand
            )
        return self._worker_rate * sum(effective_utilizations) * productive_share

    def _productive_share(self, num_workers: int) -> float:
        """The ``busy/demand`` share :meth:`throughput_units_per_s` uses.

        Mirrors its memo behavior exactly, including *not* caching the
        degenerate ``demand <= 0`` case.
        """
        if num_workers == 0:
            return 0.0
        productive_share = self._share_by_n.get(num_workers)
        if productive_share is None:
            demand = self.demand_utilization(num_workers)
            if demand <= 0:
                return 0.0
            productive_share = self._share_by_n[num_workers] = (
                self.busy_fraction(num_workers) / demand
            )
        return productive_share

    @classmethod
    def _batch_rate(cls, rows, plan, utils, sums):
        """Vectorized sync-SGD throughput: ``(rate * sum) * share``.

        Operand order matches :meth:`throughput_units_per_s`; members
        with zero workers get share 0.0, reproducing its early return.
        The share column is pure in the (fixed) per-plan worker counts,
        so it is cached on the plan and dies with it.
        """
        shares = plan.extras.get("ml_share")
        if shares is None:
            shares = plan.extras["ml_share"] = np.fromiter(
                (
                    app._productive_share(count)
                    for app, count in zip(rows.apps, plan.counts.tolist())
                ),
                dtype=float,
                count=rows.n,
            )
        return rows.col("_worker_rate") * sums * shares

    def _natural_throughput(self, num_workers: int) -> float:
        """Throughput at the workload's own demand utilization (no caps)."""
        demand = self.demand_utilization(num_workers)
        return self.throughput_units_per_s([demand] * num_workers)

    def ideal_runtime_s(self, num_workers: int) -> float:
        """Uncapped runtime with ``num_workers`` (for calibration)."""
        rate = self._natural_throughput(num_workers)
        if rate <= 0:
            return float("inf")
        return self.total_work_units / rate

    def speedup(self, num_workers: int, baseline_workers: int = 4) -> float:
        """Uncapped throughput ratio vs the baseline worker count."""
        base = self._natural_throughput(baseline_workers)
        scaled = self._natural_throughput(num_workers)
        return scaled / base if base > 0 else float("inf")
