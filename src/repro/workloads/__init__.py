"""Workload models: the applications of the paper's Section 5 case studies."""

from repro.workloads.base import Application, BatchJob
from repro.workloads.blast import BlastJob
from repro.workloads.latency import (
    erlang_c,
    min_servers_for_slo,
    percentile_latency_ms,
    percentile_wait_s,
)
from repro.workloads.mltrain import MLTrainingJob, sync_efficiency
from repro.workloads.parallel import ParallelJob
from repro.workloads.spark import SparkJob
from repro.workloads.traces import (
    RequestTrace,
    constant_request_trace,
    daytime_request_trace,
    diurnal_request_trace,
)
from repro.workloads.webapp import WebApplication

__all__ = [
    "Application",
    "BatchJob",
    "BlastJob",
    "MLTrainingJob",
    "ParallelJob",
    "RequestTrace",
    "SparkJob",
    "WebApplication",
    "constant_request_trace",
    "daytime_request_trace",
    "diurnal_request_trace",
    "erlang_c",
    "min_servers_for_slo",
    "percentile_latency_ms",
    "percentile_wait_s",
    "sync_efficiency",
]
