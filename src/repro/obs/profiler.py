"""Tick-phase profiler: where does a tick's wall-clock time go?

The engine's run loop is bracketed into six named phases whose
boundaries are consecutive ``perf_counter`` reads, so the phase
durations **partition** the tick exactly — the phase sum equals the
wall-clock tick time by construction:

- ``begin_tick`` — ``Ecovisor.begin_tick``: signal reads, state build,
  grid/solar/battery bookkeeping.
- ``policy_batch`` — grouped policy upcalls through the vectorized
  plane (``core/upcalls.py``): per-class ``on_tick_batch`` kernels and
  staged scale applies.
- ``policy_fallback`` — per-app policy ``on_tick`` callbacks: every
  app the plane routes to the reference path (custom policies,
  arity-1 shims, the whole fleet when batching is off).  On a mixed
  fleet the plane times the fallback barriers inline, so the two
  sub-phases still sum to the upcall window without double counting.
- ``workload_step`` — per-app workload ``step`` calls.
- ``settle`` — ``Ecovisor.settle``: demand reconciliation, ledger,
  cost settlement.
- ``telemetry_flush`` — ``finish_tick`` fan-out, observers, clock
  advance.

Recording goes to three sinks: a fixed-size ring buffer of per-tick
phase breakdowns (served as JSON by ``GET /v1/metrics/ticks``), one
histogram per phase plus one for the whole tick (rolled up into the
metrics registry), and a bounded slow-tick log retaining the full
breakdown of any tick slower than ``slow_factor`` × the median tick
(median recomputed every 32 ticks so detection costs nothing
per-tick).  A disabled profiler records nothing — the engine selects a
loop without any timing calls, so ``enabled=False`` is near-zero
overhead (gated at ≤2% in CI).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import TICK_PHASE_BUCKETS, Histogram, MetricsRegistry

#: Phase names, in tick order.  These partition the tick exactly.
PHASES: Tuple[str, ...] = (
    "begin_tick",
    "policy_batch",
    "policy_fallback",
    "workload_step",
    "settle",
    "telemetry_flush",
)

#: Recompute the rolling median only every this many ticks.
_MEDIAN_REFRESH_INTERVAL = 32


class TickProfiler:
    """Ring buffer + histogram rollup + slow-tick log for tick phases.

    Parameters
    ----------
    enabled:
        When ``False`` the profiler is inert: the engine runs its
        unprofiled loop and :meth:`record` is never called.
    registry:
        Metrics registry receiving the histogram rollups
        (``tick_phase_seconds{phase=...}`` and ``tick_total_seconds``).
        ``None`` keeps the rollups in a private registry.
    ring_size:
        Number of most-recent ticks retained with full phase breakdown.
    slow_factor:
        A tick slower than ``slow_factor`` × the rolling median of
        total tick time is copied into the slow-tick log.
    slow_log_size:
        Bound on the slow-tick log (oldest entries evicted).
    """

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        ring_size: int = 512,
        slow_factor: float = 4.0,
        slow_log_size: int = 64,
    ):
        if ring_size <= 0:
            raise ValueError(f"ring_size must be positive, got {ring_size}")
        if slow_factor <= 1.0:
            raise ValueError(f"slow_factor must exceed 1, got {slow_factor}")
        if slow_log_size <= 0:
            raise ValueError(
                f"slow_log_size must be positive, got {slow_log_size}"
            )
        self.enabled = enabled
        self.ring_size = ring_size
        self.slow_factor = slow_factor
        self.slow_log_size = slow_log_size
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        # Ring layout: one row per tick, columns = tick_index, the six
        # phases, total.  Preallocated; writes are row assignments.
        self._ring = np.zeros((ring_size, len(PHASES) + 2), dtype=np.float64)
        self._ring_next = 0
        self._ring_count = 0
        self.ticks_recorded = 0
        self._slow_log: List[Dict[str, Any]] = []
        self.slow_ticks_total = 0
        self._median = 0.0
        self._phase_hist: Histogram = registry.histogram(
            "tick_phase_seconds",
            "Wall-clock time spent in each tick phase.",
            labelnames=("phase",),
            buckets=TICK_PHASE_BUCKETS,
        )
        self._phase_series = tuple(
            self._phase_hist.labels(phase=name) for name in PHASES
        )
        self._total_hist: Histogram = registry.histogram(
            "tick_total_seconds",
            "Wall-clock time of a whole engine tick.",
            buckets=TICK_PHASE_BUCKETS,
        )
        registry.counter_fn(
            "slow_ticks_total",
            "Ticks exceeding slow_factor x the rolling median tick time.",
            lambda: self.slow_ticks_total,
        )

    # -- recording ------------------------------------------------------
    def record(
        self,
        tick_index: int,
        begin_s: float,
        batch_s: float,
        fallback_s: float,
        step_s: float,
        settle_s: float,
        flush_s: float,
    ) -> None:
        """Record one tick's phase breakdown (durations in seconds).

        ``batch_s``/``fallback_s`` split the policy-upcall window: the
        engine measures the window with one perf_counter pair and
        subtracts the plane's inline fallback timings, so the two
        always sum to the window (no double counting on mixed fleets).
        """
        total_s = begin_s + batch_s + fallback_s + step_s + settle_s + flush_s
        row = self._ring[self._ring_next]
        row[0] = tick_index
        row[1] = begin_s
        row[2] = batch_s
        row[3] = fallback_s
        row[4] = step_s
        row[5] = settle_s
        row[6] = flush_s
        row[7] = total_s
        self._ring_next = (self._ring_next + 1) % self.ring_size
        if self._ring_count < self.ring_size:
            self._ring_count += 1
        self.ticks_recorded += 1

        durations = (begin_s, batch_s, fallback_s, step_s, settle_s, flush_s)
        for series, duration in zip(self._phase_series, durations):
            series.observe(duration)
        self._total_hist.observe(total_s)

        # Amortized median: a per-tick np.median over the ring would
        # dominate small ticks, so refresh it every 32 ticks and compare
        # against the cached value in between.
        if self.ticks_recorded % _MEDIAN_REFRESH_INTERVAL == 1:
            self._median = float(
                np.median(self._ring[: self._ring_count, len(PHASES) + 1])
            )
        if self._median > 0.0 and total_s > self.slow_factor * self._median:
            self.slow_ticks_total += 1
            self._slow_log.append(
                {
                    "tick_index": tick_index,
                    "total_s": total_s,
                    "median_s": self._median,
                    "phases": dict(zip(PHASES, durations)),
                }
            )
            if len(self._slow_log) > self.slow_log_size:
                del self._slow_log[0]

    def reset(self) -> None:
        """Clear the ring, slow-tick log, and rolling median.

        Histogram rollups live in the registry and are cumulative; they
        are intentionally left alone.
        """
        self._ring_next = 0
        self._ring_count = 0
        self.ticks_recorded = 0
        self._slow_log.clear()
        self.slow_ticks_total = 0
        self._median = 0.0

    # -- reading --------------------------------------------------------
    def __len__(self) -> int:
        return self._ring_count

    def _ordered_rows(self) -> np.ndarray:
        """Ring rows oldest-first."""
        if self._ring_count < self.ring_size:
            return self._ring[: self._ring_count]
        return np.roll(self._ring, -self._ring_next, axis=0)

    def last(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` ticks (all retained ticks if None)."""
        rows = self._ordered_rows()
        if n is not None:
            if n < 0:
                raise ValueError(f"last must be non-negative, got {n}")
            rows = rows[len(rows) - min(n, len(rows)) :]
        out = []
        for row in rows:
            out.append(
                {
                    "tick_index": int(row[0]),
                    "phases": {
                        name: float(row[i + 1]) for i, name in enumerate(PHASES)
                    },
                    "total_s": float(row[len(PHASES) + 1]),
                }
            )
        return out

    def slow_ticks(self) -> List[Dict[str, Any]]:
        """The retained slow-tick breakdowns, oldest first."""
        return [dict(entry, phases=dict(entry["phases"])) for entry in self._slow_log]

    def phase_totals(self) -> Dict[str, float]:
        """Cumulative seconds per phase since construction (histogram sums)."""
        totals: Dict[str, float] = {}
        for name in PHASES:
            totals[name] = self._phase_hist.labels(phase=name).sum
        return totals

    def total_seconds(self) -> float:
        """Cumulative wall-clock seconds across all recorded ticks."""
        return self._total_hist.sum

    def phase_table(self) -> List[Dict[str, Any]]:
        """Per-phase rollup rows: total/mean seconds and share of tick time."""
        grand_total = self.total_seconds()
        rows = []
        for name in PHASES:
            series = self._phase_hist.labels(phase=name)
            count = series.count
            rows.append(
                {
                    "phase": name,
                    "total_s": series.sum,
                    "mean_s": series.sum / count if count else 0.0,
                    "share": series.sum / grand_total if grand_total else 0.0,
                    "p50_s": series.percentile(50.0),
                    "p99_s": series.percentile(99.0),
                }
            )
        return rows

    def summary(self) -> Dict[str, Any]:
        """Everything a report needs: totals, table, slow ticks."""
        count = self._total_hist.count
        total = self.total_seconds()
        return {
            "phases": PHASES,
            "ticks_recorded": self.ticks_recorded,
            "ring_retained": self._ring_count,
            "total_s": total,
            "mean_tick_s": total / count if count else 0.0,
            "p50_tick_s": self._total_hist.percentile(50.0),
            "p99_tick_s": self._total_hist.percentile(99.0),
            "phase_table": self.phase_table(),
            "slow_ticks_total": self.slow_ticks_total,
            "slow_ticks": self.slow_ticks(),
        }

    def ticks_payload(self, last: Optional[int] = None) -> Dict[str, Any]:
        """The ``GET /v1/metrics/ticks`` response body."""
        ticks = self.last(last)
        return {
            "enabled": self.enabled,
            "phases": list(PHASES),
            "ring_size": self.ring_size,
            "ticks_recorded": self.ticks_recorded,
            "returned": len(ticks),
            "ticks": ticks,
            "slow_ticks_total": self.slow_ticks_total,
        }
