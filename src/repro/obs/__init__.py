"""Runtime observability: metrics registry and tick-phase profiler.

The ecovisor exposes fine-grained visibility into *energy* state as a
first-class API (the paper's core thesis); this package gives the
reproduction the same visibility into *itself*:

- :mod:`repro.obs.metrics` — a small Prometheus-style metrics registry
  (counters, gauges, fixed-bucket histograms) designed for the
  single-threaded tick hot path: preallocated, lock-free, numpy-backed
  bucket arrays so recording a sample is one index increment.
- :mod:`repro.obs.profiler` — a tick-phase profiler bracketing the
  engine's run loop into named phases, with a ring buffer of per-tick
  timings, histogram rollups, and a slow-tick log.

The REST layer serves the registry at ``GET /v1/metrics`` (Prometheus
text format) and the profiler ring at ``GET /v1/metrics/ticks?last=N``;
``repro profile <scenario>`` prints the same data as a table.  See
docs/observability.md.
"""

from repro.obs.metrics import (
    CallbackCounter,
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.profiler import PHASES, TickProfiler

__all__ = [
    "CallbackCounter",
    "CallbackGauge",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "TickProfiler",
    "default_registry",
]
