"""A Prometheus-style metrics registry for the single-threaded hot path.

Three metric kinds, matching the Prometheus exposition model:

- :class:`Counter` — a monotone total (``inc`` rejects negative deltas).
- :class:`Gauge` — a value that can go up and down.
- :class:`Histogram` — fixed buckets chosen at construction; the bucket
  counts live in one preallocated numpy ``int64`` array, so recording a
  sample is a bisect over a small tuple of bounds plus **one index
  increment** — no allocation, no locks (the tick loop is
  single-threaded by design).

Every metric kind supports Prometheus labels: constructed with
``labelnames``, a metric is a *family* and ``labels(**values)`` returns
(and caches) the concrete child series.  Derived values that are kept as
plain attributes on their owning objects (journal drop counts, trace
cache hits, columnar row reuse) are exposed through *callback* metrics —
:class:`CallbackCounter` / :class:`CallbackGauge` read a function at
collect time, so the owning hot path pays nothing for being observable.

Registries nest: :meth:`MetricsRegistry.child` creates a registry whose
samples carry constant labels and are included in the parent's
exposition — the process-wide :func:`default_registry` at the root,
per-engine registries below it.  :meth:`MetricsRegistry.render` emits
the Prometheus text format (``# HELP`` / ``# TYPE`` / samples, with
cumulative histogram buckets), which ``GET /v1/metrics`` serves.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

# Prometheus data-model charsets (https://prometheus.io/docs/concepts/data_model/).
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds), the Prometheus client default.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets sized for tick phases: tens of microseconds up to seconds.
TICK_PHASE_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _check_metric_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_label_names(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


def format_value(value: float) -> str:
    """One sample value in exposition form (integers without the ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def format_labels(labels: Mapping[str, str]) -> str:
    """``{a="x",b="y"}`` (keys sorted for deterministic output), or ''."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


#: One exposition sample: (name suffix, labels, value).  The suffix is
#: appended to the metric name ("" for counters/gauges; "_bucket",
#: "_sum", "_count" for histograms).
Sample = Tuple[str, Dict[str, str], float]


class Metric:
    """Base of all metric kinds; a family when ``labelnames`` is set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = _check_metric_name(name)
        self.help = help
        self.labelnames = _check_label_names(labelnames)
        self._children: Dict[Tuple[str, ...], "Metric"] = {}

    # -- family plumbing ------------------------------------------------
    @property
    def is_family(self) -> bool:
        return bool(self.labelnames)

    def labels(self, **labelvalues: Any) -> "Metric":
        """The concrete child series for one label-value combination."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} has no labels")
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _make_child(self) -> "Metric":
        raise NotImplementedError

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is a family; select a series "
                f"with .labels(...) first"
            )

    # -- exposition -----------------------------------------------------
    def samples(self) -> Iterator[Sample]:
        """Every sample of this metric (family children included)."""
        if self.labelnames:
            for key in sorted(self._children):
                child = self._children[key]
                labels = dict(zip(self.labelnames, key))
                for suffix, extra, value in child.samples():
                    yield suffix, {**labels, **extra}, value
        else:
            yield from self._leaf_samples()

    def _leaf_samples(self) -> Iterator[Sample]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        self._require_leaf()
        return self._value

    def _leaf_samples(self) -> Iterator[Sample]:
        yield "", {}, self._value


class Gauge(Metric):
    """A value that can rise and fall."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._require_leaf()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_leaf()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._require_leaf()
        self._value -= amount

    @property
    def value(self) -> float:
        self._require_leaf()
        return self._value

    def _leaf_samples(self) -> Iterator[Sample]:
        yield "", {}, self._value


class Histogram(Metric):
    """Fixed-bucket histogram; one preallocated count array per series.

    ``buckets`` are the inclusive upper bounds (ascending, finite); the
    implicit ``+Inf`` bucket is always present.  :meth:`observe` is the
    hot-path call: a bisect over the bounds tuple and a single numpy
    index increment.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name!r} buckets must be finite")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly ascending"
            )
        self.bounds = bounds
        # len(bounds) + 1: the trailing slot is the +Inf overflow bucket.
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.bounds)

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def sum(self) -> float:
        self._require_leaf()
        return self._sum

    @property
    def count(self) -> int:
        self._require_leaf()
        return self._count

    def bucket_counts(self) -> Dict[float, int]:
        """Per-bucket (non-cumulative) counts, ``inf`` last."""
        self._require_leaf()
        counts = self._counts.tolist()
        return dict(zip((*self.bounds, math.inf), counts))

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (upper bound of the q bucket)."""
        self._require_leaf()
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._count == 0:
            return 0.0
        target = q / 100.0 * self._count
        cumulative = 0
        for bound, count in zip(self.bounds, self._counts):
            cumulative += int(count)
            if cumulative >= target:
                return bound
        return math.inf

    def _leaf_samples(self) -> Iterator[Sample]:
        cumulative = 0
        for bound, count in zip(self.bounds, self._counts):
            cumulative += int(count)
            yield "_bucket", {"le": format_value(bound)}, float(cumulative)
        yield "_bucket", {"le": "+Inf"}, float(self._count)
        yield "_sum", {}, self._sum
        yield "_count", {}, float(self._count)


class CallbackCounter(Metric):
    """A counter whose total is read from a function at collect time.

    For monotone figures kept as plain attributes on hot-path objects
    (journal drops, cache hits): the owner pays one integer increment,
    the registry reads it only when scraped.
    """

    kind = "counter"

    def __init__(self, name: str, help: str, fn: Callable[[], float]):
        super().__init__(name, help)
        self.fn = fn

    def _leaf_samples(self) -> Iterator[Sample]:
        yield "", {}, float(self.fn())


class CallbackGauge(Metric):
    """A gauge whose value is read from a function at collect time."""

    kind = "gauge"

    def __init__(self, name: str, help: str, fn: Callable[[], float]):
        super().__init__(name, help)
        self.fn = fn

    def _leaf_samples(self) -> Iterator[Sample]:
        yield "", {}, float(self.fn())


class MetricsRegistry:
    """A named collection of metrics, optionally nested under a parent.

    All registration methods are **get-or-create**: asking for an
    existing name returns the existing metric (after checking the kind
    and label names agree), so independent consumers — two engines over
    one ecovisor, a re-wired REST server — can share series instead of
    colliding.  Callback metrics are get-or-*replace*: the newest
    owner's function wins, matching how the newest engine owns the
    ecovisor's profiler.
    """

    def __init__(self, const_labels: Optional[Mapping[str, str]] = None):
        if const_labels:
            _check_label_names(tuple(const_labels))
        self._const_labels: Dict[str, str] = dict(const_labels or {})
        self._metrics: Dict[str, Metric] = {}
        self._children: List["MetricsRegistry"] = []

    @property
    def const_labels(self) -> Dict[str, str]:
        return dict(self._const_labels)

    def child(self, **const_labels: str) -> "MetricsRegistry":
        """A nested registry whose samples carry ``const_labels``.

        Children are included in this registry's :meth:`collect` and
        :meth:`render`; their constant labels are merged into every
        sample (child values win on collision).
        """
        merged = {**self._const_labels, **const_labels}
        child = MetricsRegistry(const_labels=merged)
        self._children.append(child)
        return child

    # -- registration ---------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"({type(existing).__name__})"
                )
            requested = kwargs.get("labelnames", ())
            if tuple(requested) != existing.labelnames:
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, requested {tuple(requested)}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.bounds}"
            )
        return metric

    def counter_fn(
        self, name: str, help: str, fn: Callable[[], float]
    ) -> CallbackCounter:
        """Register (or re-point) a collect-time counter callback."""
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not CallbackCounter:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            existing.fn = fn
            return existing
        metric = CallbackCounter(name, help, fn)
        self._metrics[name] = metric
        return metric

    def gauge_fn(
        self, name: str, help: str, fn: Callable[[], float]
    ) -> CallbackGauge:
        """Register (or re-point) a collect-time gauge callback."""
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not CallbackGauge:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            existing.fn = fn
            return existing
        metric = CallbackGauge(name, help, fn)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- exposition -----------------------------------------------------
    def collect(self) -> Iterator[Tuple[Metric, Dict[str, str]]]:
        """Every metric in this registry and its descendants.

        Yields ``(metric, const_labels)`` pairs; the labels are the
        owning registry's constant labels, merged into each sample at
        render time.
        """
        for metric in self._metrics.values():
            yield metric, self._const_labels
        for child in self._children:
            yield from child.collect()

    def render(self) -> str:
        """The registry in Prometheus text exposition format.

        Metrics sharing a name across nested registries are merged into
        one ``# TYPE`` block (their kinds must agree); samples are
        ordered name-major, label-minor, deterministically.
        """
        families: Dict[str, Tuple[str, str, List[Tuple[str, str, float]]]] = {}
        for metric, const_labels in self.collect():
            kind, help_text, rows = families.setdefault(
                metric.name, (metric.kind, metric.help, [])
            )
            if kind != metric.kind:
                raise ValueError(
                    f"metric {metric.name!r} registered with conflicting "
                    f"kinds: {kind} vs {metric.kind}"
                )
            for suffix, labels, value in metric.samples():
                merged = {**const_labels, **labels}
                rows.append((suffix, format_labels(merged), value))
        lines: List[str] = []
        for name in sorted(families):
            kind, help_text, rows = families[name]
            if help_text:
                escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
                lines.append(f"# HELP {name} {escaped}")
            lines.append(f"# TYPE {name} {kind}")
            for suffix, label_text, value in rows:
                lines.append(f"{name}{suffix}{label_text} {format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide root registry.

    Engine-scoped metrics live in per-ecovisor registries (each
    :class:`~repro.core.ecovisor.Ecovisor` creates its own unless handed
    one), so test and sweep runs do not leak series into this root;
    pass ``metrics=default_registry().child(...)`` to attach an engine's
    series to the process-wide exposition.
    """
    return _DEFAULT_REGISTRY
