"""Experiments for Figures 1, 4, and 5 (carbon traces and batch policies).

Each function regenerates one figure's rows/series with the calibrated
defaults frozen here, so the benchmarks, examples, and tests all observe
the same configuration.  Scale parameters (``reps``, ``days``) can be
reduced for quick runs; the benches use paper-scale defaults.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.carbon.traces import CarbonTrace, make_region_trace
from repro.core.config import ShareConfig
from repro.policies import (
    CarbonAgnosticPolicy,
    SuspendResumePolicy,
    WaitAndScalePolicy,
)
from repro.sim.experiment import (
    arrival_offsets,
    carbon_threshold,
    grid_environment,
    run_batch_policy,
)
from repro.sim.results import BatchSummary, SeriesBundle, summarize_batch
from repro.workloads.blast import BlastJob
from repro.workloads.mltrain import MLTrainingJob

# Frozen calibration (see DESIGN.md, experiment index).
ML_TOTAL_WORK = 29000.0
ML_BASE_WORKERS = 4
ML_THRESHOLD_PERCENTILE = 30.0
ML_THRESHOLD_WINDOW_S = 48 * 3600.0
BLAST_TOTAL_WORK = 12000.0
BLAST_BASE_WORKERS = 8
BLAST_THRESHOLD_PERCENTILE = 33.0
TRACE_DAYS = 4
TRACE_SEED = 2023
MAX_TICKS = TRACE_DAYS * 24 * 60


def fig01_carbon_traces(days: int = TRACE_DAYS, seed: int = TRACE_SEED) -> SeriesBundle:
    """Figure 1: carbon-intensity over time for the three regions."""
    bundle = SeriesBundle(title="Fig 1: grid carbon intensity by region")
    for region in ("ontario", "caiso", "uruguay"):
        trace = make_region_trace(region, days=days, seed=seed)
        times = [i * 300.0 for i in range(len(trace.samples))]
        bundle.add(region, times, list(trace.samples))
    return bundle


def fig04a_ml_training(
    reps: int = 10,
    days: int = TRACE_DAYS,
    seed: int = TRACE_SEED,
    trace: Optional[CarbonTrace] = None,
) -> List[BatchSummary]:
    """Figure 4a: ML training carbon/runtime under four policies."""
    if trace is None:
        trace = make_region_trace("caiso", days=days, seed=seed)
    threshold = carbon_threshold(
        trace, ML_THRESHOLD_PERCENTILE, ML_THRESHOLD_WINDOW_S
    )
    offsets = arrival_offsets(reps, trace.duration_s)
    max_ticks = days * 24 * 60

    def make_app() -> MLTrainingJob:
        return MLTrainingJob(total_work_units=ML_TOTAL_WORK)

    policies = [
        ("CO2-agnostic", lambda tr: CarbonAgnosticPolicy(ML_BASE_WORKERS)),
        ("System Policy", lambda tr: SuspendResumePolicy(threshold, ML_BASE_WORKERS)),
        ("W&S (2X)", lambda tr: WaitAndScalePolicy(threshold, ML_BASE_WORKERS, 2.0)),
        ("W&S (3X)", lambda tr: WaitAndScalePolicy(threshold, ML_BASE_WORKERS, 3.0)),
    ]
    return [
        summarize_batch(
            run_batch_policy(make_app, factory, label, trace, offsets, max_ticks)
        )
        for label, factory in policies
    ]


def fig04b_blast(
    reps: int = 10,
    days: int = TRACE_DAYS,
    seed: int = TRACE_SEED,
    trace: Optional[CarbonTrace] = None,
) -> List[BatchSummary]:
    """Figure 4b: BLAST carbon/runtime under five policies."""
    if trace is None:
        trace = make_region_trace("caiso", days=days, seed=seed)
    threshold = carbon_threshold(trace, BLAST_THRESHOLD_PERCENTILE)
    offsets = arrival_offsets(reps, trace.duration_s)
    max_ticks = days * 24 * 60

    def make_app() -> BlastJob:
        return BlastJob(total_work_units=BLAST_TOTAL_WORK)

    policies = [
        ("CO2-agnostic", lambda tr: CarbonAgnosticPolicy(BLAST_BASE_WORKERS)),
        (
            "System Policy",
            lambda tr: SuspendResumePolicy(threshold, BLAST_BASE_WORKERS),
        ),
        ("W&S (2X)", lambda tr: WaitAndScalePolicy(threshold, BLAST_BASE_WORKERS, 2.0)),
        ("W&S (3X)", lambda tr: WaitAndScalePolicy(threshold, BLAST_BASE_WORKERS, 3.0)),
        ("W&S (4X)", lambda tr: WaitAndScalePolicy(threshold, BLAST_BASE_WORKERS, 4.0)),
    ]
    return [
        summarize_batch(
            run_batch_policy(make_app, factory, label, trace, offsets, max_ticks)
        )
        for label, factory in policies
    ]


def fig05_multitenancy(
    days: int = 2,
    seed: int = TRACE_SEED,
    horizon_ticks: Optional[int] = None,
) -> Dict[str, object]:
    """Figure 5: ML (W&S 2x) and BLAST (W&S 3x) sharing one ecovisor.

    Returns the carbon trace with both thresholds and the per-app and
    cluster-wide container-count time series.
    """
    trace = make_region_trace("caiso", days=days, seed=seed)
    ml_threshold = carbon_threshold(
        trace, ML_THRESHOLD_PERCENTILE, ML_THRESHOLD_WINDOW_S
    )
    blast_threshold = carbon_threshold(trace, BLAST_THRESHOLD_PERCENTILE)
    env = grid_environment(trace=trace)

    ml_job = MLTrainingJob(name="ml-training", total_work_units=ML_TOTAL_WORK)
    blast_job = BlastJob(name="blast", total_work_units=BLAST_TOTAL_WORK)
    env.engine.add_application(
        ml_job,
        ShareConfig(grid_power_w=float("inf")),
        WaitAndScalePolicy(ml_threshold, ML_BASE_WORKERS, 2.0),
    )
    env.engine.add_application(
        blast_job,
        ShareConfig(grid_power_w=float("inf")),
        WaitAndScalePolicy(blast_threshold, BLAST_BASE_WORKERS, 3.0),
    )
    ticks = horizon_ticks if horizon_ticks is not None else days * 24 * 60
    env.engine.run(ticks)

    db = env.ecovisor.database
    bundle = SeriesBundle(title="Fig 5: multi-tenant container counts")
    carbon = db.series("grid.carbon_g_per_kwh")
    bundle.add("carbon_intensity", list(carbon.times()), list(carbon.values()))
    for name in ("ml-training", "blast"):
        series = db.series(f"app.{name}.containers")
        bundle.add(f"{name}_containers", list(series.times()), list(series.values()))
    ml_counts = db.series("app.ml-training.containers").values()
    blast_counts = db.series("app.blast.containers").values()
    times = list(db.series("app.ml-training.containers").times())
    cluster = [float(a + b) for a, b in zip(ml_counts, blast_counts)]
    bundle.add("cluster_containers", times, cluster)

    return {
        "bundle": bundle,
        "ml_threshold": ml_threshold,
        "blast_threshold": blast_threshold,
        "ml_completed": ml_job.is_complete,
        "blast_completed": blast_job.is_complete,
        "ml_carbon_g": env.ecovisor.ledger.app_carbon_g("ml-training"),
        "blast_carbon_g": env.ecovisor.ledger.app_carbon_g("blast"),
    }


def run_multitenancy_case(days: int = 2, seed: int = TRACE_SEED) -> Dict[str, float]:
    """One Figure 5 run reduced to flat metrics (scenario-registry shape).

    Runs :func:`fig05_multitenancy` and collapses its time series into
    picklable scalars: both thresholds, per-app carbon, completion, and
    the peak container counts the paper's Figure 5(b)-(d) panels report.
    """
    out = fig05_multitenancy(days=int(days), seed=int(seed))
    bundle: SeriesBundle = out["bundle"]
    peaks = {
        key: max(v for _, v in bundle.series[f"{key}_containers"])
        for key in ("ml-training", "blast", "cluster")
    }
    return {
        "ml_threshold_g_per_kwh": float(out["ml_threshold"]),
        "blast_threshold_g_per_kwh": float(out["blast_threshold"]),
        "ml_completed": 1.0 if out["ml_completed"] else 0.0,
        "blast_completed": 1.0 if out["blast_completed"] else 0.0,
        "ml_carbon_g": float(out["ml_carbon_g"]),
        "blast_carbon_g": float(out["blast_carbon_g"]),
        "ml_peak_containers": float(peaks["ml-training"]),
        "blast_peak_containers": float(peaks["blast"]),
        "cluster_peak_containers": float(peaks["cluster"]),
    }
