"""Regional-grid experiments: one policy grid across bundled datasets.

The paper's Figure 1 motivates carbon-aware scheduling by contrasting
three regional grids (Ontario, Uruguay, California); its evaluation then
runs everything on CAISO alone.  The ``regional`` scenario family closes
that loop with the provider registry: the *same* policy grid runs across
bundled historical carbon datasets (``caiso-2022``, ``ontario-2022``,
``germany-2022``), with on-site generation resolved by name
(``solar``, ``wind+solar``) from capacity-factor datasets and day-ahead
prices attached for billing.

Every signal is registry-resolved into stock trace types, so these runs
ride the tracecache numpy fast path, run fully offline, and carry
dataset checksums in their sweep provenance — the per-run metrics repeat
the carbon dataset name and SHA-256 so a results table is
self-describing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

# Frozen calibration for the regional sweep (scenario-overridable).
REGIONAL_DAYS = 2
REGIONAL_WORK_UNITS = 200000.0
REGIONAL_PERCENTILE = 35.0
# The paper's Section 5.1 shape: the agnostic baseline and
# suspend/resume run at the base width; Wait&Scale doubles it during
# low-carbon periods (so W&S trades longer wall-clock for cleaner and
# wider execution, and the two carbon-aware policies stay distinct).
REGIONAL_BASE_WORKERS = 4
REGIONAL_SCALE_FACTOR = 2.0
#: On-site generation sized against the 12-server cluster (60 W peak
#: demand): either source alone can cover the cluster at full output.
REGIONAL_SOLAR_PEAK_W = 100.0
REGIONAL_WIND_RATED_W = 100.0
#: Day-ahead prices are the regional family's billing feed.
REGIONAL_PRICE_DATASET = "caiso-dayahead-2022"


def run_regional_case(
    region: str,
    policy: str,
    generation: str = "solar",
    seed: int = 2023,
    days: int = REGIONAL_DAYS,
    work_units: float = REGIONAL_WORK_UNITS,
    percentile: float = REGIONAL_PERCENTILE,
) -> Dict[str, Any]:
    """One (carbon dataset, policy, generation mix) run; flat metrics.

    Builds a grid + on-site-generation plant entirely from registry
    names: ``region`` resolves to a carbon dataset (or synthetic region),
    ``generation`` to solar/wind capacity-factor datasets.  An ML
    training job with a full solar share runs under the named policy;
    metrics include the carbon dataset's name and checksum so every
    results row states its data provenance.
    """
    from repro.core.config import ShareConfig, SolarConfig, WindConfig
    from repro.energy.grid import GridConnection
    from repro.energy.solar import SolarArrayEmulator
    from repro.energy.system import PhysicalEnergySystem
    from repro.energy.wind import WindPlant
    from repro.policies import (
        CarbonAgnosticPolicy,
        SuspendResumePolicy,
        WaitAndScalePolicy,
    )
    from repro.providers.registry import (
        DATASETS,
        resolve_carbon_trace,
        resolve_generation,
        resolve_price_trace,
    )
    from repro.sim.experiment import DEFAULT_CLUSTER, _wire, carbon_threshold
    from repro.workloads.mltrain import MLTrainingJob

    days = int(days)
    trace = resolve_carbon_trace(str(region), days=days, seed=int(seed))
    price_trace = resolve_price_trace(
        REGIONAL_PRICE_DATASET, days=days, seed=int(seed)
    )
    solar_trace, wind_trace = resolve_generation(str(generation))

    solar = (
        SolarArrayEmulator(
            SolarConfig(peak_power_w=REGIONAL_SOLAR_PEAK_W), solar_trace
        )
        if solar_trace is not None
        else None
    )
    wind = (
        WindPlant(WindConfig(rated_power_w=REGIONAL_WIND_RATED_W), wind_trace)
        if wind_trace is not None
        else None
    )
    plant = PhysicalEnergySystem(grid=GridConnection(), solar=solar, wind=wind)
    env = _wire(plant, trace, DEFAULT_CLUSTER, 60.0, price_trace)
    window_s = float(days * 24 * 3600)

    threshold = carbon_threshold(trace, float(percentile), window_s)
    if policy == "agnostic":
        chosen = CarbonAgnosticPolicy(REGIONAL_BASE_WORKERS)
    elif policy == "wait-and-scale":
        chosen = WaitAndScalePolicy(
            threshold, REGIONAL_BASE_WORKERS, REGIONAL_SCALE_FACTOR
        )
    elif policy == "suspend-resume":
        chosen = SuspendResumePolicy(threshold, REGIONAL_BASE_WORKERS)
    else:
        raise ValueError(f"unknown regional policy: {policy!r}")

    job = MLTrainingJob(total_work_units=float(work_units))
    share = ShareConfig(solar_fraction=1.0, grid_power_w=float("inf"))
    env.engine.add_application(job, share, chosen)
    max_ticks = days * 24 * 60
    env.engine.run(max_ticks, stop_when_batch_complete=True)

    account = env.ecovisor.ledger.account(job.name)
    runtime = job.completion_time_s
    carbon_dataset = str(region) if str(region) in DATASETS else ""
    return {
        "runtime_s": float(runtime) if runtime is not None else max_ticks * 60.0,
        "completed": 1.0 if job.is_complete else 0.0,
        "energy_wh": float(account.energy_wh),
        "grid_wh": float(account.grid_wh),
        "renewable_wh": float(account.solar_wh),
        "carbon_g": float(account.carbon_g),
        "cost_usd": float(account.cost_usd),
        "carbon_threshold_g_per_kwh": float(threshold),
        "carbon_dataset": carbon_dataset,
        "carbon_checksum": (
            DATASETS[carbon_dataset].sha256 if carbon_dataset else ""
        ),
    }


def regional_grids_table(
    jobs: int = 1,
    regions: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    seed: int = 2023,
) -> List[Dict[str, Any]]:
    """Run the ``regional`` sweep and return its tidy rows.

    Executes on the scenario runner (``jobs>=2`` fans the matrix over
    worker processes; serial and parallel tables are byte-identical).
    """
    from repro.sim.runner import run_sweep

    overrides: Dict[str, Any] = {"seed": int(seed)}
    if regions is not None:
        overrides["region"] = list(regions)
    if policies is not None:
        overrides["policy"] = list(policies)
    sweep = run_sweep("regional", overrides=overrides, jobs=jobs)
    failures = sweep.failures()
    if failures:
        raise RuntimeError(
            f"regional sweep had {len(failures)} failed runs: "
            + "; ".join(f"{r.spec.label()}: {r.error}" for r in failures)
        )
    return regional_summary_rows(sweep.rows_ok())


def regional_summary_rows(
    table: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Reduce a tidy ``regional`` sweep table to per-region policy rows.

    One row per (region, generation, policy) with carbon/runtime and the
    carbon reduction relative to the same region+generation's agnostic
    baseline — the Figure 4 'carbon savings' framing, per region.
    """
    baselines: Dict[tuple, float] = {}
    for row in table:
        if row.get("status", "ok") != "ok":
            continue
        if str(row["policy"]) == "agnostic":
            key = (str(row["region"]), str(row["generation"]))
            baselines[key] = float(row["carbon_g"])

    rows: List[Dict[str, Any]] = []
    for row in table:
        if row.get("status", "ok") != "ok":
            continue
        key = (str(row["region"]), str(row["generation"]))
        baseline = baselines.get(key)
        reduction = (
            (baseline - float(row["carbon_g"])) / baseline
            if baseline
            else 0.0
        )
        rows.append(
            {
                "region": str(row["region"]),
                "generation": str(row["generation"]),
                "policy": str(row["policy"]),
                "carbon_g": float(row["carbon_g"]),
                "runtime_s": float(row["runtime_s"]),
                "completed": float(row["completed"]),
                "carbon_reduction_vs_agnostic": float(reduction),
                "carbon_dataset": str(row.get("carbon_dataset", "")),
                "carbon_checksum": str(row.get("carbon_checksum", "")),
            }
        )
    rows.sort(key=lambda r: (r["region"], r["generation"], r["policy"]))
    return rows
