"""Experiments for Figures 6 and 7 (carbon budgeting for web services).

Two multi-tenant web applications serve diurnal workloads for 48 hours
while grid carbon-intensity varies (paper Section 5.2).  Each runs under:

- the **static rate-limit** system policy: provision whatever worker pool
  the target carbon rate funds at the current intensity; and
- the **dynamic budget** application policy: size the pool to the latency
  SLO and spend banked carbon credits to ride out simultaneous
  high-carbon/high-load periods.

The paper's target rate is 20 mg/s at datacenter scale; the prototype
cluster here draws single-digit watts, so the calibrated equivalent is
0.30 mg/s — chosen, like the paper's, to bind during evening carbon
peaks (the rate funds fewer workers than the SLO needs) while leaving
slack at night.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.carbon.traces import CarbonTrace, make_region_trace
from repro.core.config import ShareConfig
from repro.policies import CarbonRateLimitPolicy, DynamicCarbonBudgetPolicy
from repro.policies.base import worker_power_w
from repro.sim.experiment import DEFAULT_CLUSTER, grid_environment
from repro.sim.results import SeriesBundle, ServiceRunResult
from repro.workloads.traces import diurnal_request_trace
from repro.workloads.webapp import WebApplication

TARGET_RATE_MG_PER_S = 0.30
SERVICE_RATE_RPS = 100.0
SLO_MS = (60.0, 70.0)
TRACE_HOURS = 48.0
MAX_WORKERS = 10


def _web_apps(seed: int) -> Tuple[WebApplication, WebApplication]:
    """The two web applications with misaligned workload phases."""
    trace1 = diurnal_request_trace(
        hours=TRACE_HOURS, base_rps=40, peak_rps=220, peak_hour=20.0, seed=seed
    )
    trace2 = diurnal_request_trace(
        hours=TRACE_HOURS, base_rps=30, peak_rps=170, peak_hour=18.0, seed=seed + 1
    )
    app1 = WebApplication(
        "webapp1", trace1, slo_ms=SLO_MS[0], service_rate_rps=SERVICE_RATE_RPS
    )
    app2 = WebApplication(
        "webapp2", trace2, slo_ms=SLO_MS[1], service_rate_rps=SERVICE_RATE_RPS
    )
    return app1, app2


def _run(
    policy_kind: str,
    carbon_trace: Optional[CarbonTrace],
    seed: int,
) -> Dict[str, object]:
    if carbon_trace is None:
        carbon_trace = make_region_trace("caiso", days=2, seed=seed)
    env = grid_environment(trace=carbon_trace)
    app1, app2 = _web_apps(seed)
    per_worker_w = worker_power_w(DEFAULT_CLUSTER, cores=1.0)
    for app in (app1, app2):
        if policy_kind == "static":
            policy = CarbonRateLimitPolicy(
                TARGET_RATE_MG_PER_S, per_worker_w, max_workers=MAX_WORKERS
            )
        else:
            policy = DynamicCarbonBudgetPolicy(
                TARGET_RATE_MG_PER_S, per_worker_w, max_workers=MAX_WORKERS
            )
        env.engine.add_application(
            app, ShareConfig(grid_power_w=float("inf")), policy
        )
    ticks = int(TRACE_HOURS * 60)
    env.engine.run(ticks)
    return {"env": env, "apps": (app1, app2)}


def _service_result(env, app: WebApplication, label: str) -> ServiceRunResult:
    account = env.ecovisor.ledger.account(app.name)
    return ServiceRunResult(
        policy_label=label,
        app_name=app.name,
        slo_ms=app.slo_ms,
        ticks=app.tick_count,
        violation_ticks=app.violation_ticks,
        mean_p95_ms=app.mean_latency_ms,
        worst_p95_ms=app.worst_latency_ms,
        carbon_g=account.carbon_g,
        energy_wh=account.energy_wh,
    )


def fig06_07_web_budgeting(
    seed: int = 2023,
    carbon_trace: Optional[CarbonTrace] = None,
) -> Dict[str, object]:
    """Figures 6 and 7: static rate-limit vs dynamic budget, both apps.

    Returns per-policy :class:`ServiceRunResult` rows plus the time
    series the two figures plot (latency, carbon rate, worker counts,
    carbon-intensity, request rates).
    """
    static = _run("static", carbon_trace, seed)
    dynamic = _run("dynamic", carbon_trace, seed)

    results: List[ServiceRunResult] = []
    for label, run in (("System Policy", static), ("Dynamic Budget", dynamic)):
        for app in run["apps"]:
            results.append(_service_result(run["env"], app, label))

    bundle = SeriesBundle(title="Figs 6-7: web carbon budgeting")
    static_db = static["env"].ecovisor.database
    dynamic_db = dynamic["env"].ecovisor.database
    carbon = static_db.series("grid.carbon_g_per_kwh")
    bundle.add("carbon_intensity", list(carbon.times()), list(carbon.values()))
    for db, prefix in ((static_db, "static"), (dynamic_db, "dynamic")):
        for app_name in ("webapp1", "webapp2"):
            for signal, series_name in (
                ("p95_ms", f"app.{app_name}.p95_ms"),
                ("workers", f"app.{app_name}.containers"),
                ("carbon_rate", f"app.{app_name}.carbon_rate_mg_s"),
                ("request_rate", f"app.{app_name}.request_rate_rps"),
            ):
                series = db.series(series_name)
                bundle.add(
                    f"{prefix}.{app_name}.{signal}",
                    list(series.times()),
                    list(series.values()),
                )

    return {
        "results": results,
        "bundle": bundle,
        "target_rate_mg_per_s": TARGET_RATE_MG_PER_S,
        "slo_ms": {"webapp1": SLO_MS[0], "webapp2": SLO_MS[1]},
    }
