"""Per-figure experiment builders and metric helpers.

One function per paper figure; the benchmarks in ``benchmarks/`` wrap
these and print the same rows/series the paper reports.
"""

from repro.analysis.figures_batch import (
    fig01_carbon_traces,
    fig04a_ml_training,
    fig04b_blast,
    fig05_multitenancy,
)
from repro.analysis.figures_battery import fig08_09_battery_policies
from repro.analysis.figures_market import (
    extension_market_table,
    market_pareto_rows,
    run_market_case,
)
from repro.analysis.figures_solar import (
    fig10_day_series,
    fig10_solar_caps,
    fig11_straggler_mitigation,
)
from repro.analysis.figures_web import fig06_07_web_budgeting
from repro.analysis.metrics import (
    carbon_reduction_pct,
    energy_efficiency_per_joule,
    percentile,
    runtime_improvement_pct,
    slo_violation_fraction,
)

__all__ = [
    "carbon_reduction_pct",
    "energy_efficiency_per_joule",
    "fig01_carbon_traces",
    "fig04a_ml_training",
    "fig04b_blast",
    "fig05_multitenancy",
    "extension_market_table",
    "fig06_07_web_budgeting",
    "fig08_09_battery_policies",
    "fig10_day_series",
    "fig10_solar_caps",
    "fig11_straggler_mitigation",
    "market_pareto_rows",
    "percentile",
    "run_market_case",
    "runtime_improvement_pct",
    "slo_violation_fraction",
]
