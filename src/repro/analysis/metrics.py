"""Metric helpers shared by the per-figure analysis modules."""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence

import numpy as np

from repro.core.units import JOULES_PER_WH


def pivot_rows(
    rows: Sequence[Mapping[str, Any]], index_key: str, column_key: str
) -> Dict[Any, Dict[Any, Mapping[str, Any]]]:
    """Pivot a tidy sweep table into ``{index: {column: row}}``.

    Used to pair up sweep rows that differ only in one axis — e.g. the
    static vs dynamic runs at each solar percentage of a Figure 10 sweep.
    Raises ``ValueError`` on duplicate (index, column) cells, which would
    silently drop data.
    """
    pivoted: Dict[Any, Dict[Any, Mapping[str, Any]]] = {}
    for row in rows:
        index = row[index_key]
        column = row[column_key]
        cell = pivoted.setdefault(index, {})
        if column in cell:
            raise ValueError(
                f"duplicate cell in pivot: {index_key}={index!r}, "
                f"{column_key}={column!r}"
            )
        cell[column] = row
    return pivoted


def runtime_improvement_pct(baseline_s: float, improved_s: float) -> float:
    """Percent runtime reduction of ``improved_s`` vs ``baseline_s``."""
    if baseline_s <= 0:
        return 0.0
    return (baseline_s - improved_s) / baseline_s * 100.0


def energy_efficiency_per_joule(work_units: float, energy_wh: float) -> float:
    """Work per joule — the paper's 'Energy Efficiency (1/joules)' axis."""
    if energy_wh <= 0:
        return 0.0
    return work_units / (energy_wh * JOULES_PER_WH)


def carbon_reduction_pct(baseline_g: float, policy_g: float) -> float:
    """Percent carbon reduction vs a baseline (positive = cleaner)."""
    if baseline_g <= 0:
        return 0.0
    return (baseline_g - policy_g) / baseline_g * 100.0


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile of a sample; NaN for empty input."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def slo_violation_fraction(latencies_ms: Sequence[float], slo_ms: float) -> float:
    """Fraction of samples exceeding the SLO."""
    arr = np.asarray(list(latencies_ms), dtype=float)
    if arr.size == 0:
        return 0.0
    return float((arr > slo_ms).mean())
