"""Experiments for Figures 8 and 9 (virtual battery policies).

Two zero-carbon applications share a solar array and physical battery
50/50 (paper Section 5.3): a delay-tolerant Spark job with HDFS
checkpointing, and a solar-monitoring web application whose workload
follows daylight.  Both receive a *zero grid share*, so their virtual
energy systems cannot emit carbon — any shortfall simply limits capacity.

Two runs are compared:

- **static** — the system-level battery-smoothing policy: a fixed worker
  pool whose power the battery can always guarantee; clean checkpointed
  shutdown at dusk.
- **dynamic** — application-specific policies: Spark opportunistically
  surges onto excess solar once its battery is nearly full (accepting
  un-checkpointed loss at kill time); the web app sizes its pool to the
  latency SLO and spends battery on workload bursts.

Plant sizing follows the prototype's proportions scaled to the workload:
solar peak funds roughly twice the static pools, and each app's battery
share stores a few hours of its guaranteed power.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import ClusterConfig, ServerConfig, ShareConfig
from repro.policies import (
    DynamicSparkBatteryPolicy,
    DynamicWebBatteryPolicy,
    StaticBatterySmoothingPolicy,
)
from repro.policies.base import worker_power_w
from repro.sim.experiment import solar_battery_environment
from repro.sim.results import SeriesBundle, ServiceRunResult
from repro.workloads.spark import SparkJob
from repro.workloads.traces import daytime_request_trace
from repro.workloads.webapp import WebApplication
from repro.energy.solar import SolarTrace

SOLAR_PEAK_W = 36.0
BATTERY_CAPACITY_WH = 40.0
SPARK_TOTAL_WORK = 400000.0
SOLAR_CLOUDINESS = 0.25
SPARK_STATIC_WORKERS = 4
WEB_STATIC_WORKERS = 4
WEB_SLO_MS = 100.0
WEB_SERVICE_RATE_RPS = 50.0
WEB_PEAK_RPS = 280.0
DAYS = 4
CLUSTER = ClusterConfig(num_servers=12, server=ServerConfig())
ZERO_CARBON_SHARE = ShareConfig(
    solar_fraction=0.5, battery_fraction=0.5, grid_power_w=0.0
)


def _run(policy_kind: str, seed: int) -> Dict[str, object]:
    if policy_kind not in ("static", "dynamic"):
        raise ValueError(f"unknown policy kind: {policy_kind!r}")
    env = solar_battery_environment(
        solar_peak_w=SOLAR_PEAK_W,
        battery_capacity_wh=BATTERY_CAPACITY_WH,
        days=DAYS,
        seed=seed,
        cluster=CLUSTER,
        cloudiness=SOLAR_CLOUDINESS,
    )
    per_worker_w = worker_power_w(CLUSTER, cores=1.0)

    spark = SparkJob(name="spark", total_work_units=SPARK_TOTAL_WORK)
    solar_trace = SolarTrace(days=DAYS, seed=seed, cloudiness=SOLAR_CLOUDINESS)
    web_trace = daytime_request_trace(
        solar_trace.samples, peak_rps=WEB_PEAK_RPS, seed=seed + 5
    )
    web = WebApplication(
        "web-monitor",
        web_trace,
        slo_ms=WEB_SLO_MS,
        service_rate_rps=WEB_SERVICE_RATE_RPS,
    )

    if policy_kind == "static":
        spark_policy = StaticBatterySmoothingPolicy(
            SPARK_STATIC_WORKERS, per_worker_w
        )
        web_policy = StaticBatterySmoothingPolicy(WEB_STATIC_WORKERS, per_worker_w)
    else:
        spark_policy = DynamicSparkBatteryPolicy(
            SPARK_STATIC_WORKERS,
            per_worker_w,
            battery_full_fraction=0.55,
            max_workers=16,
        )
        web_policy = DynamicWebBatteryPolicy(per_worker_w, max_workers=10)

    env.engine.add_application(spark, ZERO_CARBON_SHARE, spark_policy)
    env.engine.add_application(web, ZERO_CARBON_SHARE, web_policy)
    env.engine.run(DAYS * 24 * 60, stop_when_batch_complete=False)
    return {"env": env, "spark": spark, "web": web}


def run_battery_policy_case(policy: str, seed: int = 2023) -> Dict[str, float]:
    """One Figure 8/9 run as a flat, picklable metrics dict.

    This is the scenario-registry unit of work (one policy kind per
    worker process): it builds the whole environment in-process and
    reduces the run to scalar metrics — Spark runtime and loss, web SLO
    statistics, per-application carbon, and the Figure 9 virtual-battery
    statistics (SoC range, signed battery power range, and the maximum
    SoC divergence between the two tenants).
    """
    import numpy as np

    run = _run(policy, seed)
    env = run["env"]
    spark: SparkJob = run["spark"]
    web: WebApplication = run["web"]
    ledger = env.ecovisor.ledger
    db = env.ecovisor.database
    runtime = spark.completion_time_s
    metrics: Dict[str, float] = {
        "spark_runtime_s": runtime if runtime is not None else float("inf"),
        "spark_completed": 1.0 if spark.is_complete else 0.0,
        "spark_lost_units": float(spark.lost_units_total),
        "web_ticks": float(web.tick_count),
        "web_violation_fraction": (
            web.violation_ticks / web.tick_count if web.tick_count else 0.0
        ),
        "web_mean_p95_ms": float(web.mean_latency_ms),
        "web_worst_p95_ms": float(web.worst_latency_ms),
        "web_slo_ms": float(web.slo_ms),
        "spark_carbon_g": float(ledger.app_carbon_g("spark")),
        "web_carbon_g": float(ledger.app_carbon_g("web-monitor")),
    }
    socs = {}
    for app_name, prefix in (("spark", "spark"), ("web-monitor", "web")):
        soc = np.asarray(list(db.series(f"app.{app_name}.battery_soc").values()))
        power = np.asarray(
            list(db.series(f"app.{app_name}.battery_power_w").values())
        )
        socs[app_name] = soc
        metrics[f"{prefix}_soc_min"] = float(soc.min())
        metrics[f"{prefix}_soc_max"] = float(soc.max())
        metrics[f"{prefix}_battery_power_min_w"] = float(power.min())
        metrics[f"{prefix}_battery_power_max_w"] = float(power.max())
    n = min(len(socs["spark"]), len(socs["web-monitor"]))
    metrics["soc_divergence_max"] = float(
        np.abs(socs["spark"][:n] - socs["web-monitor"][:n]).max()
    )
    return metrics


def fig08_09_battery_policies(seed: int = 2023) -> Dict[str, object]:
    """Figures 8-9: static vs dynamic virtual-battery policies.

    Returns Spark runtimes (and the dynamic runtime reduction), web SLO
    results for both policies, and the Figure 8/9 time series (solar,
    workload, workers, latency, battery SoC, and signed battery power).
    """
    static = _run("static", seed)
    dynamic = _run("dynamic", seed)

    spark_static: SparkJob = static["spark"]
    spark_dynamic: SparkJob = dynamic["spark"]
    runtime_static = spark_static.completion_time_s or float("inf")
    runtime_dynamic = spark_dynamic.completion_time_s or float("inf")
    runtime_reduction_pct = (
        (runtime_static - runtime_dynamic) / runtime_static * 100.0
        if runtime_static not in (0.0, float("inf"))
        else float("nan")
    )

    web_results = []
    for label, run in (("System Policy", static), ("Dynamic", dynamic)):
        web: WebApplication = run["web"]
        account = run["env"].ecovisor.ledger.account(web.name)
        web_results.append(
            ServiceRunResult(
                policy_label=label,
                app_name=web.name,
                slo_ms=web.slo_ms,
                ticks=web.tick_count,
                violation_ticks=web.violation_ticks,
                mean_p95_ms=web.mean_latency_ms,
                worst_p95_ms=web.worst_latency_ms,
                carbon_g=account.carbon_g,
                energy_wh=account.energy_wh,
            )
        )

    bundle = SeriesBundle(title="Figs 8-9: battery policies")
    for run, prefix in ((static, "static"), (dynamic, "dynamic")):
        db = run["env"].ecovisor.database
        for app_name in ("spark", "web-monitor"):
            workers = db.series(f"app.{app_name}.containers")
            bundle.add(
                f"{prefix}.{app_name}.workers",
                list(workers.times()),
                list(workers.values()),
            )
        latency = db.series("app.web-monitor.p95_ms")
        bundle.add(
            f"{prefix}.web-monitor.p95_ms",
            list(latency.times()),
            list(latency.values()),
        )
    dynamic_db = dynamic["env"].ecovisor.database
    solar = dynamic_db.series("plant.solar_w")
    bundle.add("solar_w", list(solar.times()), list(solar.values()))
    workload = dynamic_db.series("app.web-monitor.request_rate_rps")
    bundle.add("web_workload_rps", list(workload.times()), list(workload.values()))
    for app_name in ("spark", "web-monitor"):
        soc = dynamic_db.series(f"app.{app_name}.battery_soc")
        bundle.add(f"dynamic.{app_name}.soc", list(soc.times()), list(soc.values()))
        power = dynamic_db.series(f"app.{app_name}.battery_power_w")
        bundle.add(
            f"dynamic.{app_name}.battery_power_w",
            list(power.times()),
            list(power.values()),
        )

    return {
        "bundle": bundle,
        "spark_runtime_static_s": runtime_static,
        "spark_runtime_dynamic_s": runtime_dynamic,
        "spark_runtime_reduction_pct": runtime_reduction_pct,
        "spark_lost_units_dynamic": spark_dynamic.lost_units_total,
        "web_results": web_results,
        "zero_carbon": {
            "static_spark_g": static["env"].ecovisor.ledger.app_carbon_g("spark"),
            "dynamic_spark_g": dynamic["env"].ecovisor.ledger.app_carbon_g("spark"),
            "static_web_g": static["env"].ecovisor.ledger.app_carbon_g("web-monitor"),
            "dynamic_web_g": dynamic["env"].ecovisor.ledger.app_carbon_g(
                "web-monitor"
            ),
        },
    }
