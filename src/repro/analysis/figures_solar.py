"""Experiments for Figures 10 and 11 (directly exploiting solar power).

A barrier-synchronized parallel job runs across 10 nodes purely on solar
power — no battery, no grid (paper Section 5.4).  Because servers are not
energy-proportional, allocating the limited supply matters:

- **Figure 10** — static equal per-container power caps vs dynamic caps
  proportional to each task's remaining work, swept over the fraction of
  available renewable power.  The less solar there is, the more the
  dynamic policy's balancing wins (near the idle floor, an equal split
  leaves every node barely above idle while the round waits on the
  largest task); energy-efficiency rises with solar as the fixed idle
  floor is amortized over more productive work.
- **Figure 11** — with injected stragglers (slow nodes) and solar scaled
  *above* the job's maximum draw, excess power that cannot be stored is
  spent on replica tasks; runtime improves with diminishing returns while
  energy-efficiency falls (replicas duplicate work).

Methodology notes (documented deviations):

- The paper sweeps a scaled solar *day*; completing a multi-hour job
  across day boundaries quantizes runtimes by whole nights at our scale,
  so the sweeps here hold solar constant at the swept fraction of the
  job's maximum draw.  :func:`fig10_day_series` still reproduces the
  Figure 10(a)/(b) time-series view over the real solar day.
- A lower-idle server profile (0.25 W idle, 5 W peak) keeps the static
  policy's equal split above the idle floor at 10% solar, matching the
  paper's operating range.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.metrics import (
    energy_efficiency_per_joule,
    pivot_rows,
    runtime_improvement_pct,
)
from repro.carbon.service import CarbonIntensityService
from repro.carbon.traces import constant_trace
from repro.cluster.cop import ContainerOrchestrationPlatform
from repro.core.clock import SimulationClock
from repro.core.config import (
    CarbonServiceConfig,
    ClusterConfig,
    EcovisorConfig,
    GridConfig,
    ServerConfig,
    ShareConfig,
    SolarConfig,
)
from repro.core.ecovisor import Ecovisor
from repro.energy.grid import GridConnection
from repro.energy.solar import (
    ConstantSolarTrace,
    SolarArrayEmulator,
    SolarTrace,
    TabularSolarTrace,
)
from repro.energy.system import PhysicalEnergySystem
from repro.policies import (
    DynamicSolarCapPolicy,
    StaticSolarCapPolicy,
    StragglerReplicaPolicy,
)
from repro.policies.base import worker_power_w
from repro.sim.engine import SimulationEngine
from repro.sim.results import SeriesBundle
from repro.workloads.parallel import ParallelJob

NUM_TASKS = 10
LOW_IDLE_SERVER = ServerConfig(cores=4, idle_power_w=0.25, max_cpu_power_w=5.0)
CLUSTER = ClusterConfig(num_servers=12, server=LOW_IDLE_SERVER)
WORKER_POWER_W = worker_power_w(CLUSTER, cores=1.0)
JOB_MAX_POWER_W = NUM_TASKS * WORKER_POWER_W
SOLAR_ONLY_SHARE = ShareConfig(
    solar_fraction=1.0, battery_fraction=0.0, grid_power_w=0.0
)
SUNRISE_ROLL_MINUTES = 7 * 60
MAX_DAYS = 6
FIG10_WORK_CV = 0.35
FIG10_ROUNDS = 8
FIG10_MEAN_WORK = 1200.0
FIG11_ROUNDS = 8
FIG11_MEAN_WORK = 900.0
FIG11_STRAGGLER_PROBABILITY = 0.15


def _engine(solar: SolarArrayEmulator) -> SimulationEngine:
    plant = PhysicalEnergySystem(grid=GridConnection(GridConfig()), solar=solar)
    carbon = CarbonIntensityService(
        CarbonServiceConfig(region="constant"),
        trace=constant_trace(200.0, days=MAX_DAYS),
    )
    platform = ContainerOrchestrationPlatform(CLUSTER)
    ecovisor = Ecovisor(plant, platform, carbon, EcovisorConfig())
    return SimulationEngine(ecovisor, SimulationClock(60.0))


def _constant_solar(scale: float) -> SolarArrayEmulator:
    return SolarArrayEmulator(
        SolarConfig(
            peak_power_w=JOB_MAX_POWER_W, scale=scale, panel_efficiency_derating=1.0
        ),
        ConstantSolarTrace(1.0),
    )


def _day_solar(scale: float, seed: int) -> SolarArrayEmulator:
    """The Figure 10(a) solar day, rolled so t=0 sits near sunrise."""
    base = SolarTrace(days=MAX_DAYS, seed=seed, cloudiness=0.30)
    rolled = np.roll(base.samples, -SUNRISE_ROLL_MINUTES)
    return SolarArrayEmulator(
        SolarConfig(
            peak_power_w=JOB_MAX_POWER_W, scale=scale, panel_efficiency_derating=1.0
        ),
        TabularSolarTrace(rolled),
    )


def _make_policy(policy_kind: str):
    if policy_kind == "static":
        return StaticSolarCapPolicy()
    if policy_kind == "dynamic":
        return DynamicSolarCapPolicy()
    if policy_kind == "replicas":
        return StragglerReplicaPolicy(WORKER_POWER_W, enable_replicas=True)
    if policy_kind == "no-replicas":
        return StragglerReplicaPolicy(WORKER_POWER_W, enable_replicas=False)
    raise ValueError(f"unknown policy kind: {policy_kind}")


def _run_parallel(
    solar: SolarArrayEmulator,
    policy_kind: str,
    seed: int,
    straggler_probability: float,
    num_rounds: int,
    mean_task_work: float,
    work_cv: float = 0.20,
) -> Dict[str, float]:
    engine = _engine(solar)
    job = ParallelJob(
        name="parallel",
        num_tasks=NUM_TASKS,
        num_rounds=num_rounds,
        mean_task_work_units=mean_task_work,
        work_cv=work_cv,
        straggler_probability=straggler_probability,
        seed=seed,
    )
    engine.add_application(job, SOLAR_ONLY_SHARE, _make_policy(policy_kind))
    max_ticks = MAX_DAYS * 24 * 60
    engine.run(max_ticks, stop_when_batch_complete=True)
    account = engine.ecovisor.ledger.account("parallel")
    runtime = job.completion_time_s
    return {
        "runtime_s": runtime if runtime is not None else max_ticks * 60.0,
        "completed": 1.0 if job.is_complete else 0.0,
        "energy_wh": account.energy_wh,
        "work_units": job.work_done_units,
        "engine": engine,
    }


def run_solar_cap_case(
    solar_pct: float, policy: str, seed: int = 2023
) -> Dict[str, float]:
    """One Figure 10(c) run (one solar % x one cap policy), flat metrics.

    The scenario-registry unit of work: builds the solar-only plant at
    ``solar_pct`` percent of the job's maximum draw, runs the parallel
    job under ``policy`` ("static" or "dynamic" per-container caps), and
    returns picklable scalars only (the engine never leaves the worker).
    """
    out = _run_parallel(
        _constant_solar(float(solar_pct) / 100.0), policy, int(seed), 0.0,
        FIG10_ROUNDS, FIG10_MEAN_WORK, FIG10_WORK_CV,
    )
    return {
        "runtime_s": float(out["runtime_s"]),
        "completed": float(out["completed"]),
        "energy_wh": float(out["energy_wh"]),
        "work_units": float(out["work_units"]),
    }


def run_straggler_case(
    solar_pct: float, policy: str, seed: int = 2023
) -> Dict[str, float]:
    """One Figure 11 run (one solar % x replicas on/off), flat metrics.

    The scenario-registry unit of work for ``fig11_stragglers``: solar
    held at ``solar_pct`` percent of the job's maximum draw (>= 100% —
    the excess-power operating range), stragglers injected, and the
    replica policy enabled (``"replicas"``) or disabled
    (``"no-replicas"``).
    """
    out = _run_parallel(
        _constant_solar(float(solar_pct) / 100.0), policy, int(seed),
        FIG11_STRAGGLER_PROBABILITY, FIG11_ROUNDS, FIG11_MEAN_WORK,
    )
    return {
        "runtime_s": float(out["runtime_s"]),
        "completed": float(out["completed"]),
        "energy_wh": float(out["energy_wh"]),
        "work_units": float(out["work_units"]),
    }


def straggler_rows(table: List[Dict[str, float]]) -> List[Dict[str, float]]:
    """Pair replica/no-replica sweep rows into the Figure 11 row shape."""
    paired = pivot_rows(table, "solar_pct", "policy")
    rows = []
    for pct in sorted(paired):
        baseline = paired[pct]["no-replicas"]
        replicas = paired[pct]["replicas"]
        rows.append(
            {
                "solar_pct": float(pct),
                "runtime_baseline_s": baseline["runtime_s"],
                "runtime_replicas_s": replicas["runtime_s"],
                "runtime_improvement_pct": runtime_improvement_pct(
                    baseline["runtime_s"], replicas["runtime_s"]
                ),
                "energy_efficiency_per_j": energy_efficiency_per_joule(
                    replicas["work_units"], replicas["energy_wh"]
                ),
                "baseline_completed": baseline["completed"],
                "replicas_completed": replicas["completed"],
            }
        )
    return rows


def solar_cap_rows(table: List[Dict[str, float]]) -> List[Dict[str, float]]:
    """Pair static/dynamic sweep rows into the Figure 10(c) row shape.

    Takes the tidy table of a ``fig10_solar_caps`` sweep (one row per
    (solar_pct, policy) run) and reduces each solar percentage to one
    comparison row: runtimes, the dynamic policy's runtime improvement,
    and the dynamic run's energy-efficiency.
    """
    paired = pivot_rows(table, "solar_pct", "policy")
    rows = []
    for pct in sorted(paired):
        static = paired[pct]["static"]
        dynamic = paired[pct]["dynamic"]
        rows.append(
            {
                "solar_pct": float(pct),
                "runtime_static_s": static["runtime_s"],
                "runtime_dynamic_s": dynamic["runtime_s"],
                "runtime_improvement_pct": runtime_improvement_pct(
                    static["runtime_s"], dynamic["runtime_s"]
                ),
                "energy_efficiency_per_j": energy_efficiency_per_joule(
                    dynamic["work_units"], dynamic["energy_wh"]
                ),
                "static_completed": static["completed"],
                "dynamic_completed": dynamic["completed"],
            }
        )
    return rows


def fig10_solar_caps(
    percentages: Tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90),
    seed: int = 2023,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Figure 10(c): runtime improvement and energy-efficiency vs solar %.

    One row per percentage: the dynamic policy's runtime improvement over
    the static policy, and the dynamic run's energy-efficiency (work per
    joule).  No stragglers are injected; round-to-round task-size variance
    supplies the imbalance (the paper's first configuration).

    Executes on the scenario runner: ``jobs<=1`` is the deterministic
    serial fallback, ``jobs>=2`` fans the (solar %, policy) matrix out
    over worker processes.  Both orderings produce identical rows.
    """
    from repro.sim.runner import run_sweep

    sweep = run_sweep(
        "fig10_solar_caps",
        overrides={
            # dict.fromkeys dedupes while preserving order: a repeated
            # point would otherwise collide in the pivot.
            "solar_pct": list(dict.fromkeys(float(p) for p in percentages)),
            "seed": int(seed),
        },
        jobs=jobs,
    )
    failures = sweep.failures()
    if failures:
        raise RuntimeError(
            f"fig10 sweep had {len(failures)} failed runs: "
            + "; ".join(f"{r.spec.label()}: {r.error}" for r in failures)
        )
    return solar_cap_rows(sweep.rows_ok())


def fig10_day_series(seed: int = 2023) -> SeriesBundle:
    """Figures 10(a)/(b): solar day and dynamic per-container power caps.

    Runs the dynamic policy over the real (rolled) solar day and returns
    the solar series, the per-container power-cap series, and the static
    equal-split center line.
    """
    run = _run_parallel(
        _day_solar(1.0, seed), "dynamic", seed, 0.0,
        FIG10_ROUNDS, FIG10_MEAN_WORK, FIG10_WORK_CV,
    )
    engine: SimulationEngine = run["engine"]
    db = engine.ecovisor.database
    bundle = SeriesBundle(title="Fig 10(a)/(b): solar day and dynamic caps")
    solar = db.series("plant.solar_w")
    bundle.add("solar_w", list(solar.times()), list(solar.values()))
    app_power = db.series("app.parallel.power_w")
    bundle.add("application_power_w", list(app_power.times()), list(app_power.values()))
    for name in db.series_names():
        if name.startswith("container.") and name.endswith(".power_w"):
            series = db.series(name)
            bundle.add(name, list(series.times()), list(series.values()))
    return bundle


def fig11_straggler_mitigation(
    percentages: Tuple[int, ...] = (100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200),
    seed: int = 2023,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Figure 11: replica-based straggler mitigation under excess solar.

    One row per percentage of available renewable power (>= 100% of the
    job's maximum draw): runtime improvement of the replica policy over
    the identical configuration with replicas disabled, and the replica
    run's energy-efficiency.

    Executes on the scenario runner (``fig11_stragglers``): ``jobs<=1``
    is the deterministic serial fallback, ``jobs>=2`` fans the
    (solar %, policy) matrix out over worker processes.  Both orderings
    produce identical rows.
    """
    from repro.sim.runner import run_sweep

    sweep = run_sweep(
        "fig11_stragglers",
        overrides={
            "solar_pct": list(dict.fromkeys(float(p) for p in percentages)),
            "seed": int(seed),
        },
        jobs=jobs,
    )
    failures = sweep.failures()
    if failures:
        raise RuntimeError(
            f"fig11 sweep had {len(failures)} failed runs: "
            + "; ".join(f"{r.spec.label()}: {r.error}" for r in failures)
        )
    return straggler_rows(sweep.rows_ok())
