"""Market-extension experiments: the carbon-vs-cost Pareto frontier.

The paper's evaluation optimizes carbon alone; with the market layer
attached, every schedule also has a dollar cost, and the two objectives
decouple whenever price and carbon do (a time-of-use on-peak window on a
clean evening grid, a cheap-but-dirty night).  The ``extension_market``
scenario sweeps price regimes x policies x the carbon/cost trade-off
knob λ and reports, per regime, the carbon-vs-cost Pareto frontier:

- **carbon-threshold** — the paper's Wait&Scale on carbon (cost-blind).
- **price-threshold**  — Wait&Scale on the price signal (carbon-blind).
- **carbon-cost**      — Wait&Scale on the blended index, λ from pure
  carbon (λ=0) to pure cost (λ=1).

Every run settles through the full billing path: per-tick settlements
carry ``cost_usd = grid energy x price``, and the returned metrics
include the absolute error between the ledger's cumulative cost and a
recomputation from the raw settlements (it must be ~0 by construction).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.units import energy_cost_usd

# Frozen calibration for the market sweep (kept scenario-overridable).
MARKET_DAYS = 2
MARKET_WORK_UNITS = 24000.0
MARKET_PERCENTILE = 35.0
MARKET_BASE_WORKERS = 4
MARKET_SCALE_FACTOR = 2.0
# The job arrives on the evening net-load ramp (dirty AND expensive), so
# every policy must *choose* a window to run in: price-aware policies
# resume at the off-peak night, carbon-aware ones at the midday solar
# dip — that divergence is the Pareto spread the sweep measures.
MARKET_ARRIVAL_HOUR = 18.0


def run_market_case(
    regime: str,
    policy: str,
    lam: float,
    seed: int = 2023,
    days: int = MARKET_DAYS,
    work_units: float = MARKET_WORK_UNITS,
    percentile: float = MARKET_PERCENTILE,
) -> Dict[str, float]:
    """One (price regime, policy, λ) run; flat, picklable metrics.

    The scenario-registry unit of work: builds a grid-only plant with a
    CAISO carbon trace and the named price regime attached, runs an ML
    training job under the named policy, and returns energy/carbon/cost
    totals plus the billing-consistency error.
    """
    from repro.carbon.forecast import OracleForecaster
    from repro.carbon.traces import make_region_trace
    from repro.market.prices import make_price_trace
    from repro.policies import (
        CarbonCostPolicy,
        PriceThresholdPolicy,
        WaitAndScalePolicy,
        blended_threshold,
    )
    from repro.sim.experiment import (
        UNLIMITED_GRID_SHARE,
        carbon_threshold,
        grid_environment,
    )
    from repro.workloads.mltrain import MLTrainingJob

    days = int(days)
    arrival_offset_s = MARKET_ARRIVAL_HOUR * 3600.0
    trace = make_region_trace("caiso", days=days, seed=int(seed)).rolled(
        arrival_offset_s
    )
    price_trace = make_price_trace(str(regime), days=days, seed=int(seed)).rolled(
        arrival_offset_s
    )
    env = grid_environment(trace=trace, price_trace=price_trace)
    window_s = trace.duration_s

    if policy == "carbon-threshold":
        chosen = WaitAndScalePolicy(
            carbon_threshold(trace, percentile, window_s),
            MARKET_BASE_WORKERS,
            MARKET_SCALE_FACTOR,
        )
    elif policy == "price-threshold":
        chosen = PriceThresholdPolicy(
            OracleForecaster(env.price_signal),
            percentile,
            window_s,
            MARKET_BASE_WORKERS,
            MARKET_SCALE_FACTOR,
        )
    elif policy == "carbon-cost":
        chosen = CarbonCostPolicy(
            float(lam),
            blended_threshold(trace, price_trace, float(lam), percentile),
            carbon_scale=trace.mean(),
            price_scale=price_trace.mean(),
            base_workers=MARKET_BASE_WORKERS,
            scale_factor=MARKET_SCALE_FACTOR,
        )
    else:
        raise ValueError(f"unknown market policy: {policy!r}")

    job = MLTrainingJob(total_work_units=float(work_units))
    env.engine.add_application(job, UNLIMITED_GRID_SHARE, chosen)
    max_ticks = days * 24 * 60
    env.engine.run(max_ticks, stop_when_batch_complete=True)

    account = env.ecovisor.ledger.account(job.name)
    recomputed = sum(
        energy_cost_usd(s.grid_total_wh, s.price_usd_per_kwh)
        for s in account.settlements
    )
    runtime = job.completion_time_s
    return {
        "runtime_s": float(runtime) if runtime is not None else max_ticks * 60.0,
        "completed": 1.0 if job.is_complete else 0.0,
        "energy_wh": float(account.energy_wh),
        "grid_wh": float(account.grid_wh),
        "carbon_g": float(account.carbon_g),
        "cost_usd": float(account.cost_usd),
        "mean_price_usd_per_kwh": float(price_trace.mean()),
        "cost_recompute_abs_err": float(abs(account.cost_usd - recomputed)),
    }


def _point_label(row: Dict[str, Any]) -> str:
    """Display label for one sweep row (λ only matters for carbon-cost)."""
    policy = str(row["policy"])
    if policy == "carbon-cost":
        return f"carbon-cost(lam={float(row['lam']):.2f})"
    return policy


def market_pareto_rows(table: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reduce a tidy ``extension_market`` sweep table to Pareto rows.

    One row per unique (regime, policy point): carbon, cost, runtime,
    and a ``pareto`` flag — 1.0 when no other point in the same regime
    weakly dominates it on (carbon_g, cost_usd).  Rows whose λ is
    irrelevant (the threshold policies ignore it) collapse to a single
    point.  Output order: regime, then ascending carbon.
    """
    points: Dict[tuple, Dict[str, Any]] = {}
    for row in table:
        if row.get("status", "ok") != "ok":
            continue
        key = (str(row["regime"]), _point_label(row))
        points.setdefault(key, row)

    rows: List[Dict[str, Any]] = []
    for (regime, label), row in points.items():
        dominated = any(
            other_key[0] == regime
            and (other_key != (regime, label))
            and other["carbon_g"] <= row["carbon_g"]
            and other["cost_usd"] <= row["cost_usd"]
            and (
                other["carbon_g"] < row["carbon_g"]
                or other["cost_usd"] < row["cost_usd"]
            )
            for other_key, other in points.items()
        )
        rows.append(
            {
                "regime": regime,
                "policy_point": label,
                "carbon_g": float(row["carbon_g"]),
                "cost_usd": float(row["cost_usd"]),
                "runtime_s": float(row["runtime_s"]),
                "completed": float(row["completed"]),
                "pareto": 0.0 if dominated else 1.0,
            }
        )
    rows.sort(key=lambda r: (r["regime"], r["carbon_g"], r["policy_point"]))
    return rows


def extension_market_table(
    jobs: int = 1,
    regimes: Optional[Sequence[str]] = None,
    lams: Optional[Sequence[float]] = None,
    seed: int = 2023,
) -> List[Dict[str, Any]]:
    """Run the ``extension_market`` sweep and return its Pareto rows.

    Executes on the scenario runner (``jobs>=2`` fans the matrix over
    worker processes; serial and parallel tables are byte-identical).
    """
    from repro.sim.runner import run_sweep

    overrides: Dict[str, Any] = {"seed": int(seed)}
    if regimes is not None:
        overrides["regime"] = list(regimes)
    if lams is not None:
        overrides["lam"] = list(lams)
    sweep = run_sweep("extension_market", overrides=overrides, jobs=jobs)
    failures = sweep.failures()
    if failures:
        raise RuntimeError(
            f"extension_market sweep had {len(failures)} failed runs: "
            + "; ".join(f"{r.spec.label()}: {r.error}" for r in failures)
        )
    return market_pareto_rows(sweep.rows_ok())
