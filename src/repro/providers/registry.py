"""The bundled-dataset registry: names, checksums, and trace resolvers.

Scenarios reference signal data *by name* (``carbon="caiso-2022"``,
``generation="wind+solar"``); this module resolves those names into the
stock trace objects the rest of the simulator consumes.  Resolution is
deliberately shaped so provider-backed runs stay on the numpy fast path:
every resolver returns an **exact stock type** (:class:`CarbonTrace`,
:class:`PriceTrace`, :class:`TabularSolarTrace`,
:class:`WindCapacityTrace`), which is what
:mod:`repro.core.tracecache`'s vectorized builders key on — historical
data flows through the same precomputed arrays as synthetic data.

Integrity: every dataset carries a pinned SHA-256.  :func:`load_samples`
verifies the file bytes against it and raises
:class:`~repro.core.errors.DatasetIntegrityError` on drift, so a run's
recorded provenance (``dataset_provenance``) really does identify the
numbers that produced it.  ``python -m repro.providers.datagen``
regenerates the files and prints fresh checksums when a dataset is
intentionally changed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.errors import DatasetIntegrityError, UnknownTraceNameError
from repro.obs.metrics import default_registry

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Native sample interval of every bundled dataset (seconds).
DATASET_INTERVAL_S = 300.0


@dataclass(frozen=True)
class DatasetDescriptor:
    """One bundled dataset: identity, provenance, and file location."""

    name: str
    kind: str  # "carbon" | "price" | "wind-cf" | "solar-cf"
    region: str
    units: str
    sha256: str
    description: str

    @property
    def filename(self) -> str:
        return f"{self.name}.csv"

    @property
    def path(self) -> Path:
        return DATA_DIR / self.filename


_DESCRIPTORS = (
    DatasetDescriptor(
        name="caiso-2022",
        kind="carbon",
        region="caiso",
        units="gCO2eq/kWh",
        sha256="8acf52f41d73d58889616402ec1d163e5b85bd815e092c76a43f951881ef43b6",
        description="California ISO carbon intensity: duck curve, high variance.",
    ),
    DatasetDescriptor(
        name="ontario-2022",
        kind="carbon",
        region="ontario",
        units="gCO2eq/kWh",
        sha256="2a1a0950aec99d7a50bbd5f286905987dbe036440e8955276e15ef06f8a3e47d",
        description="Ontario carbon intensity: nuclear-heavy, low and flat.",
    ),
    DatasetDescriptor(
        name="uruguay-2022",
        kind="carbon",
        region="uruguay",
        units="gCO2eq/kWh",
        sha256="8e729680e1eca8c732ab992545b3ae12d889d5febe290e0bf037accbdca1037c",
        description="Uruguay carbon intensity: hydro-heavy with thermal excursions.",
    ),
    DatasetDescriptor(
        name="germany-2022",
        kind="carbon",
        region="germany",
        units="gCO2eq/kWh",
        sha256="5756b70fb6aed9f5dd4d5b6ed5c69e2750e911d2302ea3e18585362705fe3ead",
        description="Germany carbon intensity: coal/gas baseload, wind-driven swings.",
    ),
    DatasetDescriptor(
        name="caiso-dayahead-2022",
        kind="price",
        region="caiso",
        units="USD/kWh",
        sha256="81b9c31c90c846f67e8c8e9192df9d8460f4b65e8dc36403159622ce2608ce51",
        description="CAISO day-ahead market: smooth hourly-block clearing prices.",
    ),
    DatasetDescriptor(
        name="caiso-realtime-2022",
        kind="price",
        region="caiso",
        units="USD/kWh",
        sha256="974ff770868f59fc10f29b0f7acdffa52d777d7113623bd2a56634d92cb5d5bd",
        description="CAISO real-time market: noisy duck with scarcity spikes.",
    ),
    DatasetDescriptor(
        name="wind-cf-2022",
        kind="wind-cf",
        region="caiso",
        units="fraction",
        sha256="ff867920e81e224ea567ac7cf3ead81efabbc4f22ab197faecd7861345d56b77",
        description="Wind capacity factor: nocturnal peak, weather-front persistence.",
    ),
    DatasetDescriptor(
        name="solar-cf-2022",
        kind="solar-cf",
        region="caiso",
        units="fraction",
        sha256="f77bf80f7deb985a543ab022e3f18927061ad49d299e73db9f23548d33ae73cd",
        description="Solar capacity factor: diurnal bell with cloud attenuation.",
    ),
)

#: All bundled datasets by name.
DATASETS: Dict[str, DatasetDescriptor] = {d.name: d for d in _DESCRIPTORS}

#: Loaded sample arrays by dataset name (files never change mid-process).
_SAMPLE_CACHE: Dict[str, np.ndarray] = {}

_registry = default_registry()
_DATASET_LOADS = _registry.counter(
    "provider_dataset_loads_total",
    "Bundled dataset files read and checksum-verified, by dataset.",
    labelnames=("dataset",),
)
_DATASET_CACHE_HITS = _registry.counter(
    "provider_dataset_cache_hits_total",
    "Dataset resolutions served from the in-process sample cache.",
    labelnames=("dataset",),
)
_DATASET_CHECKSUM_FAILURES = _registry.counter(
    "provider_dataset_checksum_failures_total",
    "Dataset loads rejected because the file bytes did not match the "
    "registered SHA-256.",
    labelnames=("dataset",),
)


def descriptor(name: str) -> DatasetDescriptor:
    """The descriptor for a dataset name; raises listing known names."""
    if name not in DATASETS:
        raise UnknownTraceNameError("dataset", name, DATASETS)
    return DATASETS[name]


def load_samples(name: str, verify: bool = True) -> np.ndarray:
    """The dataset's sample array (read-only view), checksum-verified.

    Files are parsed once per process; subsequent loads hit the cache
    (and count as cache hits in the obs registry).
    """
    if name in _SAMPLE_CACHE:
        _DATASET_CACHE_HITS.labels(dataset=name).inc()
        return _SAMPLE_CACHE[name]
    desc = descriptor(name)
    payload = desc.path.read_bytes()
    if verify:
        digest = hashlib.sha256(payload).hexdigest()
        if digest != desc.sha256:
            _DATASET_CHECKSUM_FAILURES.labels(dataset=name).inc()
            raise DatasetIntegrityError(
                f"dataset {name!r} failed checksum verification: "
                f"expected sha256 {desc.sha256}, file has {digest}; "
                "regenerate with `python -m repro.providers.datagen` or "
                "restore the original file"
            )
    samples = _parse_csv(name, payload.decode("utf-8"))
    samples.flags.writeable = False
    _SAMPLE_CACHE[name] = samples
    _DATASET_LOADS.labels(dataset=name).inc()
    return samples


def _parse_csv(name: str, text: str) -> np.ndarray:
    """Parse the canonical dataset CSV: comments, header, time/value rows."""
    values = []
    expected_time = 0
    for line in text.splitlines():
        if not line or line.startswith("#") or line.startswith("time_s"):
            continue
        time_field, value_field = line.split(",", 1)
        if int(time_field) != expected_time:
            raise DatasetIntegrityError(
                f"dataset {name!r} has a non-contiguous timestamp: "
                f"expected {expected_time}, got {time_field}"
            )
        expected_time += int(DATASET_INTERVAL_S)
        values.append(float(value_field))
    if not values:
        raise DatasetIntegrityError(f"dataset {name!r} contains no samples")
    return np.asarray(values, dtype=float)


def clear_sample_cache() -> None:
    """Drop cached sample arrays (tests that tamper with files use this)."""
    _SAMPLE_CACHE.clear()


def validate_all() -> Dict[str, str]:
    """Checksum-verify every registered dataset; return name -> sha256.

    Used by ``repro traces validate`` and the lint CI job: any drift
    between the files and the registered hashes fails loudly.
    """
    clear_sample_cache()
    results = {}
    for name in sorted(DATASETS):
        load_samples(name, verify=True)
        results[name] = DATASETS[name].sha256
    return results


def dataset_provenance(params: Mapping[str, object]) -> Dict[str, Dict[str, str]]:
    """Dataset identity for every param value naming a registered dataset.

    Scenario provenance calls this on the param dict: any string value
    that resolves in the registry (directly, or as a ``+``-separated
    generation spec) contributes ``{param: {dataset, sha256}}`` entries,
    tying the run's ``config_hash`` to the exact data bytes behind it.
    """
    provenance: Dict[str, Dict[str, str]] = {}
    for key, value in params.items():
        if not isinstance(value, str):
            continue
        if value in DATASETS:
            names = [value]
        else:
            names = [
                GENERATION_ALIASES.get(part.strip().lower(), part.strip())
                for part in value.split("+")
            ]
            names = [name for name in names if name in DATASETS]
        for name in names:
            entry_key = key if len(names) == 1 else f"{key}.{name}"
            provenance[entry_key] = {
                "dataset": name,
                "sha256": DATASETS[name].sha256,
            }
    return provenance


# -- trace resolvers ----------------------------------------------------


def resolve_carbon_trace(name: str, days: int = 4, seed: int = 2023):
    """A :class:`CarbonTrace` for a dataset name or synthetic region.

    Bundled datasets win; otherwise the name falls through to the
    synthetic region profiles.  Unknown names raise listing *both*
    namespaces, since callers see them as one.
    """
    from repro.carbon.traces import REGION_PROFILES, CarbonTrace, make_region_trace

    if name in DATASETS:
        desc = DATASETS[name]
        if desc.kind != "carbon":
            raise UnknownTraceNameError(
                "carbon dataset", name, _names_of_kind("carbon")
            )
        return CarbonTrace(load_samples(name), region=desc.region)
    if name.lower() in REGION_PROFILES:
        return make_region_trace(name, days=days, seed=seed)
    raise UnknownTraceNameError(
        "carbon trace",
        name,
        set(_names_of_kind("carbon")) | set(REGION_PROFILES),
    )


def resolve_price_trace(name: str, days: int = 4, seed: int = 2023):
    """A :class:`PriceTrace` for a dataset name or synthetic regime."""
    from repro.market.prices import PRICE_REGIMES, PriceTrace, make_price_trace

    if name in DATASETS:
        desc = DATASETS[name]
        if desc.kind != "price":
            raise UnknownTraceNameError(
                "price dataset", name, _names_of_kind("price")
            )
        return PriceTrace(load_samples(name), regime=name)
    if name.lower() in PRICE_REGIMES:
        return make_price_trace(name, days=days, seed=seed)
    raise UnknownTraceNameError(
        "price trace",
        name,
        set(_names_of_kind("price")) | set(PRICE_REGIMES),
    )


#: Shorthand generation components -> default capacity-factor datasets.
GENERATION_ALIASES = {
    "solar": "solar-cf-2022",
    "wind": "wind-cf-2022",
}


def resolve_generation(spec: str) -> Tuple[Optional[object], Optional[object]]:
    """Resolve a ``+``-separated generation spec into (solar, wind) traces.

    Components are either the shorthands ``solar``/``wind`` (their
    default capacity-factor datasets) or explicit ``solar-cf``/
    ``wind-cf`` dataset names.  Returns a
    (:class:`TabularSolarTrace` | None, :class:`WindCapacityTrace` | None)
    pair — stock types, so the tracecache vectorizes both.
    """
    from repro.energy.solar import TabularSolarTrace
    from repro.energy.wind import WindCapacityTrace

    solar_trace = None
    wind_trace = None
    valid = set(GENERATION_ALIASES) | {
        d.name for d in _DESCRIPTORS if d.kind in ("solar-cf", "wind-cf")
    }
    for part in spec.split("+"):
        name = GENERATION_ALIASES.get(part.strip().lower(), part.strip())
        if name not in DATASETS or DATASETS[name].kind not in (
            "solar-cf",
            "wind-cf",
        ):
            raise UnknownTraceNameError("generation component", part, valid)
        samples = load_samples(name)
        if DATASETS[name].kind == "solar-cf":
            # The dataset is at the registry's 5-minute interval; the
            # solar emulator consumes per-minute irradiance, so each
            # sample is held for its five minutes.
            solar_trace = TabularSolarTrace(np.repeat(samples, 5))
        else:
            wind_trace = WindCapacityTrace(samples)
    return solar_trace, wind_trace


def generation_datasets(spec: str) -> Tuple[str, ...]:
    """The dataset names a generation spec resolves to (for provenance)."""
    names = []
    for part in spec.split("+"):
        name = GENERATION_ALIASES.get(part.strip().lower(), part.strip())
        if name in DATASETS:
            names.append(name)
    return tuple(names)


def _names_of_kind(kind: str) -> Tuple[str, ...]:
    return tuple(d.name for d in _DESCRIPTORS if d.kind == kind)
