"""Providers backed by the bundled historical datasets."""

from __future__ import annotations

import numpy as np

from repro.providers.base import ProviderMetadata, SignalProvider
from repro.providers.registry import (
    DATASET_INTERVAL_S,
    descriptor,
    load_samples,
)


class HistoricalProvider(SignalProvider):
    """Replays a registered dataset as a signal.

    Lookups use the trace classes' arithmetic — truncate to the 5-minute
    sample index, clamp at the end — so a :class:`HistoricalProvider`
    and the stock trace built from the same dataset agree sample for
    sample.  Forecasts return the recorded future (perfect hindsight),
    the oracle-forecast assumption the paper's policies evaluate under.
    """

    def __init__(self, name: str, verify: bool = True):
        desc = descriptor(name)
        super().__init__(
            ProviderMetadata(
                dataset=desc.name,
                kind=desc.kind,
                region=desc.region,
                units=desc.units,
                checksum=desc.sha256,
                source="historical",
            )
        )
        self._samples = load_samples(name, verify=verify)

    @property
    def samples(self) -> np.ndarray:
        return self._samples

    @property
    def duration_s(self) -> float:
        return len(self._samples) * DATASET_INTERVAL_S

    def value_at(self, time_s: float) -> float:
        if time_s < 0:
            raise ValueError(f"time must be >= 0, got {time_s}")
        index = min(int(time_s / DATASET_INTERVAL_S), len(self._samples) - 1)
        return float(self._samples[index])

    def forecast(self, time_s: float, horizon_s: float) -> np.ndarray:
        """The recorded samples covering ``[time_s, time_s + horizon_s)``.

        Clamps at the dataset end by repeating the final sample, so a
        forecast always spans the full requested horizon.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        start = int(time_s / DATASET_INTERVAL_S)
        count = max(1, int(np.ceil(horizon_s / DATASET_INTERVAL_S)))
        indices = np.minimum(start + np.arange(count), len(self._samples) - 1)
        return self._samples[indices]
