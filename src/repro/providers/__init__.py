"""Pluggable signal providers: historical datasets, synthetic, HTTP."""

from repro.providers.base import ProviderMetadata, SignalProvider
from repro.providers.historical import HistoricalProvider
from repro.providers.http import (
    HTTPProvider,
    HTTPResponse,
    MockTransport,
    TransportTimeout,
    UrllibTransport,
)
from repro.providers.registry import (
    DATASETS,
    DatasetDescriptor,
    dataset_provenance,
    descriptor,
    generation_datasets,
    load_samples,
    resolve_carbon_trace,
    resolve_generation,
    resolve_price_trace,
    validate_all,
)
from repro.providers.synthetic import SyntheticProvider

__all__ = [
    "DATASETS",
    "DatasetDescriptor",
    "HTTPProvider",
    "HTTPResponse",
    "HistoricalProvider",
    "MockTransport",
    "ProviderMetadata",
    "SignalProvider",
    "SyntheticProvider",
    "TransportTimeout",
    "UrllibTransport",
    "dataset_provenance",
    "descriptor",
    "generation_datasets",
    "load_samples",
    "resolve_carbon_trace",
    "resolve_generation",
    "resolve_price_trace",
    "validate_all",
]
