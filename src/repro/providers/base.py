"""The signal-provider abstraction.

The paper's ecovisor consumes external *energy information services* —
electricityMap-style carbon feeds, ISO price feeds, on-site generation
telemetry (Section 2).  The simulator historically synthesized all of
them in-process; this package generalizes the supply side behind one
interface so a scenario can pull its signals from bundled historical
datasets, from the synthetic generators, or from a (mocked) REST feed
without the consuming services changing.

A :class:`SignalProvider` answers two questions the ecovisor's services
ask — the value *now* and a forecast over a horizon — and carries
:class:`ProviderMetadata` naming the dataset behind it, so run
provenance can record exactly which data produced a result.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProviderMetadata:
    """Provenance for a provider's signal.

    ``dataset`` names the backing dataset (a registry name, a synthetic
    generator tag, or an endpoint URL); ``checksum`` is the dataset's
    SHA-256 for registry-backed providers and ``""`` when no stable
    content hash exists (synthetic generators hash their parameters,
    live feeds have none).
    """

    dataset: str
    kind: str
    region: str = ""
    units: str = ""
    checksum: str = ""
    source: str = "historical"


class SignalProvider(ABC):
    """A time-indexed scalar signal with a forecast and provenance.

    Time is *simulation* time (seconds from scenario start), matching the
    trace classes — providers never read wall clocks, which is what keeps
    provider-backed runs deterministic and replayable.
    """

    def __init__(self, metadata: ProviderMetadata):
        self._metadata = metadata

    @property
    def metadata(self) -> ProviderMetadata:
        return self._metadata

    @abstractmethod
    def value_at(self, time_s: float) -> float:
        """The signal value at simulation time ``time_s``."""

    @abstractmethod
    def forecast(self, time_s: float, horizon_s: float) -> np.ndarray:
        """Forecast samples covering ``[time_s, time_s + horizon_s)``.

        Sampled at the provider's native interval.  Historical providers
        return the recorded future (perfect hindsight, the paper's
        oracle-forecast assumption); live providers return a persistence
        forecast unless the feed supplies better.
        """
