"""Providers wrapping the in-process synthetic generators.

The pre-provider simulator built its signals straight from the
synthesizers in :mod:`repro.carbon.traces`, :mod:`repro.market.prices`,
and :mod:`repro.energy.wind`.  :class:`SyntheticProvider` puts those
generators behind the same :class:`~repro.providers.base.SignalProvider`
interface as historical datasets and HTTP feeds, so consumers select a
supply side by configuration rather than by code path.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.errors import UnknownTraceNameError
from repro.providers.base import ProviderMetadata, SignalProvider

#: Native sample interval of every synthetic generator (seconds).
SYNTHETIC_INTERVAL_S = 300.0


class SyntheticProvider(SignalProvider):
    """Generates a signal from the named synthetic family.

    ``kind`` selects the generator namespace — ``carbon`` (region
    profiles), ``price`` (price regimes), or ``wind`` (capacity
    factors) — and ``name`` the member within it.  The metadata checksum
    hashes the generator parameters, the synthetic analogue of a dataset
    content hash: two providers with equal checksums produce equal
    samples.
    """

    def __init__(self, kind: str, name: str, days: int = 4, seed: int = 2023):
        samples, units = self._generate(kind, name, days, seed)
        param_digest = hashlib.sha256(
            f"{kind}:{name}:{days}:{seed}".encode("utf-8")
        ).hexdigest()
        super().__init__(
            ProviderMetadata(
                dataset=f"synthetic:{kind}:{name}",
                kind=kind,
                region=name if kind == "carbon" else "",
                units=units,
                checksum=param_digest,
                source="synthetic",
            )
        )
        self._samples = np.asarray(samples, dtype=float)

    @staticmethod
    def _generate(kind: str, name: str, days: int, seed: int):
        if kind == "carbon":
            from repro.carbon.traces import make_region_trace

            return make_region_trace(name, days=days, seed=seed).samples, "gCO2eq/kWh"
        if kind == "price":
            from repro.market.prices import make_price_trace

            return make_price_trace(name, days=days, seed=seed).samples, "USD/kWh"
        if kind == "wind":
            from repro.energy.wind import synthesize_wind_trace

            return synthesize_wind_trace(days=days, seed=seed).samples, "fraction"
        raise UnknownTraceNameError(
            "synthetic provider kind", kind, ("carbon", "price", "wind")
        )

    @property
    def samples(self) -> np.ndarray:
        view = self._samples.view()
        view.flags.writeable = False
        return view

    def value_at(self, time_s: float) -> float:
        if time_s < 0:
            raise ValueError(f"time must be >= 0, got {time_s}")
        index = min(int(time_s / SYNTHETIC_INTERVAL_S), len(self._samples) - 1)
        return float(self._samples[index])

    def forecast(self, time_s: float, horizon_s: float) -> np.ndarray:
        """Generated samples over the horizon (synthetic = oracle)."""
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        start = int(time_s / SYNTHETIC_INTERVAL_S)
        count = max(1, int(np.ceil(horizon_s / SYNTHETIC_INTERVAL_S)))
        indices = np.minimum(start + np.arange(count), len(self._samples) - 1)
        return self._samples[indices]
