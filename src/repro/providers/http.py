"""An HTTP-backed signal provider (co2signal-style REST shape).

Production ecovisors poll REST feeds — electricityMap/CO2signal for
carbon, ISO APIs for prices.  :class:`HTTPProvider` models that supply
side with the failure handling a real deployment needs:

- **TTL caching** in *simulation* time: a fetched value is reused until
  ``ttl_s`` of simulated time passes, matching how the services already
  quantize queries to their update interval.  No wall clocks — the
  provider is deterministic and replayable.
- **Bounded retries** with exponential backoff on timeouts, 5xx
  responses, and malformed payloads.  The backoff sleeper is injectable
  (and a no-op by default in tests), so retry logic is testable without
  real delays.
- **Stale fallback**: when every retry fails but a previous value
  exists, the provider serves the stale value and backs off for one
  TTL before re-attempting.  Only a failure with *no* prior value
  raises :class:`~repro.core.errors.ProviderError`.

Transports are pluggable.  :class:`MockTransport` scripts responses for
tests and CI — deterministic, records every request, never touches the
network.  :class:`UrllibTransport` performs real requests but refuses to
construct when ``REPRO_OFFLINE`` is set, which is how the offline CI job
guarantees no test can regress into network dependence.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ProviderError
from repro.obs.metrics import default_registry
from repro.providers.base import ProviderMetadata, SignalProvider

#: JSON path to the signal value in a co2signal-style payload.
DEFAULT_VALUE_PATH = ("data", "carbonIntensity")

_registry = default_registry()
_FETCHES = _registry.counter(
    "provider_http_fetches_total",
    "HTTP provider fetch attempts, by provider and outcome "
    "(ok/timeout/status/malformed).",
    labelnames=("provider", "outcome"),
)
_CACHE_HITS = _registry.counter(
    "provider_http_cache_hits_total",
    "Value lookups served from the TTL cache without a fetch.",
    labelnames=("provider",),
)
_STALE_SERVED = _registry.counter(
    "provider_http_stale_served_total",
    "Lookups that fell back to a stale value after fetch failure.",
    labelnames=("provider",),
)
_RETRIES = _registry.counter(
    "provider_http_retries_total",
    "Fetch retries after a transient failure.",
    labelnames=("provider",),
)


@dataclass(frozen=True)
class HTTPResponse:
    """One transport response: status code and raw body bytes."""

    status: int
    body: bytes

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8"))


class TransportTimeout(ProviderError):
    """The transport gave up waiting for a response."""


class _PermanentFetchError(ProviderError):
    """A non-transient failure (4xx): retrying cannot help."""


class MockTransport:
    """A scripted transport for tests and CI.

    ``script`` is a sequence of :class:`HTTPResponse` objects or
    exceptions; each ``get`` consumes the next entry (raising it if it
    is an exception) and the final entry repeats once the script is
    exhausted.  Every request URL is recorded in ``requests``.
    """

    def __init__(self, script: Sequence[object]):
        if not script:
            raise ValueError("mock transport needs at least one scripted entry")
        self._script: List[object] = list(script)
        self._cursor = 0
        self.requests: List[str] = []

    def get(self, url: str, timeout_s: float) -> HTTPResponse:
        self.requests.append(url)
        entry = self._script[min(self._cursor, len(self._script) - 1)]
        self._cursor += 1
        if isinstance(entry, BaseException):
            raise entry
        return entry


class UrllibTransport:
    """A real HTTP transport; refuses to exist in offline runs."""

    def __init__(self) -> None:
        if os.environ.get("REPRO_OFFLINE"):
            raise ProviderError(
                "network transports are disabled (REPRO_OFFLINE is set); "
                "use MockTransport or a historical dataset"
            )

    def get(self, url: str, timeout_s: float) -> HTTPResponse:
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(url, timeout=timeout_s) as response:
                return HTTPResponse(
                    status=response.status, body=response.read()
                )
        except urllib.error.HTTPError as exc:
            return HTTPResponse(status=exc.code, body=exc.read() or b"")
        except OSError as exc:  # URLError, socket.timeout
            raise TransportTimeout(f"GET {url} failed: {exc}") from exc


@dataclass
class _CacheEntry:
    value: float
    fetched_at_s: float


class HTTPProvider(SignalProvider):
    """Polls a REST endpoint with TTL caching and failure fallback."""

    def __init__(
        self,
        url: str,
        transport,
        name: str = "http",
        kind: str = "carbon",
        units: str = "gCO2eq/kWh",
        value_path: Tuple[str, ...] = DEFAULT_VALUE_PATH,
        ttl_s: float = 300.0,
        timeout_s: float = 10.0,
        max_retries: int = 3,
        backoff_s: float = 0.5,
        backoff_multiplier: float = 2.0,
        sleep: Callable[[float], None] = lambda _s: None,
        forecast_horizon_interval_s: float = 300.0,
    ):
        if ttl_s <= 0:
            raise ProviderError(f"ttl must be positive, got {ttl_s}")
        if max_retries < 0:
            raise ProviderError(f"max_retries must be >= 0, got {max_retries}")
        super().__init__(
            ProviderMetadata(
                dataset=url,
                kind=kind,
                units=units,
                checksum="",
                source="http",
            )
        )
        self._url = url
        self._transport = transport
        self._name = name
        self._value_path = tuple(value_path)
        self._ttl_s = float(ttl_s)
        self._timeout_s = float(timeout_s)
        self._max_retries = int(max_retries)
        self._backoff_s = float(backoff_s)
        self._backoff_multiplier = float(backoff_multiplier)
        self._sleep = sleep
        self._interval_s = float(forecast_horizon_interval_s)
        self._cache: Optional[_CacheEntry] = None

    @property
    def cached_value(self) -> Optional[float]:
        return self._cache.value if self._cache is not None else None

    def value_at(self, time_s: float) -> float:
        """The feed value at simulation time ``time_s``.

        Within ``ttl_s`` of the last fetch the cached value is returned
        without touching the transport.  Past the TTL the provider
        refetches; on total failure it serves the stale value (backing
        off one TTL) or raises if none exists.
        """
        if time_s < 0:
            raise ValueError(f"time must be >= 0, got {time_s}")
        cache = self._cache
        if cache is not None and time_s - cache.fetched_at_s < self._ttl_s:
            _CACHE_HITS.labels(provider=self._name).inc()
            return cache.value
        try:
            value = self._fetch_with_retries()
        except ProviderError:
            if cache is None:
                raise
            # Serve stale and back the fetch off for one TTL, so a dead
            # feed costs one fetch attempt per TTL, not one per tick.
            _STALE_SERVED.labels(provider=self._name).inc()
            self._cache = _CacheEntry(value=cache.value, fetched_at_s=time_s)
            return cache.value
        self._cache = _CacheEntry(value=value, fetched_at_s=time_s)
        return value

    def forecast(self, time_s: float, horizon_s: float) -> np.ndarray:
        """A persistence forecast: the current value held over the horizon.

        The co2signal shape carries no forecast series; persistence is
        the standard baseline and keeps the provider interchangeable
        with historical/synthetic providers for forecast consumers.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        count = max(1, int(np.ceil(horizon_s / self._interval_s)))
        return np.full(count, self.value_at(time_s))

    # -- fetch machinery -------------------------------------------------
    def _fetch_with_retries(self) -> float:
        delay_s = self._backoff_s
        last_error: Optional[ProviderError] = None
        for attempt in range(self._max_retries + 1):
            if attempt > 0:
                _RETRIES.labels(provider=self._name).inc()
                self._sleep(delay_s)
                delay_s *= self._backoff_multiplier
            try:
                return self._fetch_once()
            except _PermanentFetchError:
                raise
            except ProviderError as exc:
                last_error = exc
        raise ProviderError(
            f"provider {self._name!r} exhausted {self._max_retries} retries: "
            f"{last_error}"
        )

    def _fetch_once(self) -> float:
        try:
            response = self._transport.get(self._url, timeout_s=self._timeout_s)
        except TransportTimeout as exc:
            _FETCHES.labels(provider=self._name, outcome="timeout").inc()
            raise ProviderError(str(exc)) from exc
        if response.status >= 500:
            _FETCHES.labels(provider=self._name, outcome="status").inc()
            raise ProviderError(
                f"provider {self._name!r} got HTTP {response.status}"
            )
        if response.status >= 400:
            # Client errors are not transient: surface immediately with
            # the body, which carries the API's explanation.
            _FETCHES.labels(provider=self._name, outcome="status").inc()
            raise _PermanentFetchError(
                f"provider {self._name!r} got HTTP {response.status}: "
                f"{response.body[:200]!r}"
            )
        try:
            payload = response.json()
            value = payload
            for step in self._value_path:
                value = value[step]
            value = float(value)
        except (ValueError, KeyError, TypeError) as exc:
            _FETCHES.labels(provider=self._name, outcome="malformed").inc()
            raise ProviderError(
                f"provider {self._name!r} returned a malformed payload: {exc}"
            ) from exc
        _FETCHES.labels(provider=self._name, outcome="ok").inc()
        return value
