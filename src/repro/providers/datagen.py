"""Regenerate the bundled historical datasets.

The registry's datasets are CSV snapshots of the deterministic
synthesizers, frozen with checksums so provider-backed runs are
reproducible *by content*, not merely by code path: a run records the
dataset's SHA-256 in its provenance, and the registry refuses to load a
file whose bytes drifted from the recorded hash.

Run ``python -m repro.providers.datagen`` to rewrite every file under
``providers/data/`` and print the descriptor checksums to paste into
:mod:`repro.providers.registry` when a dataset is intentionally changed.
All generators are seeded (seed 2022, the datasets' vintage year) and
the CSV float format is ``repr`` round-tripping, so regeneration is
byte-identical across machines.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.carbon.traces import REGION_PROFILES, synthesize_trace
from repro.energy.solar import SolarTrace
from repro.energy.wind import synthesize_wind_trace
from repro.market.prices import realtime_price_trace

DATA_DIR = Path(__file__).resolve().parent / "data"

#: All bundled datasets cover four days at the 5-minute interval.
DATASET_DAYS = 4
DATASET_SEED = 2022
INTERVAL_S = 300
_SAMPLES_PER_HOUR = 12
_HOURS = DATASET_DAYS * 24

#: Day-ahead hourly-block price calibration ($/kWh, wholesale scale).
DAYAHEAD_BASE_USD_PER_KWH = 0.075
DAYAHEAD_DUCK_AMPLITUDE = 0.05
DAYAHEAD_DAILY_DRIFT_SIGMA = 0.008
DAYAHEAD_FLOOR_USD_PER_KWH = 0.005


def _carbon_samples(region: str) -> np.ndarray:
    trace = synthesize_trace(
        REGION_PROFILES[region], days=DATASET_DAYS, seed=DATASET_SEED
    )
    return np.asarray(trace.samples)


def _dayahead_samples() -> np.ndarray:
    """Hourly-block day-ahead prices shaped by the duck curve.

    Day-ahead markets clear one price per hour, so the trace is a step
    function: one cleared price per hour, repeated across that hour's
    twelve 5-minute samples.  Prices follow the same net-load shape as
    the real-time trace but without its noise and scarcity spikes —
    that contrast (smooth blocks vs. spiky continuum) is what the
    day-ahead/realtime scenario comparisons exercise.
    """
    from repro.carbon.traces import duck_curve

    rng = np.random.default_rng(DATASET_SEED)
    hours_of_day = (np.arange(_HOURS) + 0.5) % 24.0
    duck = DAYAHEAD_DUCK_AMPLITUDE * duck_curve(hours_of_day)
    daily_drift = np.repeat(
        rng.normal(0.0, DAYAHEAD_DAILY_DRIFT_SIGMA, size=DATASET_DAYS), 24
    )
    hourly = np.clip(
        DAYAHEAD_BASE_USD_PER_KWH + duck + daily_drift,
        DAYAHEAD_FLOOR_USD_PER_KWH,
        None,
    )
    return np.repeat(hourly, _SAMPLES_PER_HOUR)


def _realtime_samples() -> np.ndarray:
    return np.asarray(
        realtime_price_trace(days=DATASET_DAYS, seed=DATASET_SEED).samples
    )


def _wind_cf_samples() -> np.ndarray:
    return np.asarray(
        synthesize_wind_trace(days=DATASET_DAYS, seed=DATASET_SEED).samples
    )


def _solar_cf_samples() -> np.ndarray:
    # The solar synthesizer is per-minute; the bundled dataset keeps the
    # registry's uniform 5-minute interval by taking every fifth sample.
    return np.asarray(SolarTrace(days=DATASET_DAYS, seed=DATASET_SEED)._samples)[::5]


#: name -> (kind, region, units, builder)
GENERATORS = {
    "caiso-2022": ("carbon", "caiso", "gCO2eq/kWh", lambda: _carbon_samples("caiso")),
    "ontario-2022": (
        "carbon",
        "ontario",
        "gCO2eq/kWh",
        lambda: _carbon_samples("ontario"),
    ),
    "uruguay-2022": (
        "carbon",
        "uruguay",
        "gCO2eq/kWh",
        lambda: _carbon_samples("uruguay"),
    ),
    "germany-2022": (
        "carbon",
        "germany",
        "gCO2eq/kWh",
        lambda: _carbon_samples("germany"),
    ),
    "caiso-dayahead-2022": ("price", "caiso", "USD/kWh", _dayahead_samples),
    "caiso-realtime-2022": ("price", "caiso", "USD/kWh", _realtime_samples),
    "wind-cf-2022": ("wind-cf", "caiso", "fraction", _wind_cf_samples),
    "solar-cf-2022": ("solar-cf", "caiso", "fraction", _solar_cf_samples),
}


def render_csv(
    name: str, kind: str, region: str, units: str, samples: np.ndarray
) -> str:
    """The canonical CSV text for a dataset (the bytes that get hashed)."""
    lines = [
        f"# dataset: {name}",
        f"# kind: {kind}",
        f"# region: {region}",
        f"# units: {units}",
        f"# interval_s: {INTERVAL_S}",
        "time_s,value",
    ]
    for i, value in enumerate(samples.tolist()):
        lines.append(f"{i * INTERVAL_S},{value!r}")
    return "\n".join(lines) + "\n"


def regenerate(data_dir: Path = DATA_DIR) -> dict:
    """Rewrite every dataset file; return name -> sha256 of the bytes."""
    data_dir.mkdir(parents=True, exist_ok=True)
    checksums = {}
    for name, (kind, region, units, builder) in GENERATORS.items():
        text = render_csv(name, kind, region, units, builder())
        payload = text.encode("utf-8")
        (data_dir / f"{name}.csv").write_bytes(payload)
        checksums[name] = hashlib.sha256(payload).hexdigest()
    return checksums


def main() -> None:
    checksums = regenerate()
    print("# paste into repro/providers/registry.py:")
    for name, digest in sorted(checksums.items()):
        print(f'    "{name}": "{digest}",')


if __name__ == "__main__":
    main()
