"""Wind plant: capacity-factor traces through a rated-power conversion.

The paper's prototype emulates only solar, but its virtual energy system
abstraction is generation-agnostic: any local renewable source the
ecovisor can meter multiplexes the same way (Section 3.3).  This module
adds the wind analogue of :mod:`repro.energy.solar` — a deterministic
capacity-factor synthesizer plus a conversion model sized by the
turbine's rated power — enabling the hybrid wind+solar plants the
``regional`` scenario family sweeps.

Wind's statistical structure is deliberately the opposite of solar's:
output is nonzero around the clock, peaks at night (the nocturnal jet
CAISO and ERCOT both see), and is dominated by multi-hour weather
systems rather than a diurnal bell — which is exactly why hybrid plants
smooth renewable supply.
"""

from __future__ import annotations

import math
import zlib
from typing import Sequence

import numpy as np

from repro.carbon.traces import ar1
from repro.core.config import WindConfig
from repro.core.errors import TraceError
from repro.core.units import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.energy.source import PowerSource

#: Native resolution of wind capacity-factor traces (seconds per sample).
WIND_SAMPLE_INTERVAL_S = 300.0
_SAMPLES_PER_DAY = int(SECONDS_PER_DAY / WIND_SAMPLE_INTERVAL_S)


class WindCapacityTrace:
    """A capacity-factor time series in [0, 1] sampled every 5 minutes."""

    def __init__(self, samples: Sequence[float]):
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or len(arr) == 0:
            raise TraceError("wind trace needs a non-empty 1-D sample array")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise TraceError("capacity factors must lie in [0, 1]")
        self._samples = arr

    @property
    def samples(self) -> np.ndarray:
        view = self._samples.view()
        view.flags.writeable = False
        return view

    @property
    def duration_s(self) -> float:
        return len(self._samples) * WIND_SAMPLE_INTERVAL_S

    def capacity_factor_at(self, time_s: float) -> float:
        """Capacity factor in [0, 1] at ``time_s``; clamps beyond the end."""
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        index = min(int(time_s / WIND_SAMPLE_INTERVAL_S), len(self._samples) - 1)
        return float(self._samples[index])

    def mean(self) -> float:
        """Mean capacity factor over the whole trace."""
        return float(self._samples.mean())


def synthesize_wind_trace(
    days: int,
    seed: int = 2023,
    mean_cf: float = 0.38,
    diurnal_amplitude: float = 0.10,
    weather_sigma: float = 0.14,
    weather_persistence: float = 0.985,
    gust_sigma: float = 0.03,
) -> WindCapacityTrace:
    """A deterministic wind capacity-factor trace.

    Three components: a mild diurnal term peaking around 02:00 (the
    nocturnal jet, anti-correlated with solar), a highly persistent AR(1)
    weather process (multi-hour fronts — the dominant term), and fast
    gust noise.  The seed mixes in CRC32 of ``"wind"`` so carbon, price,
    and wind traces built from one scenario seed stay decorrelated.
    """
    if days <= 0:
        raise TraceError(f"trace must cover at least one day, got {days}")
    rng = np.random.default_rng(seed ^ (zlib.crc32(b"wind") & 0xFFFF))
    n = days * _SAMPLES_PER_DAY
    hours = (np.arange(n) * WIND_SAMPLE_INTERVAL_S / SECONDS_PER_HOUR) % 24.0
    diurnal = diurnal_amplitude * np.cos(2 * math.pi * (hours - 2.0) / 24.0)
    weather = ar1(rng, n, weather_sigma, weather_persistence)
    gusts = ar1(rng, n, gust_sigma, 0.5)
    samples = np.clip(mean_cf + diurnal + weather + gusts, 0.0, 0.95)
    return WindCapacityTrace(samples)


class WindPlant(PowerSource):
    """Converts a capacity-factor trace into plant output power.

    The wind counterpart of :class:`~repro.energy.solar.SolarArrayEmulator`:
    output is ``capacity_factor x rated_power x scale``, and ``with_scale``
    reuses the trace at a different plant size, which is how hybrid
    scenarios sweep 'available renewable power'.
    """

    def __init__(self, config: WindConfig | None = None, trace=None):
        super().__init__("wind")
        self._config = config or WindConfig()
        self._config.validate()
        self._trace = trace if trace is not None else synthesize_wind_trace(days=4)

    @property
    def config(self) -> WindConfig:
        return self._config

    @property
    def scale(self) -> float:
        return self._config.scale

    def with_scale(self, scale: float) -> "WindPlant":
        """A new plant sharing this trace but scaled by ``scale``."""
        scaled = WindConfig(rated_power_w=self._config.rated_power_w, scale=scale)
        return WindPlant(scaled, self._trace)

    def available_power_w(self, time_s: float) -> float:
        """Plant output (W) at ``time_s``: trace x rated power x scale."""
        cf = self._trace.capacity_factor_at(time_s)
        return cf * self._config.rated_power_w * self._config.scale

    def deliver(self, power_w_value: float, duration_s: float) -> None:
        """Meter ``power_w_value`` watts of wind production for a tick."""
        self._meter(power_w_value * duration_s / SECONDS_PER_HOUR)
