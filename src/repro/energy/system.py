"""The combined physical energy system.

Bundles the three power sources of the paper's Background section — grid,
battery, and solar — behind one object with the monitoring surface the
ecovisor multiplexes (Section 3.3).  Sites need not have all three: a
simple datacenter may be grid-only, an edge site may be grid-less; the
optional constructor arguments model both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.energy.battery import Battery
from repro.energy.grid import GridConnection
from repro.energy.solar import SolarArrayEmulator


@dataclass(frozen=True)
class EnergySystemSnapshot:
    """Point-in-time view of the plant used by telemetry and tests."""

    time_s: float
    solar_power_w: float
    battery_level_wh: float
    battery_soc_fraction: float
    grid_energy_wh: float


class PhysicalEnergySystem:
    """Grid + battery + solar behind the controller APIs the ecovisor uses."""

    def __init__(
        self,
        grid: GridConnection | None = None,
        battery: Battery | None = None,
        solar: SolarArrayEmulator | None = None,
    ):
        if grid is None and battery is None and solar is None:
            raise ConfigurationError(
                "an energy system needs at least one power source"
            )
        self._grid = grid
        self._battery = battery
        self._solar = solar

    @property
    def grid(self) -> GridConnection | None:
        return self._grid

    @property
    def battery(self) -> Battery | None:
        return self._battery

    @property
    def solar(self) -> SolarArrayEmulator | None:
        return self._solar

    @property
    def has_grid(self) -> bool:
        return self._grid is not None

    @property
    def has_battery(self) -> bool:
        return self._battery is not None

    @property
    def has_solar(self) -> bool:
        return self._solar is not None

    def solar_power_w(self, time_s: float) -> float:
        """Physical solar array output at ``time_s`` (zero without an array)."""
        if self._solar is None:
            return 0.0
        return self._solar.available_power_w(time_s)

    def snapshot(self, time_s: float) -> EnergySystemSnapshot:
        """Capture the plant state for telemetry."""
        return EnergySystemSnapshot(
            time_s=time_s,
            solar_power_w=self.solar_power_w(time_s),
            battery_level_wh=self._battery.level_wh if self._battery else 0.0,
            battery_soc_fraction=(
                self._battery.soc_fraction if self._battery else 0.0
            ),
            grid_energy_wh=self._grid.total_energy_wh if self._grid else 0.0,
        )

    def __repr__(self) -> str:
        parts = []
        if self._grid is not None:
            parts.append("grid")
        if self._battery is not None:
            parts.append("battery")
        if self._solar is not None:
            parts.append("solar")
        return f"PhysicalEnergySystem({'+'.join(parts)})"
