"""The combined physical energy system.

Bundles the power sources of the paper's Background section — grid,
battery, and local renewable generation — behind one object with the
monitoring surface the ecovisor multiplexes (Section 3.3).  Sites need
not have all of them: a simple datacenter may be grid-only, an edge site
may be grid-less; the optional constructor arguments model both.  Local
generation may be solar, wind, or a hybrid of the two: the ecovisor
consumes the *combined* renewable output (``renewable_power_w``), so the
virtualized "solar" signal applications see is really "local renewable
generation" and wind-backed plants need no policy changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.energy.battery import Battery
from repro.energy.grid import GridConnection
from repro.energy.solar import SolarArrayEmulator
from repro.energy.wind import WindPlant


@dataclass(frozen=True)
class EnergySystemSnapshot:
    """Point-in-time view of the plant used by telemetry and tests."""

    time_s: float
    solar_power_w: float
    battery_level_wh: float
    battery_soc_fraction: float
    grid_energy_wh: float
    wind_power_w: float = 0.0


class PhysicalEnergySystem:
    """Grid + battery + renewables behind the controller APIs the ecovisor uses."""

    def __init__(
        self,
        grid: GridConnection | None = None,
        battery: Battery | None = None,
        solar: SolarArrayEmulator | None = None,
        wind: WindPlant | None = None,
    ):
        if grid is None and battery is None and solar is None and wind is None:
            raise ConfigurationError(
                "an energy system needs at least one power source"
            )
        self._grid = grid
        self._battery = battery
        self._solar = solar
        self._wind = wind

    @property
    def grid(self) -> GridConnection | None:
        return self._grid

    @property
    def battery(self) -> Battery | None:
        return self._battery

    @property
    def solar(self) -> SolarArrayEmulator | None:
        return self._solar

    @property
    def wind(self) -> WindPlant | None:
        return self._wind

    @property
    def has_grid(self) -> bool:
        return self._grid is not None

    @property
    def has_battery(self) -> bool:
        return self._battery is not None

    @property
    def has_solar(self) -> bool:
        return self._solar is not None

    @property
    def has_wind(self) -> bool:
        return self._wind is not None

    @property
    def has_renewable(self) -> bool:
        """Whether any local generation (solar or wind) is attached."""
        return self._solar is not None or self._wind is not None

    def solar_power_w(self, time_s: float) -> float:
        """Physical solar array output at ``time_s`` (zero without an array)."""
        if self._solar is None:
            return 0.0
        return self._solar.available_power_w(time_s)

    def wind_power_w(self, time_s: float) -> float:
        """Physical wind plant output at ``time_s`` (zero without a plant)."""
        if self._wind is None:
            return 0.0
        return self._wind.available_power_w(time_s)

    def renewable_power_w(self, time_s: float) -> float:
        """Combined local generation at ``time_s`` — what the ecovisor samples.

        For a solar-only plant this equals :meth:`solar_power_w` exactly
        (the zero wind term is never added), preserving bit-exact
        behavior for every pre-wind configuration.
        """
        if self._wind is None:
            return self.solar_power_w(time_s)
        if self._solar is None:
            return self._wind.available_power_w(time_s)
        return self._solar.available_power_w(time_s) + self._wind.available_power_w(
            time_s
        )

    def deliver_renewable(
        self, power_w: float, duration_s: float, time_s: float
    ) -> None:
        """Meter consumed renewable power onto the generating sources.

        Solar-only plants meter everything on the solar array (the
        pre-wind behavior, bit for bit).  Hybrid plants split pro-rata to
        each source's available power at ``time_s``, so per-source
        cumulative meters stay physically meaningful; when both read
        zero (consuming buffered output after generation died) the split
        falls back to 50/50.
        """
        if self._wind is None:
            if self._solar is not None:
                self._solar.deliver(power_w, duration_s)
            return
        if self._solar is None:
            self._wind.deliver(power_w, duration_s)
            return
        solar_avail = self._solar.available_power_w(time_s)
        total_avail = solar_avail + self._wind.available_power_w(time_s)
        solar_share = solar_avail / total_avail if total_avail > 0 else 0.5
        self._solar.deliver(power_w * solar_share, duration_s)
        self._wind.deliver(power_w * (1.0 - solar_share), duration_s)

    def snapshot(self, time_s: float) -> EnergySystemSnapshot:
        """Capture the plant state for telemetry."""
        return EnergySystemSnapshot(
            time_s=time_s,
            solar_power_w=self.solar_power_w(time_s),
            battery_level_wh=self._battery.level_wh if self._battery else 0.0,
            battery_soc_fraction=(
                self._battery.soc_fraction if self._battery else 0.0
            ),
            grid_energy_wh=self._grid.total_energy_wh if self._grid else 0.0,
            wind_power_w=self.wind_power_w(time_s),
        )

    def __repr__(self) -> str:
        parts = []
        if self._grid is not None:
            parts.append("grid")
        if self._battery is not None:
            parts.append("battery")
        if self._solar is not None:
            parts.append("solar")
        if self._wind is not None:
            parts.append("wind")
        return f"PhysicalEnergySystem({'+'.join(parts)})"
