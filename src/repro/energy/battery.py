"""Physical battery model.

Models the paper's battery bank (Section 4): lithium-ion cells behind a
smart charge controller that (i) treats a 30% state-of-charge as "empty"
to protect cycle life, (ii) limits charging to 0.25C, and (iii) limits
discharge to 1C.  Charging and discharging each incur an efficiency loss,
so round-trip efficiency is their product.

The model is energy-based (no voltage/current electrochemistry): the
ecovisor's control surface is the charge controller's software API, which
deals in power setpoints and state-of-charge queries, exactly what this
class exposes.
"""

from __future__ import annotations

from repro.core.config import BatteryConfig
from repro.core.units import clamp, energy_wh, power_w


class Battery:
    """A battery bank with SoC tracking, rate limits, and a DoD floor.

    Internally the state of charge is an absolute energy level in Wh
    between 0 and ``capacity_wh``.  The *usable* level is measured from the
    empty floor: ``usable_wh == 0`` means the controller reports empty even
    though 30% of nameplate charge remains.
    """

    def __init__(self, config: BatteryConfig | None = None):
        self._config = config or BatteryConfig()
        self._config.validate()
        self._level_wh = self._config.initial_soc_fraction * self._config.capacity_wh
        self._total_charged_wh = 0.0
        self._total_discharged_wh = 0.0
        self._cycle_throughput_wh = 0.0

    @property
    def config(self) -> BatteryConfig:
        return self._config

    @property
    def capacity_wh(self) -> float:
        """Nameplate capacity."""
        return self._config.capacity_wh

    @property
    def floor_wh(self) -> float:
        """Absolute level at which the controller reports empty."""
        return self._config.empty_soc_fraction * self._config.capacity_wh

    @property
    def level_wh(self) -> float:
        """Absolute stored energy (includes the protected floor)."""
        return self._level_wh

    @property
    def usable_wh(self) -> float:
        """Energy available above the empty floor."""
        return max(0.0, self._level_wh - self.floor_wh)

    @property
    def usable_capacity_wh(self) -> float:
        """Maximum usable energy (capacity above the floor)."""
        return self._config.usable_capacity_wh

    @property
    def headroom_wh(self) -> float:
        """Energy that can still be stored before the battery is full."""
        return max(0.0, self._config.capacity_wh - self._level_wh)

    @property
    def soc_fraction(self) -> float:
        """State of charge as a fraction of nameplate capacity."""
        return self._level_wh / self._config.capacity_wh

    @property
    def is_full(self) -> bool:
        return self.headroom_wh <= 1e-9

    @property
    def is_empty(self) -> bool:
        """True when the controller would report empty (30% SoC floor)."""
        return self.usable_wh <= 1e-9

    @property
    def max_charge_power_w(self) -> float:
        """Controller-enforced charging limit (0.25C by default)."""
        return self._config.max_charge_power_w

    @property
    def max_discharge_power_w(self) -> float:
        """Controller-enforced discharge limit (1C by default)."""
        return self._config.max_discharge_power_w

    @property
    def total_charged_wh(self) -> float:
        """Cumulative input energy accepted at the terminals."""
        return self._total_charged_wh

    @property
    def total_discharged_wh(self) -> float:
        """Cumulative output energy delivered at the terminals."""
        return self._total_discharged_wh

    @property
    def equivalent_full_cycles(self) -> float:
        """Cycle count estimated from total throughput (for wear studies)."""
        return self._cycle_throughput_wh / (2.0 * self._config.capacity_wh)

    def charge(self, requested_power_w: float, duration_s: float) -> float:
        """Charge at up to ``requested_power_w`` for ``duration_s`` seconds.

        Returns the power actually accepted at the terminals, which may be
        lower due to the C-rate limit or limited headroom.  Stored energy
        is the accepted energy times the charge efficiency.
        """
        if requested_power_w < 0:
            raise ValueError(f"charge power must be >= 0, got {requested_power_w}")
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        accepted_w = min(requested_power_w, self.max_charge_power_w)
        input_wh = energy_wh(accepted_w, duration_s)
        storable_wh = self.headroom_wh / self._config.charge_efficiency
        input_wh = min(input_wh, storable_wh)
        self._level_wh = clamp(
            self._level_wh + input_wh * self._config.charge_efficiency,
            0.0,
            self._config.capacity_wh,
        )
        self._total_charged_wh += input_wh
        self._cycle_throughput_wh += input_wh
        return power_w(input_wh, duration_s)

    def discharge(self, requested_power_w: float, duration_s: float) -> float:
        """Discharge at up to ``requested_power_w`` for ``duration_s`` seconds.

        Returns the power actually delivered at the terminals, limited by
        the C-rate cap and the usable energy above the empty floor.
        Delivering E at the terminals drains E / discharge_efficiency from
        the store.
        """
        if requested_power_w < 0:
            raise ValueError(f"discharge power must be >= 0, got {requested_power_w}")
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        deliverable_w = min(requested_power_w, self.max_discharge_power_w)
        output_wh = energy_wh(deliverable_w, duration_s)
        max_output_wh = self.usable_wh * self._config.discharge_efficiency
        output_wh = min(output_wh, max_output_wh)
        drained_wh = output_wh / self._config.discharge_efficiency
        self._level_wh = clamp(
            self._level_wh - drained_wh, 0.0, self._config.capacity_wh
        )
        self._total_discharged_wh += output_wh
        self._cycle_throughput_wh += output_wh
        return power_w(output_wh, duration_s)

    def set_level_wh(self, level_wh: float) -> None:
        """Set the absolute stored energy, clamped to [0, capacity].

        A controller operation, not an energy flow: the throughput and
        cycle meters are untouched.  Used when a virtual battery is
        rescaled to a new share of the physical bank — the rescaled
        model inherits the stored energy the share can hold.
        """
        if level_wh < 0:
            raise ValueError(f"level must be >= 0, got {level_wh}")
        self._level_wh = clamp(level_wh, 0.0, self._config.capacity_wh)

    def max_discharge_energy_wh(self, duration_s: float) -> float:
        """Most terminal energy deliverable over a window of ``duration_s``."""
        rate_limited = energy_wh(self.max_discharge_power_w, duration_s)
        stock_limited = self.usable_wh * self._config.discharge_efficiency
        return min(rate_limited, stock_limited)

    def max_charge_energy_wh(self, duration_s: float) -> float:
        """Most terminal energy acceptable over a window of ``duration_s``."""
        rate_limited = energy_wh(self.max_charge_power_w, duration_s)
        headroom_limited = self.headroom_wh / self._config.charge_efficiency
        return min(rate_limited, headroom_limited)

    def __repr__(self) -> str:
        return (
            f"Battery(soc={self.soc_fraction:.1%}, "
            f"usable={self.usable_wh:.1f}Wh/{self.usable_capacity_wh:.1f}Wh)"
        )
