"""Physical energy system substrate: grid, battery, and solar models."""

from repro.energy.battery import Battery
from repro.energy.grid import GridConnection
from repro.energy.solar import (
    ConstantSolarTrace,
    SolarArrayEmulator,
    SolarTrace,
    TabularSolarTrace,
)
from repro.energy.source import PowerSource
from repro.energy.system import EnergySystemSnapshot, PhysicalEnergySystem

__all__ = [
    "Battery",
    "ConstantSolarTrace",
    "EnergySystemSnapshot",
    "GridConnection",
    "PhysicalEnergySystem",
    "PowerSource",
    "SolarArrayEmulator",
    "SolarTrace",
    "TabularSolarTrace",
]
