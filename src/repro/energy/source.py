"""Abstract base for physical power sources.

A datacenter's physical energy system connects to up to three power
sources — the electric grid, local batteries, and local renewable
generation (paper Section 2, 'Background').  Each source exposes the small
monitoring surface the ecovisor needs: instantaneous power and cumulative
metered energy.
"""

from __future__ import annotations

import abc


class PowerSource(abc.ABC):
    """A source the energy system can draw from (or, for solar, must take)."""

    def __init__(self, name: str):
        self._name = name
        self._total_energy_wh = 0.0

    @property
    def name(self) -> str:
        """Human-readable identifier for telemetry streams."""
        return self._name

    @property
    def total_energy_wh(self) -> float:
        """Cumulative energy delivered by this source since construction."""
        return self._total_energy_wh

    def _meter(self, energy_wh: float) -> None:
        """Record delivered energy on the source's cumulative meter."""
        self._total_energy_wh += energy_wh

    @abc.abstractmethod
    def available_power_w(self, time_s: float) -> float:
        """Power (W) this source can supply at simulation time ``time_s``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self._name!r})"
