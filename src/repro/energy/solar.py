"""Solar array emulator.

The paper's prototype uses a Chroma 62020H-150S solar array emulator that
replays solar radiation traces through a PV module's IV-curve response so
experiments are repeatable (Section 4, 'Solar Power').  This module is the
software equivalent: a deterministic, seeded irradiance synthesizer plus a
conversion model sized by the array's peak power.

The synthesized trace has the two features the evaluation depends on:
a clear-sky diurnal bell (zero at night) and stochastic cloud attenuation
that makes output volatile within a day (Figure 8a, Figure 10a).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.config import SolarConfig
from repro.core.errors import TraceError
from repro.core.units import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.energy.source import PowerSource

_SAMPLES_PER_HOUR = 60  # one-minute native resolution


class SolarTrace:
    """A deterministic irradiance trace in [0, 1] sampled once per minute.

    The clear-sky envelope is a sine bell between sunrise and sunset,
    raised to an exponent that narrows the shoulders.  Cloud cover is a
    bounded random walk smoothed over ~30 minutes, reproducing the partly
    cloudy days visible in the paper's solar plots.
    """

    def __init__(
        self,
        days: int,
        seed: int = 2023,
        sunrise_hour: float = 6.0,
        sunset_hour: float = 19.0,
        cloudiness: float = 0.35,
    ):
        if days <= 0:
            raise TraceError(f"trace must cover at least one day, got {days}")
        if not 5.0 <= sunrise_hour < sunset_hour <= 22.0:
            raise TraceError(
                f"implausible sunrise/sunset: {sunrise_hour}/{sunset_hour}"
            )
        if not 0.0 <= cloudiness <= 1.0:
            raise TraceError(f"cloudiness must be in [0, 1], got {cloudiness}")
        self._days = days
        self._sunrise_hour = sunrise_hour
        self._sunset_hour = sunset_hour
        self._samples = self._synthesize(days, seed, cloudiness)

    def _synthesize(self, days: int, seed: int, cloudiness: float) -> np.ndarray:
        rng = np.random.default_rng(seed)
        n = days * 24 * _SAMPLES_PER_HOUR
        hours = np.arange(n) / _SAMPLES_PER_HOUR
        hour_of_day = hours % 24.0
        day_length = self._sunset_hour - self._sunrise_hour
        phase = (hour_of_day - self._sunrise_hour) / day_length
        clear_sky = np.where(
            (phase > 0.0) & (phase < 1.0),
            np.sin(np.clip(phase, 0.0, 1.0) * math.pi) ** 1.2,
            0.0,
        )
        # Cloud attenuation: bounded random walk, smoothed, per-day weather.
        walk = rng.normal(0.0, 0.08, size=n).cumsum()
        walk -= np.linspace(walk[0], walk[-1], n)  # detrend, keeps it bounded
        kernel = np.ones(30) / 30.0
        smooth = np.convolve(walk, kernel, mode="same")
        if smooth.std() > 0:
            smooth = smooth / smooth.std()
        attenuation = 1.0 - cloudiness * (0.5 + 0.5 * np.tanh(smooth))
        daily_weather = rng.uniform(1.0 - cloudiness * 0.5, 1.0, size=days)
        weather = np.repeat(daily_weather, 24 * _SAMPLES_PER_HOUR)
        return np.clip(clear_sky * attenuation * weather, 0.0, 1.0)

    @property
    def duration_s(self) -> float:
        return self._days * SECONDS_PER_DAY

    @property
    def samples(self) -> np.ndarray:
        """Read-only view of the per-minute irradiance samples."""
        view = self._samples.view()
        view.flags.writeable = False
        return view

    def irradiance_at(self, time_s: float) -> float:
        """Irradiance fraction in [0, 1] at ``time_s`` (clamped to range)."""
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        index = int(time_s / SECONDS_PER_HOUR * _SAMPLES_PER_HOUR)
        index = min(index, len(self._samples) - 1)
        return float(self._samples[index])


class ConstantSolarTrace:
    """A flat irradiance trace, convenient for tests and calibration."""

    def __init__(self, irradiance: float = 1.0):
        if not 0.0 <= irradiance <= 1.0:
            raise TraceError(f"irradiance must be in [0, 1], got {irradiance}")
        self._irradiance = irradiance

    def irradiance_at(self, time_s: float) -> float:
        return self._irradiance


class TabularSolarTrace:
    """An irradiance trace backed by explicit per-minute samples."""

    def __init__(self, samples: Sequence[float]):
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or len(arr) == 0:
            raise TraceError("samples must be a non-empty 1-D sequence")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise TraceError("irradiance samples must lie in [0, 1]")
        self._samples = arr

    def irradiance_at(self, time_s: float) -> float:
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        index = int(time_s / SECONDS_PER_HOUR * _SAMPLES_PER_HOUR)
        index = min(index, len(self._samples) - 1)
        return float(self._samples[index])


class SolarArrayEmulator(PowerSource):
    """Converts an irradiance trace into array output power.

    Like the Chroma emulator, output can be scaled (``config.scale``)
    without touching the trace, which is how the Figure 10(c)/11 sweeps
    vary 'available renewable power' from 10% to 200%.
    """

    def __init__(self, config: SolarConfig | None = None, trace=None):
        super().__init__("solar")
        self._config = config or SolarConfig()
        self._config.validate()
        self._trace = trace if trace is not None else SolarTrace(days=4)

    @property
    def config(self) -> SolarConfig:
        return self._config

    @property
    def scale(self) -> float:
        return self._config.scale

    def with_scale(self, scale: float) -> "SolarArrayEmulator":
        """A new emulator sharing this trace but scaled by ``scale``."""
        scaled = SolarConfig(
            peak_power_w=self._config.peak_power_w,
            scale=scale,
            panel_efficiency_derating=self._config.panel_efficiency_derating,
        )
        return SolarArrayEmulator(scaled, self._trace)

    def available_power_w(self, time_s: float) -> float:
        """Array output (W) at ``time_s``: trace x peak x derating x scale."""
        irradiance = self._trace.irradiance_at(time_s)
        return (
            irradiance
            * self._config.peak_power_w
            * self._config.panel_efficiency_derating
            * self._config.scale
        )

    def deliver(self, power_w_value: float, duration_s: float) -> None:
        """Meter ``power_w_value`` watts of solar production for a tick."""
        self._meter(power_w_value * duration_s / SECONDS_PER_HOUR)
