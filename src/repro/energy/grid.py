"""Grid connection model.

From the ecovisor's perspective the grid has exactly two observable
properties: it supplies (approximately) unlimited power on demand, and
that power carries a time-varying carbon intensity reported by a carbon
information service.  This class models the first; the carbon signal
lives in :mod:`repro.carbon`.

The paper's prototype validates software power caps against a metered
programmable supply; the ``draw`` method plays that role here by metering
every watt-hour taken from the grid.
"""

from __future__ import annotations

from repro.core.config import GridConfig
from repro.core.units import energy_wh, power_w
from repro.energy.source import PowerSource


class GridConnection(PowerSource):
    """A metered grid feed with an optional capacity limit."""

    def __init__(self, config: GridConfig | None = None):
        super().__init__("grid")
        self._config = config or GridConfig()
        self._config.validate()
        self._exported_wh = 0.0

    @property
    def config(self) -> GridConfig:
        return self._config

    @property
    def max_power_w(self) -> float:
        return self._config.max_power_w

    @property
    def exported_wh(self) -> float:
        """Energy net-metered back to the grid (zero unless enabled)."""
        return self._exported_wh

    def available_power_w(self, time_s: float) -> float:
        """The grid supplies up to its interconnect limit at any time."""
        return self._config.max_power_w

    def draw(self, requested_power_w: float, duration_s: float) -> float:
        """Draw ``requested_power_w`` for ``duration_s``; returns power granted.

        The grid only refuses power beyond the interconnect limit.
        """
        if requested_power_w < 0:
            raise ValueError(f"grid draw must be >= 0, got {requested_power_w}")
        granted_w = min(requested_power_w, self._config.max_power_w)
        self._meter(energy_wh(granted_w, duration_s))
        return granted_w

    def export(self, power_w_value: float, duration_s: float) -> float:
        """Net-meter excess power back to the grid, if the config allows.

        Returns the power actually exported (zero when net metering is
        disabled, matching the paper's prototype which curtails instead).
        """
        if power_w_value < 0:
            raise ValueError(f"export power must be >= 0, got {power_w_value}")
        if not self._config.net_metering:
            return 0.0
        self._exported_wh += energy_wh(power_w_value, duration_s)
        return power_w_value

    def average_draw_w(self, duration_s: float) -> float:
        """Average power implied by the cumulative meter over a duration."""
        return power_w(self.total_energy_wh, duration_s)
