"""Typed Python client for the ecovisor's versioned REST surface.

:class:`EcovisorClient` mirrors :class:`~repro.core.api.EcovisorAPI`
one-to-one over the Router transport: every Table 1 call (plus the
container-management surface) has a method with the same name, the same
parameters, and — pinned by the parity tests — the same return values as
the in-process API, with :class:`~repro.core.state.EnergyState` and the
signal dataclasses reconstructed losslessly from the wire format.  The
one in-process-only call is ``register_tick``: an upcall cannot cross
the transport, so external controllers poll :meth:`EcovisorClient.events`
(the cursor-paged journal feed) instead.

:class:`EcovisorAdminClient` drives the v1.1 control plane: dynamic
admission, share rebalancing, and eviction.

A *transport* is anything with the in-process server's request shape::

    response = transport.request(method, path, body)   # -> Response-like

:class:`~repro.rest.server.EcovisorRestServer` is the canonical
transport (same process, no sockets); an HTTP adapter only needs to
return an object with ``status``, ``body``, and ``headers``.

Error mapping inverts the router's: 404 raises
``UnknownApplicationError``/``UnknownContainerError``, 403 raises
``AuthorizationError``, 400 raises ``ConfigurationError`` — so client
code can catch the same exception types as in-process code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.core.errors import (
    AuthorizationError,
    ConfigurationError,
    EcovisorError,
    UnknownApplicationError,
    UnknownContainerError,
)
from repro.core.events import Event, event_from_dict
from repro.core.journal import JournalPage
from repro.core.state import EnergyState

#: SSE control-event names the gateway interleaves with journal events;
#: :meth:`EcovisorClient.stream_events` filters them out unless ``raw``.
STREAM_CONTROL_EVENTS = frozenset(
    {"stream_open", "journal_dropped", "queue_dropped", "stream_end"}
)


class TransportError(EcovisorError):
    """The transport returned an error status the client cannot map."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


@dataclass(frozen=True)
class ContainerInfo:
    """Wire-level view of one container (the REST listing shape)."""

    id: str
    cores: float
    role: str
    power_cap_w: Optional[float] = None


@dataclass(frozen=True)
class AppShare:
    """One application's share as reported by the admin namespace."""

    name: str
    solar_fraction: float
    battery_fraction: float
    grid_power_w: float


#: The SDK's event page *is* the core journal page — one type on both
#: sides of the transport, so the wire format cannot drift from it.
EventPage = JournalPage


def _raise_for_status(status: int, message: str) -> None:
    if status == 404:
        # The router's 404 bodies are the errors' own messages, whose
        # prefixes discriminate exactly (an app *named* "container"
        # must not map onto UnknownContainerError).
        if message.startswith("unknown container:"):
            # The error repr-quotes the id; strip the quotes.
            raise UnknownContainerError(message.split(": ", 1)[-1].strip("'"))
        raise UnknownApplicationError(message.split(": ", 1)[-1].strip("'"))
    if status == 403:
        raise AuthorizationError(message)
    if status == 400:
        raise ConfigurationError(message)
    raise TransportError(status, message)


class _ClientBase:
    """Shared request plumbing for the app and admin clients."""

    def __init__(self, transport: Any):
        self._transport = transport

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Any:
        response = self._transport.request(method, path, body)
        if 200 <= response.status < 300:
            return response.body
        error = ""
        if isinstance(response.body, dict):
            error = str(response.body.get("error", ""))
        _raise_for_status(response.status, error)

    # ------------------------------------------------------------------
    # Observability (shared by app and admin clients)
    # ------------------------------------------------------------------
    def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self._request("GET", "/v1/metrics")

    def tick_profile(self, last: Optional[int] = None) -> Dict[str, Any]:
        """The tick profiler's ring buffer (``last`` most recent ticks)."""
        path = "/v1/metrics/ticks"
        if last is not None:
            path += f"?last={last}"
        return self._request("GET", path)


class EcovisorClient(_ClientBase):
    """Per-application SDK handle, one-to-one with ``EcovisorAPI``."""

    def __init__(self, transport: Any, app_name: str):
        super().__init__(transport)
        self._app_name = app_name
        self._base = f"/v1/apps/{app_name}"

    @property
    def app_name(self) -> str:
        return self._app_name

    # ------------------------------------------------------------------
    # Snapshot observation (API v1)
    # ------------------------------------------------------------------
    def state(self) -> EnergyState:
        """The application's per-tick snapshot, one round-trip."""
        return EnergyState.from_dict(self._request("GET", f"{self._base}/state"))

    # ------------------------------------------------------------------
    # Event feed (the transport-side counterpart of ``api.signals``)
    # ------------------------------------------------------------------
    def events(self, cursor: int = 0, limit: Optional[int] = None) -> EventPage:
        """One cursor-paged read of the application's journaled signals.

        Pass the returned ``next_cursor`` on the next poll; ``dropped``
        counts events lost to the bounded journal before the cursor.
        """
        path = f"{self._base}/events?cursor={cursor}"
        if limit is not None:
            path += f"&limit={limit}"
        payload = self._request("GET", path)
        return EventPage(
            app_name=payload["app_name"],
            events=tuple(event_from_dict(e) for e in payload["events"]),
            next_cursor=payload["next_cursor"],
            dropped=payload["dropped"],
            journal_dropped=payload.get("journal_dropped", 0),
        )

    def iter_events(self, cursor: int = 0) -> Iterator[Event]:
        """Yield all currently journaled events from ``cursor`` onward."""
        page = self.events(cursor=cursor)
        yield from page.events

    def stream_events(
        self,
        cursor: int = 0,
        raw: bool = False,
        max_events: Optional[int] = None,
    ) -> Iterator[Any]:
        """Live-stream the application's journaled signals over SSE.

        Requires a streaming transport —
        :class:`repro.client.http.HttpTransport` against a running
        gateway (``repro serve``); the in-process transport raises.
        Yields :class:`Event` objects exactly as :meth:`iter_events`
        would reconstruct them from cursor polls (the stream-parity
        test pins the wire bytes identical); with ``raw=True`` yields
        every :class:`~repro.client.http.StreamFrame` instead,
        control events (``stream_open``, ``journal_dropped``,
        ``queue_dropped``, ``stream_end``) included.  Returns when the
        server ends the stream (eviction) or after ``max_events``
        yielded items.
        """
        stream = getattr(self._transport, "stream", None)
        if stream is None:
            raise EcovisorError(
                "transport does not support streaming; connect an "
                "HttpTransport to a running gateway (`repro serve`)"
            )
        frames = stream(f"{self._base}/events/stream?cursor={cursor}")
        yielded = 0
        try:
            for frame in frames:
                terminal = frame.event == "stream_end"
                if raw:
                    yield frame
                elif terminal or frame.event in STREAM_CONTROL_EVENTS:
                    if terminal:
                        return
                    continue
                else:
                    yield event_from_dict(json.loads(frame.data))
                yielded += 1
                if terminal or (max_events is not None and yielded >= max_events):
                    return
        finally:
            frames.close()

    # ------------------------------------------------------------------
    # Setters (Table 1)
    # ------------------------------------------------------------------
    def set_container_powercap(
        self, container_id: str, watts: Optional[float]
    ) -> None:
        self._request(
            "POST",
            f"{self._base}/containers/{container_id}/powercap",
            {"watts": watts},
        )

    def set_battery_charge_rate(self, watts: float) -> None:
        self._request("POST", f"{self._base}/battery/charge_rate", {"watts": watts})

    def set_battery_max_discharge(self, watts: float) -> None:
        self._request(
            "POST", f"{self._base}/battery/max_discharge", {"watts": watts}
        )

    # ------------------------------------------------------------------
    # Getters (Table 1) — same values as the in-process delegates
    # ------------------------------------------------------------------
    def get_solar_power(self) -> float:
        return self._request("GET", f"{self._base}/solar")["solar_w"]

    def get_grid_power(self) -> float:
        return self._request("GET", f"{self._base}/grid")["grid_w"]

    def get_grid_carbon(self) -> float:
        return self._request("GET", f"{self._base}/carbon")["carbon_g_per_kwh"]

    def get_grid_price(self) -> float:
        return self._request("GET", f"{self._base}/price")["price_usd_per_kwh"]

    def get_energy_cost(self) -> float:
        return self._request("GET", f"{self._base}/cost")["cost_usd"]

    def get_battery_discharge_rate(self) -> float:
        return self._request("GET", f"{self._base}/battery")["discharge_rate_w"]

    def get_battery_charge_level(self) -> float:
        return self._request("GET", f"{self._base}/battery")["charge_level_wh"]

    def get_battery_capacity(self) -> float:
        return self._request("GET", f"{self._base}/battery")["capacity_wh"]

    def get_container_powercap(self, container_id: str) -> Optional[float]:
        return self._request(
            "GET", f"{self._base}/containers/{container_id}/powercap"
        )["powercap_w"]

    def get_container_power(self, container_id: str) -> float:
        return self._request(
            "GET", f"{self._base}/containers/{container_id}/power"
        )["power_w"]

    # ------------------------------------------------------------------
    # Container and resource management (Section 3.1)
    # ------------------------------------------------------------------
    def launch_container(
        self, cores: float, gpu: bool = False, role: str = "worker"
    ) -> ContainerInfo:
        payload = self._request(
            "POST",
            f"{self._base}/containers",
            {"cores": cores, "gpu": gpu, "role": role},
        )
        return ContainerInfo(
            id=payload["id"], cores=payload["cores"], role=payload["role"]
        )

    def stop_container(self, container_id: str) -> None:
        self._request("DELETE", f"{self._base}/containers/{container_id}")

    def scale_to(
        self, count: int, cores: float, gpu: bool = False, role: str = "worker"
    ) -> List[str]:
        """Scale the role pool to ``count``; returns the container ids."""
        payload = self._request(
            "POST",
            f"{self._base}/scale",
            {"count": count, "cores": cores, "gpu": gpu, "role": role},
        )
        return list(payload["containers"])

    def set_container_cores(self, container_id: str, cores: float) -> None:
        self._request(
            "POST",
            f"{self._base}/containers/{container_id}/cores",
            {"cores": cores},
        )

    def list_containers(self) -> List[ContainerInfo]:
        payload = self._request("GET", f"{self._base}/containers")
        return [
            ContainerInfo(
                id=c["id"],
                cores=c["cores"],
                role=c["role"],
                power_cap_w=c["power_cap_w"],
            )
            for c in payload["containers"]
        ]

    def __repr__(self) -> str:
        return f"EcovisorClient(app={self._app_name!r})"


class EcovisorAdminClient(_ClientBase):
    """Control-plane SDK: dynamic admission, rebalancing, eviction."""

    def list_apps(self) -> List[AppShare]:
        payload = self._request("GET", "/v1/admin/apps")
        return [_app_share(entry) for entry in payload["apps"]]

    def get_app(self, name: str) -> AppShare:
        return _app_share(self._request("GET", f"/v1/admin/apps/{name}"))

    def admit_app(
        self,
        name: str,
        solar_fraction: float = 0.0,
        battery_fraction: float = 0.0,
        grid_power_w: float = float("inf"),
    ) -> AppShare:
        """Admit an application (usable mid-run); returns its share."""
        return _app_share(
            self._request(
                "POST",
                "/v1/admin/apps",
                {
                    "name": name,
                    "solar_fraction": solar_fraction,
                    "battery_fraction": battery_fraction,
                    "grid_power_w": grid_power_w,
                },
            )
        )

    def set_share(self, name: str, **fields: float) -> int:
        """Stage a share rebalance; returns the tick it takes effect at.

        Keyword fields (``solar_fraction``, ``battery_fraction``,
        ``grid_power_w``) default to the app's current share.
        """
        payload = self._request("PATCH", f"/v1/admin/apps/{name}", dict(fields))
        return payload["effective_at_tick"]

    def evict_app(self, name: str) -> Dict[str, Any]:
        """Evict an application; returns its finalized ledger account."""
        return self._request("DELETE", f"/v1/admin/apps/{name}")["account"]

    def __repr__(self) -> str:
        return "EcovisorAdminClient()"


def _app_share(payload: Dict[str, Any]) -> AppShare:
    return AppShare(
        name=payload["name"],
        solar_fraction=payload["solar_fraction"],
        battery_fraction=payload["battery_fraction"],
        grid_power_w=payload["grid_power_w"],
    )
