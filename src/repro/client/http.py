"""Network transport for the SDK: a stdlib HTTP client for the gateway.

The SDK (:mod:`repro.client.sdk`) is transport-agnostic — it calls
``transport.request(method, path, body)`` and reads ``.status`` /
``.body`` off the result.  In-process tests hand it the REST facade
directly; this module provides the real-network counterpart against a
running :class:`~repro.gateway.server.GatewayServer`, built on
``http.client`` so the SDK works without any third-party dependency.

Two verbs:

- :meth:`HttpTransport.request` — one JSON request/response round trip
  over a persistent keep-alive connection, returning the same
  :class:`~repro.rest.router.Response` shape the in-process transport
  does (headers included, so conditional GETs work end to end).
- :meth:`HttpTransport.stream` — opens an SSE stream on its own
  connection and yields parsed :class:`StreamFrame`\\ s; closing the
  generator closes the connection.
"""

from __future__ import annotations

import http.client
import json
import socket
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.rest.router import Response


@dataclass(frozen=True)
class StreamFrame:
    """One parsed SSE frame: the event name, raw data line, optional id.

    ``data`` is kept as the exact string off the wire (the stream-parity
    test pins it byte-identical to the cursor-poll serialization);
    callers parse it as JSON when they want structure.
    """

    event: str
    data: str
    id: Optional[int] = None


def parse_sse_stream(lines: Iterator[bytes]) -> Iterator[StreamFrame]:
    """Parse SSE frames off an iterator of raw lines.

    Comment lines (heartbeats) are skipped; a frame is emitted at each
    blank-line separator.  Handles both ``\\n`` and ``\\r\\n`` endings.
    """
    event: Optional[str] = None
    data: Optional[str] = None
    seq: Optional[int] = None
    for raw in lines:
        line = raw.rstrip(b"\r\n").decode("utf-8")
        if not line:
            if event is not None or data is not None:
                yield StreamFrame(event=event or "message", data=data or "", id=seq)
            event = data = seq = None
            continue
        if line.startswith(":"):
            continue  # comment / heartbeat
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event = value
        elif field == "data":
            data = value if data is None else f"{data}\n{value}"
        elif field == "id":
            try:
                seq = int(value)
            except ValueError:
                seq = None


class HttpTransport:
    """Blocking HTTP transport bound to one gateway host/port."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def __repr__(self) -> str:
        return f"HttpTransport(http://{self._host}:{self._port})"

    # ------------------------------------------------------------------
    # Request/response
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        payload = None
        send_headers = dict(headers or {})
        if body is not None:
            payload = json.dumps(body, sort_keys=True)
            send_headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                raw = conn.getresponse()
                break
            except (http.client.HTTPException, ConnectionError, socket.timeout):
                # A keep-alive connection the server already closed;
                # retry once on a fresh one.
                self.close()
                if attempt:
                    raise
        data = raw.read()
        response_headers = dict(raw.getheaders())
        content_type = raw.getheader("Content-Type", "")
        decoded: Any = None
        if data:
            if "json" in content_type:
                decoded = json.loads(data)
            else:
                decoded = data.decode("utf-8")
        if raw.getheader("Connection", "").lower() == "close":
            self.close()
        return Response(raw.status, decoded, headers=response_headers)

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # ------------------------------------------------------------------
    # SSE streaming
    # ------------------------------------------------------------------
    def stream(
        self,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[StreamFrame]:
        """Open ``path`` as an SSE stream and yield frames until it ends.

        Raises :class:`ConnectionError` for a non-200 response (the
        error body is included in the message).  ``timeout`` bounds each
        read, not the stream's total life.
        """
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=timeout or self._timeout
        )
        send_headers = {"Accept": "text/event-stream", **(headers or {})}
        try:
            conn.request("GET", path, headers=send_headers)
            response = conn.getresponse()
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace")
                raise ConnectionError(
                    f"stream request failed: {response.status} {detail}"
                )
            yield from parse_sse_stream(iter(response.readline, b""))
        finally:
            conn.close()
