"""Typed Python SDK for the ecovisor's REST control plane.

``EcovisorClient`` mirrors the in-process ``EcovisorAPI`` one-to-one
over the Router transport; ``EcovisorAdminClient`` drives the v1.1
application lifecycle (admit / rebalance / evict).  See
:mod:`repro.client.sdk` for the transport contract and error mapping.
``HttpTransport`` is the real-network transport against a running
gateway (``repro serve``), adding SSE streaming via
``EcovisorClient.stream_events``.
"""

from repro.client.http import HttpTransport, StreamFrame
from repro.client.sdk import (
    AppShare,
    ContainerInfo,
    EcovisorAdminClient,
    EcovisorClient,
    EventPage,
    TransportError,
)

__all__ = [
    "AppShare",
    "ContainerInfo",
    "EcovisorAdminClient",
    "EcovisorClient",
    "EventPage",
    "HttpTransport",
    "StreamFrame",
    "TransportError",
]
