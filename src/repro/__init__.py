"""repro — a reproduction of "Ecovisor: A Virtual Energy System for
Carbon-Efficient Applications" (ASPLOS 2023).

The public API re-exports the pieces a downstream user needs to assemble
an ecovisor deployment:

- **substrates**: :mod:`repro.energy` (grid/battery/solar),
  :mod:`repro.carbon` (carbon information services), :mod:`repro.cluster`
  (container orchestration), :mod:`repro.telemetry`.
- **core**: :mod:`repro.core` — the ecovisor, virtual energy systems,
  the narrow Table 1 API, and the Table 2 library layer.
- **applications & policies**: :mod:`repro.workloads`,
  :mod:`repro.policies`.
- **harness**: :mod:`repro.sim` (engine, environments),
  :mod:`repro.analysis` (per-figure experiments).

Quickstart::

    from repro.sim import grid_environment, UNLIMITED_GRID_SHARE
    from repro.workloads import MLTrainingJob
    from repro.policies import WaitAndScalePolicy

    env = grid_environment(region="caiso", days=2)
    job = MLTrainingJob(total_work_units=10000)
    threshold = env.carbon_service.trace.percentile(30)
    env.engine.add_application(
        job, UNLIMITED_GRID_SHARE, WaitAndScalePolicy(threshold, 4, 2.0)
    )
    env.engine.run(2 * 24 * 60, stop_when_batch_complete=True)
    print(job.completion_time_s, env.ecovisor.ledger.app_carbon_g(job.name))
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

_EXPORTS = {
    # core
    "Ecovisor": "repro.core.ecovisor",
    "EcovisorAPI": "repro.core.api",
    "connect": "repro.core.api",
    "AppEnergyLibrary": "repro.core.library",
    "VirtualEnergySystem": "repro.core.virtual_energy_system",
    "VirtualBattery": "repro.core.virtual_battery",
    "ShareConfig": "repro.core.config",
    "EcovisorConfig": "repro.core.config",
    "SimulationClock": "repro.core.clock",
    # substrates
    "Battery": "repro.energy.battery",
    "GridConnection": "repro.energy.grid",
    "SolarArrayEmulator": "repro.energy.solar",
    "PhysicalEnergySystem": "repro.energy.system",
    "CarbonIntensityService": "repro.carbon.service",
    "ContainerOrchestrationPlatform": "repro.cluster.cop",
    "TimeSeriesDatabase": "repro.telemetry.timeseries",
    # harness
    "SimulationEngine": "repro.sim.engine",
    "EcovisorRestServer": "repro.rest.server",
    "EcovisorClient": "repro.client.sdk",
    "EcovisorAdminClient": "repro.client.sdk",
    # extensions
    "GeoCoordinator": "repro.geo.coordinator",
    "SharedWorkPool": "repro.geo.coordinator",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    module_path = _EXPORTS.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_path)
    return getattr(module, name)


def __dir__() -> list:
    return __all__
