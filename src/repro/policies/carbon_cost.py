"""Weighted carbon + cost policy: one knob between clean and cheap.

Carbon-optimal and cost-optimal schedules disagree whenever price and
carbon decouple — a time-of-use on-peak window can coincide with a clean
evening grid, and a midday solar glut can be cheap but (in a thermal
region) still dirty.  This policy exposes the trade-off as a single
weight λ over a *blended index*

    b(t) = (1 - λ) · carbon(t) / carbon_scale + λ · price(t) / price_scale

where the scales normalize the two signals to comparable magnitudes
(typically their trace means).  The policy then behaves exactly like
Wait&Scale on b(t): suspend while the blended index is above a
threshold, run scaled up while below.  λ=0 reduces to the paper's
carbon Wait&Scale; λ=1 to a pure price threshold; intermediate values
trace the carbon-vs-cost Pareto frontier swept by the
``extension_market`` scenario.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.carbon.traces import CarbonTrace
from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.market.prices import PriceTrace
from repro.policies.base import Policy


def blended_index(
    carbon_g_per_kwh: float,
    price_usd_per_kwh: float,
    lam: float,
    carbon_scale: float,
    price_scale: float,
) -> float:
    """The dimensionless carbon+cost index b(t) (see module docstring)."""
    carbon_term = carbon_g_per_kwh / carbon_scale if carbon_scale > 0 else 0.0
    price_term = price_usd_per_kwh / price_scale if price_scale > 0 else 0.0
    return (1.0 - lam) * carbon_term + lam * price_term


def blended_threshold(
    carbon_trace: CarbonTrace,
    price_trace: PriceTrace,
    lam: float,
    percentile: float,
    window_s: Optional[float] = None,
    carbon_scale: Optional[float] = None,
    price_scale: Optional[float] = None,
) -> float:
    """Percentile of the blended index over a lookahead window.

    The trade-off analogue of ``carbon_threshold`` in
    :mod:`repro.sim.experiment`: both signals are read from their traces
    (the paper's perfect-forecast methodology), blended sample-by-sample
    at the shared 5-minute interval, and reduced to the ``percentile``-th
    value.  Scales default to the window means, so the two signals enter
    the blend in comparable units.
    """
    carbon = np.asarray(carbon_trace.window(0.0, window_s), dtype=float)
    price = np.asarray(price_trace.window(0.0, window_s), dtype=float)
    n = min(len(carbon), len(price))
    carbon, price = carbon[:n], price[:n]
    c_scale = carbon_scale if carbon_scale is not None else float(carbon.mean())
    p_scale = price_scale if price_scale is not None else float(price.mean())
    carbon_term = carbon / c_scale if c_scale > 0 else np.zeros(n)
    price_term = price / p_scale if p_scale > 0 else np.zeros(n)
    blended = (1.0 - lam) * carbon_term + lam * price_term
    return float(np.percentile(blended, percentile))


class CarbonCostPolicy(Policy):
    """Wait&Scale on the blended carbon+cost index with trade-off knob λ."""

    batch_compatible = True

    def __init__(
        self,
        lam: float,
        threshold: float,
        carbon_scale: float,
        price_scale: float,
        base_workers: int,
        scale_factor: float,
        cores_per_worker: float = 1.0,
    ):
        super().__init__()
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if carbon_scale < 0 or price_scale < 0:
            raise ValueError("scales must be >= 0")
        if base_workers <= 0:
            raise ValueError("base workers must be positive")
        if scale_factor < 1.0:
            raise ValueError("scale factor must be >= 1")
        self._lam = lam
        self._threshold = threshold
        self._carbon_scale = carbon_scale
        self._price_scale = price_scale
        self._base_workers = base_workers
        self._scale_factor = scale_factor
        self._cores = cores_per_worker

    @property
    def lam(self) -> float:
        return self._lam

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def scaled_workers(self) -> int:
        return int(round(self._base_workers * self._scale_factor))

    def current_index(self, state: EnergyState | None = None) -> float:
        """The blended index at the current tick's signals."""
        state = state if state is not None else self.api.state()
        return blended_index(
            state.grid_carbon_g_per_kwh,
            state.grid_price_usd_per_kwh,
            self._lam,
            self._carbon_scale,
            self._price_scale,
        )

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        target = (
            0 if self.current_index(state) > self._threshold else self.scaled_workers
        )
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores)

    @classmethod
    def on_tick_batch(cls, tick, signals, rows) -> None:
        """Vectorized :meth:`on_tick`: the blended index per member.

        Elementwise ``divide``/``multiply``/``add`` with the scalar
        body's operand order keep every member's index bit-identical
        to :func:`blended_index` (including the zero-scale guards).
        """
        n = rows.n
        lam = rows.col("_lam")
        c_scale = rows.col("_carbon_scale")
        p_scale = rows.col("_price_scale")
        carbon_term = np.divide(
            signals.carbon, c_scale, out=np.zeros(n), where=c_scale > 0
        )
        price_term = np.divide(
            signals.price, p_scale, out=np.zeros(n), where=p_scale > 0
        )
        index = (1.0 - lam) * carbon_term + lam * price_term
        targets = np.where(
            index > rows.col("_threshold"), 0, rows.col_int("scaled_workers")
        )
        rows.stage_scale(targets)
