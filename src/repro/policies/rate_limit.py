"""Static carbon rate-limiting: the system-level budgeting policy.

Enforces "a static carbon budget for each application by rate-limiting
(or carbon-capping) it at all times" (paper Section 5.2).  Each tick the
policy converts the target carbon rate into a power allowance at the
current grid carbon-intensity and provisions as many workers as that
allowance funds — so when carbon-intensity is low the policy
over-provisions (latency dips below the SLO), and when carbon-intensity
is high it cannot add capacity regardless of load, which is how it
violates the SLO during simultaneous high-carbon/high-load periods
(Figure 6 b/c).
"""

from __future__ import annotations

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.core.units import power_for_carbon_rate
from repro.policies.base import Policy


class CarbonRateLimitPolicy(Policy):
    """Provision as many workers as the carbon rate funds.

    Sizing uses power feedback: the policy measures the current average
    per-worker draw and fills the rate's power allowance with workers at
    that draw.  When workers idle (light load, low per-worker power) the
    policy provisions *more* of them — "the system-level policy uses as
    many resources and energy to satisfy its target carbon rate" (paper
    Section 5.2.3) — which is exactly why it over-provisions when carbon
    is low and cannot add capacity when carbon is high.
    """

    # Not batch-compatible: sizing reads measured per-container power
    # (cross-container state), not just global signals — per-app path
    # by design.
    batch_compatible = False

    def __init__(
        self,
        target_rate_mg_per_s: float,
        worker_power_w: float,
        cores_per_worker: float = 1.0,
        min_workers: int = 1,
        max_workers: int = 32,
    ):
        super().__init__()
        if target_rate_mg_per_s < 0:
            raise ValueError("target rate must be >= 0")
        if worker_power_w <= 0:
            raise ValueError("worker power must be positive")
        if not 0 <= min_workers <= max_workers:
            raise ValueError(
                f"need 0 <= min_workers <= max_workers, got "
                f"{min_workers}/{max_workers}"
            )
        self._rate = target_rate_mg_per_s
        self._worker_power_w = worker_power_w
        self._cores = cores_per_worker
        self._min_workers = min_workers
        self._max_workers = max_workers

    @property
    def target_rate_mg_per_s(self) -> float:
        return self._rate

    def allowed_workers(self, carbon_intensity_g_per_kwh: float) -> int:
        """Workers fundable at the target rate assuming full-power draw.

        The conservative bound used before any power measurements exist.
        """
        allowance_w = power_for_carbon_rate(self._rate, carbon_intensity_g_per_kwh)
        workers = int(allowance_w // self._worker_power_w)
        return max(self._min_workers, min(self._max_workers, workers))

    def _measured_worker_power_w(self, state: EnergyState) -> float:
        """Average measured draw per worker (from the tick snapshot); the
        full-power estimate when there are no workers yet."""
        workers = [c for c in self.api.list_containers() if c.role == "worker"]
        if not workers:
            return self._worker_power_w
        powers = state.container_power_w
        total = sum(
            powers[c.id]
            if c.id in powers
            else self.api.get_container_power(c.id)
            for c in workers
        )
        per_worker = total / len(workers)
        # Guard the feedback loop: never divide by less than the idle
        # floor, or a fully idle pool would request unbounded workers.
        floor = 0.1 * self._worker_power_w
        return max(per_worker, floor)

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        allowance_w = power_for_carbon_rate(self._rate, state.grid_carbon_g_per_kwh)
        target = int(allowance_w // self._measured_worker_power_w(state))
        target = max(self._min_workers, min(self._max_workers, target))
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores)
