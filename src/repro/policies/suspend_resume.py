"""Suspend/resume: the WaitAWhile-style system-level policy.

Suspends execution whenever grid carbon-intensity exceeds a threshold and
resumes when it falls back below (paper Section 5.1, following
WaitAWhile [70]).  This is a *general system policy*: it can be applied
to any application without knowing its scaling behaviour — which is
precisely why it leaves performance on the table relative to Wait&Scale.

The threshold is a percentile of carbon-intensity over a lookahead window
(30th percentile over 48 h for the ML job, 33rd over the trace for
BLAST), computed by the experiment harness from the carbon service.
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.policies.base import Policy


class SuspendResumePolicy(Policy):
    """Suspend above a carbon threshold, run at base scale below it."""

    batch_compatible = True

    def __init__(
        self,
        carbon_threshold_g_per_kwh: float,
        workers: int,
        cores_per_worker: float = 1.0,
        gpu: bool = False,
    ):
        super().__init__()
        if carbon_threshold_g_per_kwh < 0:
            raise ValueError("carbon threshold must be >= 0")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self._threshold = carbon_threshold_g_per_kwh
        self._workers = workers
        self._cores = cores_per_worker
        self._gpu = gpu
        self._suspension_count = 0
        self._suspended = False

    @property
    def carbon_threshold_g_per_kwh(self) -> float:
        return self._threshold

    @property
    def suspension_count(self) -> int:
        """How many distinct suspensions occurred (for runtime analysis)."""
        return self._suspension_count

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        intensity = state.grid_carbon_g_per_kwh
        should_suspend = intensity > self._threshold
        if should_suspend and not self._suspended:
            self._suspension_count += 1
        self._suspended = should_suspend
        target = 0 if should_suspend else self._workers
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores, self._gpu)

    @classmethod
    def on_tick_batch(cls, tick, signals, rows) -> None:
        """Vectorized :meth:`on_tick` with masked suspend/resume edges.

        Completed members skip the state update (the scalar body
        returns before it), so only ``active`` rows record suspension
        edges or rewrite ``_suspended``.
        """
        policies = rows.policies
        should = signals.carbon > rows.col("_threshold")
        prev = np.fromiter(
            (p._suspended for p in policies), dtype=bool, count=rows.n
        )
        active = ~rows.complete
        for k in np.flatnonzero(active & should & ~prev).tolist():
            policies[k]._suspension_count += 1
        for k in np.flatnonzero(active & (should != prev)).tolist():
            policies[k]._suspended = bool(should[k])
        targets = np.where(should, 0, rows.col_int("_workers"))
        rows.stage_scale(targets, gpu_attr="_gpu")
