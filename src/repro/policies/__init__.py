"""Carbon- and energy-management policies (the paper's Section 5 space)."""

from repro.policies.base import Policy, worker_idle_power_w, worker_power_w
from repro.policies.battery import (
    DynamicSparkBatteryPolicy,
    DynamicWebBatteryPolicy,
    StaticBatterySmoothingPolicy,
)
from repro.policies.carbon_agnostic import CarbonAgnosticPolicy
from repro.policies.carbon_budget import DynamicCarbonBudgetPolicy
from repro.policies.carbon_cost import (
    CarbonCostPolicy,
    blended_index,
    blended_threshold,
)
from repro.policies.forecast_threshold import ForecastWaitAndScalePolicy
from repro.policies.price_threshold import PriceThresholdPolicy
from repro.policies.rate_limit import CarbonRateLimitPolicy
from repro.policies.solar_matching import (
    DynamicSolarCapPolicy,
    StaticSolarCapPolicy,
)
from repro.policies.straggler import StragglerReplicaPolicy
from repro.policies.suspend_resume import SuspendResumePolicy
from repro.policies.wait_and_scale import WaitAndScalePolicy

__all__ = [
    "CarbonAgnosticPolicy",
    "CarbonCostPolicy",
    "CarbonRateLimitPolicy",
    "DynamicCarbonBudgetPolicy",
    "DynamicSolarCapPolicy",
    "DynamicSparkBatteryPolicy",
    "ForecastWaitAndScalePolicy",
    "DynamicWebBatteryPolicy",
    "Policy",
    "PriceThresholdPolicy",
    "StaticBatterySmoothingPolicy",
    "StaticSolarCapPolicy",
    "StragglerReplicaPolicy",
    "SuspendResumePolicy",
    "WaitAndScalePolicy",
    "blended_index",
    "blended_threshold",
    "worker_idle_power_w",
    "worker_power_w",
]
