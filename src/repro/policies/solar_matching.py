"""Per-container power-cap policies for direct solar use (Figure 10).

These policies drive a barrier-synchronized parallel job running purely
on solar power (no battery): the application must allocate its limited
solar supply across containers so the sum of caps never exceeds supply
(paper Section 5.4).

- :class:`StaticSolarCapPolicy` — the system-level policy: split solar
  equally across the 10 nodes.  Nodes with light tasks finish their round
  early and idle at the barrier, wasting their allocation while the
  heaviest task gates the round.
- :class:`DynamicSolarCapPolicy` — the application-specific policy: set
  caps proportional to each task's *remaining work* so all nodes use
  nearly all of their allocated energy and reach the barrier together.
  Because servers are not energy-proportional (idle power is a fixed
  floor), rebalancing matters most when total solar is scarce — the trend
  of Figure 10(c).
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.policies.base import Policy
from repro.workloads.parallel import ParallelJob


class _SolarCapPolicy(Policy):
    """Shared setup: launch one container per task and pin assignments."""

    # Not batch-compatible: per-container power-cap writes against the
    # app's own solar share and pinned task assignments — per-app path
    # by design.
    batch_compatible = False

    def __init__(self, cores_per_worker: float = 1.0):
        super().__init__()
        self._cores = cores_per_worker

    def on_attach(self) -> None:
        app = self.app
        if not isinstance(app, ParallelJob):
            raise TypeError("solar-cap policies drive ParallelJob applications")
        containers = self.api.scale_to(app.num_tasks, self._cores)
        for task_index, container in enumerate(containers):
            app.assign_task_container(task_index, container.id)

    def _stop_if_complete(self) -> bool:
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return True
        return False


class StaticSolarCapPolicy(_SolarCapPolicy):
    """System-level equal split of solar across all nodes."""

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self._stop_if_complete():
            return
        containers = self.api.list_containers()
        if not containers:
            return
        cap_w = state.solar_power_w / len(containers)
        for container in containers:
            self.api.set_container_powercap(container.id, cap_w)


class DynamicSolarCapPolicy(_SolarCapPolicy):
    """Application-specific caps proportional to remaining task work."""

    def __init__(self, cores_per_worker: float = 1.0, min_cap_fraction: float = 0.02):
        super().__init__(cores_per_worker)
        if not 0.0 <= min_cap_fraction < 1.0:
            raise ValueError("min cap fraction must be in [0, 1)")
        self._min_cap_fraction = min_cap_fraction

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self._stop_if_complete():
            return
        app = self.app
        assert isinstance(app, ParallelJob)
        containers = {c.id: c for c in self.api.list_containers()}
        if not containers:
            return
        solar_w = state.solar_power_w
        remaining = app.task_remaining()
        total_remaining = float(np.sum(remaining))
        n = len(containers)
        if total_remaining <= 0:
            for container_id in containers:
                self.api.set_container_powercap(container_id, solar_w / n)
            return
        # Reserve a sliver for barrier-idle nodes, then split the rest in
        # proportion to remaining work.
        floor_w = self._min_cap_fraction * solar_w / n
        distributable = max(0.0, solar_w - floor_w * n)
        task_by_container = {
            cid: task
            for task, cid in (
                (t, app._task_containers.get(t)) for t in range(app.num_tasks)
            )
            if cid is not None
        }
        for container_id in containers:
            task = task_by_container.get(container_id)
            if task is None or remaining[task] <= 0:
                cap = floor_w
            else:
                cap = floor_w + distributable * float(remaining[task]) / total_remaining
            self.api.set_container_powercap(container_id, cap)
