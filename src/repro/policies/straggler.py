"""Straggler mitigation with replica tasks (Figure 11).

When solar supply exceeds what the primary nodes can consume and the
application has no battery capacity to store it, the excess is wasted
unless used immediately (paper Section 5.4).  This policy converts excess
solar into *replica tasks*: it tracks per-task progress, flags tasks
whose remaining work lags the median (progress-based straggler
detection), and launches a replica on a fresh container — "at most one
replica task will finish", so energy-efficiency drops, but runtime
improves because the round no longer waits on the slow node.
"""

from __future__ import annotations

from typing import Dict

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.policies.base import Policy
from repro.workloads.parallel import ParallelJob


class StragglerReplicaPolicy(Policy):
    """Spawn replicas for detected stragglers using excess solar power."""

    # Not batch-compatible: straggler detection reads per-task progress
    # and spawns replicas against excess-solar headroom — per-app path
    # by design.
    batch_compatible = False

    def __init__(
        self,
        worker_power_w: float,
        cores_per_worker: float = 1.0,
        detection_threshold: float = 1.5,
        max_replicas: int = 10,
        enable_replicas: bool = True,
    ):
        super().__init__()
        if worker_power_w <= 0:
            raise ValueError("worker power must be positive")
        if detection_threshold < 1.0:
            raise ValueError("detection threshold must be >= 1")
        self._worker_power_w = worker_power_w
        self._cores = cores_per_worker
        self._detection_threshold = detection_threshold
        self._max_replicas = max_replicas
        self._enable_replicas = enable_replicas
        self._replica_ids: Dict[int, str] = {}
        self._last_round = -1
        self._replicas_launched_total = 0

    @property
    def replicas_launched_total(self) -> int:
        return self._replicas_launched_total

    def on_attach(self) -> None:
        app = self.app
        if not isinstance(app, ParallelJob):
            raise TypeError("StragglerReplicaPolicy drives ParallelJob applications")
        containers = self.api.scale_to(app.num_tasks, self._cores)
        for task_index, container in enumerate(containers):
            app.assign_task_container(task_index, container.id)
        self._last_round = app.current_round

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        app = self.app
        assert isinstance(app, ParallelJob)
        if app.is_complete:
            self._teardown()
            return

        if app.current_round != self._last_round:
            # Barrier crossed: retire every replica from the finished round.
            self._retire_replicas(app)
            self._last_round = app.current_round

        solar_w = state.solar_power_w
        primaries = app.num_tasks
        committed_w = (primaries + len(self._replica_ids)) * self._worker_power_w
        self._set_caps()

        if not self._enable_replicas:
            return
        stragglers = app.straggler_tasks(self._detection_threshold)
        for task in stragglers:
            if task in self._replica_ids:
                continue
            if len(self._replica_ids) >= self._max_replicas:
                break
            if committed_w + self._worker_power_w > solar_w:
                break  # no excess solar left to fund another replica
            container = self.api.launch_container(self._cores)
            self.api.set_container_powercap(container.id, self._worker_power_w)
            app.add_replica(task, container.id)
            self._replica_ids[task] = container.id
            committed_w += self._worker_power_w
            self._replicas_launched_total += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _set_caps(self) -> None:
        """Cap every container at one worker's power (solar is plentiful
        in this experiment; caps keep demand within the funded envelope)."""
        for container in self.api.list_containers():
            self.api.set_container_powercap(container.id, self._worker_power_w)

    def _retire_replicas(self, app: ParallelJob) -> None:
        for container_id in app.clear_replicas():
            if self.api.ecovisor.platform.has_container(container_id):
                self.api.stop_container(container_id)
        self._replica_ids.clear()

    def _teardown(self) -> None:
        app = self.app
        assert isinstance(app, ParallelJob)
        app.clear_replicas()
        if self.current_worker_count() > 0:
            self.scale_workers(0, self._cores)
        self._replica_ids.clear()
