"""Wait&Scale against the electricity *price* signal.

The market analogue of the paper's Wait&Scale carbon policy (Section
5.1): suspend execution while the grid price is above a percentile
threshold, and run scaled up while it is below — riding out time-of-use
on-peak windows and real-time price spikes, then exploiting cheap
midday-solar hours.

The threshold is re-derived from a forecaster every
``refresh_interval_s``, reusing the :mod:`repro.carbon.forecast`
machinery unchanged: those forecasters are signal-agnostic, so passing
one constructed over a :class:`~repro.market.service.PriceSignal`
(``OracleForecaster(price_signal)`` matches the paper's perfect-forecast
methodology) yields price thresholds exactly the way carbon thresholds
are derived.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.forecast import CarbonForecaster
from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.policies.base import Policy


class PriceThresholdPolicy(Policy):
    """Suspend above a forecast price-percentile; scale up below it."""

    batch_compatible = True

    def __init__(
        self,
        forecaster: CarbonForecaster,
        percentile: float,
        window_s: float,
        base_workers: int,
        scale_factor: float,
        cores_per_worker: float = 1.0,
        refresh_interval_s: float = 3600.0,
    ):
        super().__init__()
        if not 0.0 < percentile < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        if window_s <= 0:
            raise ValueError("forecast window must be positive")
        if base_workers <= 0:
            raise ValueError("base workers must be positive")
        if scale_factor < 1.0:
            raise ValueError("scale factor must be >= 1")
        if refresh_interval_s <= 0:
            raise ValueError("refresh interval must be positive")
        self._forecaster = forecaster
        self._percentile = percentile
        self._window_s = window_s
        self._base_workers = base_workers
        self._scale_factor = scale_factor
        self._cores = cores_per_worker
        self._refresh_interval_s = refresh_interval_s
        self._threshold: float | None = None
        self._last_refresh_s = -float("inf")

    @property
    def current_threshold(self) -> float | None:
        """The $/kWh threshold in force (None before the first tick)."""
        return self._threshold

    @property
    def scaled_workers(self) -> int:
        return int(round(self._base_workers * self._scale_factor))

    def _maybe_refresh(self, now_s: float) -> None:
        if now_s - self._last_refresh_s < self._refresh_interval_s:
            return
        self._threshold = self._forecaster.percentile(
            now_s, self._window_s, self._percentile
        )
        self._last_refresh_s = now_s

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        self._forecaster.observe(tick.start_s)
        self._maybe_refresh(tick.start_s)
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        price = state.grid_price_usd_per_kwh
        assert self._threshold is not None  # set by _maybe_refresh
        target = 0 if price > self._threshold else self.scaled_workers
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores)

    @classmethod
    def on_tick_batch(cls, tick, signals, rows) -> None:
        """Vectorized :meth:`on_tick`.

        Forecaster observation and threshold refresh are per-instance
        (each member owns its forecaster) and run for *every* member —
        the scalar body does both before the completion check.
        """
        for policy in rows.policies:
            policy._forecaster.observe(tick.start_s)
            policy._maybe_refresh(tick.start_s)
        thresholds = np.fromiter(
            (p._threshold for p in rows.policies), dtype=float, count=rows.n
        )
        targets = np.where(
            signals.price > thresholds, 0, rows.col_int("scaled_workers")
        )
        rows.stage_scale(targets)
