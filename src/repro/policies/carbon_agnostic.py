"""Carbon-agnostic policy.

The paper's baseline: run the job at its configured scale from arrival to
completion, ignoring carbon entirely.  It achieves the lowest completion
time at the cost of the highest emissions (Figure 4).
"""

from __future__ import annotations

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.policies.base import Policy


class CarbonAgnosticPolicy(Policy):
    """Run ``workers`` containers continuously until the job completes."""

    batch_compatible = True

    def __init__(self, workers: int, cores_per_worker: float = 1.0, gpu: bool = False):
        super().__init__()
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self._workers = workers
        self._cores = cores_per_worker
        self._gpu = gpu

    @property
    def workers(self) -> int:
        return self._workers

    def on_attach(self) -> None:
        self.scale_workers(self._workers, self._cores, self._gpu)

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        if self.current_worker_count() != self._workers:
            self.scale_workers(self._workers, self._cores, self._gpu)

    @classmethod
    def on_tick_batch(cls, tick, signals, rows) -> None:
        """Vectorized :meth:`on_tick`: every member targets its own pool."""
        rows.stage_scale(rows.col_int("_workers"), gpu_attr="_gpu")
