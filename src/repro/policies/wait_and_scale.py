"""Wait&Scale: the paper's application-specific carbon reduction policy.

Like suspend/resume, Wait&Scale pauses execution when carbon-intensity is
above a threshold — but on resumption it *opportunistically scales up*
resource (and energy) usage by an application-chosen factor (paper
Section 5.1).  The optimal scale factor depends on the application's
scaling behaviour, "which the system may not know": synchronous ML
training stops benefiting beyond 2x, embarrassingly parallel BLAST scales
well to 3x and hits its queue-server bottleneck at 4x.
"""

from __future__ import annotations

import numpy as np

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.policies.base import Policy


class WaitAndScalePolicy(Policy):
    """Suspend above the threshold; run at ``base x factor`` below it."""

    batch_compatible = True

    def __init__(
        self,
        carbon_threshold_g_per_kwh: float,
        base_workers: int,
        scale_factor: float,
        cores_per_worker: float = 1.0,
        gpu: bool = False,
    ):
        super().__init__()
        if carbon_threshold_g_per_kwh < 0:
            raise ValueError("carbon threshold must be >= 0")
        if base_workers <= 0:
            raise ValueError(f"base workers must be positive, got {base_workers}")
        if scale_factor < 1.0:
            raise ValueError(f"scale factor must be >= 1, got {scale_factor}")
        self._threshold = carbon_threshold_g_per_kwh
        self._base_workers = base_workers
        self._scale_factor = scale_factor
        self._cores = cores_per_worker
        self._gpu = gpu

    @property
    def scale_factor(self) -> float:
        return self._scale_factor

    @property
    def scaled_workers(self) -> int:
        """Worker count while running (base x factor, rounded)."""
        return int(round(self._base_workers * self._scale_factor))

    @property
    def carbon_threshold_g_per_kwh(self) -> float:
        return self._threshold

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        intensity = state.grid_carbon_g_per_kwh
        target = 0 if intensity > self._threshold else self.scaled_workers
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores, self._gpu)

    @classmethod
    def on_tick_batch(cls, tick, signals, rows) -> None:
        """Vectorized :meth:`on_tick`: one threshold compare per member."""
        targets = np.where(
            signals.carbon > rows.col("_threshold"),
            0,
            rows.col_int("scaled_workers"),
        )
        rows.stage_scale(targets, gpu_attr="_gpu")
