"""Dynamic carbon budgeting: the application-specific policy of §5.2.

Instead of capping the carbon *rate* at every instant, the application
enforces a carbon *budget* over a long window — the product of the target
rate and the window length.  Each tick it:

1. sizes the worker pool to exactly meet its latency SLO at the current
   request rate (no over-provisioning when load is low), and
2. checks the carbon implications: when the needed capacity would exceed
   the target carbon rate, it spends accumulated "carbon credits" (budget
   under-use banked earlier) to temporarily exceed the rate, keeping the
   overall budget intact.

The result (Figure 6/7): the SLO holds through high-carbon/high-load
periods, and total emissions come in ~23% *below* the static rate-limit
policy because the pool idles low whenever load is light.
"""

from __future__ import annotations

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.core.units import power_for_carbon_rate
from repro.policies.base import Policy
from repro.workloads.webapp import WebApplication


class DynamicCarbonBudgetPolicy(Policy):
    """SLO-first autoscaling under a windowed carbon budget."""

    # Not batch-compatible: sizing feeds back from measured app power
    # and carbon-rate history, not just the tick's global signals —
    # per-app path by design.
    batch_compatible = False

    def __init__(
        self,
        target_rate_mg_per_s: float,
        worker_power_w: float,
        cores_per_worker: float = 1.0,
        min_workers: int = 1,
        max_workers: int = 32,
        credit_floor_g: float = 0.0,
        headroom_factor: float = 1.25,
        scale_down_patience_ticks: int = 3,
    ):
        super().__init__()
        if target_rate_mg_per_s < 0:
            raise ValueError("target rate must be >= 0")
        if worker_power_w <= 0:
            raise ValueError("worker power must be positive")
        if headroom_factor < 1.0:
            raise ValueError("headroom factor must be >= 1")
        if scale_down_patience_ticks < 0:
            raise ValueError("scale-down patience must be >= 0")
        self._rate = target_rate_mg_per_s
        self._worker_power_w = worker_power_w
        self._cores = cores_per_worker
        self._min_workers = min_workers
        self._max_workers = max_workers
        self._credit_floor_g = credit_floor_g
        self._headroom_factor = headroom_factor
        self._scale_down_patience = scale_down_patience_ticks
        self._ticks_below_current = 0
        self._over_rate_ticks = 0

    @property
    def target_rate_mg_per_s(self) -> float:
        return self._rate

    @property
    def over_rate_ticks(self) -> int:
        """Ticks in which the policy intentionally exceeded the rate."""
        return self._over_rate_ticks

    def budget_so_far_g(self, elapsed_s: float) -> float:
        """The budget line: target rate integrated over elapsed time."""
        return self._rate * elapsed_s / 1000.0

    def carbon_credit_g(
        self, elapsed_s: float, state: EnergyState | None = None
    ) -> float:
        """Banked under-use: budget so far minus emissions so far."""
        state = state if state is not None else self.api.state()
        return self.budget_so_far_g(elapsed_s) - state.total_carbon_g

    def on_attach(self) -> None:
        """Pre-provision a small pool so the first ticks are not served
        cold (the request trace starts at its base rate, not at zero)."""
        self.scale_workers(max(self._min_workers, 2), self._cores)

    def slo_sized_workers(self) -> int:
        """Pool size that meets the SLO at the current rate, with headroom.

        The headroom factor covers the one-tick actuation lag and minute-
        scale load noise (a production autoscaler's safety margin).
        """
        app = self.app
        assert isinstance(app, WebApplication)
        from repro.workloads.latency import min_servers_for_slo

        padded_rate = app.current_rate_rps * self._headroom_factor
        needed = min_servers_for_slo(
            padded_rate,
            app.service_rate_rps,
            app.slo_ms,
            app.latency_percentile,
            self._max_workers,
        )
        return max(self._min_workers, min(self._max_workers, needed))

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        app = self.app
        if not isinstance(app, WebApplication):
            raise TypeError(
                "DynamicCarbonBudgetPolicy drives SLO-bound web applications"
            )
        needed = self.slo_sized_workers()

        intensity = state.grid_carbon_g_per_kwh
        allowance_w = power_for_carbon_rate(self._rate, intensity)
        rate_funded = int(allowance_w // self._worker_power_w)
        rate_funded = max(self._min_workers, min(self._max_workers, rate_funded))

        if needed <= rate_funded:
            target = needed
        elif self.carbon_credit_g(tick.start_s, state) > self._credit_floor_g:
            # Spend banked credits to ride out the high-carbon/high-load
            # period while still meeting the SLO.
            target = needed
            self._over_rate_ticks += 1
        else:
            target = rate_funded

        current = self.current_worker_count()
        if target < current:
            # Hysteresis: only release capacity after the lower need has
            # persisted, so a one-minute lull cannot trigger a flap that
            # violates the SLO on the next burst.
            self._ticks_below_current += 1
            if self._ticks_below_current < self._scale_down_patience:
                return
        self._ticks_below_current = 0
        if current != target:
            self.scale_workers(target, self._cores)
