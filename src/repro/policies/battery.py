"""Virtual battery usage policies (paper Section 5.3, Figures 8-9).

These policies implement the zero-carbon case studies: applications that
run exclusively on their virtual solar share and virtual battery — grid
power is available at night but deliberately unused ("to maintain a zero
carbon footprint").  The experiment grants these apps a zero grid share,
so the virtual energy system physically cannot emit.

- :class:`StaticBatterySmoothingPolicy` — the system-level policy: the
  battery smooths solar volatility to provide a minimum guaranteed power,
  funding a *fixed* number of always-available workers during the day.
- :class:`DynamicSparkBatteryPolicy` — Spark-specific: keeps the
  guaranteed base, and opportunistically scales up onto excess solar once
  the battery is (nearly) full, accepting that un-checkpointed work on
  the extra workers may be lost (Figure 8c; runtime -39%).
- :class:`DynamicWebBatteryPolicy` — web-specific: sizes the pool to the
  latency SLO and spends battery to ride workload bursts (Figure 8d/e).
"""

from __future__ import annotations

from repro.core.clock import TickInfo
from repro.core.state import EnergyState
from repro.policies.base import Policy
from repro.workloads.spark import SparkJob
from repro.workloads.webapp import WebApplication

DEFAULT_DAY_THRESHOLD_W = 1.0


class _ZeroCarbonPolicy(Policy):
    """Shared day/night machinery for the solar+battery policies."""

    # Not batch-compatible: decisions read cross-cutting battery/solar
    # state and issue battery + power-cap writes whose interleaving with
    # other apps' actions is observable — per-app path by design.
    batch_compatible = False

    def __init__(
        self,
        worker_power_w: float,
        cores_per_worker: float = 1.0,
        day_threshold_w: float = DEFAULT_DAY_THRESHOLD_W,
    ):
        super().__init__()
        if worker_power_w <= 0:
            raise ValueError("worker power must be positive")
        if day_threshold_w < 0:
            raise ValueError("day threshold must be >= 0")
        self._worker_power_w = worker_power_w
        self._cores = cores_per_worker
        self._day_threshold_w = day_threshold_w
        self._was_day = False

    def is_day(self, state: EnergyState | None = None) -> bool:
        """Daytime means the app's virtual solar output is meaningful."""
        state = state if state is not None else self.api.state()
        return state.solar_power_w > self._day_threshold_w

    @property
    def worker_power_w(self) -> float:
        return self._worker_power_w


class StaticBatterySmoothingPolicy(_ZeroCarbonPolicy):
    """System-level: fixed daytime workers under battery smoothing.

    Conservative by design: the worker count is chosen so the battery can
    guarantee their power through solar dips, so no computation is ever
    lost — at the cost of leaving excess solar unused (it charges the
    battery and is then curtailed once full).
    """

    def __init__(
        self,
        fixed_workers: int,
        worker_power_w: float,
        cores_per_worker: float = 1.0,
        day_threshold_w: float = DEFAULT_DAY_THRESHOLD_W,
    ):
        super().__init__(worker_power_w, cores_per_worker, day_threshold_w)
        if fixed_workers <= 0:
            raise ValueError("fixed workers must be positive")
        self._fixed_workers = fixed_workers

    @property
    def fixed_workers(self) -> int:
        return self._fixed_workers

    def on_attach(self) -> None:
        # Guarantee exactly the fixed pool's power from the battery.
        self.api.set_battery_max_discharge(
            self._fixed_workers * self._worker_power_w
        )

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        if self.app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        day = self.is_day(state)
        if day and not self._was_day:
            self.scale_workers(self._fixed_workers, self._cores)
        elif not day and self._was_day:
            # Planned dusk shutdown: checkpoint cleanly, then suspend.
            if isinstance(self.app, SparkJob):
                self.app.suspend_with_checkpoint(tick.start_s)
            self.scale_workers(0, self._cores)
        self._was_day = day


class DynamicSparkBatteryPolicy(_ZeroCarbonPolicy):
    """Spark-specific: guaranteed base + opportunistic excess-solar surge."""

    def __init__(
        self,
        base_workers: int,
        worker_power_w: float,
        cores_per_worker: float = 1.0,
        day_threshold_w: float = DEFAULT_DAY_THRESHOLD_W,
        battery_full_fraction: float = 0.75,
        max_workers: int = 16,
    ):
        super().__init__(worker_power_w, cores_per_worker, day_threshold_w)
        if base_workers <= 0:
            raise ValueError("base workers must be positive")
        if not 0.0 < battery_full_fraction <= 1.0:
            raise ValueError("battery-full fraction must be in (0, 1]")
        self._base_workers = base_workers
        self._battery_full_fraction = battery_full_fraction
        self._max_workers = max_workers
        self._surge_workers = 0

    @property
    def base_workers(self) -> int:
        return self._base_workers

    @property
    def surge_workers(self) -> int:
        """Opportunistic workers currently running beyond the base."""
        return self._surge_workers

    def on_attach(self) -> None:
        self.api.set_battery_max_discharge(
            self._base_workers * self._worker_power_w
        )

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        app = self.app
        if app.is_complete:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        if not self.is_day(state):
            if self._was_day and isinstance(app, SparkJob):
                # Evening termination without checkpointing: in-memory
                # results since the last checkpoint are lost.
                total = self.current_worker_count()
                if total > 0:
                    app.kill_workers(total, total, tick.start_s)
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            self._surge_workers = 0
            self._was_day = False
            return
        self._was_day = True

        solar_w = state.solar_power_w
        level = state.battery_charge_level_wh
        capacity = state.battery_capacity_wh
        battery_nearly_full = (
            capacity > 0 and level / capacity >= self._battery_full_fraction
        )
        base_demand_w = self._base_workers * self._worker_power_w
        target = self._base_workers
        if battery_nearly_full and solar_w > base_demand_w + self._worker_power_w:
            extra = int((solar_w - base_demand_w) // self._worker_power_w)
            target = min(self._max_workers, self._base_workers + extra)
        current = self.current_worker_count()
        if target < current and isinstance(app, SparkJob):
            # Scale-in kills surge workers without checkpointing.
            app.kill_workers(current - target, current, tick.start_s)
        if target != current:
            self.scale_workers(target, self._cores)
        self._surge_workers = max(0, target - self._base_workers)


class DynamicWebBatteryPolicy(_ZeroCarbonPolicy):
    """Web-specific: SLO-sized pool funded by solar plus battery bursts."""

    def __init__(
        self,
        worker_power_w: float,
        cores_per_worker: float = 1.0,
        day_threshold_w: float = DEFAULT_DAY_THRESHOLD_W,
        min_battery_fraction: float = 0.10,
        max_workers: int = 16,
        headroom_factor: float = 1.3,
    ):
        super().__init__(worker_power_w, cores_per_worker, day_threshold_w)
        if not 0.0 <= min_battery_fraction < 1.0:
            raise ValueError("min battery fraction must be in [0, 1)")
        if headroom_factor < 1.0:
            raise ValueError("headroom factor must be >= 1")
        self._min_battery_fraction = min_battery_fraction
        self._max_workers = max_workers
        self._headroom_factor = headroom_factor

    def _sized_for_slo(self, app: WebApplication) -> int:
        """SLO pool size with headroom against the one-tick actuation lag
        and the morning workload ramp."""
        from repro.workloads.latency import min_servers_for_slo

        return min_servers_for_slo(
            app.current_rate_rps * self._headroom_factor,
            app.service_rate_rps,
            app.slo_ms,
            app.latency_percentile,
            self._max_workers,
        )

    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        app = self.app
        if not isinstance(app, WebApplication):
            raise TypeError("DynamicWebBatteryPolicy drives web applications")
        if not self.is_day(state) and app.current_rate_rps <= 0:
            if self.current_worker_count() > 0:
                self.scale_workers(0, self._cores)
            return
        needed = self._sized_for_slo(app)
        solar_w = state.solar_power_w
        level = state.battery_charge_level_wh
        capacity = state.battery_capacity_wh
        battery_ok = capacity > 0 and level / capacity > self._min_battery_fraction
        solar_funded = int(solar_w // self._worker_power_w)
        if battery_ok:
            # Let the battery cover the gap between solar and the SLO pool.
            target = needed
            gap_w = max(0.0, needed * self._worker_power_w - solar_w)
            self.api.set_battery_max_discharge(gap_w + self._worker_power_w)
        else:
            target = max(1, min(needed, solar_funded))
            self.api.set_battery_max_discharge(0.0)
        target = max(1, min(self._max_workers, target))
        if self.current_worker_count() != target:
            self.scale_workers(target, self._cores)
