"""Policy base class.

A *policy* is the application-side controller that receives the ecovisor's
``tick()`` upcall and adjusts the application's power supply and demand —
scaling containers, setting power caps, and steering the virtual battery
(paper Section 3.1).  Policies are deliberately separate from workload
models: the same ML training job runs under carbon-agnostic,
suspend/resume, or Wait&Scale policies, which is exactly the comparison
the paper's evaluation makes.

System-level policies (suspend/resume, static rate-limiting, static
battery smoothing) are implemented with the same machinery — they are
simply policies that ignore application specifics, "one-size-fits-all".
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.api import EcovisorAPI
from repro.core.clock import TickInfo
from repro.core.config import ClusterConfig
from repro.core.state import EnergyState
from repro.cluster.power_model import ServerPowerModel
from repro.workloads.base import Application


def worker_power_w(
    cluster_config: ClusterConfig, cores: float = 1.0, gpu: bool = False
) -> float:
    """Full-utilization power of one worker container on this cluster.

    Policies size worker pools from this constant, the way operators size
    from a measured per-replica power draw.
    """
    model = ServerPowerModel(cluster_config.server)
    return model.max_container_power_w(cores, gpu=gpu)


def worker_idle_power_w(cluster_config: ClusterConfig, cores: float = 1.0) -> float:
    """Idle-share power of one worker container on this cluster."""
    model = ServerPowerModel(cluster_config.server)
    return model.min_container_power_w(cores)


class Policy(abc.ABC):
    """Application-side controller driven by the ``tick()`` upcall."""

    #: Vectorized upcall plane opt-in (see ``core/upcalls.py`` and
    #: docs/performance.md).  A class that sets this to True **in its
    #: own body** and provides a classmethod
    #: ``on_tick_batch(cls, tick, signals, rows)`` lets the batched
    #: engine deliver one grouped upcall per class instead of one
    #: ``on_tick`` per app.  The contract: the batch kernel must make
    #: byte-identical decisions and side effects to N sequential
    #: ``on_tick`` calls whose decisions are mutually independent
    #: (reads limited to global tick signals plus the app's own state).
    #: The flag is checked on the class's ``__dict__`` on purpose: a
    #: subclass overriding any behavior falls back to the per-app path
    #: automatically unless it re-opts-in.
    batch_compatible = False

    def __init__(self):
        self._app: Optional[Application] = None
        self._api: Optional[EcovisorAPI] = None

    @property
    def app(self) -> Application:
        if self._app is None:
            raise RuntimeError(f"{type(self).__name__} is not attached")
        return self._app

    @property
    def api(self) -> EcovisorAPI:
        if self._api is None:
            raise RuntimeError(f"{type(self).__name__} is not attached")
        return self._api

    @property
    def is_attached(self) -> bool:
        return self._api is not None

    def attach(self, app: Application, api: EcovisorAPI) -> None:
        """Bind the policy to its application and register for ticks.

        The ecovisor inspects the registered ``on_tick`` override's
        arity: v1 policies receive ``(tick, state)``, legacy
        single-argument overrides keep receiving ``(tick)``.
        """
        self._app = app
        self._api = api
        api.register_tick(self.on_tick)
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for initial provisioning; runs once after :meth:`attach`."""

    @abc.abstractmethod
    def on_tick(self, tick: TickInfo, state: EnergyState) -> None:
        """React to the tick: adjust scaling, caps, and battery settings.

        ``state`` is the application's frozen
        :class:`~repro.core.state.EnergyState` for this tick — the same
        instance every other consumer of the tick reads.  Legacy
        subclasses overriding ``on_tick(self, tick)`` keep working; the
        registration-time arity shim dispatches both shapes.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def scale_workers(self, count: int, cores: float = 1.0, gpu: bool = False) -> None:
        """Horizontally scale the application's worker pool to ``count``.

        Auxiliary containers (role != ``worker``, e.g. a queue server)
        are left untouched.
        """
        self.api.scale_to(count, cores, gpu=gpu, role="worker")

    def current_worker_count(self) -> int:
        api = self._api
        if api is None:
            raise RuntimeError(f"{type(self).__name__} is not attached")
        return len(api.list_containers(role="worker"))

    def __repr__(self) -> str:
        target = self._app.name if self._app is not None else "<detached>"
        return f"{type(self).__name__}(app={target})"
