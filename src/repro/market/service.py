"""Electricity-price signal service.

Utilities and ISOs publish tariff and real-time price feeds the same way
carbon information services publish intensity estimates; the ecovisor
polls both on its monitoring interval.  :class:`PriceSignal` reproduces
that interface over the synthetic traces of :mod:`repro.market.prices`,
with the same ``observe(time_s)`` shape as
:class:`~repro.carbon.service.CarbonIntensityService`: queries within
one update interval return the same cached value (a rate-limited polled
API), and a history buffer supports percentile-threshold computations.

The signal is deliberately *forecaster-compatible*: the forecasters in
:mod:`repro.carbon.forecast` only require ``observe()`` and
``intensity_at()``, so a :class:`PriceSignal` can be dropped into
:class:`~repro.carbon.forecast.OracleForecaster` (or the persistence /
diurnal variants) to derive price thresholds exactly the way carbon
thresholds are derived.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.config import PriceServiceConfig
from repro.core.errors import TraceError
from repro.market.prices import PriceTrace, make_price_trace


class PriceSignal:
    """Utility-feed-style electricity-price queries over a trace."""

    def __init__(
        self,
        config: PriceServiceConfig | None = None,
        trace: PriceTrace | None = None,
        days: int = 4,
    ):
        self._config = config or PriceServiceConfig()
        self._config.validate()
        if trace is None:
            trace = make_price_trace(
                self._config.regime, days=days, seed=self._config.seed
            )
        self._trace = trace
        self._history: List[Tuple[float, float]] = []

    @property
    def config(self) -> PriceServiceConfig:
        return self._config

    @property
    def trace(self) -> PriceTrace:
        return self._trace

    @property
    def regime(self) -> str:
        return self._trace.regime

    def price_at(self, time_s: float) -> float:
        """Price ($/kWh) at ``time_s``, quantized to update intervals.

        The feed refreshes every ``update_interval_s`` seconds; queries
        between refreshes observe the value of the most recent refresh,
        like a real polled API.
        """
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        quantized = (time_s // self._config.update_interval_s) * (
            self._config.update_interval_s
        )
        return self._trace.price_at(quantized)

    def intensity_at(self, time_s: float) -> float:
        """Alias of :meth:`price_at` for forecaster compatibility.

        The :mod:`repro.carbon.forecast` classes are signal-agnostic —
        they only call ``intensity_at``/``observe`` — so this alias lets
        the same forecasters derive thresholds from the price signal.
        """
        return self.price_at(time_s)

    def observe(self, time_s: float) -> float:
        """Sample the feed and append to the history buffer."""
        value = self.price_at(time_s)
        self.record_observation(time_s, value)
        return value

    def record_observation(self, time_s: float, value: float) -> None:
        """Append one already-sampled observation to the history buffer.

        Mirrors :meth:`CarbonIntensityService.record_observation`: the
        batched tick path replays precomputed per-tick prices through
        this hook so history-based queries stay identical to the live
        ``observe`` path.
        """
        if not self._history or self._history[-1][0] < time_s:
            self._history.append((time_s, value))

    def history(self) -> List[Tuple[float, float]]:
        """All (time_s, price) observations recorded so far."""
        return list(self._history)

    def threshold_percentile(
        self, q: float, window_start_s: float, window_end_s: float
    ) -> float:
        """Percentile of trace price over a window.

        Price-aware wait policies pick thresholds from trace percentiles
        over a lookahead window, mirroring the paper's Section 5.1
        carbon-threshold methodology (trace = perfect forecast).
        """
        return self._trace.percentile(q, window_start_s, window_end_s)

    def mean_price(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Mean trace price over a window (for reporting and normalizing)."""
        return self._trace.mean(start_s, end_s)

    def observed_percentile(self, q: float) -> float:
        """Percentile over *observed* history only (no lookahead)."""
        if not self._history:
            raise TraceError("no observations recorded yet")
        values = np.asarray([value for _, value in self._history])
        return float(np.percentile(values, q))
