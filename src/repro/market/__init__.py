"""Energy market: electricity-price traces, the price signal service.

The market layer sits beside :mod:`repro.carbon` in the physical
substrate: synthetic price regimes (flat tariff, time-of-use, CAISO-like
real-time) sampled every 5 minutes, and a :class:`PriceSignal` service
with the same polled ``observe(time_s)`` shape as the carbon service.
Billing itself lives in :mod:`repro.core.accounting` (each settled tick
carries grid cost = grid energy x price) and is wired through the
ecovisor, the Table 1 API, REST, and telemetry.
"""

from repro.market.prices import (
    DEFAULT_TOU_SCHEDULE,
    PRICE_REGIMES,
    PriceTrace,
    TouSchedule,
    constant_price_trace,
    flat_price_trace,
    make_price_trace,
    realtime_price_trace,
    tou_price_trace,
)
from repro.market.service import PriceSignal

__all__ = [
    "DEFAULT_TOU_SCHEDULE",
    "PRICE_REGIMES",
    "PriceSignal",
    "PriceTrace",
    "TouSchedule",
    "constant_price_trace",
    "flat_price_trace",
    "make_price_trace",
    "realtime_price_trace",
    "tou_price_trace",
]
