"""Synthetic electricity-price traces.

The paper virtualizes the energy system so applications can manage — and
pay for — their own energy use; "Enabling Sustainable Clouds" (the vision
paper behind Ecovisor) argues the virtualized interface should expose
*price* as well as carbon signals.  No tariff data ships with this repo,
so this module synthesizes deterministic price traces at the same
5-minute sample interval as :mod:`repro.carbon.traces`:

- **flat** — a single volumetric tariff, constant around the clock.
- **tou** — a three-period time-of-use schedule (off-peak nights,
  mid-peak shoulders, on-peak evenings), the standard retail structure
  in CAISO territory.
- **realtime** — a wholesale-style real-time price calibrated to the
  CAISO duck curve: midday solar depresses prices toward zero, the
  evening net-load ramp lifts them, and occasional scarcity events spike
  the ramp hours by an order of magnitude.

Prices are quoted in $/kWh.  All traces are deterministic given their
seed, mirroring the carbon traces' reproducibility contract.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.carbon.traces import SAMPLE_INTERVAL_S, ar1, duck_curve
from repro.core.errors import TraceError, UnknownTraceNameError
from repro.core.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

_SAMPLES_PER_DAY = int(SECONDS_PER_DAY / SAMPLE_INTERVAL_S)


class PriceTrace:
    """An electricity-price time series ($/kWh) sampled every 5 minutes."""

    def __init__(self, samples: Sequence[float], regime: str = "custom"):
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or len(arr) == 0:
            raise TraceError("price trace needs a non-empty 1-D sample array")
        if arr.min() < 0:
            raise TraceError("price cannot be negative (curtail, don't pay)")
        self._samples = arr
        self._regime = regime

    @property
    def regime(self) -> str:
        return self._regime

    @property
    def samples(self) -> np.ndarray:
        view = self._samples.view()
        view.flags.writeable = False
        return view

    @property
    def duration_s(self) -> float:
        return len(self._samples) * SAMPLE_INTERVAL_S

    def price_at(self, time_s: float) -> float:
        """Price ($/kWh) at ``time_s``; clamps beyond the trace end."""
        if time_s < 0:
            raise TraceError(f"time must be >= 0, got {time_s}")
        index = min(int(time_s / SAMPLE_INTERVAL_S), len(self._samples) - 1)
        return float(self._samples[index])

    def window(self, start_s: float = 0.0, end_s: float | None = None) -> np.ndarray:
        """Samples covering [start_s, end_s); clamps to the trace bounds."""
        if end_s is None:
            end_s = self.duration_s
        if end_s <= start_s:
            raise TraceError(f"empty window [{start_s}, {end_s})")
        lo = max(0, int(start_s / SAMPLE_INTERVAL_S))
        hi = min(len(self._samples), max(lo + 1, int(math.ceil(end_s / SAMPLE_INTERVAL_S))))
        return self._samples[lo:hi]

    def percentile(self, q: float, start_s: float = 0.0, end_s: float | None = None) -> float:
        """The ``q``-th percentile of price over [start_s, end_s).

        Price-aware policies pick their wait thresholds exactly the way
        the paper's carbon policies do — as a percentile over a lookahead
        window (Section 5.1 methodology, applied to the price signal).
        """
        return float(np.percentile(self.window(start_s, end_s), q))

    def mean(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Mean price over a window."""
        return float(self.window(start_s, end_s).mean())

    def rolled(self, offset_s: float) -> "PriceTrace":
        """A copy rotated so time zero lands at ``offset_s`` (arrival shift)."""
        if offset_s < 0:
            raise TraceError(f"offset must be >= 0, got {offset_s}")
        shift = int(offset_s / SAMPLE_INTERVAL_S) % len(self._samples)
        return PriceTrace(np.roll(self._samples, -shift), regime=self._regime)


@dataclass(frozen=True)
class TouSchedule:
    """A three-period time-of-use tariff ($/kWh by hour of day).

    Default periods follow the common CAISO retail structure: on-peak
    covers the evening net-load ramp (16:00-21:00), off-peak the night
    (22:00-08:00), and mid-peak the remaining shoulders.
    """

    off_peak_usd_per_kwh: float = 0.18
    mid_peak_usd_per_kwh: float = 0.32
    on_peak_usd_per_kwh: float = 0.55
    on_peak_start_hour: float = 16.0
    on_peak_end_hour: float = 21.0
    off_peak_start_hour: float = 22.0
    off_peak_end_hour: float = 8.0

    def validate(self) -> None:
        prices = (
            self.off_peak_usd_per_kwh,
            self.mid_peak_usd_per_kwh,
            self.on_peak_usd_per_kwh,
        )
        if any(p < 0 for p in prices):
            raise TraceError("tariff prices must be >= 0")
        if not self.off_peak_usd_per_kwh <= self.mid_peak_usd_per_kwh <= self.on_peak_usd_per_kwh:
            raise TraceError("tariff must order off-peak <= mid-peak <= on-peak")
        hours = (
            self.on_peak_start_hour,
            self.on_peak_end_hour,
            self.off_peak_start_hour,
            self.off_peak_end_hour,
        )
        if any(not 0.0 <= h <= 24.0 for h in hours):
            raise TraceError("schedule hours must be within [0, 24]")

    def price_for_hour(self, hour_of_day: float) -> float:
        """The tariff price in force at ``hour_of_day`` (fractional hours)."""
        hour = hour_of_day % 24.0
        if self.on_peak_start_hour <= hour < self.on_peak_end_hour:
            return self.on_peak_usd_per_kwh
        # The off-peak window wraps midnight (22:00-08:00 by default).
        if hour >= self.off_peak_start_hour or hour < self.off_peak_end_hour:
            return self.off_peak_usd_per_kwh
        return self.mid_peak_usd_per_kwh


DEFAULT_TOU_SCHEDULE = TouSchedule()

#: Calibration constants for the real-time regime (wholesale $/kWh).
REALTIME_BASE_USD_PER_KWH = 0.07
REALTIME_DUCK_AMPLITUDE = 0.055
REALTIME_NOISE_SIGMA = 0.012
REALTIME_NOISE_PERSISTENCE = 0.90
REALTIME_FLOOR_USD_PER_KWH = 0.0
REALTIME_CEILING_USD_PER_KWH = 2.0
REALTIME_SPIKE_PROBABILITY = 0.4  # per evening ramp
REALTIME_SPIKE_USD_PER_KWH = 0.9
REALTIME_SPIKE_HALF_WIDTH_H = 0.5


def _n_samples(days: int) -> int:
    if days <= 0:
        raise TraceError(f"trace must cover at least one day, got {days}")
    return days * _SAMPLES_PER_DAY


def _hours(n: int) -> np.ndarray:
    return (np.arange(n) * SAMPLE_INTERVAL_S / SECONDS_PER_HOUR) % 24.0


def flat_price_trace(
    price_usd_per_kwh: float = 0.30, days: int = 4, seed: int = 2023
) -> PriceTrace:
    """A flat volumetric tariff (``seed`` accepted for interface parity)."""
    if price_usd_per_kwh < 0:
        raise TraceError("price cannot be negative")
    return PriceTrace(
        np.full(_n_samples(days), float(price_usd_per_kwh)), regime="flat"
    )


def tou_price_trace(
    days: int = 4,
    seed: int = 2023,
    schedule: TouSchedule = DEFAULT_TOU_SCHEDULE,
) -> PriceTrace:
    """A deterministic time-of-use trace from a three-period schedule."""
    schedule.validate()
    hours = _hours(_n_samples(days))
    samples = np.asarray([schedule.price_for_hour(h) for h in hours])
    return PriceTrace(samples, regime="tou")


def realtime_price_trace(days: int = 4, seed: int = 2023) -> PriceTrace:
    """A CAISO-like real-time price: duck curve, noise, evening spikes.

    The seed is mixed with CRC32 of the regime name (not Python's salted
    ``hash()``), matching the carbon traces' cross-run reproducibility.
    """
    n = _n_samples(days)
    rng = np.random.default_rng(seed ^ (zlib.crc32(b"realtime") & 0xFFFF))
    hours = _hours(n)
    duck = REALTIME_DUCK_AMPLITUDE * duck_curve(hours)
    noise = ar1(rng, n, REALTIME_NOISE_SIGMA, REALTIME_NOISE_PERSISTENCE)

    # Occasional scarcity spikes riding the evening ramp: each day draws
    # whether a spike occurs, its center hour, and its magnitude.
    spikes = np.zeros(n)
    spike_occurs = rng.uniform(size=days) < REALTIME_SPIKE_PROBABILITY
    spike_centers = rng.uniform(18.5, 20.5, size=days)
    spike_scales = rng.uniform(0.5, 1.5, size=days) * REALTIME_SPIKE_USD_PER_KWH
    for day in range(days):
        if not spike_occurs[day]:
            continue
        lo, hi = day * _SAMPLES_PER_DAY, (day + 1) * _SAMPLES_PER_DAY
        offset_h = hours[lo:hi] - spike_centers[day]
        spikes[lo:hi] = spike_scales[day] * np.exp(
            -(offset_h**2) / (2 * REALTIME_SPIKE_HALF_WIDTH_H**2)
        )

    samples = np.clip(
        REALTIME_BASE_USD_PER_KWH + duck + noise + spikes,
        REALTIME_FLOOR_USD_PER_KWH,
        REALTIME_CEILING_USD_PER_KWH,
    )
    return PriceTrace(samples, regime="realtime")


#: Registered price regimes: name -> builder(days, seed) -> PriceTrace.
PRICE_REGIMES: Dict[str, Callable[[int, int], PriceTrace]] = {
    "flat": lambda days, seed: flat_price_trace(days=days, seed=seed),
    "tou": lambda days, seed: tou_price_trace(days=days, seed=seed),
    "realtime": lambda days, seed: realtime_price_trace(days=days, seed=seed),
}


def make_price_trace(regime: str, days: int = 4, seed: int = 2023) -> PriceTrace:
    """Build the named regime's trace (``flat``/``tou``/``realtime``).

    Raises :class:`UnknownTraceNameError` (a ``TraceError`` *and* a
    ``ValueError``) listing the valid regimes on an unknown name.
    """
    key = regime.lower()
    if key not in PRICE_REGIMES:
        raise UnknownTraceNameError("price regime", regime, PRICE_REGIMES)
    return PRICE_REGIMES[key](days, seed)


def constant_price_trace(price_usd_per_kwh: float, days: int = 1) -> PriceTrace:
    """A flat trace, convenient for tests and calibration."""
    if price_usd_per_kwh < 0:
        raise TraceError("price cannot be negative")
    return PriceTrace(
        np.full(_n_samples(days), float(price_usd_per_kwh)), regime="constant"
    )
